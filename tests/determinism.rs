//! Determinism: every stage of the pipeline is bit-reproducible, which is
//! what makes trace-driven comparisons meaningful.

use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{run, RunOptions, SimConfig};
use ispy_trace::apps;

#[test]
fn whole_pipeline_is_deterministic() {
    let once = || {
        let model = apps::kafka().scaled_down(20);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 40_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
        let result = run(
            &program,
            &trace,
            &SimConfig::default(),
            RunOptions { injections: Some(&plan.injections), ..Default::default() },
        );
        (trace, plan, result)
    };
    let (t1, p1, r1) = once();
    let (t2, p2, r2) = once();
    assert_eq!(t1, t2, "trace generation must be reproducible");
    assert_eq!(p1.injections, p2.injections, "planning must be reproducible");
    assert_eq!(p1.stats, p2.stats);
    assert_eq!(r1, r2, "simulation must be reproducible");
}

#[test]
fn different_inputs_produce_different_traces() {
    let model = apps::kafka().scaled_down(20);
    let program = model.generate();
    let a = program.record_trace(model.input_variant(0), 10_000);
    let b = program.record_trace(model.input_variant(1), 10_000);
    assert_ne!(a, b);
}

#[test]
fn generation_is_stable_across_scales() {
    // Scaling down changes the program, but deterministically.
    let a = apps::tomcat().scaled_down(10).generate();
    let b = apps::tomcat().scaled_down(10).generate();
    assert_eq!(a.num_blocks(), b.num_blocks());
    assert_eq!(a.text_bytes(), b.text_bytes());
}
