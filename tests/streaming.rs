//! Streaming-engine equivalence: `run_streaming` over any [`BlockSource`]
//! must be *byte-identical* to `run` over the materialized prefix — for
//! every app model, every chunk size, every source kind (slice, generator,
//! `.itrace` decoder), and for sharded replay carved from a re-generatable
//! source. A truncated or corrupted stream must surface a typed
//! [`ArtifactError`], never a partial `SimResult`.

use ispy_artifact::ArtifactError;
use ispy_sim::{
    replay_bytes, replay_stream, run, run_streaming, simulate_sharded, simulate_sharded_source,
    GenWindows, RunOptions, ShardConfig, SimConfig,
};
use ispy_trace::artifact::{open_recording_stream, recording_to_bytes, RecordingWriter};
use ispy_trace::{apps, AppModel, BlockSource, TraceBlocks, Walker, WalkerSource};

const EVENTS: usize = 6_000;

fn workload(model: &AppModel) -> (ispy_trace::Program, ispy_trace::Trace) {
    let model = model.clone().scaled_down(30);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), EVENTS);
    (program, trace)
}

/// Every app model: streaming over the materialized trace, streaming from
/// the generator, and streaming through the `.itrace` decoder all equal the
/// plain `run` bit for bit.
#[test]
fn every_app_streams_identically_to_run() {
    let cfg = SimConfig::default();
    for model in apps::all() {
        let name = model.name().to_string();
        let scaled = model.clone().scaled_down(30);
        let (program, trace) = workload(&model);
        let reference = run(&program, &trace, &cfg, RunOptions::default());

        let mut slice = TraceBlocks::of_trace(&trace);
        let via_slice = run_streaming(&program, &mut slice, &cfg, RunOptions::default()).unwrap();
        assert_eq!(via_slice, reference, "{name}: slice source diverged");

        let walker = Walker::new(&program, scaled.default_input());
        let mut generated = WalkerSource::new(walker, EVENTS as u64);
        let via_gen = run_streaming(&program, &mut generated, &cfg, RunOptions::default()).unwrap();
        assert_eq!(via_gen, reference, "{name}: generator source diverged");

        let bytes = recording_to_bytes(&program, &trace);
        let (decoded_program, mut decoder) = open_recording_stream(bytes.as_slice()).unwrap();
        let via_decoder =
            run_streaming(&decoded_program, &mut decoder, &cfg, RunOptions::default()).unwrap();
        assert_eq!(via_decoder, reference, "{name}: decoder source diverged");
    }
}

/// Seeded sweep: the result must not depend on how pulls are sized. Chunk
/// sizes cover the degenerate (1), page-ish (4 Ki), larger-than-trace
/// (1 Mi), and whole-trace-in-one-pull cases, across several apps picked by
/// a seeded rotation so the sweep stays cheap but not app-monoculture.
#[test]
fn chunk_size_never_changes_the_result() {
    let cfg = SimConfig::default();
    let all = apps::all();
    let mut seed = 0x5EED_u64;
    for round in 0..3 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(round);
        let model = &all[(seed % all.len() as u64) as usize];
        let name = model.name().to_string();
        let (program, trace) = workload(model);
        let reference = run(&program, &trace, &cfg, RunOptions::default());
        for chunk in [1usize, 4 * 1024, 1024 * 1024, EVENTS] {
            let mut source = TraceBlocks::with_chunk(trace.blocks(), chunk);
            let got = run_streaming(&program, &mut source, &cfg, RunOptions::default()).unwrap();
            assert_eq!(got, reference, "{name}: chunk {chunk} diverged");
        }
    }
}

/// The decoder source is chunk-invariant too, on both `.itrace` forms:
/// monolithic (buffered writer) and framed (streamed writer).
#[test]
fn decoder_chunk_size_never_changes_the_result() {
    let cfg = SimConfig::default();
    let model = apps::tomcat();
    let (program, trace) = workload(&model);
    let reference = run(&program, &trace, &cfg, RunOptions::default());

    let monolithic = recording_to_bytes(&program, &trace);
    let mut writer =
        RecordingWriter::new(std::io::Cursor::new(Vec::new()), &program, trace.name()).unwrap();
    writer.push(trace.blocks()).unwrap();
    let framed = writer.finish().unwrap().into_inner();

    for (form, bytes) in [("monolithic", &monolithic), ("framed", &framed)] {
        for chunk in [1usize, 4 * 1024, 1024 * 1024, EVENTS] {
            let (program, mut decoder) = open_recording_stream(bytes.as_slice()).unwrap();
            decoder.set_chunk_events(chunk);
            let got = run_streaming(&program, &mut decoder, &cfg, RunOptions::default()).unwrap();
            assert_eq!(got, reference, "{form} form, chunk {chunk} diverged");
        }
    }
}

/// Streaming with an injection plan equals injected `run` — the fast path
/// the sweeps pay for is the same code either way.
#[test]
fn injected_streaming_matches_injected_run() {
    let cfg = SimConfig::default();
    let model = apps::cassandra();
    let (program, trace) = workload(&model);
    let plan = ispy_harness::workload::miss_derived_plan(&program, &trace, &cfg);
    let reference =
        run(&program, &trace, &cfg, RunOptions { injections: Some(&plan), ..Default::default() });
    let mut source = TraceBlocks::with_chunk(trace.blocks(), 777);
    let streamed = run_streaming(
        &program,
        &mut source,
        &cfg,
        RunOptions { injections: Some(&plan), ..Default::default() },
    )
    .unwrap();
    assert_eq!(streamed, reference);
}

/// Sharded replay carved from a re-generated source equals sharded replay
/// over the materialized trace, for multiple shard counts.
#[test]
fn sharded_from_generator_equals_sharded_from_trace() {
    let cfg = SimConfig::default();
    let model = apps::kafka();
    let scaled = model.clone().scaled_down(30);
    let (program, trace) = workload(&model);
    for shards in [1usize, 2, 4] {
        let shard = ShardConfig { window_blocks: 2_048, warmup_blocks: 512, shards };
        let materialized = simulate_sharded(&program, &trace, &cfg, None, &shard, None);
        let gen = GenWindows::for_shards(
            Walker::new(&program, scaled.default_input()),
            EVENTS as u64,
            &shard,
        );
        let regenerated =
            simulate_sharded_source(&program, &gen, &cfg, None, &shard, None).unwrap();
        assert_eq!(regenerated, materialized, "shards={shards}");
    }
}

/// Cutting the stream anywhere inside the event payload yields a typed
/// error — never a clean return over a silently shortened trace.
#[test]
fn truncation_is_always_a_typed_error() {
    let model = apps::drupal();
    let (program, trace) = workload(&model);
    let bytes = recording_to_bytes(&program, &trace);
    let whole = replay_bytes(&bytes, &SimConfig::default(), RunOptions::default()).unwrap();
    for keep_fraction in [30, 60, 90, 99] {
        let cut = bytes.len() * keep_fraction / 100;
        let err = replay_stream(&bytes[..cut], &SimConfig::default(), RunOptions::default())
            .expect_err("truncated stream must not produce a result");
        assert!(
            matches!(
                err,
                ArtifactError::Truncated { .. }
                    | ArtifactError::SectionChecksum { .. }
                    | ArtifactError::MissingSection { .. }
            ),
            "cut at {keep_fraction}%: unexpected error class {err:?}"
        );
    }
    // And the untruncated stream still replays to the reference result.
    let streamed = replay_stream(&bytes[..], &SimConfig::default(), RunOptions::default()).unwrap();
    assert_eq!(streamed, whole);
}

/// The generator source really is the trace: a streamed record through
/// `RecordingWriter` decodes back to exactly what `record_trace` yields.
#[test]
fn streamed_record_round_trips_through_the_decoder() {
    let model = apps::verilator().scaled_down(30);
    let program = model.generate();
    let reference = program.record_trace(model.default_input(), EVENTS);

    let mut writer =
        RecordingWriter::new(std::io::Cursor::new(Vec::new()), &program, program.name()).unwrap();
    let mut source = WalkerSource::new(Walker::new(&program, model.default_input()), EVENTS as u64);
    while let Some(chunk) = source.next_chunk().unwrap() {
        writer.push(chunk).unwrap();
    }
    let bytes = writer.finish().unwrap().into_inner();

    let (decoded, mut stream) = open_recording_stream(bytes.as_slice()).unwrap();
    assert_eq!(decoded.name(), program.name());
    let mut events = Vec::new();
    while let Some(chunk) = stream.next_chunk().unwrap() {
        events.extend_from_slice(chunk);
    }
    assert_eq!(events, reference.blocks());
}
