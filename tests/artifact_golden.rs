//! Golden determinism tests for the artifact subsystem: the durable path
//! (record → artifact bytes → replay) must be byte-identical to the
//! in-memory pipeline, per app and per rendered figure table.

use ispy_harness::cache::ArtifactCache;
use ispy_harness::{figures, metrics, Scale, Session};
use ispy_sim::{replay_bytes, run, RunOptions, SimConfig};
use ispy_trace::apps;

/// For every one of the nine applications, replaying through the `.itrace`
/// artifact yields the exact `SimResult` (and therefore the exact metric
/// lines) the in-memory recording produces.
#[test]
fn record_replay_is_byte_identical_for_all_nine_apps() {
    let scale = Scale::test();
    let cfg = SimConfig::default();
    for model in apps::all() {
        let model = model.scaled_down(scale.shrink);
        let name = model.name();
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), scale.events);
        let live = run(&program, &trace, &cfg, RunOptions::default());
        let bytes = ispy_trace::artifact::recording_to_bytes(&program, &trace);
        let replayed = replay_bytes(&bytes, &cfg, RunOptions::default()).unwrap();
        assert_eq!(replayed.name, name);
        assert_eq!(replayed.result, live, "replay diverged for {name}");
        assert_eq!(
            metrics::result_lines(name, &replayed.result),
            metrics::result_lines(name, &live),
            "metric lines diverged for {name}"
        );
    }
}

/// Figures rendered from cached artifacts — both the cold run that writes
/// the cache and the warm run that reads it — produce byte-identical JSON
/// tables to an uncached session (`runtime_secs` is not part of
/// `Table::to_json`, so this is exactly the "modulo runtime" comparison).
#[test]
fn figures_from_cached_artifacts_are_byte_identical() {
    let scale = Scale::test();
    let models = || vec![apps::cassandra(), apps::kafka(), apps::wordpress()];
    let dir = std::env::temp_dir().join("ispy-artifact-golden-cache");
    std::fs::remove_dir_all(&dir).ok();

    let fresh = Session::with_apps(scale, models());
    let cold = Session::with_cache(scale, models(), ArtifactCache::new(&dir, scale));
    let warm = Session::with_cache(scale, models(), ArtifactCache::new(&dir, scale));
    for id in ["fig10", "table1"] {
        let spec = figures::by_id(id).unwrap();
        let want = (spec.run)(&fresh).to_json();
        assert_eq!((spec.run)(&cold).to_json(), want, "cold cache diverged for {id}");
        assert_eq!((spec.run)(&warm).to_json(), want, "warm cache diverged for {id}");
    }

    // The warm session really did hit the cache: artifacts exist for every
    // prepared app and both planned algorithms.
    for app in ["cassandra", "kafka", "wordpress"] {
        let cache = ArtifactCache::new(&dir, scale);
        assert!(cache.trace_path(app).exists(), "missing .itrace for {app}");
        assert!(cache.profile_path(app).exists(), "missing .iprof for {app}");
        assert!(cache.plan_path(app, "ispy").exists(), "missing ispy .iplan for {app}");
        assert!(cache.plan_path(app, "asmdb").exists(), "missing asmdb .iplan for {app}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
