//! Structural invariants of produced plans, checked across planners.

use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
use ispy_baselines::spatial::{SpatialMode, SpatialPlanner};
use ispy_core::{IspyConfig, Planner};
use ispy_harness::{Scale, Session};
use ispy_isa::PrefetchOp;
use ispy_trace::apps;
use std::collections::HashSet;

fn session() -> Session {
    Session::with_apps(Scale::test(), vec![apps::cassandra(), apps::verilator()])
}

/// Every injected op's targets stay within the coalescing window of its
/// base line, and conditional ops carry non-empty context hashes.
#[test]
fn ops_are_well_formed() {
    let s = session();
    for i in 0..s.apps().len() {
        let c = s.comparison(i);
        for (_, ops) in c.ispy_plan.injections.iter() {
            for op in ops {
                let base = op.base_line();
                for t in op.target_lines() {
                    let d = t.distance_from(base).expect("targets at or after base");
                    assert!(d <= 8, "target {d} lines past base exceeds the window");
                }
                if let Some(ctx) = op.condition() {
                    assert!(ctx.bits() != 0, "conditional op with empty context hash");
                    assert_eq!(ctx.width(), 16, "default hash width");
                }
            }
        }
    }
}

/// Injection sites must be blocks that actually execute in the profiled
/// trace — injecting into dead code would be useless.
#[test]
fn sites_are_live_blocks() {
    let s = session();
    for i in 0..s.apps().len() {
        let ctx = &s.apps()[i];
        let c = s.comparison(i);
        let live: HashSet<u32> = ctx.trace.iter().map(|b| b.0).collect();
        for (site, _) in c.ispy_plan.injections.iter() {
            assert!(live.contains(&site.0), "site {site} never executes");
        }
        for (site, _) in c.asmdb_plan.injections.iter() {
            assert!(live.contains(&site.0), "AsmDB site {site} never executes");
        }
    }
}

/// The static-footprint accounting matches the op encodings exactly.
#[test]
fn footprint_accounting_is_exact() {
    let s = session();
    for i in 0..s.apps().len() {
        let c = s.comparison(i);
        let by_encoding: u64 = c
            .ispy_plan
            .injections
            .iter()
            .flat_map(|(_, ops)| ops.iter())
            .map(|op| u64::from(op.encoded_bytes()))
            .sum();
        assert_eq!(by_encoding, c.ispy_plan.stats.injected_bytes);
        let expected = by_encoding as f64 / s.apps()[i].program.text_bytes() as f64;
        assert!((c.ispy_plan.stats.static_increase - expected).abs() < 1e-12);
    }
}

/// Op-kind counters in the stats agree with the injected instructions.
#[test]
fn stats_match_injections() {
    let s = session();
    for i in 0..s.apps().len() {
        let c = s.comparison(i);
        let mut plain = 0;
        let mut cond = 0;
        let mut coal = 0;
        let mut cl = 0;
        for (_, ops) in c.ispy_plan.injections.iter() {
            for op in ops {
                match op {
                    PrefetchOp::Plain { .. } => plain += 1,
                    PrefetchOp::Cond { .. } => cond += 1,
                    PrefetchOp::Coalesced { .. } => coal += 1,
                    PrefetchOp::CondCoalesced { .. } => cl += 1,
                }
            }
        }
        let st = &c.ispy_plan.stats;
        assert_eq!(
            (plain, cond, coal, cl),
            (st.ops_plain, st.ops_cond, st.ops_coalesced, st.ops_cond_coalesced)
        );
        assert_eq!(st.ops_total(), c.ispy_plan.injections.num_ops());
    }
}

/// Ablation planners respect their switches (conditional-only has no
/// coalesced ops and vice versa); AsmDB and the spatial planners emit only
/// their op kinds.
#[test]
fn planner_variants_emit_expected_op_kinds() {
    let s = session();
    let ctx = &s.apps()[0];
    let cond =
        Planner::new(&ctx.program, &ctx.trace, &ctx.profile, IspyConfig::conditional_only()).plan();
    assert_eq!(cond.stats.ops_coalesced + cond.stats.ops_cond_coalesced, 0);
    let coal =
        Planner::new(&ctx.program, &ctx.trace, &ctx.profile, IspyConfig::coalescing_only()).plan();
    assert_eq!(coal.stats.ops_cond + coal.stats.ops_cond_coalesced, 0);
    let asmdb = AsmDbPlanner::new(&ctx.program, &ctx.profile, AsmDbConfig::default()).plan();
    assert_eq!(asmdb.stats.ops_total(), asmdb.stats.ops_plain);
    let cont = SpatialPlanner::new(&ctx.program, &ctx.profile, SpatialMode::Contiguous).plan();
    assert_eq!(cont.stats.ops_cond + cont.stats.ops_cond_coalesced, 0);
}

/// The coalescing-size sweep monotonically (weakly) shrinks the op count:
/// wider masks can only fold more prefetches together.
#[test]
fn wider_masks_do_not_increase_ops() {
    let s = session();
    let ctx = &s.apps()[1]; // verilator: spatially local
    let mut prev = usize::MAX;
    for bits in [1u8, 2, 4, 8, 16] {
        let plan = Planner::new(
            &ctx.program,
            &ctx.trace,
            &ctx.profile,
            IspyConfig::coalescing_only().with_coalesce_bits(bits),
        )
        .plan();
        assert!(
            plan.stats.ops_total() <= prev,
            "ops grew from {prev} to {} at {bits} bits",
            plan.stats.ops_total()
        );
        prev = plan.stats.ops_total();
    }
}
