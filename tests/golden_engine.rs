//! Old-vs-new engine golden test.
//!
//! The committed `tests/golden_engine.golden` file records the exact
//! `SimResult` (and outcome-ledger totals) the **pre-rework** engine produced
//! for all nine apps under the default, ideal, injected(+ledger), and
//! hash-variant configurations. The reworked hot path (compiled injection
//! plans, flat caches, incremental Bloom mask, FxHash maps) must reproduce
//! every counter bit-for-bit: any divergence fails this test.
//!
//! Regenerate (only when *intentionally* changing simulation semantics) with:
//!
//! ```text
//! GOLDEN_WRITE=1 cargo test -p ispy-harness --test golden_engine
//! ```

use ispy_harness::workload::miss_derived_plan;
use ispy_isa::HashConfig;
use ispy_sim::{run, OutcomeLedger, RunOptions, SimConfig};
use ispy_trace::apps;

const SHRINK: u32 = 20;
const EVENTS: usize = 30_000;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden_engine.golden")
}

/// Renders the full engine fingerprint: one line per (app, config) result.
fn render() -> String {
    let mut out = String::new();
    for model in apps::all() {
        let model = model.scaled_down(SHRINK);
        let name = model.name();
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), EVENTS);

        let dcfg = SimConfig::default();
        let base = run(&program, &trace, &dcfg, RunOptions::default());
        out.push_str(&format!("{name}/default {base:?}\n"));

        let ideal = run(&program, &trace, &SimConfig::ideal(), RunOptions::default());
        out.push_str(&format!("{name}/ideal {ideal:?}\n"));

        let plan = miss_derived_plan(&program, &trace, &dcfg);
        let mut ledger = OutcomeLedger::default();
        let injected = run(
            &program,
            &trace,
            &dcfg,
            RunOptions {
                injections: Some(&plan),
                outcomes: Some(&mut ledger),
                ..Default::default()
            },
        );
        out.push_str(&format!("{name}/injected {injected:?}\n"));
        out.push_str(&format!(
            "{name}/injected-ledger n={} executed={} fired={} suppressed={} issued={} \
             resident={} useful={} late={} evicted={} untracked={:?}\n",
            ledger.per_injection.len(),
            ledger.total(|o| o.executed),
            ledger.total(|o| o.fired),
            ledger.total(|o| o.suppressed),
            ledger.total(|o| o.lines_issued),
            ledger.total(|o| o.lines_resident),
            ledger.total(|o| o.useful),
            ledger.total(|o| o.late),
            ledger.total(|o| o.evicted_unused),
            ledger.untracked,
        ));

        let hcfg = dcfg.clone().with_hash(HashConfig::new(32, 2));
        let hplan = miss_derived_plan(&program, &trace, &hcfg);
        let hashed = run(
            &program,
            &trace,
            &hcfg,
            RunOptions { injections: Some(&hplan), ..Default::default() },
        );
        out.push_str(&format!("{name}/hash32 {hashed:?}\n"));
    }
    out
}

#[test]
fn engine_results_match_pre_rework_golden() {
    let path = golden_path();
    let rendered = render();
    if std::env::var("GOLDEN_WRITE").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("tests/golden_engine.golden missing; regenerate with GOLDEN_WRITE=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    let new_lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(
        golden_lines.len(),
        new_lines.len(),
        "golden line count changed ({} vs {})",
        golden_lines.len(),
        new_lines.len()
    );
    for (g, n) in golden_lines.iter().zip(&new_lines) {
        assert_eq!(g, n, "engine output diverged from the pre-rework golden");
    }
}
