//! Property-based tests over the core data structures and invariants.

use ispy_core::coalesce::{coalesce_lines, decode_groups};
use ispy_isa::{CoalesceMask, ContextHash, HashConfig};
use ispy_sim::{Cache, CacheParams, CountingBloom, InsertPriority, Lbr};
use ispy_trace::{Addr, Line};
use proptest::prelude::*;

proptest! {
    /// A cache never exceeds its capacity and always hits right after fill.
    #[test]
    fn cache_capacity_and_fill_hit(
        lines in prop::collection::vec(0u64..4096, 1..300),
        ways in 1u32..8,
        sets_pow in 1u32..5,
    ) {
        let sets = 1u64 << sets_pow;
        let params = CacheParams { size_bytes: sets * u64::from(ways) * 64, ways, line_bytes: 64 };
        let mut cache = Cache::new(params);
        for &l in &lines {
            cache.fill(Line::new(l), InsertPriority::Mru, false);
            prop_assert!(cache.access(Line::new(l)), "line just filled must hit");
            prop_assert!(cache.occupancy() <= params.num_lines());
        }
    }

    /// Half-priority insertion never increases occupancy beyond capacity and
    /// the inserted line is still resident immediately afterwards.
    #[test]
    fn priority_insertion_is_safe(lines in prop::collection::vec(0u64..512, 1..200)) {
        let mut cache = Cache::new(CacheParams { size_bytes: 8 * 64 * 4, ways: 4, line_bytes: 64 });
        for &l in &lines {
            cache.fill(Line::new(l), InsertPriority::Half, true);
            prop_assert!(cache.contains(Line::new(l)));
        }
    }

    /// The counting Bloom filter has no false negatives and returns to the
    /// empty state after balanced removals.
    #[test]
    fn bloom_no_false_negatives(addrs in prop::collection::vec(0u64..100_000, 1..64)) {
        let cfg = HashConfig::default();
        let mut bloom = CountingBloom::new(cfg);
        for &a in &addrs {
            bloom.insert(Addr::new(a * 16));
        }
        for &a in &addrs {
            let ctx = cfg.context_hash([Addr::new(a * 16)]);
            prop_assert!(ctx.matches(bloom.runtime_hash()), "inserted block must match");
        }
        for &a in &addrs {
            bloom.remove(Addr::new(a * 16));
        }
        prop_assert_eq!(bloom.runtime_hash(), 0);
    }

    /// The LBR's incremental runtime hash always equals a from-scratch hash
    /// of its current contents (the Fig. 7 "precisely tracks" claim).
    #[test]
    fn lbr_hash_matches_rebuild(addrs in prop::collection::vec(0u64..10_000, 1..200)) {
        let cfg = HashConfig::default();
        let mut lbr = Lbr::new(32, cfg);
        for &a in &addrs {
            lbr.push(Addr::new(a * 16));
            let mut fresh = CountingBloom::new(cfg);
            for e in lbr.entries() {
                fresh.insert(e);
            }
            prop_assert_eq!(lbr.runtime_hash(), fresh.runtime_hash());
        }
    }

    /// Context-hash matching is monotone: adding bits to the runtime hash
    /// never turns a match into a non-match.
    #[test]
    fn context_match_is_monotone(ctx_bits in 0u64..0xFFFF, rt in 0u64..0xFFFF, extra in 0u64..0xFFFF) {
        let ctx = ContextHash::from_bits(ctx_bits, 16);
        if ctx.matches(rt) {
            prop_assert!(ctx.matches(rt | extra));
        }
    }

    /// Coalescing round-trips exactly: decoding the groups yields the input
    /// line set, and no group spans more than the window.
    #[test]
    fn coalescing_roundtrip(
        raw in prop::collection::btree_set(0u64..5_000, 1..80),
        bits in 1u8..=64,
    ) {
        let lines: Vec<Line> = raw.iter().map(|&l| Line::new(l)).collect();
        let groups = coalesce_lines(lines.clone(), bits);
        prop_assert_eq!(decode_groups(&groups), lines);
        for g in &groups {
            if let Some(mask) = g.mask {
                for extra in mask.decode(g.base) {
                    let d = extra.distance_from(g.base).expect("forward");
                    prop_assert!(d >= 1 && d <= u64::from(bits));
                }
            }
        }
    }

    /// Mask encode/decode agree for arbitrary in-window line subsets.
    #[test]
    fn mask_roundtrip(base in 0u64..1_000_000, sel in 0u64..256) {
        let b = Line::new(base);
        let mask = CoalesceMask::from_bits(sel, 8);
        let decoded: Vec<Line> = mask.decode(b).collect();
        let rebuilt = CoalesceMask::from_lines(b, decoded.iter().copied(), 8)
            .expect("decoded lines are in-window");
        prop_assert_eq!(rebuilt.bits(), mask.bits());
    }

    /// Trace replay determinism for arbitrary seeds (the walker is a pure
    /// function of the seed).
    #[test]
    fn walker_determinism(seed in 0u64..1_000_000) {
        let model = ispy_trace::apps::finagle_http().scaled_down(40);
        let program = model.generate();
        let input = model.default_input().with_seed(seed);
        let a = program.record_trace(input.clone(), 2_000);
        let b = program.record_trace(input, 2_000);
        prop_assert_eq!(a, b);
    }
}
