//! Integration tests for the artifact subsystem: cross-crate round trips,
//! seeded corruption (decoders must return typed errors, never panic), and
//! the external-ingest pipeline.

use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, SampleRate};
use ispy_sim::{replay_file, run, RunOptions, SimConfig};
use ispy_trace::{apps, ingest};

/// xorshift64* — a tiny seeded generator so the corruption tests are
/// reproducible without external crates.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A small but non-trivial recording to corrupt.
fn sample_recording() -> (ispy_trace::Program, ispy_trace::Trace) {
    let model = apps::cassandra().scaled_down(40);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 4_000);
    (program, trace)
}

#[test]
fn all_three_artifact_kinds_round_trip_across_crates() {
    let (program, trace) = sample_recording();
    let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
    let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();

    let tb = ispy_trace::artifact::recording_to_bytes(&program, &trace);
    let (p2, t2) = ispy_trace::artifact::recording_from_bytes(&tb).unwrap();
    assert_eq!(p2.blocks(), program.blocks());
    assert_eq!(t2, trace);

    let pb = ispy_profile::artifact::profile_to_bytes(program.name(), &prof);
    let (label, prof2) = ispy_profile::artifact::profile_from_bytes(&pb).unwrap();
    assert_eq!(label, program.name());
    assert_eq!(prof2.misses.total_misses(), prof.misses.total_misses());

    let lb = ispy_core::artifact::plan_to_bytes(program.name(), &plan);
    let (label, plan2) = ispy_core::artifact::plan_from_bytes(&lb).unwrap();
    assert_eq!(label, program.name());
    assert_eq!(plan2, plan);

    // A plan rebuilt from the round-tripped profile is identical too: the
    // codec is exact, so downstream decisions cannot diverge.
    let replanned = Planner::new(&p2, &t2, &prof2, IspyConfig::default()).plan();
    assert_eq!(replanned, plan);
}

#[test]
fn seeded_random_bit_flips_error_and_never_panic() {
    let (program, trace) = sample_recording();
    let bytes = ispy_trace::artifact::recording_to_bytes(&program, &trace);
    let mut state = 0x15B4_u64 ^ 0xDEAD_BEEF_u64;
    for _ in 0..500 {
        let mut corrupt = bytes.clone();
        let bit = (next(&mut state) as usize) % (corrupt.len() * 8);
        corrupt[bit / 8] ^= 1 << (bit % 8);
        assert!(
            ispy_trace::artifact::recording_from_bytes(&corrupt).is_err(),
            "bit flip at {bit} went undetected"
        );
    }
}

#[test]
fn seeded_random_truncations_error_and_never_panic() {
    let (program, trace) = sample_recording();
    let bytes = ispy_trace::artifact::recording_to_bytes(&program, &trace);
    let mut state = 0x5EED_u64;
    for _ in 0..200 {
        let cut = (next(&mut state) as usize) % bytes.len();
        assert!(
            ispy_trace::artifact::recording_from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes went undetected"
        );
    }
}

#[test]
fn corrupt_profile_and_plan_artifacts_error_and_never_panic() {
    let (program, trace) = sample_recording();
    let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
    let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
    let pb = ispy_profile::artifact::profile_to_bytes("x", &prof);
    let lb = ispy_core::artifact::plan_to_bytes("x", &plan);
    let mut state = 0xCAFE_u64;
    for _ in 0..200 {
        let mut corrupt = pb.clone();
        let bit = (next(&mut state) as usize) % (corrupt.len() * 8);
        corrupt[bit / 8] ^= 1 << (bit % 8);
        assert!(ispy_profile::artifact::profile_from_bytes(&corrupt).is_err());
        let mut corrupt = lb.clone();
        let bit = (next(&mut state) as usize) % (corrupt.len() * 8);
        corrupt[bit / 8] ^= 1 << (bit % 8);
        assert!(ispy_core::artifact::plan_from_bytes(&corrupt).is_err());
    }
}

#[test]
fn wrong_kind_is_rejected_across_codecs() {
    let (program, trace) = sample_recording();
    let tb = ispy_trace::artifact::recording_to_bytes(&program, &trace);
    // A valid .itrace is not a .iprof or .iplan.
    assert!(ispy_profile::artifact::profile_from_bytes(&tb).is_err());
    assert!(ispy_core::artifact::plan_from_bytes(&tb).is_err());
}

#[test]
fn ingested_dump_replays_through_the_artifact_path() {
    let dump = "# synthetic perf script -F brstack dump\n\
                0x400000/0x400800/P/-/-/3 0x400880/0x400000/P/-/-/5\n\
                0x400000/0x401000/M/-/-/2 0x401040/0x400000/P/-/-/1\n\
                0x400000/0x400800/P/-/-/4\n";
    let (program, trace) = ingest::parse_perf_script(dump).unwrap();
    program.validate().unwrap();
    let dir = std::env::temp_dir().join("ispy-artifacts-it");
    let path = dir.join("ingested.itrace");
    ispy_trace::artifact::write_recording(&program, &trace, &path).unwrap();
    let live = run(&program, &trace, &SimConfig::default(), RunOptions::default());
    let replayed = replay_file(&path, &SimConfig::default(), RunOptions::default()).unwrap();
    assert_eq!(replayed.result, live);
    assert_eq!(replayed.name, "ingested");
    std::fs::remove_dir_all(&dir).ok();
}
