//! Cross-crate integration: the full profile → plan → replay pipeline
//! reproduces the paper's qualitative results on every application.

use ispy_harness::{Scale, Session};
use ispy_trace::apps;

/// The headline orderings (Fig. 10/11) hold on every app, even at test
/// scale: ideal ≥ I-SPY > baseline, and I-SPY eliminates the majority of
/// misses.
#[test]
fn ispy_beats_baseline_on_every_app() {
    let session = Session::new(Scale::test());
    for i in 0..session.apps().len() {
        let name = session.apps()[i].name();
        let c = session.comparison(i);
        assert!(c.baseline.i_misses > 0, "{name}: workload must miss");
        assert!(
            c.ispy.cycles < c.baseline.cycles,
            "{name}: I-SPY must speed up ({} vs {})",
            c.ispy.cycles,
            c.baseline.cycles
        );
        assert!(c.ideal.cycles <= c.ispy.cycles, "{name}: nothing beats the ideal cache");
        // At this tiny test scale the smallest apps (finagle-*) have few,
        // mostly-cold misses; the bar is meaningful but scale-aware. The
        // full-scale numbers live in EXPERIMENTS.md.
        assert!(
            c.ispy.mpki_reduction_vs(&c.baseline) > 0.25,
            "{name}: I-SPY should remove a large share of misses, got {:.2}",
            c.ispy.mpki_reduction_vs(&c.baseline)
        );
    }
}

/// I-SPY outperforms the AsmDB baseline in aggregate (the paper's +22.4%).
#[test]
fn ispy_outperforms_asmdb_in_aggregate() {
    let session = Session::new(Scale::test());
    let mut ispy_total = 0.0;
    let mut asmdb_total = 0.0;
    for i in 0..session.apps().len() {
        let c = session.comparison(i);
        ispy_total += c.ispy.speedup_over(&c.baseline);
        asmdb_total += c.asmdb.speedup_over(&c.baseline);
    }
    assert!(
        ispy_total > asmdb_total,
        "mean I-SPY speedup {ispy_total} must exceed AsmDB {asmdb_total}"
    );
}

/// The injected binary only helps because of its conditional/coalesced ops:
/// plans are non-trivial on every app.
#[test]
fn plans_are_nontrivial() {
    let session = Session::new(Scale::test());
    for i in 0..session.apps().len() {
        let c = session.comparison(i);
        let s = &c.ispy_plan.stats;
        let name = session.apps()[i].name();
        assert!(s.ops_total() > 0, "{name}: empty plan");
        assert!(s.planned_coverage() > 0.3, "{name}: low planned coverage");
        assert!(s.static_increase > 0.0 && s.static_increase < 0.2, "{name}: absurd footprint");
    }
}

/// Input drift (Fig. 16): a plan profiled on input 0 still helps on a
/// rotated request mix.
#[test]
fn drifted_input_still_benefits() {
    let session = Session::with_apps(Scale::test(), vec![apps::wordpress()]);
    let ctx = &session.apps()[0];
    let c = session.comparison(0);
    let scfg = ispy_sim::SimConfig::default();
    let events = 40_000;
    let base = ctx.simulate_variant(2, events, &scfg, None);
    let with = ctx.simulate_variant(2, events, &scfg, Some(&c.ispy_plan.injections));
    assert!(
        with.cycles < base.cycles,
        "drifted input must still speed up: {} vs {}",
        with.cycles,
        base.cycles
    );
}

/// Frontend-boundness (Fig. 1): the nine apps stall meaningfully on
/// instruction fetch without prefetching.
#[test]
fn workloads_are_frontend_bound() {
    let session = Session::new(Scale::test());
    let mut bound = 0;
    for i in 0..session.apps().len() {
        let c = session.comparison(i);
        if c.baseline.frontend_bound() > 0.10 {
            bound += 1;
        }
    }
    assert!(bound >= 6, "most apps should stall >10% on fetch, got {bound}/9");
}
