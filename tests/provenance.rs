//! Cross-layer provenance guarantees: every planned injection is traceable
//! from the planner's [`ProvenanceRecord`]s through the injection map into
//! the simulator's [`OutcomeLedger`], with nothing lost or double-counted.

use ispy_harness::{Scale, Session};
use ispy_sim::OutcomeLedger;
use ispy_trace::apps;

fn session() -> Session {
    Session::with_apps(Scale::test(), vec![apps::cassandra(), apps::kafka()])
}

#[test]
fn provenance_ids_are_dense_and_unique_across_the_map() {
    let s = session();
    for i in 0..s.apps().len() {
        let cmp = s.comparison(i);
        let plan = &cmp.ispy_plan;
        let n = plan.provenance.len();
        assert_eq!(n, plan.injections.num_ops(), "one record per op");
        let mut seen = vec![false; n];
        for (site, ops) in plan.injections.iter() {
            let ids = plan.injections.ids_at(site);
            assert_eq!(ids.len(), ops.len(), "ids stay aligned with ops");
            for id in ids {
                let id = id.expect("planner ops all carry provenance ids");
                assert!(!seen[id.index()], "id {} appears twice", id.index());
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "ids cover 0..{n} with no gaps");
    }
}

#[test]
fn every_runtime_outcome_maps_to_exactly_one_planned_injection() {
    let s = session();
    for i in 0..s.apps().len() {
        let cmp = s.comparison(i);
        let ledger: &OutcomeLedger = &cmp.ispy_outcomes;
        let r = &cmp.ispy;

        // The ledger is sized by the plan, and nothing leaked into the
        // untracked bucket (the default run has no hardware prefetcher).
        assert_eq!(ledger.per_injection.len(), cmp.ispy_plan.provenance.len());
        assert_eq!(ledger.untracked, Default::default(), "no unattributed events");

        // Aggregate reconciliation: the per-injection buckets partition the
        // simulator's own counters exactly.
        assert_eq!(ledger.total(|o| o.executed), r.pf_ops_executed);
        assert_eq!(ledger.total(|o| o.fired), r.pf_ops_fired);
        assert_eq!(ledger.total(|o| o.suppressed), r.pf_ops_suppressed);
        assert_eq!(ledger.total(|o| o.lines_issued), r.pf_lines_issued);
        assert_eq!(ledger.total(|o| o.lines_resident), r.pf_lines_resident);
        assert_eq!(ledger.total(|o| o.useful), r.pf_useful);
        assert_eq!(ledger.total(|o| o.late), r.pf_late);
        assert_eq!(ledger.total(|o| o.evicted_unused), r.pf_evicted_unused);

        // Per-injection invariant: an executed op either fired or was
        // suppressed — never both, never neither.
        for (k, o) in ledger.per_injection.iter().enumerate() {
            assert_eq!(o.executed, o.fired + o.suppressed, "injection {k}");
        }
        assert!(r.pf_ops_executed > 0, "test scale still executes injections");
    }
}

#[test]
fn outcome_attribution_is_deterministic() {
    let a = session();
    let b = session();
    for i in 0..a.apps().len() {
        let ca = a.comparison(i);
        let cb = b.comparison(i);
        assert_eq!(ca.ispy_plan.provenance, cb.ispy_plan.provenance);
        assert_eq!(ca.ispy_outcomes, cb.ispy_outcomes);
    }
}
