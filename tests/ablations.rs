//! Ablations: each of I-SPY's techniques pays for itself (paper Fig. 12 and
//! the sensitivity studies).

use ispy_core::IspyConfig;
use ispy_harness::{Scale, Session};
use ispy_trace::apps;

fn session() -> Session {
    Session::with_apps(Scale::test(), vec![apps::cassandra(), apps::verilator(), apps::wordpress()])
}

/// Both single-technique variants beat the no-prefetch baseline.
#[test]
fn each_technique_beats_baseline() {
    let s = session();
    for i in 0..s.apps().len() {
        let name = s.apps()[i].name();
        let c = s.comparison(i);
        let (_, cond) = s.run_ispy_variant(i, IspyConfig::conditional_only());
        let (_, coal) = s.run_ispy_variant(i, IspyConfig::coalescing_only());
        assert!(cond.cycles < c.baseline.cycles, "{name}: conditional-only must help");
        assert!(coal.cycles < c.baseline.cycles, "{name}: coalescing-only must help");
    }
}

/// Coalescing shrinks the static footprint relative to the plain variant
/// (the §III-B claim).
#[test]
fn coalescing_reduces_static_footprint() {
    let s = session();
    let i = s.apps().iter().position(|a| a.name() == "verilator").expect("present");
    let (coal, _) = s.run_ispy_variant(i, IspyConfig::coalescing_only());
    let (plain, _) = s.run_ispy_variant(i, IspyConfig::plain());
    assert!(
        coal.stats.injected_bytes < plain.stats.injected_bytes,
        "coalescing must shrink bytes: {} vs {}",
        coal.stats.injected_bytes,
        plain.stats.injected_bytes
    );
}

/// Conditional prefetching suppresses some op firings at run time (that is
/// its entire mechanism), while the plain variant never suppresses.
#[test]
fn conditional_ops_actually_suppress() {
    let s = session();
    let i = s.apps().iter().position(|a| a.name() == "wordpress").expect("present");
    let (_, cond) = s.run_ispy_variant(i, IspyConfig::conditional_only());
    let (_, plain) = s.run_ispy_variant(i, IspyConfig::plain());
    assert!(cond.pf_ops_suppressed > 0, "contexts must suppress some firings");
    assert_eq!(plain.pf_ops_suppressed, 0);
}

/// The prefetch-distance window matters: a degenerate window (max < typical
/// fetch distances) covers less than the paper's 27..200 default.
#[test]
fn degenerate_window_hurts_coverage() {
    let s = session();
    let i = 0;
    let c = s.comparison(i);
    let (narrow_plan, narrow) = s.run_ispy_variant(i, IspyConfig::default().with_distances(1, 8));
    let default_red = c.ispy.mpki_reduction_vs(&c.baseline);
    let narrow_red = narrow.mpki_reduction_vs(&c.baseline);
    assert!(
        narrow_red < default_red,
        "a 1..8-cycle window should underperform 27..200: {narrow_red} vs {default_red}"
    );
    assert!(narrow_plan.stats.covered_lines <= c.ispy_plan.stats.covered_lines);
}

/// PEBS-style sampling degrades gracefully: a 10x-sampled profile still
/// produces a useful plan (ablation beyond the paper).
#[test]
fn sampled_profiles_still_work() {
    use ispy_core::Planner;
    use ispy_profile::{profile, SampleRate};
    use ispy_sim::SimConfig;

    let s = session();
    let ctx = &s.apps()[0];
    let c = s.comparison(0);
    let sampled = profile(&ctx.program, &ctx.trace, &SimConfig::default(), SampleRate::every(10));
    let plan = Planner::new(&ctx.program, &ctx.trace, &sampled, IspyConfig::default()).plan();
    let r = ctx.simulate(&SimConfig::default(), Some(&plan.injections));
    assert!(r.cycles < c.baseline.cycles, "sampled plan must still help");
}
