//! Fast-path equivalence: the engine's optimized replay (injection-skip
//! span batching, site-group wholesale accounting, presence shadows, arena
//! in-flight state) must be *bit-identical* to the unoptimized reference
//! loop (`RunOptions { reference_loop: true }`) — same `SimResult`, same
//! `OutcomeLedger` — on every plan, not just the ones the golden test pins.
//!
//! The plans here are generated from a seeded RNG so the suite explores op
//! kinds, condition masks, coalesce masks, and site placements the
//! hand-built plans never hit, while staying fully reproducible.

use ispy_harness::workload::miss_derived_plan;
use ispy_isa::{CoalesceMask, InjectionMap, PrefetchOp, ProvenanceId};
use ispy_sim::{run, OutcomeLedger, RunOptions, SimConfig};
use ispy_trace::{apps, BlockId, Line, Program, Trace};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A seeded random plan over `program`: random sites, random code-line
/// targets, all four op kinds, conditions hashed from random block addresses
/// (so some fire and some suppress at runtime).
fn random_plan(program: &Program, cfg: &SimConfig, seed: u64, num_ops: u32) -> InjectionMap {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let blocks = program.blocks();
    let n = blocks.len() as u64;
    let max_line = blocks
        .iter()
        .map(|b| b.first_line().raw() + b.line_count() - 1)
        .max()
        .expect("non-empty program");
    let mut map = InjectionMap::new();
    for id in 0..num_ops {
        let site = BlockId((xorshift(&mut state) % n) as u32);
        let target = Line::new(xorshift(&mut state) % (max_line + 1));
        let ctx = cfg.hash.context_hash([blocks[(xorshift(&mut state) % n) as usize].start()]);
        let mask_bits = xorshift(&mut state) & 0xFF;
        let mask = CoalesceMask::from_bits(mask_bits.max(1), 8);
        let op = match xorshift(&mut state) % 4 {
            0 => PrefetchOp::Plain { target },
            1 => PrefetchOp::Cond { target, ctx },
            2 => PrefetchOp::Coalesced { base: target, mask },
            _ => PrefetchOp::CondCoalesced { base: target, mask, ctx },
        };
        map.push_traced(site, op, ProvenanceId(id));
    }
    map
}

/// Runs `plan` through both loops, with and without a ledger, asserting
/// bit-identical results everywhere.
fn assert_equivalent(program: &Program, trace: &Trace, cfg: &SimConfig, plan: &InjectionMap) {
    // Throughput configuration (no ledger).
    let fast =
        run(program, trace, cfg, RunOptions { injections: Some(plan), ..Default::default() });
    let reference = run(
        program,
        trace,
        cfg,
        RunOptions { injections: Some(plan), reference_loop: true, ..Default::default() },
    );
    assert_eq!(fast, reference, "SimResult diverged between fast path and reference loop");

    // Attributed configuration (ledger attached).
    let mut fast_ledger = OutcomeLedger::default();
    let fast_attr = run(
        program,
        trace,
        cfg,
        RunOptions {
            injections: Some(plan),
            outcomes: Some(&mut fast_ledger),
            ..Default::default()
        },
    );
    let mut ref_ledger = OutcomeLedger::default();
    let ref_attr = run(
        program,
        trace,
        cfg,
        RunOptions {
            injections: Some(plan),
            outcomes: Some(&mut ref_ledger),
            reference_loop: true,
            ..Default::default()
        },
    );
    assert_eq!(fast_attr, ref_attr, "attributed SimResult diverged");
    assert_eq!(fast_ledger, ref_ledger, "OutcomeLedger diverged");
    // The ledger never changes the counters themselves.
    assert_eq!(fast, fast_attr, "attaching a ledger changed the SimResult");
}

#[test]
fn random_plans_are_bit_identical_across_loops() {
    let model = apps::cassandra().scaled_down(30);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 12_000);
    let cfg = SimConfig::default();
    for seed in [1u64, 7, 42, 0xC0FFEE] {
        let plan = random_plan(&program, &cfg, seed, 400);
        assert_equivalent(&program, &trace, &cfg, &plan);
    }
}

#[test]
fn random_plans_hold_on_a_second_app_shape() {
    // Different block-size/branchiness profile: verilator's generated
    // program exercises different set-index and shadow-word patterns.
    let model = apps::verilator().scaled_down(30);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 8_000);
    let cfg = SimConfig::default();
    for seed in [3u64, 0xBEEF] {
        let plan = random_plan(&program, &cfg, seed, 250);
        assert_equivalent(&program, &trace, &cfg, &plan);
    }
}

#[test]
fn miss_derived_plan_is_bit_identical_across_loops() {
    // The benchmark's own workload: realistic miss-driven placements with
    // every op kind, the densest exercise of the site-group fast path.
    let model = apps::cassandra().scaled_down(20);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 20_000);
    let cfg = SimConfig::default();
    let plan = miss_derived_plan(&program, &trace, &cfg);
    assert!(plan.num_ops() > 100, "workload plan unexpectedly small");
    assert_equivalent(&program, &trace, &cfg, &plan);
}

#[test]
fn baseline_without_injections_is_bit_identical_across_loops() {
    // No plan at all: pins the lean-span batching (injection-skip index)
    // against the full per-block step.
    let model = apps::cassandra().scaled_down(30);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 12_000);
    let cfg = SimConfig::default();
    let fast = run(&program, &trace, &cfg, RunOptions::default());
    let reference =
        run(&program, &trace, &cfg, RunOptions { reference_loop: true, ..Default::default() });
    assert_eq!(fast, reference);
}
