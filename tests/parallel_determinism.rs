//! The harness's parallelism guarantee: every figure driver produces
//! byte-identical tables with 1 thread and with many, because fan-outs
//! collect rows in sweep order and every cached artifact (comparisons,
//! planner baselines) is deterministic regardless of fill order.

use ispy_harness::{figures, Scale, Session, Table};
use ispy_trace::apps;

/// Runs every registered figure at the given thread count over a fresh
/// session (fresh caches each time, so cache-fill order genuinely differs
/// between runs).
fn all_tables(threads: usize) -> Vec<Table> {
    ispy_parallel::set_threads(threads);
    let session = Session::with_apps(
        Scale::test(),
        vec![apps::cassandra(), apps::verilator(), apps::wordpress()],
    );
    let tables = figures::all().into_iter().map(|spec| (spec.run)(&session)).collect();
    ispy_parallel::set_threads(0);
    tables
}

#[test]
fn every_figure_is_identical_serial_vs_parallel() {
    let serial = all_tables(1);
    let parallel = all_tables(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s, p, "figure {} differs between 1 and 4 threads", s.id);
        // The JSON export (what `repro --json` writes) matches too.
        assert_eq!(s.to_json(), p.to_json());
    }
}
