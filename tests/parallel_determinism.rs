//! The harness's parallelism guarantee: every figure driver produces
//! byte-identical tables with 1 thread and with many, because fan-outs
//! collect rows in sweep order and every cached artifact (comparisons,
//! planner baselines) is deterministic regardless of fill order. The same
//! contract extends *inside* a single simulation: the sharded replay's
//! result must not depend on its shard count.

use ispy_harness::workload::miss_derived_plan;
use ispy_harness::{figures, Scale, Session, Table};
use ispy_sim::{simulate_sharded, OutcomeLedger, ShardConfig, SimConfig};
use ispy_telemetry::{Telemetry, TimingMode};
use ispy_trace::apps;
use std::sync::Arc;

/// Runs every registered figure at the given thread count over a fresh
/// session (fresh caches each time, so cache-fill order genuinely differs
/// between runs). Also captures the run's telemetry in its deterministic
/// rendering — what the counters looked like with all wall times stripped.
fn all_tables(threads: usize) -> (Vec<Table>, String) {
    ispy_parallel::set_threads(threads);
    let previous = ispy_telemetry::swap_global(Arc::new(Telemetry::new()));
    let session = Session::with_apps(
        Scale::test(),
        vec![apps::cassandra(), apps::verilator(), apps::wordpress()],
    );
    let tables = figures::all().into_iter().map(|spec| (spec.run)(&session)).collect();
    let telemetry = ispy_telemetry::swap_global(previous).to_json(TimingMode::Deterministic);
    ispy_parallel::set_threads(0);
    (tables, telemetry)
}

#[test]
fn every_figure_is_identical_serial_vs_parallel() {
    let (serial, serial_tele) = all_tables(1);
    let (parallel, parallel_tele) = all_tables(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s, p, "figure {} differs between 1 and 4 threads", s.id);
        // The JSON export (what `repro --json` writes) matches too.
        assert_eq!(s.to_json(), p.to_json());
    }
    // Telemetry counters only record order-invariant work (per plan call,
    // per window search, per cache-key fill), so the deterministic JSON is
    // byte-identical no matter how the pool scheduled the same work.
    assert!(serial_tele.contains("core.plan"), "planner work must be visible in telemetry");
    assert_eq!(serial_tele, parallel_tele, "telemetry must not depend on thread count");
}

#[test]
fn sharded_replay_is_identical_across_shard_counts() {
    // Intra-trace parallelism: one trace, one plan, one window/warmup shape
    // — sweeping only the worker count must reproduce the same SimResult
    // and the same per-injection OutcomeLedger byte for byte, because each
    // window's replay depends only on its trace slice and the stitch-up
    // sums deltas in window order.
    let model = apps::cassandra().scaled_down(20);
    let program = model.generate();
    let trace = program.record_trace(model.default_input(), 30_000);
    let cfg = SimConfig::default();
    let plan = miss_derived_plan(&program, &trace, &cfg);
    let base = ShardConfig { window_blocks: 4_096, warmup_blocks: 2_048, shards: 1 };

    let mut reference_ledger = OutcomeLedger::default();
    let reference =
        simulate_sharded(&program, &trace, &cfg, Some(&plan), &base, Some(&mut reference_ledger));
    assert!(reference.pf_ops_fired > 0, "plan must actually exercise the engine");

    for shards in [2, 4, 8] {
        let mut ledger = OutcomeLedger::default();
        let got = simulate_sharded(
            &program,
            &trace,
            &cfg,
            Some(&plan),
            &ShardConfig { shards, ..base },
            Some(&mut ledger),
        );
        assert_eq!(got, reference, "SimResult diverged at shards={shards}");
        assert_eq!(ledger, reference_ledger, "OutcomeLedger diverged at shards={shards}");
    }
}
