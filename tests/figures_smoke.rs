//! Every figure driver renders a non-empty, well-formed table at test scale.

use ispy_harness::{figures, Scale, Session};

#[test]
fn every_figure_renders() {
    let session = Session::new(Scale::test());
    for spec in figures::all() {
        let table = (spec.run)(&session);
        assert_eq!(table.id, spec.id);
        assert!(!table.headers.is_empty(), "{}: no headers", spec.id);
        assert!(!table.rows.is_empty(), "{}: no rows", spec.id);
        for row in &table.rows {
            assert_eq!(row.len(), table.headers.len(), "{}: ragged row", spec.id);
        }
        // Text and JSON renderings are non-trivial.
        let text = table.to_string();
        assert!(text.contains(spec.id));
        let json = table.to_json();
        assert!(json.contains(&format!("\"id\": \"{}\"", spec.id)));
    }
}

#[test]
fn fig01_reports_all_nine_apps() {
    let session = Session::new(Scale::test());
    let t = figures::fig01::run(&session);
    assert_eq!(t.rows.len(), 9);
    let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(names, ispy_trace::apps::NAMES.to_vec());
}

#[test]
fn fig10_fraction_of_ideal_is_sane() {
    let session = Session::new(Scale::test());
    let t = figures::fig10::run(&session);
    for (r, row) in t.rows.iter().enumerate() {
        let frac = t.cell_f64(r, 4).expect("parsable percentage");
        assert!((0.0..=100.0).contains(&frac), "{}: fraction of ideal {frac} out of range", row[0]);
    }
}

#[test]
fn fig03_coverage_grows_with_threshold() {
    let session = Session::with_apps(Scale::test(), vec![ispy_trace::apps::wordpress()]);
    let t = figures::fig03::run(&session);
    let first = t.cell_f64(0, 1).expect("coverage");
    let last = t.cell_f64(t.rows.len() - 1, 1).expect("coverage");
    assert!(last >= first, "coverage must not shrink as the threshold rises");
}
