//! AsmDB prototype (the paper's state-of-the-art software baseline).
//!
//! AsmDB injects one unconditional single-line code prefetch per miss, at a
//! predecessor within the prefetch window whose fan-out does not exceed a
//! threshold (the paper finds real applications need the threshold as high
//! as 99 % for coverage, which is what destroys its accuracy — Fig. 3).
//! It has neither conditional execution nor coalescing.

use ispy_core::planner::{Plan, PlanStats};
use ispy_core::window::{find_candidates, select_site};
use ispy_isa::{InjectionMap, PrefetchOp};
use ispy_profile::Profile;
use ispy_trace::Program;

/// AsmDB configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmDbConfig {
    /// Maximum tolerated fan-out at the injection site (paper: ≈ 0.99).
    pub fanout_threshold: f64,
    /// Minimum prefetch distance in cycles.
    pub min_prefetch_cycles: u32,
    /// Maximum prefetch distance in cycles.
    pub max_prefetch_cycles: u32,
    /// Minimum sampled misses for a line to be targeted.
    pub min_miss_count: u64,
    /// Window-search expansion cap.
    pub max_search_nodes: usize,
}

impl Default for AsmDbConfig {
    fn default() -> Self {
        AsmDbConfig {
            fanout_threshold: 0.99,
            min_prefetch_cycles: 27,
            max_prefetch_cycles: 200,
            min_miss_count: 2,
            max_search_nodes: 4096,
        }
    }
}

impl AsmDbConfig {
    /// Returns the configuration with a different fan-out threshold
    /// (the Fig. 3 sweep knob).
    #[must_use]
    pub fn with_fanout_threshold(mut self, t: f64) -> Self {
        self.fanout_threshold = t;
        self
    }
}

/// The AsmDB offline pass.
pub struct AsmDbPlanner<'a> {
    program: &'a Program,
    profile: &'a Profile,
    cfg: AsmDbConfig,
}

impl<'a> AsmDbPlanner<'a> {
    /// Creates a planner over one application's profile.
    pub fn new(program: &'a Program, profile: &'a Profile, cfg: AsmDbConfig) -> Self {
        AsmDbPlanner { program, profile, cfg }
    }

    /// Produces the AsmDB injection plan.
    pub fn plan(&self) -> Plan {
        let mut stats = PlanStats {
            coalesced_distance_hist: vec![0; 8],
            lines_per_op_hist: vec![0; 9],
            ..Default::default()
        };
        let mut injections = InjectionMap::new();
        for (line, line_stats) in self.profile.misses.lines_by_count() {
            if line_stats.count < self.cfg.min_miss_count {
                continue;
            }
            stats.target_lines += 1;
            let Some(target_block) = line_stats.dominant_block() else {
                stats.uncovered_lines += 1;
                continue;
            };
            let mut candidates = find_candidates(
                &self.profile.cfg,
                target_block,
                self.cfg.min_prefetch_cycles,
                self.cfg.max_prefetch_cycles,
                self.cfg.max_search_nodes,
            );
            // The fan-out threshold is AsmDB's coverage/accuracy dial: only
            // sites below it are admissible.
            candidates.retain(|c| c.fanout() <= self.cfg.fanout_threshold);
            let Some(site) = select_site(&self.profile.cfg, &candidates) else {
                stats.uncovered_lines += 1;
                continue;
            };
            stats.covered_lines += 1;
            stats.ops_plain += 1;
            stats.lines_per_op_hist[0] += 1;
            injections.push(site.block, PrefetchOp::Plain { target: line });
        }
        stats.sites = injections.num_sites();
        stats.injected_bytes = injections.injected_bytes();
        stats.static_increase = injections.static_increase(self.program.text_bytes());
        Plan { injections, stats, context_details: Vec::new(), provenance: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_profile::{profile, SampleRate};
    use ispy_sim::{run, RunOptions, SimConfig};
    use ispy_trace::apps;

    fn setup() -> (Program, ispy_trace::Trace, Profile) {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 30_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        (program, trace, prof)
    }

    #[test]
    fn asmdb_injects_only_plain_ops() {
        let (program, _, prof) = setup();
        let plan = AsmDbPlanner::new(&program, &prof, AsmDbConfig::default()).plan();
        assert!(plan.stats.ops_plain > 0);
        assert_eq!(plan.stats.ops_cond, 0);
        assert_eq!(plan.stats.ops_coalesced, 0);
        assert_eq!(plan.stats.ops_cond_coalesced, 0);
        for (_, ops) in plan.injections.iter() {
            for op in ops {
                assert!(matches!(op, PrefetchOp::Plain { .. }));
            }
        }
    }

    #[test]
    fn asmdb_speeds_up_but_fires_everywhere() {
        let (program, trace, prof) = setup();
        let plan = AsmDbPlanner::new(&program, &prof, AsmDbConfig::default()).plan();
        let scfg = SimConfig::default();
        let base = run(&program, &trace, &scfg, RunOptions::default());
        let with = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&plan.injections), ..Default::default() },
        );
        assert!(with.cycles < base.cycles);
        // Unconditional: every executed op fires.
        assert_eq!(with.pf_ops_fired, with.pf_ops_executed);
        assert_eq!(with.pf_ops_suppressed, 0);
    }

    #[test]
    fn lower_threshold_reduces_coverage() {
        let (program, _, prof) = setup();
        let strict =
            AsmDbPlanner::new(&program, &prof, AsmDbConfig::default().with_fanout_threshold(0.05))
                .plan();
        let loose =
            AsmDbPlanner::new(&program, &prof, AsmDbConfig::default().with_fanout_threshold(0.99))
                .plan();
        assert!(strict.stats.covered_lines < loose.stats.covered_lines);
        assert!(strict.stats.planned_coverage() < loose.stats.planned_coverage());
    }

    #[test]
    fn threshold_zero_keeps_only_sure_sites() {
        let (program, _, prof) = setup();
        let plan =
            AsmDbPlanner::new(&program, &prof, AsmDbConfig::default().with_fanout_threshold(0.0))
                .plan();
        // Whatever remains covered was reached with probability 1.
        assert!(plan.stats.covered_lines <= plan.stats.target_lines);
    }

    #[test]
    fn deterministic() {
        let (program, _, prof) = setup();
        let a = AsmDbPlanner::new(&program, &prof, AsmDbConfig::default()).plan();
        let b = AsmDbPlanner::new(&program, &prof, AsmDbConfig::default()).plan();
        assert_eq!(a.injections, b.injections);
    }
}
