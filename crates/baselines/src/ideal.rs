//! The ideal-cache upper bound (an L1I that never misses).

use ispy_sim::{run, RunOptions, SimConfig, SimResult};
use ispy_trace::{Program, Trace};

/// Runs `trace` under an ideal I-cache: the theoretical upper bound every
/// figure in the paper normalizes against.
///
/// # Examples
///
/// ```
/// use ispy_baselines::ideal_result;
/// use ispy_trace::apps;
///
/// let model = apps::kafka().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 5_000);
/// let ideal = ideal_result(&program, &trace);
/// assert_eq!(ideal.i_misses, 0);
/// ```
pub fn ideal_result(program: &Program, trace: &Trace) -> SimResult {
    run(program, trace, &SimConfig::ideal(), RunOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::apps;

    #[test]
    fn ideal_has_no_frontend_stalls() {
        let model = apps::drupal().scaled_down(40);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 10_000);
        let r = ideal_result(&program, &trace);
        assert_eq!(r.i_misses, 0);
        assert_eq!(r.i_stall_cycles, 0);
        assert_eq!(r.frontend_bound(), 0.0);
    }

    #[test]
    fn ideal_bounds_every_other_configuration() {
        let model = apps::drupal().scaled_down(40);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 10_000);
        let base = run(&program, &trace, &SimConfig::default(), RunOptions::default());
        let ideal = ideal_result(&program, &trace);
        assert!(ideal.cycles <= base.cycles);
    }
}
