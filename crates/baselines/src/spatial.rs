//! The Contiguous-8 vs Non-contiguous-8 study (§II-D, Fig. 5).
//!
//! Both prefetchers target a window of eight cache lines after each profiled
//! miss, injected at the same timely sites I-SPY would use:
//!
//! * **Contiguous-8** prefetches the missed line plus *all* eight following
//!   lines (mask `0xFF`).
//! * **Non-contiguous-8** prefetches the missed line plus only those lines
//!   in the window that *themselves miss* in the profile.
//!
//! The paper uses the gap between the two (≈ 7.6 % mean speedup in favour of
//! non-contiguous) to motivate bitmask-based coalescing.

use ispy_core::planner::{Plan, PlanStats};
use ispy_core::window::{find_candidates, select_site};
use ispy_isa::{CoalesceMask, InjectionMap, PrefetchOp};
use ispy_profile::Profile;
use ispy_trace::{Line, Program};
use std::collections::HashSet;

/// Which window-filling policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialMode {
    /// Prefetch every line in the window after a miss.
    Contiguous,
    /// Prefetch only the window lines that also miss in the profile.
    NonContiguous,
}

/// Planner for the spatial-window prefetchers.
#[derive(Debug)]
pub struct SpatialPlanner<'a> {
    program: &'a Program,
    profile: &'a Profile,
    mode: SpatialMode,
    window_bits: u8,
    min_cycles: u32,
    max_cycles: u32,
    min_miss_count: u64,
}

impl<'a> SpatialPlanner<'a> {
    /// Creates a planner with the paper's window of 8 lines and the default
    /// prefetch distances.
    pub fn new(program: &'a Program, profile: &'a Profile, mode: SpatialMode) -> Self {
        SpatialPlanner {
            program,
            profile,
            mode,
            window_bits: 8,
            min_cycles: 27,
            max_cycles: 200,
            min_miss_count: 2,
        }
    }

    /// Returns the planner with a different window width (for the §II-D
    /// remark that the conclusion holds at 16 and 32 lines).
    #[must_use]
    pub fn with_window_bits(mut self, bits: u8) -> Self {
        self.window_bits = bits;
        self
    }

    /// Produces the injection plan.
    pub fn plan(&self) -> Plan {
        let mut stats = PlanStats {
            coalesced_distance_hist: vec![0; usize::from(self.window_bits)],
            lines_per_op_hist: vec![0; usize::from(self.window_bits) + 1],
            ..Default::default()
        };
        let mut injections = InjectionMap::new();

        // The set of lines that miss at all (for the non-contiguous filter).
        let missing: HashSet<u64> = self.profile.misses.iter().map(|(l, _)| l.raw()).collect();
        // Lines already covered as part of an earlier op's window.
        let mut covered: HashSet<u64> = HashSet::new();

        for (line, line_stats) in self.profile.misses.lines_by_count() {
            if line_stats.count < self.cfg_min_count() {
                continue;
            }
            stats.target_lines += 1;
            if covered.contains(&line.raw()) {
                stats.covered_lines += 1;
                continue;
            }
            let Some(target_block) = line_stats.dominant_block() else {
                stats.uncovered_lines += 1;
                continue;
            };
            let candidates = find_candidates(
                &self.profile.cfg,
                target_block,
                self.min_cycles,
                self.max_cycles,
                4096,
            );
            let Some(site) = select_site(&self.profile.cfg, &candidates) else {
                stats.uncovered_lines += 1;
                continue;
            };
            stats.covered_lines += 1;

            let extras: Vec<Line> = (1..=u64::from(self.window_bits))
                .map(|d| line.offset(d))
                .filter(|l| match self.mode {
                    SpatialMode::Contiguous => true,
                    SpatialMode::NonContiguous => missing.contains(&l.raw()),
                })
                .collect();
            covered.insert(line.raw());
            for e in &extras {
                covered.insert(e.raw());
            }

            let op = if extras.is_empty() {
                stats.ops_plain += 1;
                stats.lines_per_op_hist[0] += 1;
                PrefetchOp::Plain { target: line }
            } else {
                let mask = CoalesceMask::from_lines(line, extras.iter().copied(), self.window_bits)
                    .expect("extras are within the window by construction");
                stats.ops_coalesced += 1;
                for e in &extras {
                    let d = e.distance_from(line).expect("forward") as usize;
                    stats.coalesced_distance_hist[d - 1] += 1;
                }
                let idx = extras.len().min(stats.lines_per_op_hist.len() - 1);
                stats.lines_per_op_hist[idx] += 1;
                PrefetchOp::Coalesced { base: line, mask }
            };
            injections.push(site.block, op);
        }

        stats.sites = injections.num_sites();
        stats.injected_bytes = injections.injected_bytes();
        stats.static_increase = injections.static_increase(self.program.text_bytes());
        Plan { injections, stats, context_details: Vec::new(), provenance: Vec::new() }
    }

    fn cfg_min_count(&self) -> u64 {
        self.min_miss_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_profile::{profile, SampleRate};
    use ispy_sim::{run, RunOptions, SimConfig};
    use ispy_trace::apps;

    fn setup() -> (Program, ispy_trace::Trace, Profile) {
        let model = apps::verilator().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 30_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        (program, trace, prof)
    }

    #[test]
    fn contiguous_issues_more_lines_than_noncontiguous() {
        let (program, trace, prof) = setup();
        let cont = SpatialPlanner::new(&program, &prof, SpatialMode::Contiguous).plan();
        let nonc = SpatialPlanner::new(&program, &prof, SpatialMode::NonContiguous).plan();
        let scfg = SimConfig::default();
        let rc = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&cont.injections), ..Default::default() },
        );
        let rn = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&nonc.injections), ..Default::default() },
        );
        assert!(
            rc.pf_lines_issued + rc.pf_lines_resident >= rn.pf_lines_issued + rn.pf_lines_resident
        );
    }

    #[test]
    fn noncontiguous_is_at_least_as_fast_on_scattered_code() {
        // On a *scattered* app the window contains unrelated lines, so
        // contiguous prefetching pollutes.
        let model = apps::wordpress().scaled_down(40);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 30_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let cont = SpatialPlanner::new(&program, &prof, SpatialMode::Contiguous).plan();
        let nonc = SpatialPlanner::new(&program, &prof, SpatialMode::NonContiguous).plan();
        let scfg = SimConfig::default();
        let rc = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&cont.injections), ..Default::default() },
        );
        let rn = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&nonc.injections), ..Default::default() },
        );
        assert!(
            rn.cycles <= rc.cycles + rc.cycles / 50,
            "non-contiguous should not lose badly: {} vs {}",
            rn.cycles,
            rc.cycles
        );
    }

    #[test]
    fn both_beat_no_prefetching() {
        let (program, trace, prof) = setup();
        let scfg = SimConfig::default();
        let base = run(&program, &trace, &scfg, RunOptions::default());
        for mode in [SpatialMode::Contiguous, SpatialMode::NonContiguous] {
            let plan = SpatialPlanner::new(&program, &prof, mode).plan();
            let r = run(
                &program,
                &trace,
                &scfg,
                RunOptions { injections: Some(&plan.injections), ..Default::default() },
            );
            assert!(r.cycles < base.cycles, "{mode:?} must help");
        }
    }

    #[test]
    fn window_width_is_respected() {
        let (program, _, prof) = setup();
        let plan = SpatialPlanner::new(&program, &prof, SpatialMode::NonContiguous)
            .with_window_bits(4)
            .plan();
        for (_, ops) in plan.injections.iter() {
            for op in ops {
                for t in op.target_lines() {
                    let d = t.distance_from(op.base_line()).unwrap();
                    assert!(d <= 4);
                }
            }
        }
    }
}
