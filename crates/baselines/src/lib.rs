//! Baseline prefetchers the paper compares I-SPY against.
//!
//! * [`asmdb`] — a prototype of AsmDB (Ayers et al., ISCA 2019), the
//!   state-of-the-art software prefetcher in the paper's evaluation:
//!   link-time injection of *unconditional, single-line* code prefetches at
//!   predecessors whose fan-out is below a threshold (§II-C, Fig. 3).
//! * [`nextline`] — classic hardware next-line / next-N-line instruction
//!   prefetchers (§VIII "Hardware prefetching").
//! * [`spatial`] — the Contiguous-8 vs Non-contiguous-8 study behind §II-D's
//!   coalescing motivation (Fig. 5).
//! * [`ideal`] — the no-miss ideal cache upper bound.
//!
//! # Examples
//!
//! ```
//! use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
//! use ispy_profile::{profile, SampleRate};
//! use ispy_sim::SimConfig;
//! use ispy_trace::apps;
//!
//! let model = apps::cassandra().scaled_down(30);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 30_000);
//! let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
//! let plan = AsmDbPlanner::new(&program, &prof, AsmDbConfig::default()).plan();
//! assert!(plan.injections.num_ops() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asmdb;
pub mod ideal;
pub mod nextline;
pub mod spatial;
pub mod stream;

pub use asmdb::{AsmDbConfig, AsmDbPlanner};
pub use ideal::ideal_result;
pub use nextline::NextNLine;
pub use spatial::{SpatialMode, SpatialPlanner};
pub use stream::{RdipLite, StreamPrefetcher};
