//! Further hardware prefetchers from the paper's related-work taxonomy
//! (§VIII): an adaptive stream prefetcher and a return-address-directed
//! prefetcher in the spirit of RDIP [Kolli et al., MICRO 2013].
//!
//! These are not evaluated in the paper's figures; they exist so the
//! reproduction can place I-SPY against the hardware design space the paper
//! surveys (see the `hardware_baselines` example/test).

use ispy_sim::HwPrefetcher;
use ispy_trace::Line;
use std::collections::HashMap;
use std::collections::VecDeque;

/// An adaptive instruction stream prefetcher.
///
/// Detects runs of sequential miss lines and raises its prefetch degree
/// while a stream persists (a simplified Smith-style stream buffer /
/// next-N-line hybrid): one miss prefetches `min_degree` lines ahead;
/// consecutive sequential misses escalate toward `max_degree`.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    min_degree: u32,
    max_degree: u32,
    degree: u32,
    last_miss: Option<Line>,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher escalating between the given degrees.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min_degree <= max_degree`.
    pub fn new(min_degree: u32, max_degree: u32) -> Self {
        assert!(min_degree >= 1 && min_degree <= max_degree, "invalid degrees");
        StreamPrefetcher { min_degree, max_degree, degree: min_degree, last_miss: None }
    }

    /// The current escalated degree (for tests/inspection).
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

impl HwPrefetcher for StreamPrefetcher {
    fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
        if !was_miss {
            return;
        }
        let sequential = self.last_miss.is_some_and(|prev| line.distance_from(prev) == Some(1));
        self.degree =
            if sequential { (self.degree * 2).min(self.max_degree) } else { self.min_degree };
        self.last_miss = Some(line);
        for d in 1..=u64::from(self.degree) {
            out.push(line.offset(d));
        }
    }
}

/// A return-address-stack-directed prefetcher in the spirit of RDIP.
///
/// Real RDIP indexes miss signatures by the return-address-stack contents.
/// Without explicit call/return events at the fetch interface, this model
/// uses the last `sig_depth` miss lines as the signature and learns which
/// miss lines follow each signature, prefetching them on recurrence.
#[derive(Debug)]
pub struct RdipLite {
    sig_depth: usize,
    table_cap: usize,
    recent: VecDeque<u64>,
    /// signature -> lines observed to miss next.
    table: HashMap<u64, Vec<u64>>,
    last_sig: Option<u64>,
}

impl RdipLite {
    /// Creates a predictor with the given signature depth and table capacity
    /// (entries, modelling the paper's on-chip storage concern).
    ///
    /// # Panics
    ///
    /// Panics if `sig_depth` or `table_cap` is zero.
    pub fn new(sig_depth: usize, table_cap: usize) -> Self {
        assert!(sig_depth > 0 && table_cap > 0, "invalid parameters");
        RdipLite {
            sig_depth,
            table_cap,
            recent: VecDeque::with_capacity(sig_depth + 1),
            table: HashMap::new(),
            last_sig: None,
        }
    }

    /// Number of learned signatures.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    fn signature(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &l in &self.recent {
            h ^= l;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl HwPrefetcher for RdipLite {
    fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
        if !was_miss {
            return;
        }
        // Learn: the previous signature leads to this miss.
        if let Some(sig) = self.last_sig {
            if self.table.len() < self.table_cap || self.table.contains_key(&sig) {
                let entry = self.table.entry(sig).or_default();
                if !entry.contains(&line.raw()) && entry.len() < 8 {
                    entry.push(line.raw());
                }
            }
        }
        // Update the signature window.
        self.recent.push_back(line.raw());
        if self.recent.len() > self.sig_depth {
            self.recent.pop_front();
        }
        let sig = self.signature();
        self.last_sig = Some(sig);
        // Predict: prefetch what followed this signature before.
        if let Some(next) = self.table.get(&sig) {
            out.extend(next.iter().map(|&l| Line::new(l)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_sim::{run, RunOptions, SimConfig};
    use ispy_trace::apps;

    #[test]
    fn stream_escalates_on_sequential_misses() {
        let mut pf = StreamPrefetcher::new(1, 8);
        let mut out = Vec::new();
        pf.on_fetch(Line::new(10), true, &mut out);
        assert_eq!(pf.degree(), 1);
        out.clear();
        pf.on_fetch(Line::new(11), true, &mut out);
        assert_eq!(pf.degree(), 2);
        assert_eq!(out.len(), 2);
        out.clear();
        pf.on_fetch(Line::new(12), true, &mut out);
        assert_eq!(pf.degree(), 4);
        // A non-sequential miss resets.
        out.clear();
        pf.on_fetch(Line::new(100), true, &mut out);
        assert_eq!(pf.degree(), 1);
        assert_eq!(out, vec![Line::new(101)]);
    }

    #[test]
    fn stream_ignores_hits() {
        let mut pf = StreamPrefetcher::new(1, 8);
        let mut out = Vec::new();
        pf.on_fetch(Line::new(5), false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rdip_learns_recurring_miss_sequences() {
        let mut pf = RdipLite::new(2, 1024);
        let mut out = Vec::new();
        // Train on the sequence twice.
        for _ in 0..2 {
            for l in [100u64, 200, 300, 400] {
                out.clear();
                pf.on_fetch(Line::new(l), true, &mut out);
            }
        }
        assert!(pf.table_len() > 0);
        // Replaying the prefix must predict the continuation.
        out.clear();
        pf.on_fetch(Line::new(100), true, &mut out);
        out.clear();
        pf.on_fetch(Line::new(200), true, &mut out);
        assert!(out.contains(&Line::new(300)), "should predict 300 after (100,200)");
    }

    #[test]
    fn rdip_table_capacity_is_bounded() {
        let mut pf = RdipLite::new(1, 4);
        let mut out = Vec::new();
        for l in 0..100u64 {
            out.clear();
            pf.on_fetch(Line::new(l * 17), true, &mut out);
        }
        assert!(pf.table_len() <= 4);
    }

    #[test]
    fn both_help_a_real_workload() {
        let model = apps::verilator().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 20_000);
        let scfg = SimConfig::default();
        let base = run(&program, &trace, &scfg, RunOptions::default());
        let mut stream = StreamPrefetcher::new(1, 8);
        let rs = run(
            &program,
            &trace,
            &scfg,
            RunOptions { hw_prefetcher: Some(&mut stream), ..Default::default() },
        );
        assert!(rs.i_misses < base.i_misses, "stream should help sequential code");
        let mut rdip = RdipLite::new(3, 1 << 14);
        let rr = run(
            &program,
            &trace,
            &scfg,
            RunOptions { hw_prefetcher: Some(&mut rdip), ..Default::default() },
        );
        assert!(rr.i_misses < base.i_misses, "rdip should help recurring sequences");
    }

    #[test]
    #[should_panic(expected = "invalid degrees")]
    fn stream_bad_degrees_panic() {
        let _ = StreamPrefetcher::new(4, 2);
    }
}
