//! Next-line / next-N-line hardware instruction prefetchers.
//!
//! The oldest and most widely deployed hardware scheme (§VIII): on an
//! I-cache miss (or optionally on every access), prefetch the next N
//! sequential lines. Works well for straight-line code, poorly for
//! branch-heavy data-center code — which is the motivation for everything
//! else in the paper.

use ispy_sim::HwPrefetcher;
use ispy_trace::Line;

/// When the prefetcher triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Trigger {
    /// Only on L1I misses (classic).
    #[default]
    OnMiss,
    /// On every fetch (more aggressive, more pollution).
    OnAccess,
}

/// A next-N-line instruction prefetcher.
///
/// # Examples
///
/// ```
/// use ispy_baselines::NextNLine;
/// use ispy_sim::{run, RunOptions, SimConfig};
/// use ispy_trace::apps;
///
/// let model = apps::verilator().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 10_000);
/// let mut pf = NextNLine::new(2);
/// let r = run(&program, &trace, &SimConfig::default(), RunOptions {
///     hw_prefetcher: Some(&mut pf),
///     ..Default::default()
/// });
/// assert!(r.pf_lines_issued > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextNLine {
    degree: u32,
    trigger: Trigger,
}

impl NextNLine {
    /// A next-N-line prefetcher triggering on misses.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        NextNLine { degree, trigger: Trigger::OnMiss }
    }

    /// Returns the prefetcher with a different trigger.
    #[must_use]
    pub fn with_trigger(mut self, trigger: Trigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// The prefetch degree (lines ahead).
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

impl HwPrefetcher for NextNLine {
    fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
        if was_miss || self.trigger == Trigger::OnAccess {
            for d in 1..=u64::from(self.degree) {
                out.push(line.offset(d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_sim::{run, RunOptions, SimConfig};
    use ispy_trace::apps;

    #[test]
    fn emits_n_lines_on_miss() {
        let mut pf = NextNLine::new(3);
        let mut out = Vec::new();
        pf.on_fetch(Line::new(10), true, &mut out);
        assert_eq!(out, vec![Line::new(11), Line::new(12), Line::new(13)]);
        out.clear();
        pf.on_fetch(Line::new(10), false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn on_access_trigger_fires_on_hits_too() {
        let mut pf = NextNLine::new(1).with_trigger(Trigger::OnAccess);
        let mut out = Vec::new();
        pf.on_fetch(Line::new(5), false, &mut out);
        assert_eq!(out, vec![Line::new(6)]);
    }

    #[test]
    fn helps_sequential_verilator_style_code() {
        let model = apps::verilator().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 20_000);
        let scfg = SimConfig::default();
        let base = run(&program, &trace, &scfg, RunOptions::default());
        let mut pf = NextNLine::new(4);
        let with = run(
            &program,
            &trace,
            &scfg,
            RunOptions { hw_prefetcher: Some(&mut pf), ..Default::default() },
        );
        assert!(with.i_misses < base.i_misses);
        assert!(with.cycles < base.cycles);
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_panics() {
        let _ = NextNLine::new(0);
    }
}
