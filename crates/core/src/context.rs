//! Miss-context discovery (§III-A, Fig. 6).
//!
//! Given the joint statistics for one (injection site, miss) pair — per
//! presence-mask occurrence and hit counts over the candidate predictor
//! blocks — pick the combination of up to `ctx_size` predictor blocks whose
//! presence in the LBR maximizes the conditional probability of the miss
//! (the paper's Bayes step), subject to a minimum support and a required
//! improvement over the unconditional probability.

use ispy_profile::JointCounts;
use ispy_trace::BlockId;

/// A context the planner decided to condition a prefetch on.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextChoice {
    /// The predictor blocks (subset of the candidates, 1..=ctx_size).
    pub blocks: Vec<BlockId>,
    /// `P(miss follows | context present at site)`.
    pub probability: f64,
    /// Site executions with the context present (the estimate's support).
    pub support: u64,
    /// `P(miss follows | site executes)` — the unconditional baseline.
    pub baseline: f64,
}

/// Searches candidate subsets for the best miss context.
///
/// Returns `None` when no subset beats the unconditional probability by
/// `gain_margin` with at least `min_support` observations — the §IV case
/// where "conditionally prefetching a line based on the execution context
/// may not improve the prefetch accuracy".
///
/// # Examples
///
/// ```
/// use ispy_core::context::discover;
/// use ispy_profile::JointCounts;
/// use ispy_trace::BlockId;
///
/// // One candidate block: present at 10 site executions, all of which miss;
/// // absent at 30 executions, none of which miss.
/// let counts = JointCounts { occurrences: vec![30, 10], hits: vec![0, 10] };
/// let ctx = discover(&counts, &[BlockId(7)], 4, 5, 0.1).unwrap();
/// assert_eq!(ctx.blocks, vec![BlockId(7)]);
/// assert_eq!(ctx.probability, 1.0);
/// ```
pub fn discover(
    counts: &JointCounts,
    candidates: &[BlockId],
    ctx_size: usize,
    min_support: u64,
    gain_margin: f64,
) -> Option<ContextChoice> {
    let n = candidates.len();
    if n == 0 {
        return None;
    }
    let baseline = counts.conditional_probability(0)?;
    let mut best: Option<(f64, u64, u16)> = None;

    for subset in 1u16..(1u16 << n) {
        if subset.count_ones() > ctx_size as u32 {
            continue;
        }
        let support = counts.occurrences_with(subset);
        if support < min_support {
            continue;
        }
        let p = counts.hits_with(subset) as f64 / support as f64;
        let better = match best {
            None => true,
            Some((bp, bs, bmask)) => {
                p > bp + 1e-12
                    || ((p - bp).abs() <= 1e-12
                        && (subset.count_ones() < bmask.count_ones()
                            || (subset.count_ones() == bmask.count_ones() && support > bs)))
            }
        };
        if better {
            best = Some((p, support, subset));
        }
    }

    let (p, support, mask) = best?;
    if p < baseline + gain_margin {
        return None;
    }
    let blocks: Vec<BlockId> =
        (0..n).filter(|i| mask & (1 << i) != 0).map(|i| candidates[i]).collect();
    Some(ContextChoice { blocks, probability: p, support, baseline })
}

/// Greedy multi-context discovery.
///
/// One context often cannot cover a miss reached from many calling contexts
/// (each caller predicts only its own share of instances). Like the paper's
/// Fig. 8 — several prefetches of the same target grouped by different
/// contexts at one site — this picks up to `max_contexts` subsets by greedy
/// set-cover over the occurrence masks: each round takes the qualifying
/// subset (probability ≥ `max(baseline + gain_margin, min_prob)`, support ≥
/// `min_support`) that covers the most not-yet-covered target-reaching site
/// executions.
///
/// Returns the chosen contexts plus the fraction of all target-reaching
/// executions they jointly cover.
pub fn discover_multi(
    counts: &JointCounts,
    candidates: &[BlockId],
    ctx_size: usize,
    min_support: u64,
    gain_margin: f64,
    min_prob: f64,
    max_contexts: usize,
) -> (Vec<ContextChoice>, f64) {
    let n = candidates.len();
    if n == 0 || max_contexts == 0 {
        return (Vec::new(), 0.0);
    }
    let Some(baseline) = counts.conditional_probability(0) else {
        return (Vec::new(), 0.0);
    };
    let size = 1usize << n;
    // Superset sums (SOS DP): occ_sup[s] = Σ_{M ⊇ s} occurrences[M].
    let mut occ_sup = counts.occurrences.clone();
    let mut hit_sup = counts.hits.clone();
    for bit in 0..n {
        for s in 0..size {
            if s & (1 << bit) == 0 {
                occ_sup[s] += occ_sup[s | (1 << bit)];
                hit_sup[s] += hit_sup[s | (1 << bit)];
            }
        }
    }
    let total_hits: u64 = counts.hits.iter().sum();
    if total_hits == 0 {
        return (Vec::new(), 0.0);
    }
    let threshold = (baseline + gain_margin).max(min_prob);
    let mut covered = vec![false; size];
    let mut chosen: Vec<ContextChoice> = Vec::new();
    let mut covered_hits = 0u64;
    let mut subsets_evaluated = 0u64;

    while chosen.len() < max_contexts {
        let mut best: Option<(u64, f64, u64, usize)> = None; // (new, p, support, mask)
        for s in 1..size {
            subsets_evaluated += 1;
            if (s.count_ones() as usize) > ctx_size {
                continue;
            }
            let support = occ_sup[s];
            if support < min_support {
                continue;
            }
            let p = hit_sup[s] as f64 / support as f64;
            if p < threshold {
                continue;
            }
            let new_hits: u64 =
                (0..size).filter(|&m| m & s == s && !covered[m]).map(|m| counts.hits[m]).sum();
            if new_hits == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bn, bp, _, bmask)) => {
                    new_hits > bn
                        || (new_hits == bn
                            && (p > bp + 1e-12
                                || ((p - bp).abs() <= 1e-12
                                    && s.count_ones() < bmask.count_ones())))
                }
            };
            if better {
                best = Some((new_hits, p, support, s));
            }
        }
        let Some((new_hits, p, support, mask)) = best else { break };
        for (m, c) in covered.iter_mut().enumerate().take(size) {
            if m & mask == mask {
                *c = true;
            }
        }
        covered_hits += new_hits;
        let blocks: Vec<BlockId> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| candidates[i]).collect();
        chosen.push(ContextChoice { blocks, probability: p, support, baseline });
    }
    // Mining-depth accounting: how much subset space each query explored.
    let tele = ispy_telemetry::global();
    tele.add("core.context.queries", 1);
    tele.add("core.context.subsets_evaluated", subsets_evaluated);
    tele.add("core.context.contexts_adopted", chosen.len() as u64);
    (chosen, covered_hits as f64 / total_hits as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BlockId {
        BlockId(i)
    }

    /// Two candidates; masks indexed 0b00,0b01,0b10,0b11.
    /// Candidate 0 present -> always miss; candidate 1 uncorrelated.
    fn correlated_counts() -> JointCounts {
        JointCounts {
            //                 00  01  10  11
            occurrences: vec![40, 10, 40, 10],
            hits: vec![4, 10, 4, 10],
        }
    }

    #[test]
    fn picks_the_predictive_candidate() {
        let c = correlated_counts();
        let ctx = discover(&c, &[b(1), b(2)], 4, 5, 0.1).unwrap();
        assert_eq!(ctx.blocks, vec![b(1)]);
        assert!((ctx.probability - 1.0).abs() < 1e-12);
        assert_eq!(ctx.support, 20);
        assert!((ctx.baseline - 0.28).abs() < 1e-12);
    }

    #[test]
    fn prefers_smaller_subset_on_tie() {
        // {0} and {0,1} both give probability 1.0; {0} wins.
        let c = correlated_counts();
        let ctx = discover(&c, &[b(1), b(2)], 2, 5, 0.1).unwrap();
        assert_eq!(ctx.blocks.len(), 1);
    }

    #[test]
    fn respects_ctx_size_cap() {
        // Only the pair {0,1} is perfectly predictive.
        let c = JointCounts {
            //                 00  01  10  11
            occurrences: vec![30, 30, 30, 10],
            hits: vec![0, 12, 12, 10],
        };
        let pair = discover(&c, &[b(1), b(2)], 2, 5, 0.1).unwrap();
        assert_eq!(pair.blocks, vec![b(1), b(2)]);
        let single = discover(&c, &[b(1), b(2)], 1, 5, 0.1).unwrap();
        assert_eq!(single.blocks.len(), 1);
        assert!(single.probability < pair.probability);
    }

    #[test]
    fn insufficient_support_rejected() {
        let c = JointCounts { occurrences: vec![100, 2], hits: vec![10, 2] };
        // Perfect but only 2 observations; min_support 5 rejects it.
        assert!(discover(&c, &[b(1)], 4, 5, 0.1).is_none());
    }

    #[test]
    fn no_gain_over_baseline_rejected() {
        // Candidate present half the time, misses uniform: conditioning
        // gains nothing.
        let c = JointCounts { occurrences: vec![50, 50], hits: vec![30, 30] };
        assert!(discover(&c, &[b(1)], 4, 5, 0.05).is_none());
    }

    #[test]
    fn empty_candidates_yield_none() {
        let c = JointCounts { occurrences: vec![10], hits: vec![10] };
        assert!(discover(&c, &[], 4, 1, 0.0).is_none());
    }

    #[test]
    fn no_site_occurrences_yield_none() {
        let c = JointCounts { occurrences: vec![0, 0], hits: vec![0, 0] };
        assert!(discover(&c, &[b(1)], 4, 1, 0.0).is_none());
    }

    #[test]
    fn multi_context_covers_disjoint_callers() {
        // Two callers, each predicting its own half of the reaches:
        // masks 00 (neither), 01 (caller A), 10 (caller B).
        let c = JointCounts {
            //                 00  01  10  11
            occurrences: vec![100, 20, 20, 0],
            hits: vec![2, 18, 16, 0],
        };
        let (ctxs, coverage) = discover_multi(&c, &[b(1), b(2)], 4, 5, 0.05, 0.3, 4);
        assert_eq!(ctxs.len(), 2, "both callers should become contexts");
        assert_eq!(ctxs[0].blocks, vec![b(1)]); // 18 new hits > 16
        assert_eq!(ctxs[1].blocks, vec![b(2)]);
        // 34 of 36 reaches covered.
        assert!((coverage - 34.0 / 36.0).abs() < 1e-9);
    }

    #[test]
    fn multi_context_respects_max() {
        let c = JointCounts { occurrences: vec![100, 20, 20, 0], hits: vec![2, 18, 16, 0] };
        let (ctxs, coverage) = discover_multi(&c, &[b(1), b(2)], 4, 5, 0.05, 0.3, 1);
        assert_eq!(ctxs.len(), 1);
        assert!(coverage < 0.6);
    }

    #[test]
    fn multi_context_empty_when_nothing_qualifies() {
        // Uniform: no subset is better than baseline.
        let c = JointCounts { occurrences: vec![50, 50], hits: vec![25, 25] };
        let (ctxs, coverage) = discover_multi(&c, &[b(1)], 4, 5, 0.05, 0.9, 4);
        assert!(ctxs.is_empty());
        assert_eq!(coverage, 0.0);
    }

    #[test]
    fn multi_context_single_equals_best_cover() {
        // With one candidate perfectly predictive, multi returns it once.
        let c = JointCounts { occurrences: vec![30, 10], hits: vec![0, 10] };
        let (ctxs, coverage) = discover_multi(&c, &[b(7)], 4, 5, 0.1, 0.3, 4);
        assert_eq!(ctxs.len(), 1);
        assert_eq!(ctxs[0].blocks, vec![b(7)]);
        assert!((coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig6_shape() {
        // Fig. 6: six paths through site G, two lead to the miss at K; the
        // combination {B, E} has the highest conditional probability.
        // Candidates: B (bit 0), E (bit 1).
        // Occurrences: B&E together on 2 paths (both miss); B alone 1,
        // E alone 1, neither 2 (none miss).
        let c = JointCounts {
            //                 00 01(B) 10(E) 11(BE)
            occurrences: vec![2, 1, 1, 2],
            hits: vec![0, 0, 0, 2],
        };
        let ctx = discover(&c, &[b(100), b(200)], 4, 1, 0.05).unwrap();
        assert_eq!(ctx.blocks, vec![b(100), b(200)]);
        assert!((ctx.probability - 1.0).abs() < 1e-12);
        assert!((ctx.baseline - 2.0 / 6.0).abs() < 1e-12);
    }
}
