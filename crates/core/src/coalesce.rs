//! Prefetch coalescing (§III-B, Fig. 8).
//!
//! Prefetches injected at the same site under the same context are grouped;
//! spatially-near targets (within the bitmask window) merge into a single
//! `Lprefetch`/`CLprefetch` whose bit-vector selects the extra lines.

use ispy_isa::CoalesceMask;
use ispy_trace::Line;

/// One coalesced group: a base line plus an optional mask of extra lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescedGroup {
    /// The base line (always prefetched).
    pub base: Line,
    /// Extra lines within the window, or `None` if the group is a single
    /// line.
    pub mask: Option<CoalesceMask>,
}

impl CoalescedGroup {
    /// Number of lines this group prefetches.
    pub fn line_count(&self) -> u32 {
        1 + self.mask.map_or(0, |m| m.extra_lines())
    }
}

/// Greedily packs `lines` into coalesced groups with a `bits`-wide window.
///
/// Lines are sorted and deduplicated first; each group takes a base line and
/// every remaining line within `bits` lines of it.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 64.
///
/// # Examples
///
/// ```
/// use ispy_core::coalesce::coalesce_lines;
/// use ispy_trace::Line;
///
/// // Paper Fig. 8: targets 0x2, 0x4, 0x7 share a context -> one prefetch
/// // based at 0x2 with bits for 0x4 and 0x7.
/// let groups = coalesce_lines(vec![Line::new(0x4), Line::new(0x2), Line::new(0x7)], 8);
/// assert_eq!(groups.len(), 1);
/// assert_eq!(groups[0].base, Line::new(0x2));
/// assert_eq!(groups[0].line_count(), 3);
/// ```
pub fn coalesce_lines(mut lines: Vec<Line>, bits: u8) -> Vec<CoalescedGroup> {
    assert!((1..=64).contains(&bits), "mask width must be 1..=64 bits");
    lines.sort();
    lines.dedup();
    let distinct = lines.len() as u64;
    let mut groups = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let base = lines[i];
        let mut extras = Vec::new();
        let mut j = i + 1;
        while j < lines.len() {
            match lines[j].distance_from(base) {
                Some(d) if d <= u64::from(bits) => {
                    extras.push(lines[j]);
                    j += 1;
                }
                _ => break,
            }
        }
        let mask = if extras.is_empty() {
            None
        } else {
            Some(
                CoalesceMask::from_lines(base, extras.iter().copied(), bits)
                    .expect("extras are within the window by construction"),
            )
        };
        groups.push(CoalescedGroup { base, mask });
        i = j;
    }
    let tele = ispy_telemetry::global();
    tele.add("core.coalesce.calls", 1);
    tele.add("core.coalesce.groups", groups.len() as u64);
    tele.add("core.coalesce.lines_merged", distinct - groups.len() as u64);
    groups
}

/// Decodes groups back to the full sorted line list (for tests/validation).
pub fn decode_groups(groups: &[CoalescedGroup]) -> Vec<Line> {
    let mut lines = Vec::new();
    for g in groups {
        lines.push(g.base);
        if let Some(m) = g.mask {
            lines.extend(m.decode(g.base));
        }
    }
    lines.sort();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u64) -> Line {
        Line::new(x)
    }

    #[test]
    fn roundtrip_exactness() {
        let input = vec![l(10), l(11), l(13), l(30), l(31), l(100)];
        let groups = coalesce_lines(input.clone(), 8);
        assert_eq!(decode_groups(&groups), input);
    }

    #[test]
    fn dedup_before_packing() {
        let groups = coalesce_lines(vec![l(5), l(5), l(6)], 8);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].line_count(), 2);
    }

    #[test]
    fn window_boundary() {
        // With 8 bits, base+8 fits but base+9 starts a new group.
        let g = coalesce_lines(vec![l(0), l(8)], 8);
        assert_eq!(g.len(), 1);
        let g = coalesce_lines(vec![l(0), l(9)], 8);
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|x| x.mask.is_none()));
    }

    #[test]
    fn greedy_chains_respect_base() {
        // 0, 8, 16: 8 is within 0's window, 16 is not (distance 16) -> two
        // groups.
        let g = coalesce_lines(vec![l(0), l(8), l(16)], 8);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].base, l(0));
        assert_eq!(g[0].line_count(), 2);
        assert_eq!(g[1].base, l(16));
    }

    #[test]
    fn one_bit_window() {
        let g = coalesce_lines(vec![l(0), l(1), l(2)], 1);
        // 0+1 coalesce; 2 is outside 0's 1-line window.
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].line_count(), 2);
    }

    #[test]
    fn wide_window_swallows_everything() {
        let lines: Vec<Line> = (0..60).map(l).collect();
        let g = coalesce_lines(lines, 64);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].line_count(), 60);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce_lines(vec![], 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "mask width")]
    fn zero_bits_panics() {
        let _ = coalesce_lines(vec![l(0)], 0);
    }
}
