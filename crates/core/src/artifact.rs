//! The `.iplan` artifact codec: a durable injection plan with provenance.
//!
//! Serializes a [`Plan`] — the injection map, its aggregate statistics, the
//! adopted context details, and the full per-op provenance chain — so a
//! planning run can be stored, diffed, shipped to the machine that rewrites
//! the binary, and replayed later with byte-identical results.
//!
//! The decode is exact: every `f64` estimate travels as raw bits, provenance
//! ids round-trip verbatim, and a reloaded plan is `==` to the original
//! (`Plan` derives `PartialEq`), which is what lets the artifact cache
//! substitute a stored plan for a fresh planning pass.
//!
//! # Examples
//!
//! ```
//! use ispy_core::{artifact, IspyConfig, Planner};
//! use ispy_profile::{profile, SampleRate};
//! use ispy_sim::SimConfig;
//! use ispy_trace::apps;
//!
//! let model = apps::cassandra().scaled_down(60);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 8_000);
//! let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
//! let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
//!
//! let bytes = artifact::plan_to_bytes(program.name(), &plan);
//! let (label, plan2) = artifact::plan_from_bytes(&bytes).unwrap();
//! assert_eq!(label, "cassandra");
//! assert_eq!(plan2, plan);
//! ```

use crate::planner::{Plan, PlanStats};
use crate::provenance::{PlannedLine, ProvenanceRecord};
use ispy_artifact::{ArtifactError, ArtifactKind, ArtifactReader, ArtifactWriter};
use ispy_artifact::{SectionReader, SectionWriter};
use ispy_isa::{CoalesceMask, ContextHash, InjectionMap, PrefetchOp, ProvenanceId};
use ispy_trace::{BlockId, Line};
use std::path::Path;

/// App label.
const SEC_META: u32 = 1;
/// The injection map: per-site op lists with provenance ids.
const SEC_INJECTIONS: u32 = 2;
/// Aggregate [`PlanStats`].
const SEC_STATS: u32 = 3;
/// Adopted context predictor-block details.
const SEC_CONTEXT_DETAILS: u32 = 4;
/// Per-op [`ProvenanceRecord`]s.
const SEC_PROVENANCE: u32 = 5;

/// Op encoding tags — shared by the op payloads and the provenance
/// mnemonics, in the §IV decision-diagram order.
const TAG_PLAIN: u8 = 0;
const TAG_COND: u8 = 1;
const TAG_COALESCED: u8 = 2;
const TAG_COND_COALESCED: u8 = 3;

fn mnemonic_tag(m: &str) -> u8 {
    match m {
        "prefetch" => TAG_PLAIN,
        "Cprefetch" => TAG_COND,
        "Lprefetch" => TAG_COALESCED,
        _ => TAG_COND_COALESCED,
    }
}

fn tag_mnemonic(tag: u8) -> Result<&'static str, ArtifactError> {
    match tag {
        TAG_PLAIN => Ok("prefetch"),
        TAG_COND => Ok("Cprefetch"),
        TAG_COALESCED => Ok("Lprefetch"),
        TAG_COND_COALESCED => Ok("CLprefetch"),
        other => Err(ArtifactError::malformed("mnemonic tag", format!("unknown tag {other}"))),
    }
}

fn put_hash(s: &mut SectionWriter, bits: u64, width: u8) {
    s.put_varint(bits);
    s.put_u8(width);
}

/// Reads a `(bits, width)` pair and validates the width before handing it
/// to the (panicking) `from_bits` constructors.
fn take_hash(s: &mut SectionReader<'_>, what: &'static str) -> Result<(u64, u8), ArtifactError> {
    let bits = s.take_varint()?;
    let width = s.take_u8()?;
    if !(1..=64).contains(&width) {
        return Err(ArtifactError::malformed(what, format!("width {width} out of range")));
    }
    if width < 64 && bits >> width != 0 {
        return Err(ArtifactError::malformed(what, "bits exceed declared width"));
    }
    Ok((bits, width))
}

fn put_op(s: &mut SectionWriter, op: &PrefetchOp) {
    match op {
        PrefetchOp::Plain { target } => {
            s.put_u8(TAG_PLAIN);
            s.put_varint(target.raw());
        }
        PrefetchOp::Cond { target, ctx } => {
            s.put_u8(TAG_COND);
            s.put_varint(target.raw());
            put_hash(s, ctx.bits(), ctx.width());
        }
        PrefetchOp::Coalesced { base, mask } => {
            s.put_u8(TAG_COALESCED);
            s.put_varint(base.raw());
            put_hash(s, mask.bits(), mask.width());
        }
        PrefetchOp::CondCoalesced { base, mask, ctx } => {
            s.put_u8(TAG_COND_COALESCED);
            s.put_varint(base.raw());
            put_hash(s, mask.bits(), mask.width());
            put_hash(s, ctx.bits(), ctx.width());
        }
    }
}

fn take_op(s: &mut SectionReader<'_>) -> Result<PrefetchOp, ArtifactError> {
    match s.take_u8()? {
        TAG_PLAIN => Ok(PrefetchOp::Plain { target: Line::new(s.take_varint()?) }),
        TAG_COND => {
            let target = Line::new(s.take_varint()?);
            let (bits, width) = take_hash(s, "context hash")?;
            Ok(PrefetchOp::Cond { target, ctx: ContextHash::from_bits(bits, width) })
        }
        TAG_COALESCED => {
            let base = Line::new(s.take_varint()?);
            let (bits, width) = take_hash(s, "coalesce mask")?;
            Ok(PrefetchOp::Coalesced { base, mask: CoalesceMask::from_bits(bits, width) })
        }
        TAG_COND_COALESCED => {
            let base = Line::new(s.take_varint()?);
            let (mb, mw) = take_hash(s, "coalesce mask")?;
            let (cb, cw) = take_hash(s, "context hash")?;
            Ok(PrefetchOp::CondCoalesced {
                base,
                mask: CoalesceMask::from_bits(mb, mw),
                ctx: ContextHash::from_bits(cb, cw),
            })
        }
        other => Err(ArtifactError::malformed("op tag", format!("unknown tag {other}"))),
    }
}

/// Serializes a plan to artifact bytes under an app `label`.
pub fn plan_to_bytes(label: &str, plan: &Plan) -> Vec<u8> {
    let mut w = ArtifactWriter::new(ArtifactKind::Plan);

    let mut meta = w.section(SEC_META);
    meta.put_str(label);
    w.finish_section(meta);

    let mut inj = w.section(SEC_INJECTIONS);
    inj.put_varint(plan.injections.num_sites() as u64);
    for (site, ops) in plan.injections.iter() {
        inj.put_delta(u64::from(site.0));
        inj.put_varint(ops.len() as u64);
        let ids = plan.injections.ids_at(site);
        for (op, id) in ops.iter().zip(ids) {
            put_op(&mut inj, op);
            inj.put_opt_varint(id.map(|i| u64::from(i.0)));
        }
    }
    w.finish_section(inj);

    let st = &plan.stats;
    let mut stats = w.section(SEC_STATS);
    for v in [st.target_lines, st.covered_lines, st.uncovered_lines, st.sites] {
        stats.put_varint(v as u64);
    }
    for v in [st.ops_plain, st.ops_cond, st.ops_coalesced, st.ops_cond_coalesced] {
        stats.put_varint(v as u64);
    }
    stats.put_varint(st.injected_bytes);
    stats.put_f64(st.static_increase);
    stats.put_varint(st.contexts_adopted as u64);
    stats.put_varint(st.context_blocks_total as u64);
    for hist in [&st.coalesced_distance_hist, &st.lines_per_op_hist] {
        stats.put_varint(hist.len() as u64);
        for &v in hist.iter() {
            stats.put_varint(v);
        }
    }
    for v in [st.lines_no_candidates, st.lines_no_sites, st.entries_dropped] {
        stats.put_varint(v as u64);
    }
    w.finish_section(stats);

    let mut ctx = w.section(SEC_CONTEXT_DETAILS);
    ctx.put_varint(plan.context_details.len() as u64);
    for (site, blocks) in &plan.context_details {
        ctx.put_varint(u64::from(site.0));
        ctx.put_varint(blocks.len() as u64);
        for b in blocks {
            ctx.put_varint(u64::from(b.0));
        }
    }
    w.finish_section(ctx);

    let mut prov = w.section(SEC_PROVENANCE);
    prov.put_varint(plan.provenance.len() as u64);
    for rec in &plan.provenance {
        prov.put_varint(u64::from(rec.id.0));
        prov.put_varint(u64::from(rec.site.0));
        prov.put_u8(mnemonic_tag(rec.mnemonic));
        prov.put_varint(rec.base_line.raw());
        match rec.mask {
            Some(m) => {
                prov.put_u8(1);
                put_hash(&mut prov, m.bits(), m.width());
            }
            None => prov.put_u8(0),
        }
        prov.put_varint(rec.context_blocks.len() as u64);
        for b in &rec.context_blocks {
            prov.put_varint(u64::from(b.0));
        }
        prov.put_varint(rec.lines.len() as u64);
        for l in &rec.lines {
            prov.put_varint(l.line.raw());
            prov.put_varint(l.miss_count);
            prov.put_f64(l.site_presence);
            prov.put_f64(l.site_precision);
            prov.put_f64(l.reach_prob);
            prov.put_f64(l.window_cycles);
            prov.put_opt_f64(l.ctx_probability);
            prov.put_opt_f64(l.ctx_baseline);
            prov.put_opt_varint(l.ctx_support);
        }
    }
    w.finish_section(prov);

    w.to_bytes()
}

/// Writes a plan to `path` (conventionally `*.iplan`).
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure.
pub fn write_plan(label: &str, plan: &Plan, path: &Path) -> Result<(), ArtifactError> {
    std::fs::create_dir_all(path.parent().unwrap_or_else(|| Path::new(".")))
        .map_err(|e| ArtifactError::io(path, e))?;
    std::fs::write(path, plan_to_bytes(label, plan)).map_err(|e| ArtifactError::io(path, e))
}

/// Checked narrowing with a typed error instead of a panicking cast.
fn narrow<T: TryFrom<u64>>(v: u64, what: &'static str) -> Result<T, ArtifactError> {
    T::try_from(v).map_err(|_| ArtifactError::malformed(what, format!("value {v} out of range")))
}

/// Decodes `(label, plan)` from artifact bytes.
///
/// # Errors
///
/// Typed [`ArtifactError`] on any container- or payload-level defect; hash
/// and mask widths are validated before the panicking constructors run.
pub fn plan_from_bytes(bytes: &[u8]) -> Result<(String, Plan), ArtifactError> {
    let r = ArtifactReader::from_bytes(bytes, ArtifactKind::Plan)?;

    let mut meta = r.require_section(SEC_META)?;
    let label = meta.take_str()?;
    meta.finish()?;

    let mut inj = r.require_section(SEC_INJECTIONS)?;
    let num_sites: usize = narrow(inj.take_varint()?, "site count")?;
    let mut injections = InjectionMap::new();
    for _ in 0..num_sites {
        let site = BlockId(narrow(inj.take_delta()?, "site id")?);
        let n_ops: usize = narrow(inj.take_varint()?, "op count")?;
        if n_ops == 0 {
            return Err(ArtifactError::malformed("op count", "site with zero ops"));
        }
        for _ in 0..n_ops {
            let op = take_op(&mut inj)?;
            match inj.take_opt_varint()? {
                Some(id) => injections.push_traced(site, op, ProvenanceId(narrow(id, "op id")?)),
                None => injections.push(site, op),
            }
        }
    }
    inj.finish()?;

    let mut s = r.require_section(SEC_STATS)?;
    let mut stats = PlanStats {
        target_lines: narrow(s.take_varint()?, "target lines")?,
        covered_lines: narrow(s.take_varint()?, "covered lines")?,
        uncovered_lines: narrow(s.take_varint()?, "uncovered lines")?,
        sites: narrow(s.take_varint()?, "sites")?,
        ops_plain: narrow(s.take_varint()?, "plain ops")?,
        ops_cond: narrow(s.take_varint()?, "cond ops")?,
        ops_coalesced: narrow(s.take_varint()?, "coalesced ops")?,
        ops_cond_coalesced: narrow(s.take_varint()?, "cond-coalesced ops")?,
        injected_bytes: s.take_varint()?,
        static_increase: s.take_f64()?,
        contexts_adopted: narrow(s.take_varint()?, "contexts adopted")?,
        context_blocks_total: narrow(s.take_varint()?, "context blocks")?,
        ..PlanStats::default()
    };
    for _ in 0..narrow::<usize>(s.take_varint()?, "distance hist len")? {
        stats.coalesced_distance_hist.push(s.take_varint()?);
    }
    for _ in 0..narrow::<usize>(s.take_varint()?, "lines-per-op hist len")? {
        stats.lines_per_op_hist.push(s.take_varint()?);
    }
    stats.lines_no_candidates = narrow(s.take_varint()?, "lines no candidates")?;
    stats.lines_no_sites = narrow(s.take_varint()?, "lines no sites")?;
    stats.entries_dropped = narrow(s.take_varint()?, "entries dropped")?;
    s.finish()?;

    let mut ctx = r.require_section(SEC_CONTEXT_DETAILS)?;
    let n_ctx: usize = narrow(ctx.take_varint()?, "context detail count")?;
    let mut context_details = Vec::with_capacity(n_ctx.min(1 << 20));
    for _ in 0..n_ctx {
        let site = BlockId(narrow(ctx.take_varint()?, "context site")?);
        let k: usize = narrow(ctx.take_varint()?, "predictor count")?;
        let mut blocks = Vec::with_capacity(k.min(1 << 16));
        for _ in 0..k {
            blocks.push(BlockId(narrow(ctx.take_varint()?, "predictor id")?));
        }
        context_details.push((site, blocks));
    }
    ctx.finish()?;

    let mut prov = r.require_section(SEC_PROVENANCE)?;
    let n_recs: usize = narrow(prov.take_varint()?, "provenance count")?;
    let mut provenance = Vec::with_capacity(n_recs.min(1 << 20));
    for _ in 0..n_recs {
        let id = ProvenanceId(narrow(prov.take_varint()?, "provenance id")?);
        let site = BlockId(narrow(prov.take_varint()?, "provenance site")?);
        let mnemonic = tag_mnemonic(prov.take_u8()?)?;
        let base_line = Line::new(prov.take_varint()?);
        let mask = match prov.take_u8()? {
            0 => None,
            1 => {
                let (bits, width) = take_hash(&mut prov, "provenance mask")?;
                Some(CoalesceMask::from_bits(bits, width))
            }
            other => {
                return Err(ArtifactError::malformed("mask flag", format!("bad flag {other}")))
            }
        };
        let n_blocks: usize = narrow(prov.take_varint()?, "context block count")?;
        let mut context_blocks = Vec::with_capacity(n_blocks.min(1 << 16));
        for _ in 0..n_blocks {
            context_blocks.push(BlockId(narrow(prov.take_varint()?, "context block id")?));
        }
        let n_lines: usize = narrow(prov.take_varint()?, "planned line count")?;
        let mut lines = Vec::with_capacity(n_lines.min(1 << 16));
        for _ in 0..n_lines {
            lines.push(PlannedLine {
                line: Line::new(prov.take_varint()?),
                miss_count: prov.take_varint()?,
                site_presence: prov.take_f64()?,
                site_precision: prov.take_f64()?,
                reach_prob: prov.take_f64()?,
                window_cycles: prov.take_f64()?,
                ctx_probability: prov.take_opt_f64()?,
                ctx_baseline: prov.take_opt_f64()?,
                ctx_support: prov.take_opt_varint()?,
            });
        }
        provenance.push(ProvenanceRecord {
            id,
            site,
            mnemonic,
            base_line,
            mask,
            context_blocks,
            lines,
        });
    }
    prov.finish()?;

    Ok((label, Plan { injections, stats, context_details, provenance }))
}

/// Reads `(label, plan)` from `path`.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`plan_from_bytes`].
pub fn read_plan(path: &Path) -> Result<(String, Plan), ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::io(path, e))?;
    plan_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IspyConfig;
    use crate::planner::Planner;
    use ispy_profile::{profile, SampleRate};
    use ispy_sim::SimConfig;
    use ispy_trace::apps;

    fn sample_plan() -> (String, Plan) {
        let model = apps::drupal().scaled_down(40);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 12_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
        (program.name().to_string(), plan)
    }

    #[test]
    fn round_trip_is_equal_and_byte_stable() {
        let (name, plan) = sample_plan();
        assert!(plan.injections.num_ops() > 0, "sample plan should inject something");
        let bytes = plan_to_bytes(&name, &plan);
        let (label, plan2) = plan_from_bytes(&bytes).unwrap();
        assert_eq!(label, name);
        assert_eq!(plan2, plan);
        assert_eq!(plan_to_bytes(&label, &plan2), bytes);
    }

    #[test]
    fn all_four_op_forms_round_trip() {
        let mut injections = InjectionMap::new();
        injections.push(BlockId(1), PrefetchOp::Plain { target: Line::new(10) });
        injections.push_traced(
            BlockId(1),
            PrefetchOp::Cond { target: Line::new(11), ctx: ContextHash::from_bits(0xBEEF, 16) },
            ProvenanceId(0),
        );
        injections.push(
            BlockId(2),
            PrefetchOp::Coalesced { base: Line::new(12), mask: CoalesceMask::from_bits(0b101, 8) },
        );
        injections.push_traced(
            BlockId(3),
            PrefetchOp::CondCoalesced {
                base: Line::new(13),
                mask: CoalesceMask::from_bits(0b11, 8),
                ctx: ContextHash::from_bits(u64::MAX, 64),
            },
            ProvenanceId(7),
        );
        let plan = Plan {
            injections,
            stats: PlanStats { sites: 3, ops_plain: 1, ..PlanStats::default() },
            context_details: vec![(BlockId(1), vec![BlockId(4), BlockId(5)])],
            provenance: vec![ProvenanceRecord {
                id: ProvenanceId(0),
                site: BlockId(1),
                mnemonic: "Cprefetch",
                base_line: Line::new(11),
                mask: None,
                context_blocks: vec![BlockId(4)],
                lines: vec![PlannedLine {
                    line: Line::new(11),
                    miss_count: 3,
                    site_presence: 0.5,
                    site_precision: 0.25,
                    reach_prob: 0.75,
                    window_cycles: 64.0,
                    ctx_probability: Some(0.9),
                    ctx_baseline: Some(0.1),
                    ctx_support: Some(12),
                }],
            }],
        };
        let bytes = plan_to_bytes("hand", &plan);
        let (label, plan2) = plan_from_bytes(&bytes).unwrap();
        assert_eq!(label, "hand");
        assert_eq!(plan2, plan);
    }

    #[test]
    fn hostile_width_is_malformed_not_panic() {
        let mut w = ArtifactWriter::new(ArtifactKind::Plan);
        let mut meta = w.section(SEC_META);
        meta.put_str("x");
        w.finish_section(meta);
        let mut inj = w.section(SEC_INJECTIONS);
        inj.put_varint(1); // one site
        inj.put_delta(0);
        inj.put_varint(1); // one op
        inj.put_u8(TAG_COND);
        inj.put_varint(9); // target line
        inj.put_varint(1); // ctx bits
        inj.put_u8(65); // hostile width
        inj.put_opt_varint(None);
        w.finish_section(inj);
        assert!(matches!(
            plan_from_bytes(&w.to_bytes()),
            Err(ArtifactError::Malformed { context: "context hash", .. })
        ));
    }

    #[test]
    fn bits_wider_than_declared_width_are_malformed() {
        let mut w = ArtifactWriter::new(ArtifactKind::Plan);
        let mut meta = w.section(SEC_META);
        meta.put_str("x");
        w.finish_section(meta);
        let mut inj = w.section(SEC_INJECTIONS);
        inj.put_varint(1);
        inj.put_delta(0);
        inj.put_varint(1);
        inj.put_u8(TAG_COALESCED);
        inj.put_varint(9);
        inj.put_varint(0x1FF); // 9 bits...
        inj.put_u8(8); // ...declared as 8 wide
        inj.put_opt_varint(None);
        w.finish_section(inj);
        assert!(matches!(
            plan_from_bytes(&w.to_bytes()),
            Err(ArtifactError::Malformed { context: "coalesce mask", .. })
        ));
    }

    #[test]
    fn missing_section_is_typed() {
        let w = ArtifactWriter::new(ArtifactKind::Plan);
        assert!(matches!(
            plan_from_bytes(&w.to_bytes()),
            Err(ArtifactError::MissingSection { id: SEC_META })
        ));
    }
}
