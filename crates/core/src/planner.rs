//! The end-to-end offline analysis (§IV steps 2–3).

use crate::coalesce::{coalesce_lines, CoalescedGroup};
use crate::config::IspyConfig;
use crate::context::{discover_multi, ContextChoice};
use crate::provenance::{PlannedLine, ProvenanceRecord};
use crate::window::{
    find_candidates, select_covering_sites, SelectedSite, SelectionPolicy, SiteCandidate,
};
use ispy_isa::{ContextHash, InjectionMap, PrefetchOp, ProvenanceId};
use ispy_profile::{scan_joint, JointCounts, JointQuery, Profile};
use ispy_trace::{BlockId, Line, Program, Trace};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Aggregate statistics about a produced plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanStats {
    /// Missing lines that met the miss-count threshold.
    pub target_lines: usize,
    /// Lines for which a timely injection site was found.
    pub covered_lines: usize,
    /// Lines with no predecessor inside the prefetch window.
    pub uncovered_lines: usize,
    /// Distinct injection sites used.
    pub sites: usize,
    /// Injected instructions by mnemonic.
    pub ops_plain: usize,
    /// `Cprefetch` count.
    pub ops_cond: usize,
    /// `Lprefetch` count.
    pub ops_coalesced: usize,
    /// `CLprefetch` count.
    pub ops_cond_coalesced: usize,
    /// Bytes added to the text segment.
    pub injected_bytes: u64,
    /// Static code-footprint increase (bytes injected / original text).
    pub static_increase: f64,
    /// (site, line) pairs for which a miss context was adopted.
    pub contexts_adopted: usize,
    /// Total predictor blocks across adopted contexts.
    pub context_blocks_total: usize,
    /// Histogram of coalesced extra-line distances (index = distance − 1).
    pub coalesced_distance_hist: Vec<u64>,
    /// Histogram of lines per injected op (index = lines − 1, saturating).
    pub lines_per_op_hist: Vec<u64>,
    /// Lines with no dynamic predecessor at all inside the prefetch window.
    pub lines_no_candidates: usize,
    /// Lines whose window candidates all failed the coverage/precision
    /// floors.
    pub lines_no_sites: usize,
    /// (site, line) injections dropped in pass 2 for lack of a strong
    /// context.
    pub entries_dropped: usize,
}

impl PlanStats {
    /// Total injected instructions.
    pub fn ops_total(&self) -> usize {
        self.ops_plain + self.ops_cond + self.ops_coalesced + self.ops_cond_coalesced
    }

    /// Mean predictor blocks per adopted context.
    pub fn avg_ctx_blocks(&self) -> f64 {
        if self.contexts_adopted == 0 {
            0.0
        } else {
            self.context_blocks_total as f64 / self.contexts_adopted as f64
        }
    }

    /// Miss coverage of the plan at the planning level: covered / targeted.
    pub fn planned_coverage(&self) -> f64 {
        if self.target_lines == 0 {
            0.0
        } else {
            self.covered_lines as f64 / self.target_lines as f64
        }
    }

    /// Fraction of coalesced ops that bring in fewer than `n` lines
    /// (paper Fig. 20 reports < 4 lines for 82.4 % of coalesced prefetches).
    pub fn coalesced_fraction_below(&self, n: usize) -> f64 {
        let multi: u64 = self.lines_per_op_hist.iter().skip(1).sum();
        if multi == 0 {
            return 0.0;
        }
        let below: u64 = self.lines_per_op_hist.iter().take(n.saturating_sub(1)).skip(1).sum();
        below as f64 / multi as f64
    }
}

/// A finished plan: the injection map plus its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Injected prefetch instructions, by site.
    pub injections: InjectionMap,
    /// Accounting for the evaluation harness.
    pub stats: PlanStats,
    /// The predictor blocks behind each adopted context, per site — kept so
    /// the harness can measure the context hash's false-positive rate
    /// (Fig. 21) against ground truth.
    pub context_details: Vec<(BlockId, Vec<BlockId>)>,
    /// One record per injected op, indexed by the [`ProvenanceId`] the op
    /// carries: the full decision chain behind the injection.
    pub provenance: Vec<ProvenanceRecord>,
}

/// Window-search parameters that shape a line's site candidates: changing
/// any of them invalidates cached candidate lists.
type WindowKey = (u32, u32, usize);

/// Per-line window candidates, keyed by raw cache-line address.
type CandidateMap = BTreeMap<u64, Vec<SiteCandidate>>;

/// Identity of one joint-scan query. The target positions are derived from
/// the target block over the (fixed) trace, so the block id stands in for
/// them; everything else is the query verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JointKey {
    site: u32,
    target: u32,
    horizon: u32,
    candidates: Vec<u32>,
}

/// Reusable, thread-safe caches for the parts of [`Planner::plan`] that
/// depend only on the (program, trace, profile) triple — not on the
/// [`IspyConfig`] being evaluated:
///
/// * per-block trace positions (the joint queries' targets),
/// * per-line window candidates, keyed by the window parameters
///   (`min`/`max` prefetch cycles, search-node cap),
/// * joint LBR statistics per (site, target, horizon, candidates) query —
///   the linear trace scans feeding [`crate::context::discover_multi`].
///
/// Sensitivity sweeps (Figs. 12/17/18/19 and the ablations) replan the same
/// app under many configs; with a shared baseline each distinct trace scan
/// runs once instead of once per config point. A baseline is only valid for
/// the exact (program, trace, profile) it was first used with — callers
/// (the harness `Session`) keep one per prepared app.
///
/// [`Planner::plan_with_baseline`] is bit-identical to [`Planner::plan`]:
/// cached values are exactly what the fresh computation would produce, and
/// concurrent fills compute the same values. Cache misses are computed
/// under the cache lock, so concurrent sweeps of one app serialize their
/// scans instead of duplicating them (plans for *different* apps use
/// different baselines and stay fully parallel).
#[derive(Debug, Default)]
pub struct PlannerBaseline {
    positions: Mutex<HashMap<u32, Arc<Vec<u32>>>>,
    candidates: Mutex<HashMap<WindowKey, Arc<CandidateMap>>>,
    joint: Mutex<HashMap<JointKey, Arc<JointCounts>>>,
}

impl PlannerBaseline {
    /// Creates an empty baseline (caches fill lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-line window candidates under `planner`'s window parameters,
    /// computed once per distinct parameter set.
    fn candidates_for(&self, planner: &Planner) -> Arc<CandidateMap> {
        let cfg = &planner.cfg;
        let key: WindowKey =
            (cfg.min_prefetch_cycles, cfg.max_prefetch_cycles, cfg.max_search_nodes);
        let mut cache = self.candidates.lock().expect("candidates lock");
        if let Some(map) = cache.get(&key) {
            return Arc::clone(map);
        }
        let mut map = CandidateMap::new();
        for (line, line_stats) in planner.profile.misses.lines_by_count() {
            let Some(target_block) = line_stats.dominant_block() else { continue };
            map.insert(
                line.raw(),
                find_candidates(
                    &planner.profile.cfg,
                    target_block,
                    cfg.min_prefetch_cycles,
                    cfg.max_prefetch_cycles,
                    cfg.max_search_nodes,
                ),
            );
        }
        let map = Arc::new(map);
        cache.insert(key, Arc::clone(&map));
        map
    }

    /// Trace positions for each of `blocks`, filling any uncached ones in
    /// one shared pass over the trace (mirrors `Planner::fill_positions`).
    fn positions_for(&self, planner: &Planner, blocks: &[BlockId]) -> HashMap<u32, Arc<Vec<u32>>> {
        let mut cache = self.positions.lock().expect("positions lock");
        let missing: std::collections::HashSet<u32> =
            blocks.iter().map(|b| b.0).filter(|b| !cache.contains_key(b)).collect();
        if !missing.is_empty() {
            let mut fresh: HashMap<u32, Vec<u32>> =
                missing.iter().map(|&b| (b, Vec::new())).collect();
            for (idx, block) in planner.trace.iter().enumerate() {
                if let Some(v) = fresh.get_mut(&block.0) {
                    v.push(idx as u32);
                }
            }
            for (b, v) in fresh {
                cache.insert(b, Arc::new(v));
            }
        }
        blocks.iter().map(|b| (b.0, Arc::clone(&cache[&b.0]))).collect()
    }

    /// Answers `queries` (targets given as blocks) from the joint cache,
    /// scanning the trace once for whatever subset is uncached.
    fn resolve_joint(
        &self,
        planner: &Planner,
        queries: &[JointQuery],
        targets: &[BlockId],
    ) -> Vec<Arc<JointCounts>> {
        let keys: Vec<JointKey> = queries
            .iter()
            .zip(targets)
            .map(|(q, t)| JointKey {
                site: q.site.0,
                target: t.0,
                horizon: q.horizon_blocks,
                candidates: q.candidates.iter().map(|b| b.0).collect(),
            })
            .collect();
        let mut cache = self.joint.lock().expect("joint lock");
        let missing: Vec<usize> =
            (0..queries.len()).filter(|&i| !cache.contains_key(&keys[i])).collect();
        if !missing.is_empty() {
            let blocks: Vec<BlockId> = missing.iter().map(|&i| targets[i]).collect();
            let positions = self.positions_for(planner, &blocks);
            let subset: Vec<JointQuery> = missing
                .iter()
                .map(|&i| {
                    let mut q = queries[i].clone();
                    q.target_positions = positions[&targets[i].0].as_ref().clone();
                    q
                })
                .collect();
            let results = scan_joint(planner.trace, planner.profile.lbr_depth, &subset);
            for (&i, counts) in missing.iter().zip(results) {
                cache.insert(keys[i].clone(), Arc::new(counts));
            }
        }
        keys.iter().map(|k| Arc::clone(&cache[k])).collect()
    }
}

/// Planning estimates carried from a [`Pending`] entry into pass 3, so each
/// emitted op's provenance record can report them per target line.
#[derive(Debug, Clone, Copy)]
struct LineMeta {
    miss_count: u64,
    site_presence: f64,
    site_precision: f64,
    reach_prob: f64,
    window_cycles: f64,
    /// `(probability, baseline, support)` of the adopted context, if any.
    ctx: Option<(f64, f64, u64)>,
}

/// One miss line's planning state between passes.
struct Pending {
    site: SelectedSite,
    line: Line,
    /// Index of this entry's query in the joint scan, if one was issued.
    query: Option<usize>,
    /// Predictor candidates the query covered.
    candidates: Vec<BlockId>,
    /// Adopted contexts (empty = unconditional op).
    ctxs: Vec<ContextChoice>,
    /// Dropped in pass 2 (needs-context site without a strong context).
    dropped: bool,
}

/// The I-SPY offline analyzer.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Planner<'a> {
    program: &'a Program,
    trace: &'a Trace,
    profile: &'a Profile,
    cfg: IspyConfig,
}

impl<'a> Planner<'a> {
    /// Creates a planner over one application's profile.
    pub fn new(
        program: &'a Program,
        trace: &'a Trace,
        profile: &'a Profile,
        cfg: IspyConfig,
    ) -> Self {
        Planner { program, trace, profile, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IspyConfig {
        &self.cfg
    }

    /// Predictor-candidate pool for one (site, target): the site's dynamic
    /// predecessors (Fig. 6's path-into-the-site blocks) plus miss-history
    /// blocks ranked by lift over their base rate.
    fn predictor_candidates(
        &self,
        line_stats: &ispy_profile::LineMissStats,
        site_block: BlockId,
        target_block: BlockId,
    ) -> Vec<BlockId> {
        let trace_len = self.profile.trace_len.max(1) as f64;
        let depth = self.profile.lbr_depth as f64;
        let mut scored: Vec<(f64, f64, BlockId)> = line_stats
            .ranked_predictors(&[site_block, target_block])
            .into_iter()
            .filter_map(|(b, pres)| {
                let frac = pres as f64 / line_stats.count as f64;
                // Keep even low-presence candidates: each may predict only
                // its own calling context's share of the instances
                // (multi-context discovery covers the rest).
                if frac < 0.05 {
                    return None;
                }
                let expected =
                    (self.profile.cfg.exec_count(b) as f64 * depth / trace_len).clamp(1e-9, 1.0);
                let lift = frac / expected;
                (lift >= 1.2).then_some((lift, frac, b))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.2 .0.cmp(&b.2 .0))
        });
        // Blocks on the paths *into the site* are the strongest
        // discriminators: at run time the LBR provably contains the site's
        // recent predecessors.
        let mut predictors: Vec<BlockId> = Vec::new();
        let push = |b: BlockId, out: &mut Vec<BlockId>| {
            if b != site_block && b != target_block && !out.contains(&b) {
                out.push(b);
            }
        };
        let site_preds = self.profile.cfg.preds(site_block);
        for &(p, _) in site_preds.iter().take(3) {
            push(p, &mut predictors);
        }
        if let Some(&(top_pred, _)) = site_preds.first() {
            for &(pp, _) in self.profile.cfg.preds(top_pred).iter().take(2) {
                push(pp, &mut predictors);
            }
        }
        for (_, _, b) in scored {
            push(b, &mut predictors);
        }
        predictors.truncate(self.cfg.ctx_candidates.min(ispy_profile::scan::MAX_CANDIDATES));
        predictors
    }

    /// Fills each query's target positions with its miss block's trace
    /// positions, in one pass over the trace.
    fn fill_positions(&self, queries: &mut [JointQuery], targets: &[BlockId]) {
        let needed: std::collections::HashSet<u32> = targets.iter().map(|b| b.0).collect();
        let mut positions: std::collections::HashMap<u32, Vec<u32>> =
            needed.iter().map(|&b| (b, Vec::new())).collect();
        for (idx, block) in self.trace.iter().enumerate() {
            if let Some(v) = positions.get_mut(&block.0) {
                v.push(idx as u32);
            }
        }
        for (q, target) in queries.iter_mut().zip(targets) {
            q.target_positions = positions[&target.0].clone();
        }
    }

    /// Runs the analysis and produces the plan.
    pub fn plan(&self) -> Plan {
        self.plan_impl(None)
    }

    /// Runs the analysis, reusing (and filling) `baseline`'s caches for the
    /// config-independent trace-scan state. Produces a bit-identical plan
    /// to [`Planner::plan`]; the baseline must have been created for this
    /// planner's exact (program, trace, profile).
    pub fn plan_with_baseline(&self, baseline: &PlannerBaseline) -> Plan {
        self.plan_impl(Some(baseline))
    }

    /// Resolves joint queries either directly (one fresh scan for the whole
    /// batch) or through the baseline's cache.
    fn resolve_queries(
        &self,
        queries: &mut [JointQuery],
        targets: &[BlockId],
        baseline: Option<&PlannerBaseline>,
    ) -> Vec<Arc<JointCounts>> {
        match baseline {
            None => {
                self.fill_positions(queries, targets);
                scan_joint(self.trace, self.profile.lbr_depth, queries)
                    .into_iter()
                    .map(Arc::new)
                    .collect()
            }
            Some(b) => b.resolve_joint(self, queries, targets),
        }
    }

    fn plan_impl(&self, baseline: Option<&PlannerBaseline>) -> Plan {
        let tele = ispy_telemetry::global();
        let _plan_span = tele.span("core.plan");
        let mut stats = PlanStats {
            coalesced_distance_hist: vec![0; usize::from(self.cfg.coalesce_bits)],
            lines_per_op_hist: vec![0; usize::from(self.cfg.coalesce_bits) + 1],
            ..Default::default()
        };

        // ---- Pass 1: site selection + joint-query construction. ----------
        let mut pending: Vec<Pending> = Vec::new();
        let mut queries: Vec<JointQuery> = Vec::new();
        // Miss block each query targets; positions are filled in afterwards.
        let mut query_targets: Vec<BlockId> = Vec::new();
        // Unchosen window candidates per line, for the retry pass.
        let mut spare_candidates: BTreeMap<u64, (BlockId, Vec<SiteCandidate>)> = BTreeMap::new();
        // With a baseline, every line's window candidates come from one
        // shared per-window-params map instead of per-plan searches.
        let cached_candidates = baseline.map(|b| b.candidates_for(self));
        for (line, line_stats) in self.profile.misses.lines_by_count() {
            if line_stats.count < self.cfg.min_miss_count {
                continue;
            }
            stats.target_lines += 1;
            let Some(target_block) = line_stats.dominant_block() else {
                stats.uncovered_lines += 1;
                continue;
            };
            let candidates = match &cached_candidates {
                Some(map) => map.get(&line.raw()).cloned().unwrap_or_default(),
                None => find_candidates(
                    &self.profile.cfg,
                    target_block,
                    self.cfg.min_prefetch_cycles,
                    self.cfg.max_prefetch_cycles,
                    self.cfg.max_search_nodes,
                ),
            };
            // Coverage- and precision-driven multi-site selection: a miss
            // reached over several paths gets one prefetch per covering
            // path; imprecise sites are admitted only because the run-time
            // condition will keep them accurate (§III-A).
            let policy = SelectionPolicy {
                max_sites: self.cfg.max_sites_per_line,
                min_presence: self.cfg.min_site_presence,
                min_unconditional_precision: self.cfg.min_unconditional_precision,
                min_conditional_precision: self.cfg.min_conditional_precision,
                allow_conditional: self.cfg.conditional && self.cfg.ctx_size > 0,
            };
            let sites = select_covering_sites(
                &candidates,
                |b| line_stats.history_presence.get(&b).copied().unwrap_or(0),
                |b| self.profile.cfg.exec_count(b),
                line_stats.count,
                &policy,
            );
            if sites.is_empty() {
                stats.uncovered_lines += 1;
                if candidates.is_empty() {
                    stats.lines_no_candidates += 1;
                } else {
                    stats.lines_no_sites += 1;
                }
                continue;
            }
            stats.covered_lines += 1;
            let chosen_blocks: Vec<BlockId> = sites.iter().map(|s| s.cand.block).collect();
            let spares: Vec<SiteCandidate> =
                candidates.iter().filter(|c| !chosen_blocks.contains(&c.block)).copied().collect();
            if !spares.is_empty() {
                spare_candidates.insert(line.raw(), (target_block, spares));
            }

            for site in sites {
                let mut entry = Pending {
                    site,
                    line,
                    query: None,
                    candidates: Vec::new(),
                    ctxs: Vec::new(),
                    dropped: false,
                };
                if self.cfg.conditional && self.cfg.ctx_size > 0 {
                    let predictors =
                        self.predictor_candidates(line_stats, site.cand.block, target_block);
                    if !predictors.is_empty() {
                        // Label horizon: how far ahead "reaching the target"
                        // still counts. The max prefetch distance expressed
                        // in blocks (ideal cycles / avg block cost), with
                        // slack for runtime path variance.
                        let horizon = (site.cand.blocks * 3).max(64);
                        // The context is scored on *reaching the miss block*
                        // (path probability, as in Fig. 6), not on the miss
                        // re-occurring: misses are self-erasing once the
                        // line is cached, whereas the prefetch should fire
                        // whenever the line is about to be needed (a
                        // resident prefetch is cheap, §VII). The block's
                        // trace positions are filled in after this pass.
                        queries.push(JointQuery {
                            site: site.cand.block,
                            target_positions: Vec::new(),
                            candidates: predictors.clone(),
                            horizon_blocks: horizon,
                        });
                        query_targets.push(target_block);
                        entry.query = Some(queries.len() - 1);
                        entry.candidates = predictors;
                    }
                }
                pending.push(entry);
            }
        }

        // ---- Pass 2: one linear scan answers every context query. --------
        if !queries.is_empty() {
            let results = self.resolve_queries(&mut queries, &query_targets, baseline);
            for entry in &mut pending {
                let Some(qi) = entry.query else {
                    // Needs-context sites with no query (no predictor
                    // candidates at all) cannot be repaired: drop them.
                    if entry.site.needs_ctx {
                        entry.dropped = true;
                    }
                    continue;
                };
                let counts = &results[qi];
                // Zero fan-out at run time: the site almost always leads to
                // the miss; no condition needed (§IV).
                let unconditional = counts.conditional_probability(0).unwrap_or(0.0);
                if unconditional >= self.cfg.zero_fanout_threshold {
                    continue;
                }
                let (ctxs, coverage) = discover_multi(
                    counts,
                    &entry.candidates,
                    self.cfg.ctx_size,
                    self.cfg.min_ctx_support,
                    self.cfg.ctx_gain_margin,
                    self.cfg.min_ctx_probability,
                    self.cfg.max_contexts_per_site,
                );
                if entry.site.needs_ctx {
                    // An imprecise site is kept conditionally when contexts
                    // make its firings likely to be useful; failing that it
                    // survives unconditionally only if its raw reach is
                    // already decent (most firings land on a soon-needed
                    // line); otherwise it is dropped.
                    if !ctxs.is_empty() {
                        entry.ctxs = ctxs;
                    } else if unconditional < self.cfg.min_unconditional_reach {
                        entry.dropped = true;
                    }
                } else if !ctxs.is_empty() && coverage >= 0.8 {
                    // A precise site adopts contexts only when they retain
                    // (almost) all of its coverage while raising accuracy.
                    entry.ctxs = ctxs;
                }
                if entry.dropped && std::env::var_os("ISPY_DEBUG").is_some() {
                    eprintln!(
                        "DROP site={} line={} prec={:.3} pres={:.2} uncond={:.3} cands={:?} occ={:?} hits={:?}",
                        entry.site.cand.block,
                        entry.line,
                        entry.site.precision,
                        entry.site.presence_frac,
                        unconditional,
                        entry.candidates,
                        counts.occurrences,
                        counts.hits,
                    );
                }
            }
        }

        // ---- Pass 2.5: retry lines whose every injection was dropped. -----
        // A line can lose all its first-choice sites when none of them finds
        // a usable context; its remaining window candidates get one more
        // attempt (always as conditional sites).
        if self.cfg.conditional && self.cfg.ctx_size > 0 && !spare_candidates.is_empty() {
            let mut alive: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
            for e in &pending {
                let a = alive.entry(e.line.raw()).or_insert(false);
                *a |= !e.dropped;
            }
            let mut retry_entries: Vec<Pending> = Vec::new();
            let mut retry_queries: Vec<JointQuery> = Vec::new();
            let mut retry_targets: Vec<BlockId> = Vec::new();
            for (&line_raw, (target_block, spares)) in &spare_candidates {
                if alive.get(&line_raw).copied().unwrap_or(false) {
                    continue;
                }
                let line = Line::new(line_raw);
                let Some(line_stats) = self.profile.misses.line(line) else { continue };
                let mut ranked = spares.clone();
                let presence =
                    |b: BlockId| line_stats.history_presence.get(&b).copied().unwrap_or(0);
                ranked.sort_by(|a, b| {
                    presence(b.block).cmp(&presence(a.block)).then_with(|| {
                        b.cycles
                            .partial_cmp(&a.cycles)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.block.0.cmp(&b.block.0))
                    })
                });
                let mut taken = 0;
                for cand in ranked {
                    if taken >= 2 {
                        break;
                    }
                    let pres = presence(cand.block);
                    let execs = self.profile.cfg.exec_count(cand.block).max(1);
                    let precision = (pres as f64 / execs as f64).min(1.0);
                    // Even a conditional op *executes* on every site pass;
                    // the precision floor bounds the dynamic overhead.
                    if precision < self.cfg.min_conditional_precision {
                        continue;
                    }
                    let predictors =
                        self.predictor_candidates(line_stats, cand.block, *target_block);
                    if predictors.is_empty() {
                        continue;
                    }
                    taken += 1;
                    let site = SelectedSite {
                        cand,
                        presence_frac: pres as f64 / line_stats.count.max(1) as f64,
                        precision,
                        needs_ctx: true,
                    };
                    let horizon = (cand.blocks * 3).max(64);
                    retry_queries.push(JointQuery {
                        site: cand.block,
                        target_positions: Vec::new(),
                        candidates: predictors.clone(),
                        horizon_blocks: horizon,
                    });
                    retry_targets.push(*target_block);
                    retry_entries.push(Pending {
                        site,
                        line,
                        query: Some(retry_queries.len() - 1),
                        candidates: predictors,
                        ctxs: Vec::new(),
                        dropped: false,
                    });
                }
            }
            if !retry_queries.is_empty() {
                let results = self.resolve_queries(&mut retry_queries, &retry_targets, baseline);
                for entry in &mut retry_entries {
                    let counts = &results[entry.query.expect("retry entries carry queries")];
                    let unconditional = counts.conditional_probability(0).unwrap_or(0.0);
                    if unconditional >= self.cfg.zero_fanout_threshold {
                        continue;
                    }
                    let (ctxs, _) = discover_multi(
                        counts,
                        &entry.candidates,
                        self.cfg.ctx_size,
                        self.cfg.min_ctx_support,
                        self.cfg.ctx_gain_margin,
                        self.cfg.min_ctx_probability,
                        self.cfg.max_contexts_per_site,
                    );
                    if !ctxs.is_empty() {
                        entry.ctxs = ctxs;
                    } else if unconditional < self.cfg.min_unconditional_reach
                        || entry.site.precision < self.cfg.min_conditional_precision
                    {
                        entry.dropped = true;
                    }
                }
                pending.extend(retry_entries);
            }
        }

        // ---- Pass 3: group by (site, context), coalesce, emit. ------------
        type GroupKey = (u32, Vec<u32>);
        let mut groups: BTreeMap<GroupKey, Vec<(Line, LineMeta)>> = BTreeMap::new();
        for entry in &pending {
            if entry.dropped {
                stats.entries_dropped += 1;
                continue;
            }
            let meta = LineMeta {
                miss_count: self.profile.misses.line(entry.line).map_or(0, |s| s.count),
                site_presence: entry.site.presence_frac,
                site_precision: entry.site.precision,
                reach_prob: entry.site.cand.reach_prob,
                window_cycles: entry.site.cand.cycles,
                ctx: None,
            };
            if entry.ctxs.is_empty() {
                groups
                    .entry((entry.site.cand.block.0, Vec::new()))
                    .or_default()
                    .push((entry.line, meta));
                continue;
            }
            for ctx in &entry.ctxs {
                let mut ids: Vec<u32> = ctx.blocks.iter().map(|b| b.0).collect();
                ids.sort_unstable();
                stats.contexts_adopted += 1;
                stats.context_blocks_total += ctx.blocks.len();
                let meta =
                    LineMeta { ctx: Some((ctx.probability, ctx.baseline, ctx.support)), ..meta };
                groups.entry((entry.site.cand.block.0, ids)).or_default().push((entry.line, meta));
            }
        }

        let mut injections = InjectionMap::new();
        let mut provenance: Vec<ProvenanceRecord> = Vec::new();
        let mut context_details: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for ((site_raw, ctx_blocks), entries) in groups {
            let site = BlockId(site_raw);
            let ctx_hash: Option<ContextHash> = if ctx_blocks.is_empty() {
                None
            } else {
                context_details.push((site, ctx_blocks.iter().map(|&b| BlockId(b)).collect()));
                Some(self.cfg.hash.context_hash(
                    ctx_blocks.iter().map(|&b| self.program.block(BlockId(b)).start()),
                ))
            };
            // Per-line metadata for the provenance records; keep-first on a
            // duplicate line keeps the choice deterministic (entries arrive
            // in pass order).
            let mut metas: BTreeMap<u64, LineMeta> = BTreeMap::new();
            let mut lines: Vec<Line> = Vec::with_capacity(entries.len());
            for (line, meta) in entries {
                lines.push(line);
                metas.entry(line.raw()).or_insert(meta);
            }
            let packed: Vec<CoalescedGroup> = if self.cfg.coalescing {
                coalesce_lines(lines, self.cfg.coalesce_bits)
            } else {
                let mut ls = lines;
                ls.sort();
                ls.dedup();
                ls.into_iter().map(|base| CoalescedGroup { base, mask: None }).collect()
            };
            for group in packed {
                let op = match (ctx_hash, group.mask) {
                    (Some(ctx), Some(mask)) => {
                        stats.ops_cond_coalesced += 1;
                        PrefetchOp::CondCoalesced { base: group.base, mask, ctx }
                    }
                    (Some(ctx), None) => {
                        stats.ops_cond += 1;
                        PrefetchOp::Cond { target: group.base, ctx }
                    }
                    (None, Some(mask)) => {
                        stats.ops_coalesced += 1;
                        PrefetchOp::Coalesced { base: group.base, mask }
                    }
                    (None, None) => {
                        stats.ops_plain += 1;
                        PrefetchOp::Plain { target: group.base }
                    }
                };
                let mut targets = vec![group.base];
                if let Some(mask) = group.mask {
                    for extra in mask.decode(group.base) {
                        let d = extra.distance_from(group.base).expect("forward") as usize;
                        stats.coalesced_distance_hist[d - 1] += 1;
                        targets.push(extra);
                    }
                }
                let lines_count = group.line_count() as usize;
                let idx = (lines_count - 1).min(stats.lines_per_op_hist.len() - 1);
                stats.lines_per_op_hist[idx] += 1;
                let id = ProvenanceId(provenance.len() as u32);
                let rec_lines: Vec<PlannedLine> = targets
                    .iter()
                    .map(|&l| {
                        let meta = metas.get(&l.raw()).copied().expect("emitted line was grouped");
                        PlannedLine {
                            line: l,
                            miss_count: meta.miss_count,
                            site_presence: meta.site_presence,
                            site_precision: meta.site_precision,
                            reach_prob: meta.reach_prob,
                            window_cycles: meta.window_cycles,
                            ctx_probability: meta.ctx.map(|(p, _, _)| p),
                            ctx_baseline: meta.ctx.map(|(_, b, _)| b),
                            ctx_support: meta.ctx.map(|(_, _, s)| s),
                        }
                    })
                    .collect();
                provenance.push(ProvenanceRecord {
                    id,
                    site,
                    mnemonic: op.mnemonic(),
                    base_line: group.base,
                    mask: group.mask,
                    context_blocks: ctx_blocks.iter().map(|&b| BlockId(b)).collect(),
                    lines: rec_lines,
                });
                injections.push_traced(site, op, id);
            }
        }

        stats.sites = injections.num_sites();
        stats.injected_bytes = injections.injected_bytes();
        stats.static_increase = injections.static_increase(self.program.text_bytes());
        tele.add("core.plan.calls", 1);
        tele.add("core.plan.target_lines", stats.target_lines as u64);
        tele.add("core.plan.covered_lines", stats.covered_lines as u64);
        tele.add("core.plan.entries_dropped", stats.entries_dropped as u64);
        tele.add("core.plan.contexts_adopted", stats.contexts_adopted as u64);
        tele.add("core.plan.ops_emitted", provenance.len() as u64);
        Plan { injections, stats, context_details, provenance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_profile::{profile, SampleRate};
    use ispy_sim::{run, RunOptions, SimConfig};
    use ispy_trace::apps;

    fn planned(
        model: ispy_trace::AppModel,
        events: usize,
        cfg: IspyConfig,
    ) -> (Program, Trace, Plan) {
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), events);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let plan = Planner::new(&program, &trace, &prof, cfg).plan();
        (program, trace, plan)
    }

    #[test]
    fn plan_produces_ops_and_accounting() {
        let (_, _, plan) =
            planned(apps::cassandra().scaled_down(30), 30_000, IspyConfig::default());
        assert!(plan.stats.target_lines > 10);
        assert!(plan.stats.covered_lines > 0);
        assert_eq!(plan.stats.ops_total(), plan.injections.num_ops());
        assert!(plan.stats.injected_bytes > 0);
        assert!(plan.stats.static_increase > 0.0);
    }

    #[test]
    fn plan_speeds_up_execution() {
        let (program, trace, plan) =
            planned(apps::cassandra().scaled_down(30), 40_000, IspyConfig::default());
        let scfg = SimConfig::default();
        let base = run(&program, &trace, &scfg, RunOptions::default());
        let with = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&plan.injections), ..Default::default() },
        );
        assert!(
            with.cycles < base.cycles,
            "I-SPY must speed up: {} vs {}",
            with.cycles,
            base.cycles
        );
        assert!(with.i_misses < base.i_misses);
        assert!(with.pf_useful > 0);
    }

    #[test]
    fn conditional_only_has_no_coalesced_ops() {
        let (_, _, plan) =
            planned(apps::cassandra().scaled_down(30), 20_000, IspyConfig::conditional_only());
        assert_eq!(plan.stats.ops_coalesced, 0);
        assert_eq!(plan.stats.ops_cond_coalesced, 0);
    }

    #[test]
    fn coalescing_only_has_no_conditional_ops() {
        let (_, _, plan) =
            planned(apps::cassandra().scaled_down(30), 20_000, IspyConfig::coalescing_only());
        assert_eq!(plan.stats.ops_cond, 0);
        assert_eq!(plan.stats.ops_cond_coalesced, 0);
        assert_eq!(plan.stats.contexts_adopted, 0);
    }

    #[test]
    fn coalescing_reduces_op_count() {
        let model = apps::verilator().scaled_down(30);
        let (_, _, with) = planned(model.clone(), 20_000, IspyConfig::coalescing_only());
        let (_, _, without) = planned(model, 20_000, IspyConfig::plain());
        assert!(
            with.stats.ops_total() < without.stats.ops_total(),
            "coalescing must shrink the op count on spatially-local verilator: {} vs {}",
            with.stats.ops_total(),
            without.stats.ops_total()
        );
        assert!(with.stats.injected_bytes < without.stats.injected_bytes);
    }

    #[test]
    fn injections_respect_coalesce_window() {
        let (_, _, plan) =
            planned(apps::verilator().scaled_down(30), 20_000, IspyConfig::default());
        for (_, ops) in plan.injections.iter() {
            for op in ops {
                let targets = op.target_lines();
                let base = op.base_line();
                for t in &targets {
                    let d = t.distance_from(base).expect("targets at/after base");
                    assert!(d <= 8, "distance {d} exceeds the 8-line window");
                }
            }
        }
    }

    #[test]
    fn baseline_replanning_matches_fresh_plans() {
        // One shared baseline across every config variant of one app must
        // reproduce each fresh plan exactly — injections AND stats — even
        // though candidates, positions, and joint counts come from caches
        // warmed by *other* variants.
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 25_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let baseline = PlannerBaseline::new();
        let variants = vec![
            IspyConfig::default(),
            IspyConfig::conditional_only(),
            IspyConfig::coalescing_only(),
            IspyConfig::plain(),
            IspyConfig::default().with_ctx_size(2),
            IspyConfig::default().with_ctx_size(8),
            IspyConfig::default().with_distances(15, 200),
            IspyConfig::default().with_distances(27, 120),
            IspyConfig::default().with_coalesce_bits(4),
        ];
        for cfg in variants {
            let planner = Planner::new(&program, &trace, &prof, cfg.clone());
            let fresh = planner.plan();
            let reused = planner.plan_with_baseline(&baseline);
            assert_eq!(fresh.injections, reused.injections, "cfg {cfg:?}");
            assert_eq!(fresh.stats, reused.stats, "cfg {cfg:?}");
            assert_eq!(fresh.context_details, reused.context_details, "cfg {cfg:?}");
            assert_eq!(fresh.provenance, reused.provenance, "cfg {cfg:?}");
        }
    }

    #[test]
    fn provenance_records_cover_every_op() {
        let (_, _, plan) =
            planned(apps::cassandra().scaled_down(30), 30_000, IspyConfig::default());
        // One record per emitted op, ids dense in emission order.
        assert_eq!(plan.provenance.len(), plan.injections.num_ops());
        for (i, rec) in plan.provenance.iter().enumerate() {
            assert_eq!(rec.id.index(), i);
            assert_eq!(rec.line_count() as usize, rec.lines.len());
            assert!(!rec.lines.is_empty());
        }
        // Every op's traced id resolves to a record that describes that op.
        let mut seen = vec![false; plan.provenance.len()];
        for (site, ops) in plan.injections.iter() {
            let ids = plan.injections.ids_at(site);
            assert_eq!(ids.len(), ops.len());
            for (op, id) in ops.iter().zip(ids) {
                let id = id.expect("planner-emitted ops carry provenance");
                let rec = &plan.provenance[id.index()];
                assert_eq!(rec.site, site);
                assert_eq!(rec.mnemonic, op.mnemonic());
                assert_eq!(rec.base_line, op.base_line());
                assert_eq!(rec.line_count() as usize, op.target_lines().len());
                assert_eq!(rec.is_conditional(), op.condition().is_some());
                assert!(!seen[id.index()], "duplicate provenance id");
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every record must be referenced by an op");
    }

    #[test]
    fn baseline_is_shareable_across_threads() {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 15_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let baseline = PlannerBaseline::new();
        let serial: Vec<Plan> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| {
                Planner::new(&program, &trace, &prof, IspyConfig::default().with_ctx_size(n)).plan()
            })
            .collect();
        let parallel: Vec<Plan> = std::thread::scope(|s| {
            let handles: Vec<_> = [1usize, 2, 4, 8]
                .iter()
                .map(|&n| {
                    let (program, trace, prof, baseline) = (&program, &trace, &prof, &baseline);
                    s.spawn(move || {
                        Planner::new(program, trace, prof, IspyConfig::default().with_ctx_size(n))
                            .plan_with_baseline(baseline)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.injections, b.injections);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn deterministic_planning() {
        let model = apps::kafka().scaled_down(30);
        let (_, _, a) = planned(model.clone(), 15_000, IspyConfig::default());
        let (_, _, b) = planned(model, 15_000, IspyConfig::default());
        assert_eq!(a.injections, b.injections);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn stats_helpers() {
        let stats = PlanStats {
            contexts_adopted: 2,
            context_blocks_total: 6,
            target_lines: 10,
            covered_lines: 8,
            lines_per_op_hist: vec![5, 3, 2, 0, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        assert!((stats.avg_ctx_blocks() - 3.0).abs() < 1e-12);
        assert!((stats.planned_coverage() - 0.8).abs() < 1e-12);
        // Multi-line ops: 3 two-line + 2 three-line; below 4 lines = all 5.
        assert!((stats.coalesced_fraction_below(4) - 1.0).abs() < 1e-12);
        assert!((stats.coalesced_fraction_below(3) - 0.6).abs() < 1e-12);
    }
}
