//! The end-to-end offline analysis (§IV steps 2–3).

use crate::coalesce::{coalesce_lines, CoalescedGroup};
use crate::config::IspyConfig;
use crate::context::{discover_multi, ContextChoice};
use crate::window::{find_candidates, select_covering_sites, SelectedSite, SelectionPolicy, SiteCandidate};
use ispy_isa::{ContextHash, InjectionMap, PrefetchOp};
use ispy_profile::{scan_joint, JointQuery, Profile};
use ispy_trace::{BlockId, Line, Program, Trace};
use std::collections::BTreeMap;

/// Aggregate statistics about a produced plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanStats {
    /// Missing lines that met the miss-count threshold.
    pub target_lines: usize,
    /// Lines for which a timely injection site was found.
    pub covered_lines: usize,
    /// Lines with no predecessor inside the prefetch window.
    pub uncovered_lines: usize,
    /// Distinct injection sites used.
    pub sites: usize,
    /// Injected instructions by mnemonic.
    pub ops_plain: usize,
    /// `Cprefetch` count.
    pub ops_cond: usize,
    /// `Lprefetch` count.
    pub ops_coalesced: usize,
    /// `CLprefetch` count.
    pub ops_cond_coalesced: usize,
    /// Bytes added to the text segment.
    pub injected_bytes: u64,
    /// Static code-footprint increase (bytes injected / original text).
    pub static_increase: f64,
    /// (site, line) pairs for which a miss context was adopted.
    pub contexts_adopted: usize,
    /// Total predictor blocks across adopted contexts.
    pub context_blocks_total: usize,
    /// Histogram of coalesced extra-line distances (index = distance − 1).
    pub coalesced_distance_hist: Vec<u64>,
    /// Histogram of lines per injected op (index = lines − 1, saturating).
    pub lines_per_op_hist: Vec<u64>,
    /// Lines with no dynamic predecessor at all inside the prefetch window.
    pub lines_no_candidates: usize,
    /// Lines whose window candidates all failed the coverage/precision
    /// floors.
    pub lines_no_sites: usize,
    /// (site, line) injections dropped in pass 2 for lack of a strong
    /// context.
    pub entries_dropped: usize,
}

impl PlanStats {
    /// Total injected instructions.
    pub fn ops_total(&self) -> usize {
        self.ops_plain + self.ops_cond + self.ops_coalesced + self.ops_cond_coalesced
    }

    /// Mean predictor blocks per adopted context.
    pub fn avg_ctx_blocks(&self) -> f64 {
        if self.contexts_adopted == 0 {
            0.0
        } else {
            self.context_blocks_total as f64 / self.contexts_adopted as f64
        }
    }

    /// Miss coverage of the plan at the planning level: covered / targeted.
    pub fn planned_coverage(&self) -> f64 {
        if self.target_lines == 0 {
            0.0
        } else {
            self.covered_lines as f64 / self.target_lines as f64
        }
    }

    /// Fraction of coalesced ops that bring in fewer than `n` lines
    /// (paper Fig. 20 reports < 4 lines for 82.4 % of coalesced prefetches).
    pub fn coalesced_fraction_below(&self, n: usize) -> f64 {
        let multi: u64 = self.lines_per_op_hist.iter().skip(1).sum();
        if multi == 0 {
            return 0.0;
        }
        let below: u64 = self.lines_per_op_hist.iter().take(n.saturating_sub(1)).skip(1).sum();
        below as f64 / multi as f64
    }
}

/// A finished plan: the injection map plus its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Injected prefetch instructions, by site.
    pub injections: InjectionMap,
    /// Accounting for the evaluation harness.
    pub stats: PlanStats,
    /// The predictor blocks behind each adopted context, per site — kept so
    /// the harness can measure the context hash's false-positive rate
    /// (Fig. 21) against ground truth.
    pub context_details: Vec<(BlockId, Vec<BlockId>)>,
}

/// One miss line's planning state between passes.
struct Pending {
    site: SelectedSite,
    line: Line,
    /// Index of this entry's query in the joint scan, if one was issued.
    query: Option<usize>,
    /// Predictor candidates the query covered.
    candidates: Vec<BlockId>,
    /// Adopted contexts (empty = unconditional op).
    ctxs: Vec<ContextChoice>,
    /// Dropped in pass 2 (needs-context site without a strong context).
    dropped: bool,
}

/// The I-SPY offline analyzer.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Planner<'a> {
    program: &'a Program,
    trace: &'a Trace,
    profile: &'a Profile,
    cfg: IspyConfig,
}

impl<'a> Planner<'a> {
    /// Creates a planner over one application's profile.
    pub fn new(
        program: &'a Program,
        trace: &'a Trace,
        profile: &'a Profile,
        cfg: IspyConfig,
    ) -> Self {
        Planner { program, trace, profile, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IspyConfig {
        &self.cfg
    }


    /// Predictor-candidate pool for one (site, target): the site's dynamic
    /// predecessors (Fig. 6's path-into-the-site blocks) plus miss-history
    /// blocks ranked by lift over their base rate.
    fn predictor_candidates(
        &self,
        line_stats: &ispy_profile::LineMissStats,
        site_block: BlockId,
        target_block: BlockId,
    ) -> Vec<BlockId> {
        let trace_len = self.profile.trace_len.max(1) as f64;
        let depth = self.profile.lbr_depth as f64;
        let mut scored: Vec<(f64, f64, BlockId)> = line_stats
            .ranked_predictors(&[site_block, target_block])
            .into_iter()
            .filter_map(|(b, pres)| {
                let frac = pres as f64 / line_stats.count as f64;
                // Keep even low-presence candidates: each may predict only
                // its own calling context's share of the instances
                // (multi-context discovery covers the rest).
                if frac < 0.05 {
                    return None;
                }
                let expected =
                    (self.profile.cfg.exec_count(b) as f64 * depth / trace_len).min(1.0).max(1e-9);
                let lift = frac / expected;
                (lift >= 1.2).then_some((lift, frac, b))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.2 .0.cmp(&b.2 .0))
        });
        // Blocks on the paths *into the site* are the strongest
        // discriminators: at run time the LBR provably contains the site's
        // recent predecessors.
        let mut predictors: Vec<BlockId> = Vec::new();
        let push = |b: BlockId, out: &mut Vec<BlockId>| {
            if b != site_block && b != target_block && !out.contains(&b) {
                out.push(b);
            }
        };
        let site_preds = self.profile.cfg.preds(site_block);
        for &(p, _) in site_preds.iter().take(3) {
            push(p, &mut predictors);
        }
        if let Some(&(top_pred, _)) = site_preds.first() {
            for &(pp, _) in self.profile.cfg.preds(top_pred).iter().take(2) {
                push(pp, &mut predictors);
            }
        }
        for (_, _, b) in scored {
            push(b, &mut predictors);
        }
        predictors.truncate(self.cfg.ctx_candidates.min(ispy_profile::scan::MAX_CANDIDATES));
        predictors
    }

    /// Fills each query's target positions with its miss block's trace
    /// positions, in one pass over the trace.
    fn fill_positions(&self, queries: &mut [JointQuery], targets: &[BlockId]) {
        let needed: std::collections::HashSet<u32> = targets.iter().map(|b| b.0).collect();
        let mut positions: std::collections::HashMap<u32, Vec<u32>> =
            needed.iter().map(|&b| (b, Vec::new())).collect();
        for (idx, block) in self.trace.iter().enumerate() {
            if let Some(v) = positions.get_mut(&block.0) {
                v.push(idx as u32);
            }
        }
        for (q, target) in queries.iter_mut().zip(targets) {
            q.target_positions = positions[&target.0].clone();
        }
    }

    /// Runs the analysis and produces the plan.
    pub fn plan(&self) -> Plan {
        let mut stats = PlanStats {
            coalesced_distance_hist: vec![0; usize::from(self.cfg.coalesce_bits)],
            lines_per_op_hist: vec![0; usize::from(self.cfg.coalesce_bits) + 1],
            ..Default::default()
        };

        // ---- Pass 1: site selection + joint-query construction. ----------
        let mut pending: Vec<Pending> = Vec::new();
        let mut queries: Vec<JointQuery> = Vec::new();
        // Miss block each query targets; positions are filled in afterwards.
        let mut query_targets: Vec<BlockId> = Vec::new();
        // Unchosen window candidates per line, for the retry pass.
        let mut spare_candidates: BTreeMap<u64, (BlockId, Vec<SiteCandidate>)> = BTreeMap::new();
        for (line, line_stats) in self.profile.misses.lines_by_count() {
            if line_stats.count < self.cfg.min_miss_count {
                continue;
            }
            stats.target_lines += 1;
            let Some(target_block) = line_stats.dominant_block() else {
                stats.uncovered_lines += 1;
                continue;
            };
            let candidates = find_candidates(
                &self.profile.cfg,
                target_block,
                self.cfg.min_prefetch_cycles,
                self.cfg.max_prefetch_cycles,
                self.cfg.max_search_nodes,
            );
            // Coverage- and precision-driven multi-site selection: a miss
            // reached over several paths gets one prefetch per covering
            // path; imprecise sites are admitted only because the run-time
            // condition will keep them accurate (§III-A).
            let policy = SelectionPolicy {
                max_sites: self.cfg.max_sites_per_line,
                min_presence: self.cfg.min_site_presence,
                min_unconditional_precision: self.cfg.min_unconditional_precision,
                min_conditional_precision: self.cfg.min_conditional_precision,
                allow_conditional: self.cfg.conditional && self.cfg.ctx_size > 0,
            };
            let sites = select_covering_sites(
                &candidates,
                |b| line_stats.history_presence.get(&b).copied().unwrap_or(0),
                |b| self.profile.cfg.exec_count(b),
                line_stats.count,
                &policy,
            );
            if sites.is_empty() {
                stats.uncovered_lines += 1;
                if candidates.is_empty() {
                    stats.lines_no_candidates += 1;
                } else {
                    stats.lines_no_sites += 1;
                }
                continue;
            }
            stats.covered_lines += 1;
            let chosen_blocks: Vec<BlockId> = sites.iter().map(|s| s.cand.block).collect();
            let spares: Vec<SiteCandidate> = candidates
                .iter()
                .filter(|c| !chosen_blocks.contains(&c.block))
                .copied()
                .collect();
            if !spares.is_empty() {
                spare_candidates.insert(line.raw(), (target_block, spares));
            }

            for site in sites {
                let mut entry = Pending {
                    site,
                    line,
                    query: None,
                    candidates: Vec::new(),
                    ctxs: Vec::new(),
                    dropped: false,
                };
                if self.cfg.conditional && self.cfg.ctx_size > 0 {
                    let predictors =
                        self.predictor_candidates(line_stats, site.cand.block, target_block);
                    if !predictors.is_empty() {
                        // Label horizon: how far ahead "reaching the target"
                        // still counts. The max prefetch distance expressed
                        // in blocks (ideal cycles / avg block cost), with
                        // slack for runtime path variance.
                        let horizon = (site.cand.blocks * 3).max(64);
                        // The context is scored on *reaching the miss block*
                        // (path probability, as in Fig. 6), not on the miss
                        // re-occurring: misses are self-erasing once the
                        // line is cached, whereas the prefetch should fire
                        // whenever the line is about to be needed (a
                        // resident prefetch is cheap, §VII). The block's
                        // trace positions are filled in after this pass.
                        queries.push(JointQuery {
                            site: site.cand.block,
                            target_positions: Vec::new(),
                            candidates: predictors.clone(),
                            horizon_blocks: horizon,
                        });
                        query_targets.push(target_block);
                        entry.query = Some(queries.len() - 1);
                        entry.candidates = predictors;
                    }
                }
                pending.push(entry);
            }
        }

        // ---- Pass 2: one linear scan answers every context query. --------
        if !queries.is_empty() {
            self.fill_positions(&mut queries, &query_targets);
            let results = scan_joint(self.trace, self.profile.lbr_depth, &queries);
            for entry in &mut pending {
                let Some(qi) = entry.query else {
                    // Needs-context sites with no query (no predictor
                    // candidates at all) cannot be repaired: drop them.
                    if entry.site.needs_ctx {
                        entry.dropped = true;
                    }
                    continue;
                };
                let counts = &results[qi];
                // Zero fan-out at run time: the site almost always leads to
                // the miss; no condition needed (§IV).
                let unconditional = counts.conditional_probability(0).unwrap_or(0.0);
                if unconditional >= self.cfg.zero_fanout_threshold {
                    continue;
                }
                let (ctxs, coverage) = discover_multi(
                    counts,
                    &entry.candidates,
                    self.cfg.ctx_size,
                    self.cfg.min_ctx_support,
                    self.cfg.ctx_gain_margin,
                    self.cfg.min_ctx_probability,
                    self.cfg.max_contexts_per_site,
                );
                if entry.site.needs_ctx {
                    // An imprecise site is kept conditionally when contexts
                    // make its firings likely to be useful; failing that it
                    // survives unconditionally only if its raw reach is
                    // already decent (most firings land on a soon-needed
                    // line); otherwise it is dropped.
                    if !ctxs.is_empty() {
                        entry.ctxs = ctxs;
                    } else if unconditional < self.cfg.min_unconditional_reach {
                        entry.dropped = true;
                    }
                } else if !ctxs.is_empty() && coverage >= 0.8 {
                    // A precise site adopts contexts only when they retain
                    // (almost) all of its coverage while raising accuracy.
                    entry.ctxs = ctxs;
                }
                if entry.dropped && std::env::var_os("ISPY_DEBUG").is_some() {
                    eprintln!(
                        "DROP site={} line={} prec={:.3} pres={:.2} uncond={:.3} cands={:?} occ={:?} hits={:?}",
                        entry.site.cand.block,
                        entry.line,
                        entry.site.precision,
                        entry.site.presence_frac,
                        unconditional,
                        entry.candidates,
                        counts.occurrences,
                        counts.hits,
                    );
                }
            }
        }

        // ---- Pass 2.5: retry lines whose every injection was dropped. -----
        // A line can lose all its first-choice sites when none of them finds
        // a usable context; its remaining window candidates get one more
        // attempt (always as conditional sites).
        if self.cfg.conditional && self.cfg.ctx_size > 0 && !spare_candidates.is_empty() {
            let mut alive: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
            for e in &pending {
                let a = alive.entry(e.line.raw()).or_insert(false);
                *a |= !e.dropped;
            }
            let mut retry_entries: Vec<Pending> = Vec::new();
            let mut retry_queries: Vec<JointQuery> = Vec::new();
            let mut retry_targets: Vec<BlockId> = Vec::new();
            for (&line_raw, (target_block, spares)) in &spare_candidates {
                if alive.get(&line_raw).copied().unwrap_or(false) {
                    continue;
                }
                let line = Line::new(line_raw);
                let Some(line_stats) = self.profile.misses.line(line) else { continue };
                let mut ranked = spares.clone();
                let presence =
                    |b: BlockId| line_stats.history_presence.get(&b).copied().unwrap_or(0);
                ranked.sort_by(|a, b| {
                    presence(b.block).cmp(&presence(a.block)).then_with(|| {
                        b.cycles
                            .partial_cmp(&a.cycles)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.block.0.cmp(&b.block.0))
                    })
                });
                let mut taken = 0;
                for cand in ranked {
                    if taken >= 2 {
                        break;
                    }
                    let pres = presence(cand.block);
                    let execs = self.profile.cfg.exec_count(cand.block).max(1);
                    let precision = (pres as f64 / execs as f64).min(1.0);
                    // Even a conditional op *executes* on every site pass;
                    // the precision floor bounds the dynamic overhead.
                    if precision < self.cfg.min_conditional_precision {
                        continue;
                    }
                    let predictors =
                        self.predictor_candidates(line_stats, cand.block, *target_block);
                    if predictors.is_empty() {
                        continue;
                    }
                    taken += 1;
                    let site = SelectedSite {
                        cand,
                        presence_frac: pres as f64 / line_stats.count.max(1) as f64,
                        precision,
                        needs_ctx: true,
                    };
                    let horizon = (cand.blocks * 3).max(64);
                    retry_queries.push(JointQuery {
                        site: cand.block,
                        target_positions: Vec::new(),
                        candidates: predictors.clone(),
                        horizon_blocks: horizon,
                    });
                    retry_targets.push(*target_block);
                    retry_entries.push(Pending {
                        site,
                        line,
                        query: Some(retry_queries.len() - 1),
                        candidates: predictors,
                        ctxs: Vec::new(),
                        dropped: false,
                    });
                }
            }
            if !retry_queries.is_empty() {
                self.fill_positions(&mut retry_queries, &retry_targets);
                let results = scan_joint(self.trace, self.profile.lbr_depth, &retry_queries);
                for entry in &mut retry_entries {
                    let counts = &results[entry.query.expect("retry entries carry queries")];
                    let unconditional = counts.conditional_probability(0).unwrap_or(0.0);
                    if unconditional >= self.cfg.zero_fanout_threshold {
                        continue;
                    }
                    let (ctxs, _) = discover_multi(
                        counts,
                        &entry.candidates,
                        self.cfg.ctx_size,
                        self.cfg.min_ctx_support,
                        self.cfg.ctx_gain_margin,
                        self.cfg.min_ctx_probability,
                        self.cfg.max_contexts_per_site,
                    );
                    if !ctxs.is_empty() {
                        entry.ctxs = ctxs;
                    } else if unconditional < self.cfg.min_unconditional_reach
                        || entry.site.precision < self.cfg.min_conditional_precision
                    {
                        entry.dropped = true;
                    }
                }
                pending.extend(retry_entries);
            }
        }

        // ---- Pass 3: group by (site, context), coalesce, emit. ------------
        let mut groups: BTreeMap<(u32, Vec<u32>), Vec<Line>> = BTreeMap::new();
        for entry in &pending {
            if entry.dropped {
                stats.entries_dropped += 1;
                continue;
            }
            if entry.ctxs.is_empty() {
                groups.entry((entry.site.cand.block.0, Vec::new())).or_default().push(entry.line);
                continue;
            }
            for ctx in &entry.ctxs {
                let mut ids: Vec<u32> = ctx.blocks.iter().map(|b| b.0).collect();
                ids.sort_unstable();
                stats.contexts_adopted += 1;
                stats.context_blocks_total += ctx.blocks.len();
                groups.entry((entry.site.cand.block.0, ids)).or_default().push(entry.line);
            }
        }

        let mut injections = InjectionMap::new();
        let mut context_details: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for ((site_raw, ctx_blocks), lines) in groups {
            let site = BlockId(site_raw);
            let ctx_hash: Option<ContextHash> = if ctx_blocks.is_empty() {
                None
            } else {
                context_details
                    .push((site, ctx_blocks.iter().map(|&b| BlockId(b)).collect()));
                Some(self.cfg.hash.context_hash(
                    ctx_blocks.iter().map(|&b| self.program.block(BlockId(b)).start()),
                ))
            };
            let packed: Vec<CoalescedGroup> = if self.cfg.coalescing {
                coalesce_lines(lines, self.cfg.coalesce_bits)
            } else {
                let mut ls = lines;
                ls.sort();
                ls.dedup();
                ls.into_iter().map(|base| CoalescedGroup { base, mask: None }).collect()
            };
            for group in packed {
                let op = match (ctx_hash, group.mask) {
                    (Some(ctx), Some(mask)) => {
                        stats.ops_cond_coalesced += 1;
                        PrefetchOp::CondCoalesced { base: group.base, mask, ctx }
                    }
                    (Some(ctx), None) => {
                        stats.ops_cond += 1;
                        PrefetchOp::Cond { target: group.base, ctx }
                    }
                    (None, Some(mask)) => {
                        stats.ops_coalesced += 1;
                        PrefetchOp::Coalesced { base: group.base, mask }
                    }
                    (None, None) => {
                        stats.ops_plain += 1;
                        PrefetchOp::Plain { target: group.base }
                    }
                };
                if let Some(mask) = group.mask {
                    for extra in mask.decode(group.base) {
                        let d = extra.distance_from(group.base).expect("forward") as usize;
                        stats.coalesced_distance_hist[d - 1] += 1;
                    }
                }
                let lines_count = group.line_count() as usize;
                let idx = (lines_count - 1).min(stats.lines_per_op_hist.len() - 1);
                stats.lines_per_op_hist[idx] += 1;
                injections.push(site, op);
            }
        }

        stats.sites = injections.num_sites();
        stats.injected_bytes = injections.injected_bytes();
        stats.static_increase = injections.static_increase(self.program.text_bytes());
        Plan { injections, stats, context_details }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_profile::{profile, SampleRate};
    use ispy_sim::{run, RunOptions, SimConfig};
    use ispy_trace::apps;

    fn planned(
        model: ispy_trace::AppModel,
        events: usize,
        cfg: IspyConfig,
    ) -> (Program, Trace, Plan) {
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), events);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let plan = Planner::new(&program, &trace, &prof, cfg).plan();
        (program, trace, plan)
    }

    #[test]
    fn plan_produces_ops_and_accounting() {
        let (_, _, plan) = planned(
            apps::cassandra().scaled_down(30),
            30_000,
            IspyConfig::default(),
        );
        assert!(plan.stats.target_lines > 10);
        assert!(plan.stats.covered_lines > 0);
        assert_eq!(plan.stats.ops_total(), plan.injections.num_ops());
        assert!(plan.stats.injected_bytes > 0);
        assert!(plan.stats.static_increase > 0.0);
    }

    #[test]
    fn plan_speeds_up_execution() {
        let (program, trace, plan) = planned(
            apps::cassandra().scaled_down(30),
            40_000,
            IspyConfig::default(),
        );
        let scfg = SimConfig::default();
        let base = run(&program, &trace, &scfg, RunOptions::default());
        let with = run(
            &program,
            &trace,
            &scfg,
            RunOptions { injections: Some(&plan.injections), ..Default::default() },
        );
        assert!(
            with.cycles < base.cycles,
            "I-SPY must speed up: {} vs {}",
            with.cycles,
            base.cycles
        );
        assert!(with.i_misses < base.i_misses);
        assert!(with.pf_useful > 0);
    }

    #[test]
    fn conditional_only_has_no_coalesced_ops() {
        let (_, _, plan) = planned(
            apps::cassandra().scaled_down(30),
            20_000,
            IspyConfig::conditional_only(),
        );
        assert_eq!(plan.stats.ops_coalesced, 0);
        assert_eq!(plan.stats.ops_cond_coalesced, 0);
    }

    #[test]
    fn coalescing_only_has_no_conditional_ops() {
        let (_, _, plan) = planned(
            apps::cassandra().scaled_down(30),
            20_000,
            IspyConfig::coalescing_only(),
        );
        assert_eq!(plan.stats.ops_cond, 0);
        assert_eq!(plan.stats.ops_cond_coalesced, 0);
        assert_eq!(plan.stats.contexts_adopted, 0);
    }

    #[test]
    fn coalescing_reduces_op_count() {
        let model = apps::verilator().scaled_down(30);
        let (_, _, with) = planned(model.clone(), 20_000, IspyConfig::coalescing_only());
        let (_, _, without) = planned(model, 20_000, IspyConfig::plain());
        assert!(
            with.stats.ops_total() < without.stats.ops_total(),
            "coalescing must shrink the op count on spatially-local verilator: {} vs {}",
            with.stats.ops_total(),
            without.stats.ops_total()
        );
        assert!(with.stats.injected_bytes < without.stats.injected_bytes);
    }

    #[test]
    fn injections_respect_coalesce_window() {
        let (_, _, plan) = planned(
            apps::verilator().scaled_down(30),
            20_000,
            IspyConfig::default(),
        );
        for (_, ops) in plan.injections.iter() {
            for op in ops {
                let targets = op.target_lines();
                let base = op.base_line();
                for t in &targets {
                    let d = t.distance_from(base).expect("targets at/after base");
                    assert!(d <= 8, "distance {d} exceeds the 8-line window");
                }
            }
        }
    }

    #[test]
    fn deterministic_planning() {
        let model = apps::kafka().scaled_down(30);
        let (_, _, a) = planned(model.clone(), 15_000, IspyConfig::default());
        let (_, _, b) = planned(model, 15_000, IspyConfig::default());
        assert_eq!(a.injections, b.injections);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn stats_helpers() {
        let stats = PlanStats {
            contexts_adopted: 2,
            context_blocks_total: 6,
            target_lines: 10,
            covered_lines: 8,
            lines_per_op_hist: vec![5, 3, 2, 0, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        assert!((stats.avg_ctx_blocks() - 3.0).abs() < 1e-12);
        assert!((stats.planned_coverage() - 0.8).abs() < 1e-12);
        // Multi-line ops: 3 two-line + 2 three-line; below 4 lines = all 5.
        assert!((stats.coalesced_fraction_below(4) - 1.0).abs() < 1e-12);
        assert!((stats.coalesced_fraction_below(3) - 0.6).abs() < 1e-12);
    }
}
