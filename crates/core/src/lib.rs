//! I-SPY's offline analysis — the paper's primary contribution.
//!
//! Given a miss-annotated dynamic CFG (from [`ispy_profile`]) the
//! [`Planner`] decides, for every frequently-missing I-cache line:
//!
//! 1. **When/where** — a *timely* injection site 27–200 cycles before the
//!    miss, found by a bounded highest-probability-path search over the
//!    dynamic CFG ([`window`]).
//! 2. **Under which condition** — a miss-inducing *context* of up to four
//!    predictor basic blocks, chosen by exact conditional probability
//!    ([`context`]); encoded as a 16-bit Bloom-style context hash.
//! 3. **Together with what** — spatially-near targets that share a site and
//!    context are *coalesced* into one instruction with an 8-bit line
//!    bitmask ([`coalesce`]).
//!
//! The output is an [`InjectionMap`](ispy_isa::InjectionMap) of `prefetch` /
//! `Cprefetch` / `Lprefetch` / `CLprefetch` instructions (§IV's decision
//! diagram) plus [`PlanStats`] for static-footprint accounting.
//!
//! # Examples
//!
//! ```
//! use ispy_core::{IspyConfig, Planner};
//! use ispy_profile::{profile, SampleRate};
//! use ispy_sim::SimConfig;
//! use ispy_trace::apps;
//!
//! let model = apps::cassandra().scaled_down(30);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 30_000);
//! let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
//!
//! let plan = Planner::new(&program, &trace, &prof, IspyConfig::default()).plan();
//! assert!(plan.injections.num_ops() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod coalesce;
pub mod config;
pub mod context;
pub mod planner;
pub mod provenance;
pub mod window;

pub use config::IspyConfig;
pub use planner::{Plan, PlanStats, Planner, PlannerBaseline};
pub use provenance::{PlannedLine, ProvenanceRecord};
pub use window::SiteCandidate;
