//! Prefetch-window analysis: finding timely injection sites (§II-B, §IV).
//!
//! For each missing block the planner walks the dynamic CFG *backwards*,
//! accumulating expected cycles from per-block profile costs (the LBR cycle
//! information the paper uses instead of AsmDB's global-IPC estimate), and
//! keeps predecessors whose distance falls inside the prefetch window.
//! The walk is a bounded Dijkstra on path probability, so each candidate
//! carries the probability that executing it leads to the miss — the
//! complement of the paper's *fan-out*.

use ispy_profile::DynCfg;
use ispy_trace::BlockId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A candidate injection site for one miss target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteCandidate {
    /// The candidate block.
    pub block: BlockId,
    /// Probability that executing this block leads to the miss block along
    /// the maximum-probability path (`1 - fan-out`).
    pub reach_prob: f64,
    /// Expected cycles from entering this block until the miss block begins
    /// fetching.
    pub cycles: f64,
    /// Path length in blocks (used to convert the window into a trace-scan
    /// horizon).
    pub blocks: u32,
}

impl SiteCandidate {
    /// The paper's fan-out: share of paths from this site that do *not*
    /// lead to the miss.
    pub fn fanout(&self) -> f64 {
        1.0 - self.reach_prob
    }
}

/// Heap node ordered by probability (max-heap via total order on f64 bits).
#[derive(Debug, Clone, Copy)]
struct Node {
    prob: f64,
    cycles: f64,
    blocks: u32,
    block: BlockId,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.prob == other.prob && self.block == other.block
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.prob
            .partial_cmp(&other.prob)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.block.0.cmp(&other.block.0))
    }
}

/// Finds all candidate injection sites for a miss in `target`, i.e. dynamic
/// predecessors whose expected distance lies within
/// `[min_cycles, max_cycles]`.
///
/// The search visits each block once (highest-probability first) and stops
/// after `max_nodes` expansions, keeping the per-miss cost bounded.
///
/// # Examples
///
/// ```
/// use ispy_core::window::find_candidates;
/// use ispy_profile::DynCfg;
/// use ispy_trace::BlockId;
/// use std::collections::HashMap;
///
/// // Chain 0 -> 1 -> 2, 10 cycles per block: block 0 is ~20 cycles ahead
/// // of block 2's fetch.
/// let mut edges = HashMap::new();
/// edges.insert((0, 1), 10);
/// edges.insert((1, 2), 10);
/// let cfg = DynCfg::new(vec![10, 10, 10], vec![10.0, 10.0, 10.0], &edges);
/// let sites = find_candidates(&cfg, BlockId(2), 15, 100, 64);
/// assert_eq!(sites.len(), 1);
/// assert_eq!(sites[0].block, BlockId(0));
/// ```
pub fn find_candidates(
    cfg: &DynCfg,
    target: BlockId,
    min_cycles: u32,
    max_cycles: u32,
    max_nodes: usize,
) -> Vec<SiteCandidate> {
    let mut best: HashMap<u32, Node> = HashMap::new();
    let mut heap = BinaryHeap::new();
    let mut out = Vec::new();
    let start = Node { prob: 1.0, cycles: 0.0, blocks: 0, block: target };
    heap.push(start);
    let mut expanded = 0usize;
    let mut rejected_untimely = 0u64;

    while let Some(node) = heap.pop() {
        // Settled check: only the best (first-popped) entry per block counts.
        match best.get(&node.block.0) {
            Some(settled) if settled.prob >= node.prob => continue,
            _ => {}
        }
        best.insert(node.block.0, node);
        expanded += 1;
        if expanded > max_nodes {
            break;
        }

        if node.block != target
            && node.cycles >= f64::from(min_cycles)
            && node.cycles <= f64::from(max_cycles)
        {
            out.push(SiteCandidate {
                block: node.block,
                reach_prob: node.prob,
                cycles: node.cycles,
                blocks: node.blocks,
            });
        } else if node.block != target {
            // Settled predecessor outside the prefetch window: too close to
            // hide the latency, or too far to trust the path estimate.
            rejected_untimely += 1;
        }
        // Expanding beyond max_cycles cannot produce in-window candidates
        // (cycle costs are non-negative along predecessors).
        if node.cycles > f64::from(max_cycles) {
            continue;
        }
        for &(pred, _) in cfg.preds(node.block) {
            let e = cfg.edge_prob(pred, node.block);
            if e <= 0.0 {
                continue;
            }
            let cand = Node {
                prob: node.prob * e,
                cycles: node.cycles + cfg.avg_cycles(pred),
                blocks: node.blocks + 1,
                block: pred,
            };
            if cand.prob < 1e-6 {
                continue;
            }
            let dominated = best.get(&pred.0).is_some_and(|s| s.prob >= cand.prob);
            if !dominated {
                heap.push(cand);
            }
        }
    }

    // Deterministic order: highest reach probability first, then block id.
    out.sort_by(|a, b| {
        b.reach_prob
            .partial_cmp(&a.reach_prob)
            .unwrap_or(Ordering::Equal)
            .then(a.block.0.cmp(&b.block.0))
    });
    // One registry touch per search (not per node) keeps the hot loop clean.
    let tele = ispy_telemetry::global();
    tele.add("core.window.searches", 1);
    tele.add("core.window.nodes_expanded", expanded as u64);
    tele.add("core.window.candidates_found", out.len() as u64);
    tele.add("core.window.rejected_untimely", rejected_untimely);
    out
}

/// Picks the planner's injection site: the most-reachable candidate,
/// tie-broken toward more frequently executed blocks (better amortization of
/// the injected instruction).
pub fn select_site(cfg: &DynCfg, candidates: &[SiteCandidate]) -> Option<SiteCandidate> {
    candidates.iter().copied().max_by(|a, b| {
        a.reach_prob
            .partial_cmp(&b.reach_prob)
            .unwrap_or(Ordering::Equal)
            .then_with(|| cfg.exec_count(a.block).cmp(&cfg.exec_count(b.block)))
            .then_with(|| b.block.0.cmp(&a.block.0))
    })
}

/// A site chosen by [`select_covering_sites`], with its coverage/precision
/// estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectedSite {
    /// The underlying window candidate.
    pub cand: SiteCandidate,
    /// Fraction of the line's sampled misses this site preceded (coverage).
    pub presence_frac: f64,
    /// `P(miss | site executes)` estimate: presence / site executions.
    pub precision: f64,
    /// This site is too imprecise to fire unconditionally; it is only kept
    /// if context discovery finds a strong miss context (§III-A).
    pub needs_ctx: bool,
}

/// Selection floors for [`select_covering_sites`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionPolicy {
    /// Maximum sites per miss line.
    pub max_sites: usize,
    /// Minimum coverage fraction for a site to be worth its footprint.
    pub min_presence: f64,
    /// Precision at or above which a site may fire unconditionally.
    pub min_unconditional_precision: f64,
    /// Precision floor below which a site is useless even with a context
    /// (the injected op would execute far too often relative to the miss).
    pub min_conditional_precision: f64,
    /// Whether conditional (needs-context) sites are allowed at all.
    pub allow_conditional: bool,
}

/// Coverage- and precision-driven multi-site selection (I-SPY's policy).
///
/// Candidates are ranked by how often they actually *preceded* the miss in
/// the profiled LBR histories (`presence`, out of `miss_count` sampled
/// misses) — instance coverage — preferring farther sites on ties. Sites are
/// taken greedily until the summed presence fractions pass 1.3 or
/// `max_sites` is reached. A site whose precision (`presence /
/// exec_count`) is too low to fire unconditionally is marked `needs_ctx`:
/// the planner keeps it only if context discovery succeeds. This is the
/// §II-C trade-off: high-fan-out sites buy coverage but need the run-time
/// condition to stay accurate.
pub fn select_covering_sites(
    candidates: &[SiteCandidate],
    presence: impl Fn(BlockId) -> u64,
    exec_count: impl Fn(BlockId) -> u64,
    miss_count: u64,
    policy: &SelectionPolicy,
) -> Vec<SelectedSite> {
    if miss_count == 0 || policy.max_sites == 0 {
        return Vec::new();
    }
    let mut ranked: Vec<(u64, SiteCandidate)> =
        candidates.iter().map(|&c| (presence(c.block), c)).collect();
    // Highest coverage first; among equals prefer *closer* sites — the
    // prefetched line spends less time exposed to eviction before use.
    ranked.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| a.1.cycles.partial_cmp(&b.1.cycles).unwrap_or(Ordering::Equal))
            .then_with(|| a.1.block.0.cmp(&b.1.block.0))
    });
    let mut chosen: Vec<SelectedSite> = Vec::new();
    let mut cum = 0.0;
    for (pres, cand) in ranked {
        let presence_frac = pres as f64 / miss_count as f64;
        if presence_frac < policy.min_presence {
            break;
        }
        let execs = exec_count(cand.block).max(1);
        let precision = (pres as f64 / execs as f64).min(1.0);
        let needs_ctx = precision < policy.min_unconditional_precision;
        if needs_ctx && (!policy.allow_conditional || precision < policy.min_conditional_precision)
        {
            continue;
        }
        chosen.push(SelectedSite { cand, presence_frac, precision, needs_ctx });
        cum += presence_frac;
        if cum >= 1.3 || chosen.len() >= policy.max_sites {
            break;
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_cfg(n: u32, cycles: f64) -> DynCfg {
        let mut edges = HashMap::new();
        for i in 0..n - 1 {
            edges.insert((i, i + 1), 100);
        }
        DynCfg::new(vec![100; n as usize], vec![cycles; n as usize], &edges)
    }

    #[test]
    fn chain_distances() {
        // 10 blocks, 10 cycles each; target = block 9.
        let cfg = chain_cfg(10, 10.0);
        let sites = find_candidates(&cfg, BlockId(9), 25, 60, 1024);
        // Blocks at distance 30,40,50,60 cycles: blocks 6,5,4,3.
        let ids: Vec<u32> = sites.iter().map(|s| s.block.0).collect();
        assert_eq!(ids.len(), 4);
        assert!(ids.contains(&6) && ids.contains(&3));
        assert!(!ids.contains(&7)); // 20 cycles: too close
        assert!(!ids.contains(&2)); // 70 cycles: too far
        for s in &sites {
            assert!((s.reach_prob - 1.0).abs() < 1e-9);
            assert_eq!(s.fanout(), 0.0);
        }
    }

    #[test]
    fn branch_probabilities_multiply() {
        // 0 -> 1 (75%), 0 -> 2 (25%); 1 -> 3, 2 -> 3; target 3.
        let mut edges = HashMap::new();
        edges.insert((0, 1), 75);
        edges.insert((0, 2), 25);
        edges.insert((1, 3), 75);
        edges.insert((2, 3), 25);
        let cfg = DynCfg::new(vec![100, 75, 25, 100], vec![20.0; 4], &edges);
        let sites = find_candidates(&cfg, BlockId(3), 10, 100, 1024);
        let s0 = sites.iter().find(|s| s.block == BlockId(0)).unwrap();
        // Both paths lead to 3, but max-path probability is via block 1.
        assert!((s0.reach_prob - 0.75).abs() < 1e-9);
        let s1 = sites.iter().find(|s| s.block == BlockId(1)).unwrap();
        assert!((s1.reach_prob - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_reflects_divergence() {
        // Site 0 branches to target (10 %) and elsewhere (90 %).
        let mut edges = HashMap::new();
        edges.insert((0, 1), 10);
        edges.insert((0, 2), 90);
        let cfg = DynCfg::new(vec![100, 10, 90], vec![30.0; 3], &edges);
        let sites = find_candidates(&cfg, BlockId(1), 10, 100, 64);
        let s = sites.iter().find(|s| s.block == BlockId(0)).unwrap();
        assert!((s.fanout() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_when_no_predecessor_in_window() {
        let cfg = chain_cfg(3, 5.0); // total span 10 cycles
        let sites = find_candidates(&cfg, BlockId(2), 27, 200, 64);
        assert!(sites.is_empty());
    }

    #[test]
    fn node_cap_bounds_work() {
        let cfg = chain_cfg(200, 10.0);
        let sites = find_candidates(&cfg, BlockId(199), 27, 200, 8);
        // Cap of 8 expansions: we can still find nearby candidates but the
        // search stops early; no panic, deterministic output.
        assert!(sites.len() <= 8);
    }

    #[test]
    fn select_site_prefers_reach_probability() {
        let a = SiteCandidate { block: BlockId(1), reach_prob: 0.5, cycles: 50.0, blocks: 3 };
        let b = SiteCandidate { block: BlockId(2), reach_prob: 0.9, cycles: 80.0, blocks: 5 };
        let cfg = chain_cfg(4, 10.0);
        assert_eq!(select_site(&cfg, &[a, b]).unwrap().block, BlockId(2));
        assert!(select_site(&cfg, &[]).is_none());
    }

    fn policy() -> SelectionPolicy {
        SelectionPolicy {
            max_sites: 3,
            min_presence: 0.10,
            min_unconditional_precision: 0.25,
            min_conditional_precision: 0.02,
            allow_conditional: true,
        }
    }

    #[test]
    fn covering_sites_rank_by_presence() {
        let mk = |id: u32, cycles: f64| SiteCandidate {
            block: BlockId(id),
            reach_prob: 0.5,
            cycles,
            blocks: 4,
        };
        let cands = [mk(1, 50.0), mk(2, 100.0), mk(3, 40.0)];
        // Presence: block 2 precedes 90 of 100 misses, block 1 precedes 60,
        // block 3 precedes 5 (below the 10 % floor).
        let presence = |b: BlockId| match b.0 {
            1 => 60,
            2 => 90,
            _ => 5,
        };
        let chosen = select_covering_sites(&cands, presence, |_| 300, 100, &policy());
        let ids: Vec<u32> = chosen.iter().map(|c| c.cand.block.0).collect();
        // Block 2 first (highest presence); cumulative 0.9 + 0.6 >= 1.3
        // stops after block 1; block 3 is below the floor anyway.
        assert_eq!(ids, vec![2, 1]);
        // Precision 90/300 = 0.3 clears the 0.25 unconditional floor;
        // 60/300 = 0.2 does not, so block 1 needs a context.
        assert!(!chosen[0].needs_ctx);
        assert!(chosen[1].needs_ctx);
    }

    #[test]
    fn covering_sites_respect_caps() {
        let mk = |id: u32| SiteCandidate {
            block: BlockId(id),
            reach_prob: 0.5,
            cycles: 50.0,
            blocks: 4,
        };
        let cands: Vec<SiteCandidate> = (0..10).map(mk).collect();
        let p = SelectionPolicy { max_sites: 2, ..policy() };
        let chosen = select_covering_sites(&cands, |_| 20, |_| 40, 100, &p);
        assert_eq!(chosen.len(), 2);
        assert!(select_covering_sites(&cands, |_| 20, |_| 40, 0, &p).is_empty());
        assert!(select_covering_sites(&cands, |_| 5, |_| 40, 100, &p).is_empty());
    }

    #[test]
    fn hot_imprecise_sites_are_skipped() {
        let cand = SiteCandidate { block: BlockId(1), reach_prob: 0.5, cycles: 50.0, blocks: 4 };
        // Site precedes all 100 misses but executes 100 000 times: precision
        // 0.001 is below even the conditional floor -> skipped entirely.
        let chosen = select_covering_sites(&[cand], |_| 100, |_| 100_000, 100, &policy());
        assert!(chosen.is_empty());
        // Without conditional sites allowed, a 0.1-precision site also goes.
        let p = SelectionPolicy { allow_conditional: false, ..policy() };
        let chosen = select_covering_sites(&[cand], |_| 100, |_| 1_000, 100, &p);
        assert!(chosen.is_empty());
        // With conditional allowed, the 0.1-precision site is kept but
        // flagged as needing a context.
        let chosen = select_covering_sites(&[cand], |_| 100, |_| 1_000, 100, &policy());
        assert_eq!(chosen.len(), 1);
        assert!(chosen[0].needs_ctx);
    }

    #[test]
    fn loops_do_not_hang_the_search() {
        // 0 <-> 1 loop feeding 2.
        let mut edges = HashMap::new();
        edges.insert((0, 1), 90);
        edges.insert((1, 0), 80);
        edges.insert((1, 2), 10);
        let cfg = DynCfg::new(vec![90, 90, 10], vec![15.0; 3], &edges);
        let sites = find_candidates(&cfg, BlockId(2), 10, 200, 4096);
        assert!(!sites.is_empty());
    }
}
