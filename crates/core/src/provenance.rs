//! Per-injection provenance: why each prefetch instruction exists.
//!
//! The planner emits one [`ProvenanceRecord`] per injected op, indexed by
//! the [`ProvenanceId`] the op carries in the
//! [`InjectionMap`](ispy_isa::InjectionMap). A record captures the whole
//! decision chain of §IV: the miss line(s) being targeted, the chosen
//! injection site with its window-search estimates (reach probability,
//! expected cycles), the adopted context blocks with their conditional miss
//! probability, and the coalescing bitmask. Joined with the simulator's
//! [`OutcomeLedger`](ispy_sim::OutcomeLedger), this answers "why was this
//! prefetch injected, and what did it buy?" — the audit the `repro explain`
//! subcommand renders.

use ispy_isa::{CoalesceMask, ProvenanceId};
use ispy_trace::{BlockId, Line};

/// Planning estimates for one target line of an injected op.
///
/// # Examples
///
/// ```
/// use ispy_core::provenance::PlannedLine;
/// use ispy_trace::Line;
///
/// let pl = PlannedLine {
///     line: Line::new(42),
///     miss_count: 120,
///     site_presence: 0.8,
///     site_precision: 0.4,
///     reach_prob: 0.9,
///     window_cycles: 55.0,
///     ctx_probability: Some(0.95),
///     ctx_baseline: Some(0.2),
///     ctx_support: Some(64),
/// };
/// assert!(pl.ctx_probability.unwrap() > pl.ctx_baseline.unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedLine {
    /// The targeted I-cache line.
    pub line: Line,
    /// Profiled miss count that made the line a target.
    pub miss_count: u64,
    /// Fraction of the line's sampled misses the site preceded (coverage).
    pub site_presence: f64,
    /// `P(miss | site executes)` estimate at selection time.
    pub site_precision: f64,
    /// Probability that executing the site leads to the miss block.
    pub reach_prob: f64,
    /// Expected cycles from the site to the miss block's fetch.
    pub window_cycles: f64,
    /// `P(miss | context present)` for the adopted context, if conditional.
    pub ctx_probability: Option<f64>,
    /// The unconditional baseline the context improved on, if conditional.
    pub ctx_baseline: Option<f64>,
    /// Site executions supporting the context estimate, if conditional.
    pub ctx_support: Option<u64>,
}

/// The full decision chain behind one injected prefetch instruction.
///
/// # Examples
///
/// ```
/// use ispy_core::provenance::ProvenanceRecord;
/// use ispy_isa::ProvenanceId;
/// use ispy_trace::{BlockId, Line};
///
/// let rec = ProvenanceRecord {
///     id: ProvenanceId(0),
///     site: BlockId(7),
///     mnemonic: "Cprefetch",
///     base_line: Line::new(42),
///     mask: None,
///     context_blocks: vec![BlockId(3)],
///     lines: Vec::new(),
/// };
/// assert_eq!(rec.id.index(), 0);
/// assert!(rec.is_conditional());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// The id carried by the emitted op (index into `Plan::provenance`).
    pub id: ProvenanceId,
    /// The injection site block.
    pub site: BlockId,
    /// The emitted instruction's mnemonic
    /// (`prefetch`/`Cprefetch`/`Lprefetch`/`CLprefetch`).
    pub mnemonic: &'static str,
    /// The op's base target line.
    pub base_line: Line,
    /// The coalescing bitmask, if lines were merged into this op.
    pub mask: Option<CoalesceMask>,
    /// Predictor blocks of the adopted context (empty = unconditional).
    pub context_blocks: Vec<BlockId>,
    /// Planning estimates per target line (base first, then mask extras).
    pub lines: Vec<PlannedLine>,
}

impl ProvenanceRecord {
    /// Whether the op fires only under a context condition.
    pub fn is_conditional(&self) -> bool {
        !self.context_blocks.is_empty()
    }

    /// Number of cache lines this op prefetches when it fires.
    pub fn line_count(&self) -> u32 {
        1 + self.mask.map_or(0, |m| m.extra_lines())
    }

    /// Best-estimate probability that a firing is useful: the context's
    /// conditional miss probability when conditional, otherwise the site's
    /// reach probability (both over the base line).
    pub fn predicted_accuracy(&self) -> f64 {
        self.lines.first().map(|l| l.ctx_probability.unwrap_or(l.reach_prob)).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ctx: Option<f64>) -> ProvenanceRecord {
        ProvenanceRecord {
            id: ProvenanceId(1),
            site: BlockId(2),
            mnemonic: "prefetch",
            base_line: Line::new(10),
            mask: None,
            context_blocks: if ctx.is_some() { vec![BlockId(5)] } else { Vec::new() },
            lines: vec![PlannedLine {
                line: Line::new(10),
                miss_count: 50,
                site_presence: 0.7,
                site_precision: 0.3,
                reach_prob: 0.6,
                window_cycles: 80.0,
                ctx_probability: ctx,
                ctx_baseline: ctx.map(|_| 0.2),
                ctx_support: ctx.map(|_| 40),
            }],
        }
    }

    #[test]
    fn accuracy_prefers_context_probability() {
        assert!((record(Some(0.9)).predicted_accuracy() - 0.9).abs() < 1e-12);
        assert!((record(None).predicted_accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn conditional_flag_tracks_context_blocks() {
        assert!(record(Some(0.9)).is_conditional());
        assert!(!record(None).is_conditional());
    }

    #[test]
    fn line_count_without_mask_is_one() {
        assert_eq!(record(None).line_count(), 1);
    }
}
