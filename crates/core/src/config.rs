//! Planner configuration (the paper's system parameters, §V).

use ispy_isa::HashConfig;

/// Tunables of the offline analysis. Defaults are the paper's design points.
///
/// # Examples
///
/// ```
/// use ispy_core::IspyConfig;
///
/// let cfg = IspyConfig::default();
/// assert_eq!(cfg.min_prefetch_cycles, 27);
/// assert_eq!(cfg.max_prefetch_cycles, 200);
/// assert_eq!(cfg.coalesce_bits, 8);
/// assert_eq!(cfg.ctx_size, 4);
///
/// // Ablations used by Fig. 12:
/// let cond_only = IspyConfig::conditional_only();
/// assert!(cond_only.conditional && !cond_only.coalescing);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IspyConfig {
    /// Minimum prefetch distance in cycles (paper: 27, from Fig. 18).
    pub min_prefetch_cycles: u32,
    /// Maximum prefetch distance in cycles (paper: 200, from Fig. 18).
    pub max_prefetch_cycles: u32,
    /// Coalescing bitmask width in bits (paper: 8, from Fig. 19).
    pub coalesce_bits: u8,
    /// Maximum predictor blocks per context (paper: 4, from Fig. 17).
    pub ctx_size: usize,
    /// How many top-ranked predictor candidates to consider when searching
    /// for the best context combination.
    pub ctx_candidates: usize,
    /// Context-hash scheme (paper: 16-bit, FNV-1 + MurmurHash3, Fig. 21).
    pub hash: HashConfig,
    /// Enable conditional prefetching (§III-A). Off = coalescing-only
    /// ablation.
    pub conditional: bool,
    /// Enable prefetch coalescing (§III-B). Off = conditional-only ablation.
    pub coalescing: bool,
    /// Minimum sampled misses for a line to be considered at all.
    pub min_miss_count: u64,
    /// Minimum site executions with the context present for a context to be
    /// trusted (support threshold for the Bayes estimate).
    pub min_ctx_support: u64,
    /// A context is adopted only if it improves the site's unconditional
    /// miss probability by at least this margin — otherwise conditioning
    /// "may not improve the prefetch accuracy" (§IV) and a plain/coalesced
    /// op is used.
    pub ctx_gain_margin: f64,
    /// Sites whose unconditional miss-follow probability is already at least
    /// this high skip context discovery (fan-out ≈ 0 per §IV).
    pub zero_fanout_threshold: f64,
    /// Node-expansion cap for the per-miss window search (keeps the analysis
    /// O(n log n)-ish as in the paper).
    pub max_search_nodes: usize,
    /// Maximum injection sites per miss line. I-SPY "liberally injects
    /// conditional prefetch instructions to cover each miss" (§III-A): a
    /// miss reached over several paths gets one (conditional) prefetch per
    /// path, because run-time conditioning keeps the extra ops accurate.
    pub max_sites_per_line: usize,
    /// Minimum fraction of a line's sampled misses a site must precede
    /// (LBR-history presence) to be worth injecting at.
    pub min_site_presence: f64,
    /// Sites whose estimated precision (`P(miss | site executes)`) reaches
    /// this floor may fire unconditionally.
    pub min_unconditional_precision: f64,
    /// Sites below this precision are dropped even when conditional — the
    /// op would execute far too often relative to the misses it could cover.
    pub min_conditional_precision: f64,
    /// A needs-context site survives only if the discovered context's
    /// conditional miss probability reaches this floor.
    pub min_ctx_probability: f64,
    /// Maximum distinct contexts per (site, target): a miss reached from
    /// several calling contexts gets one conditional prefetch per context
    /// (paper Fig. 8 groups same-site prefetches by context).
    pub max_contexts_per_site: usize,
    /// A needs-context site with no usable context is still kept
    /// *unconditionally* if its measured reach probability (fraction of its
    /// executions that lead to the target within the window) is at least
    /// this floor — the firings are mostly useful anyway.
    pub min_unconditional_reach: f64,
}

impl Default for IspyConfig {
    fn default() -> Self {
        IspyConfig {
            min_prefetch_cycles: 27,
            max_prefetch_cycles: 200,
            coalesce_bits: 8,
            ctx_size: 4,
            ctx_candidates: 6,
            hash: HashConfig::default(),
            conditional: true,
            coalescing: true,
            min_miss_count: 1,
            min_ctx_support: 8,
            ctx_gain_margin: 0.08,
            zero_fanout_threshold: 0.95,
            max_search_nodes: 4096,
            max_sites_per_line: 3,
            min_site_presence: 0.10,
            min_unconditional_precision: 0.25,
            min_conditional_precision: 0.08,
            min_ctx_probability: 0.45,
            max_contexts_per_site: 4,
            min_unconditional_reach: 0.50,
        }
    }
}

impl IspyConfig {
    /// The Fig. 12 "conditional prefetching only" ablation.
    pub fn conditional_only() -> Self {
        IspyConfig { coalescing: false, ..Self::default() }
    }

    /// The Fig. 12 "prefetch coalescing only" ablation.
    pub fn coalescing_only() -> Self {
        IspyConfig { conditional: false, ..Self::default() }
    }

    /// Neither technique: timely plain prefetches for every miss (used by
    /// sensitivity baselines).
    pub fn plain() -> Self {
        IspyConfig { conditional: false, coalescing: false, ..Self::default() }
    }

    /// Returns the configuration with a different context size (Fig. 17).
    #[must_use]
    pub fn with_ctx_size(mut self, n: usize) -> Self {
        self.ctx_size = n;
        self.ctx_candidates = self.ctx_candidates.max(n.min(8));
        self
    }

    /// Returns the configuration with different prefetch distances (Fig. 18).
    #[must_use]
    pub fn with_distances(mut self, min: u32, max: u32) -> Self {
        self.min_prefetch_cycles = min;
        self.max_prefetch_cycles = max;
        self
    }

    /// Returns the configuration with a different coalescing width (Fig. 19).
    #[must_use]
    pub fn with_coalesce_bits(mut self, bits: u8) -> Self {
        self.coalesce_bits = bits;
        self
    }

    /// Returns the configuration with a different hash scheme (Fig. 21).
    #[must_use]
    pub fn with_hash(mut self, hash: HashConfig) -> Self {
        self.hash = hash;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = IspyConfig::default();
        assert_eq!(c.min_prefetch_cycles, 27);
        assert_eq!(c.max_prefetch_cycles, 200);
        assert_eq!(c.coalesce_bits, 8);
        assert_eq!(c.ctx_size, 4);
        assert_eq!(c.hash.bits(), 16);
        assert!(c.conditional && c.coalescing);
    }

    #[test]
    fn ablations() {
        assert!(!IspyConfig::conditional_only().coalescing);
        assert!(!IspyConfig::coalescing_only().conditional);
        let p = IspyConfig::plain();
        assert!(!p.conditional && !p.coalescing);
    }

    #[test]
    fn builders() {
        let c =
            IspyConfig::default().with_ctx_size(2).with_distances(10, 400).with_coalesce_bits(16);
        assert_eq!(c.ctx_size, 2);
        assert_eq!(c.min_prefetch_cycles, 10);
        assert_eq!(c.max_prefetch_cycles, 400);
        assert_eq!(c.coalesce_bits, 16);
    }

    #[test]
    fn ctx_candidates_grow_with_ctx_size() {
        let c = IspyConfig::default().with_ctx_size(8);
        assert!(c.ctx_candidates >= 8);
    }
}
