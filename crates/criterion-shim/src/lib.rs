//! A minimal, dependency-free stand-in for the Criterion benchmark harness.
//!
//! The build environment is fully offline, so the real `criterion` crate
//! cannot be fetched; this shim keeps the workspace's `[[bench]]` targets
//! compiling and *running* with the same source code. It implements the
//! subset of the API the benches use — `Criterion`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `Throughput`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — with a plain
//! warmup-then-measure timing loop instead of Criterion's statistics
//! engine. Numbers are mean wall-clock per iteration; good enough to track
//! the perf trajectory, not a substitute for real confidence intervals.
//!
//! Swap the workspace `criterion` dependency back to the crates.io package
//! when a registry is available — no source changes needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound on timed iterations per benchmark, so nanosecond-scale ops
/// don't spin for the full measurement budget.
const MAX_ITERS: u64 = 5_000_000;

/// How per-sample setup cost relates to the measurement loop (API-compat
/// only; the shim always times the routine alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; Criterion would batch many per sample.
    SmallInput,
    /// Large setup output; Criterion would batch few per sample.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Work per iteration, used to report a rate next to the raw time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing-loop driver handed to each benchmark closure.
pub struct Bencher<'a> {
    cfg: &'a MeasureConfig,
    report: Option<Sample>,
}

/// One finished measurement.
struct Sample {
    mean_ns: f64,
    iters: u64,
}

#[derive(Clone)]
struct MeasureConfig {
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }
}

impl Bencher<'_> {
    /// Times `f`, called in a loop after a warmup phase.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup: run until the warmup budget is spent, and use the
        // observed cost to size the measurement loop.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.cfg.warm_up && warm_iters < MAX_ITERS {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let iters = ((self.cfg.measurement.as_nanos() as f64 / est_ns) as u64).clamp(1, MAX_ITERS);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let mean_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        self.report = Some(Sample { mean_ns, iters });
    }

    /// Times `routine` over values produced by `setup`; setup cost is
    /// excluded from the timing.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut spent = Duration::ZERO;
        while warm_start.elapsed() < self.cfg.warm_up && warm_iters < MAX_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            warm_iters += 1;
        }
        let est_ns = (spent.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let iters = ((self.cfg.measurement.as_nanos() as f64 / est_ns) as u64).clamp(1, MAX_ITERS);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        self.report = Some(Sample { mean_ns, iters });
    }
}

/// The top-level harness object (`criterion_group!` passes one to each
/// benchmark function).
#[derive(Default)]
pub struct Criterion {
    cfg: MeasureConfig,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), cfg: self.cfg.clone(), _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &self.cfg, f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: MeasureConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration (reported as a rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.cfg.throughput = Some(t);
        self
    }

    /// API-compat: the shim sizes its loop by time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Sets the warmup budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &self.cfg, f);
        self
    }

    /// Ends the group (printing happens per benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, cfg: &MeasureConfig, mut f: F) {
    let mut b = Bencher { cfg, report: None };
    f(&mut b);
    match b.report {
        Some(s) => {
            let mut line =
                format!("bench {id:<40} {:>12}/iter ({} iters)", fmt_ns(s.mean_ns), s.iters);
            if let Some(tp) = cfg.throughput {
                let (amount, unit) = match tp {
                    Throughput::Elements(n) => (n as f64, "elem"),
                    Throughput::Bytes(n) => (n as f64, "B"),
                };
                let rate = amount / (s.mean_ns / 1e9);
                line.push_str(&format!("  {:.3e} {unit}/s", rate));
            }
            println!("{line}");
        }
        None => println!("bench {id:<40} (no measurement recorded)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring Criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running every group, mirroring Criterion's macro.
/// Ignores Criterion CLI arguments (`--bench`, filters).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_sample() {
        let cfg = MeasureConfig {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            throughput: None,
        };
        let mut b = Bencher { cfg: &cfg, report: None };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        let s = b.report.expect("sample recorded");
        assert!(s.iters >= 1);
        assert!(s.mean_ns > 0.0);
    }

    #[test]
    fn batched_excludes_setup() {
        let cfg = MeasureConfig {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            throughput: None,
        };
        let mut b = Bencher { cfg: &cfg, report: None };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.report.is_some());
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1))
            .sample_size(10)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_ns(10.0).contains("ns"));
        assert!(fmt_ns(10_000.0).contains("µs"));
        assert!(fmt_ns(10_000_000.0).contains("ms"));
        assert!(fmt_ns(10_000_000_000.0).contains(" s"));
    }
}
