//! Synthetic data-center application models and execution traces.
//!
//! The I-SPY paper ([Khan et al., MICRO 2020]) evaluates nine real data-center
//! applications (HHVM OSS-performance, DaCapo, Renaissance, Verilator) traced
//! on production hardware with Intel LBR/PEBS. That infrastructure is not
//! reproducible offline, so this crate provides the *workload substrate*: a
//! parameterized generator of programs whose instruction-fetch behaviour has
//! the properties instruction prefetching research cares about —
//!
//! * instruction footprints far larger than a 32 KiB L1 I-cache,
//! * a request-serving loop with a skewed request mix,
//! * shared library code reached from many different calling contexts (the
//!   prerequisite for *conditional* prefetching to pay off), and
//! * per-application degrees of spatial miss locality (the prerequisite for
//!   prefetch *coalescing* to pay off).
//!
//! # Examples
//!
//! ```
//! use ispy_trace::apps;
//!
//! let model = apps::wordpress();
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 10_000);
//! assert_eq!(trace.len(), 10_000);
//! assert!(program.text_bytes() > 32 * 1024); // footprint exceeds L1I
//! ```
//!
//! [Khan et al., MICRO 2020]: https://doi.org/10.1109/MICRO50266.2020.00024

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod apps;
pub mod artifact;
pub mod block;
pub mod exec;
pub mod gen;
pub mod ingest;
pub mod program;
pub mod rng;
pub mod source;
pub mod trace;

pub use addr::{Addr, Line, LINE_BYTES};
pub use apps::AppModel;
pub use block::{BasicBlock, BlockId};
pub use exec::{InputSpec, Walker};
pub use program::Program;
pub use source::{BlockSource, TraceBlocks, WalkerSource};
pub use trace::Trace;
