//! Synthetic program generation.
//!
//! [`GenParams`] describes an application's *shape* — code footprint,
//! branchiness, call-graph structure, request-path structure, and layout
//! locality — and [`generate`] deterministically expands it into a concrete
//! [`Program`]. The construction deliberately produces the three properties
//! instruction-prefetching research depends on:
//!
//! 1. **Footprint ≫ L1I**: thousands of functions laid out over megabytes of
//!    text, so steady-state execution continuously misses a 32 KiB L1I.
//! 2. **Context-dependent reuse**: a pool of *shared* functions is called
//!    from every request type's otherwise-private code path. Whether a shared
//!    function's lines are still resident depends on which request types ran
//!    recently — i.e., on the LBR history — which is precisely the signal
//!    I-SPY's conditional prefetching keys on.
//! 3. **Tunable spatial locality**: the `layout_shuffle` knob moves an app
//!    between "functions laid out in call order" (misses arrive in
//!    neighbouring lines; coalescing shines, e.g. verilator) and "scattered
//!    layout" (misses are isolated; conditional prefetching shines).

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::program::{BlockExit, FuncId, Function, Program};
use crate::rng::Pcg32;

/// Shape parameters for a synthetic application; see the
/// [module docs](self) for what each knob models.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Seed for the whole generation process.
    pub seed: u64,
    /// Number of functions.
    pub funcs: u32,
    /// Mean basic blocks per function (geometric).
    pub mean_blocks_per_func: f64,
    /// Mean block size in bytes (uniform in `[mean/2, 3*mean/2]`).
    pub mean_block_bytes: u64,
    /// Probability that a branch skips ahead instead of falling through.
    pub skip_prob: f64,
    /// Probability that a block closes an inner loop (back edge).
    pub loop_prob: f64,
    /// Mean iterations of such loops.
    pub mean_loop_iters: f64,
    /// Probability that a block ends in a call.
    pub call_prob: f64,
    /// Number of request types the server loop multiplexes.
    pub request_types: usize,
    /// Mean top-level functions per request path (geometric).
    pub mean_funcs_per_request: f64,
    /// Fraction of functions placed in the shared pool callable from every
    /// request type.
    pub shared_pool_frac: f64,
    /// Layout entropy: 0 keeps call-order layout (max spatial locality),
    /// 1 fully shuffles function placement.
    pub layout_shuffle: f64,
    /// Mean data accesses per block.
    pub mean_data_accesses: f64,
    /// Data working-set size in cache lines (used by the simulator's D-side).
    pub data_footprint_lines: u64,
    /// Zipf skew of the default request mix.
    pub zipf_s: f64,
    /// Probability that a forward branch follows its call-chain mode rather
    /// than an independent random draw (real code is highly predictable).
    pub branch_determinism: f64,
    /// Input-dependent variants per request type (path diversity within a
    /// type).
    pub request_variants: u16,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            seed: 0,
            funcs: 1500,
            mean_blocks_per_func: 10.0,
            mean_block_bytes: 48,
            skip_prob: 0.25,
            loop_prob: 0.10,
            mean_loop_iters: 3.0,
            call_prob: 0.18,
            request_types: 8,
            mean_funcs_per_request: 10.0,
            shared_pool_frac: 0.25,
            layout_shuffle: 0.5,
            mean_data_accesses: 2.0,
            data_footprint_lines: 1 << 14,
            zipf_s: 1.1,
            branch_determinism: 0.85,
            request_variants: 4,
        }
    }
}

impl GenParams {
    /// Rough expected text footprint in bytes.
    pub fn expected_text_bytes(&self) -> u64 {
        (self.funcs as f64 * self.mean_blocks_per_func * self.mean_block_bytes as f64) as u64
    }
}

/// Scratch representation of a function before layout.
struct ProtoFunc {
    /// Block sizes in bytes.
    sizes: Vec<u32>,
    /// Data accesses per block.
    data: Vec<u8>,
    /// Exits in local block indices.
    exits: Vec<ProtoExit>,
}

enum ProtoExit {
    Branch(Vec<(u32, f64)>),
    Call { callee: FuncId, ret: u32 },
    Return,
}

/// Deterministically expands `params` into a program named `name`.
///
/// # Examples
///
/// ```
/// use ispy_trace::gen::{generate, GenParams};
///
/// let p = generate("demo", &GenParams { funcs: 50, ..GenParams::default() });
/// p.validate().unwrap();
/// ```
pub fn generate(name: &str, params: &GenParams) -> Program {
    assert!(params.funcs >= 4, "need at least 4 functions");
    assert!(params.request_types >= 1, "need at least one request type");
    let mut rng = Pcg32::seed_from_u64(params.seed ^ 0x1517_5EED);

    let nfuncs = params.funcs as usize;
    let shared_start = ((1.0 - params.shared_pool_frac) * nfuncs as f64) as usize;

    // -- 1. Build each function's intra-CFG in local indices. ---------------
    let mut protos = Vec::with_capacity(nfuncs);
    for f in 0..nfuncs {
        let mut frng = rng.fork(f as u64);
        protos.push(build_func(f, shared_start, nfuncs, params, &mut frng));
    }

    // -- 2. Decide layout order. --------------------------------------------
    // Base order groups functions by the request type that predominantly owns
    // them (call order); `layout_shuffle` then displaces functions randomly.
    let mut order: Vec<usize> = (0..nfuncs).collect();
    order.sort_by_key(|&f| owning_request(f, shared_start, params.request_types));
    let displaced: Vec<usize> =
        order.iter().copied().filter(|_| rng.chance(params.layout_shuffle)).collect();
    order.retain(|f| !displaced.contains(f));
    for f in displaced {
        let pos = rng.below(order.len() as u64 + 1) as usize;
        order.insert(pos, f);
    }

    // -- 3. Assign addresses and flatten into program arrays. ---------------
    let mut first_block = vec![0u32; nfuncs];
    let mut blocks = Vec::new();
    let mut exits_local: Vec<(usize, usize)> = Vec::new(); // (func, local idx)
    let mut funcs = vec![Function::new(BlockId(0), 0, 0); nfuncs];
    let mut owner = Vec::new();
    let mut addr = 0x40_0000u64; // typical text base
    for &f in &order {
        // Align function starts to 16 bytes like real linkers do.
        addr = (addr + 15) & !15;
        let proto = &protos[f];
        let fb = blocks.len() as u32;
        first_block[f] = fb;
        funcs[f] = Function::new(BlockId(fb), fb, proto.sizes.len() as u32);
        for (i, &sz) in proto.sizes.iter().enumerate() {
            let instrs = (sz / 4).max(1) as u16;
            blocks.push(BasicBlock::new(Addr::new(addr), sz, instrs, proto.data[i]));
            owner.push(FuncId(f as u32));
            exits_local.push((f, i));
            addr += u64::from(sz);
        }
    }

    // -- 4. Rewrite local exits to global block ids. ------------------------
    let exits: Vec<BlockExit> = exits_local
        .iter()
        .map(|&(f, i)| {
            let fb = first_block[f];
            match &protos[f].exits[i] {
                ProtoExit::Branch(ts) => {
                    BlockExit::Branch(ts.iter().map(|&(t, w)| (BlockId(fb + t), w)).collect())
                }
                ProtoExit::Call { callee, ret } => {
                    BlockExit::Call { callee: *callee, ret: BlockId(fb + ret) }
                }
                ProtoExit::Return => BlockExit::Return,
            }
        })
        .collect();

    // -- 5. Request paths. ---------------------------------------------------
    let mut request_paths = Vec::with_capacity(params.request_types);
    for r in 0..params.request_types {
        let mut prng = rng.fork(0x9A9A + r as u64);
        let len = prng.geometric(params.mean_funcs_per_request).clamp(2, 64) as usize;
        let own: Vec<usize> = (0..shared_start)
            .filter(|&f| owning_request(f, shared_start, params.request_types) == r as u32)
            .collect();
        let mut path = Vec::with_capacity(len);
        for _ in 0..len {
            // 70 % of top-level calls target the request's own code, the rest
            // hit the shared pool: this is the context-dependence engine.
            let f = if !own.is_empty() && prng.chance(0.7) {
                own[prng.below(own.len() as u64) as usize]
            } else {
                shared_start + prng.below((nfuncs - shared_start) as u64) as usize
            };
            path.push(FuncId(f as u32));
        }
        request_paths.push(path);
    }

    let mut program = Program::new(name, blocks, exits, funcs, owner, request_paths);
    program.set_data_footprint_lines(params.data_footprint_lines);
    program.set_branch_determinism(params.branch_determinism);
    program.set_request_variants(params.request_variants);
    program
}

/// Which request type predominantly owns private function `f`.
fn owning_request(f: usize, shared_start: usize, request_types: usize) -> u32 {
    if f >= shared_start {
        u32::MAX // shared pool sorts last
    } else {
        (f % request_types) as u32
    }
}

fn build_func(
    f: usize,
    shared_start: usize,
    nfuncs: usize,
    params: &GenParams,
    rng: &mut Pcg32,
) -> ProtoFunc {
    let n = rng.geometric(params.mean_blocks_per_func).clamp(1, 200) as usize;
    let mut sizes = Vec::with_capacity(n);
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = (params.mean_block_bytes / 2).max(8);
        let hi = params.mean_block_bytes * 3 / 2;
        sizes.push(rng.range_inclusive(lo, hi) as u32);
        let d = rng.geometric(params.mean_data_accesses.max(1.0)) - 1;
        data.push(d.min(12) as u8);
    }

    // Callee candidates: calls flow "downward" (to higher ids) to bound call
    // depth; the shared pool is callable from everywhere.
    let can_call_shared = f + 1 < nfuncs;
    let mut exits = Vec::with_capacity(n);
    for i in 0..n {
        if i == n - 1 {
            exits.push(ProtoExit::Return);
            continue;
        }
        if can_call_shared && rng.chance(params.call_prob) {
            let callee = if f + 1 < shared_start && rng.chance(0.55) {
                // Call a deeper private function.
                f + 1 + rng.below((shared_start - f - 1) as u64) as usize
            } else if shared_start < nfuncs {
                // Call into the shared pool (but only "downward" within it).
                let lo = shared_start.max(f + 1);
                if lo >= nfuncs {
                    f + 1 + rng.below((nfuncs - f - 1) as u64) as usize
                } else {
                    lo + rng.below((nfuncs - lo) as u64) as usize
                }
            } else {
                f + 1
            };
            exits.push(ProtoExit::Call { callee: FuncId(callee as u32), ret: (i + 1) as u32 });
            continue;
        }
        let mut targets = Vec::with_capacity(3);
        // Fallthrough.
        targets.push(((i + 1) as u32, 1.0 - params.skip_prob));
        // Forward skip.
        if params.skip_prob > 0.0 && i + 2 < n {
            let skip = (i + 1 + rng.range_inclusive(1, 3) as usize).min(n - 1);
            targets.push((skip as u32, params.skip_prob));
        }
        // Loop back edge: weight chosen so the expected trip count is
        // `mean_loop_iters` (p_back = iters / (iters + 1)).
        if i >= 2 && rng.chance(params.loop_prob) {
            let head = i - rng.range_inclusive(1, 2.min(i as u64)) as usize;
            let p_back = params.mean_loop_iters / (params.mean_loop_iters + 1.0);
            // Rescale forward weights to (1 - p_back).
            for t in &mut targets {
                t.1 *= 1.0 - p_back;
            }
            targets.push((head as u32, p_back));
        }
        exits.push(ProtoExit::Branch(targets));
    }

    ProtoFunc { sizes, data, exits }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenParams {
        GenParams { funcs: 60, request_types: 4, ..GenParams::default() }
    }

    #[test]
    fn generated_program_is_valid() {
        let p = generate("t", &small());
        p.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate("t", &small());
        let b = generate("t", &small());
        assert_eq!(a.num_blocks(), b.num_blocks());
        assert_eq!(a.text_bytes(), b.text_bytes());
        for i in 0..a.num_blocks() {
            assert_eq!(a.block(BlockId(i as u32)), b.block(BlockId(i as u32)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate("t", &small());
        let b = generate("t", &GenParams { seed: 99, ..small() });
        assert!(a.num_blocks() != b.num_blocks() || a.text_bytes() != b.text_bytes());
    }

    #[test]
    fn footprint_scales_with_funcs() {
        let small_p = generate("s", &small());
        let big_p =
            generate("b", &GenParams { funcs: 240, request_types: 4, ..GenParams::default() });
        assert!(big_p.text_bytes() > small_p.text_bytes() * 2);
    }

    #[test]
    fn request_paths_cover_all_types() {
        let p = generate("t", &small());
        assert_eq!(p.request_paths().len(), 4);
        for path in p.request_paths() {
            assert!(path.len() >= 2);
        }
    }

    #[test]
    fn layout_shuffle_zero_keeps_request_grouping_tight() {
        let grouped = generate("g", &GenParams { layout_shuffle: 0.0, ..small() });
        let shuffled = generate("s", &GenParams { layout_shuffle: 1.0, seed: 0, ..small() });
        // With call-order layout, consecutive functions of the same request
        // type sit adjacent: measure mean |addr gap| between consecutive
        // executions is hard statically, so instead check both validate and
        // have identical text size but different layout.
        grouped.validate().unwrap();
        shuffled.validate().unwrap();
        let first_grouped = grouped.func(crate::program::FuncId(0)).entry();
        let first_shuffled = shuffled.func(crate::program::FuncId(0)).entry();
        let a = grouped.block(first_grouped).start();
        let b = shuffled.block(first_shuffled).start();
        assert!(a != b || grouped.num_blocks() == shuffled.num_blocks());
    }

    #[test]
    fn generated_trace_has_large_footprint() {
        let p = generate(
            "t",
            &GenParams { funcs: 400, mean_funcs_per_request: 25.0, ..GenParams::default() },
        );
        let input = crate::exec::InputSpec::zipf(1, 8, 1.1);
        let t = p.record_trace(input, 60_000);
        let stats = t.stats(&p);
        // Steady state touches many distinct lines (≫ 512-line L1I).
        assert!(stats.distinct_lines > 700, "distinct lines {}", stats.distinct_lines);
    }

    #[test]
    #[should_panic(expected = "at least 4 functions")]
    fn too_few_funcs_panics() {
        let _ = generate("t", &GenParams { funcs: 2, ..GenParams::default() });
    }
}
