//! Streaming block sources: the abstraction that lets the simulator consume
//! traces of unbounded length in bounded memory.
//!
//! Every consumer of a trace used to take `&[BlockId]`, which forces the
//! whole event sequence to exist in RAM at once. [`BlockSource`] replaces
//! that with a pull-based chunk protocol: the consumer repeatedly asks for
//! the next run of blocks and processes it before asking again, so only one
//! chunk is live at a time. Three producers cover the pipeline:
//!
//! * [`TraceBlocks`] — a zero-cost adapter over an already-materialized
//!   slice or [`Trace`]; by default it hands the whole remaining slice out
//!   as a single borrow (no copy, no allocation).
//! * [`WalkerSource`] — drives the deterministic [`Walker`] executor, so any
//!   app model can synthesize an arbitrarily long trace from a seed without
//!   ever materializing it.
//! * `TraceEventStream` (in [`artifact`](crate::artifact)) — decodes the
//!   event sections of an `.itrace` file chunk by chunk.
//!
//! **Determinism contract:** a source must yield the same concatenated
//! block sequence regardless of how the consumer's pulls are sized, and the
//! engine's per-block semantics are chunk-agnostic — so replaying any source
//! is byte-identical to materializing it first and replaying the `Vec`. The
//! `streaming` integration suite pins this for every app and chunk size.

use crate::block::BlockId;
use crate::exec::Walker;
use crate::trace::Trace;
use ispy_artifact::ArtifactError;

/// Default events per chunk for sources that buffer (64 Ki blocks ≈ 256 KiB
/// of ids: large enough to amortize per-chunk overhead, small enough to stay
/// cache-resident and keep peak memory flat).
pub const DEFAULT_CHUNK_EVENTS: usize = 64 * 1024;

/// A pull-based stream of basic-block events.
///
/// Implementors hand out chunks of consecutive trace events until the trace
/// ends (`Ok(None)`). The chunk boundaries are an implementation detail —
/// consumers must not attach meaning to them — and each returned slice is
/// only valid until the next call (it may alias an internal buffer).
pub trait BlockSource {
    /// Returns the next run of block events, `Ok(None)` at end of trace.
    ///
    /// # Errors
    ///
    /// Decoding sources surface corruption/truncation as typed
    /// [`ArtifactError`]s; in-memory and generator sources never fail.
    fn next_chunk(&mut self) -> Result<Option<&[BlockId]>, ArtifactError>;

    /// Total events this source will still yield, when cheaply known.
    /// `None` for open-ended or framed sources.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

impl<S: BlockSource + ?Sized> BlockSource for &mut S {
    fn next_chunk(&mut self) -> Result<Option<&[BlockId]>, ArtifactError> {
        (**self).next_chunk()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// A [`BlockSource`] over an already-materialized block slice.
///
/// With the default (unchunked) construction the whole remaining slice is
/// returned from the first pull — a pure borrow, so streaming over a
/// materialized trace costs exactly nothing versus passing the slice.
/// [`TraceBlocks::with_chunk`] slices it into fixed-size pulls instead,
/// which exists for the chunk-invariance tests and for consumers that want
/// bounded per-pull work.
///
/// # Examples
///
/// ```
/// use ispy_trace::source::{BlockSource, TraceBlocks};
/// use ispy_trace::BlockId;
///
/// let blocks = [BlockId(0), BlockId(1), BlockId(2)];
/// let mut s = TraceBlocks::with_chunk(&blocks, 2);
/// assert_eq!(s.next_chunk().unwrap(), Some(&blocks[..2]));
/// assert_eq!(s.next_chunk().unwrap(), Some(&blocks[2..]));
/// assert_eq!(s.next_chunk().unwrap(), None);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBlocks<'t> {
    blocks: &'t [BlockId],
    pos: usize,
    /// Events per pull; `0` means "everything remaining in one pull".
    chunk: usize,
}

impl<'t> TraceBlocks<'t> {
    /// Streams `blocks` as a single chunk (zero-cost adapter).
    pub fn new(blocks: &'t [BlockId]) -> Self {
        TraceBlocks { blocks, pos: 0, chunk: 0 }
    }

    /// Streams a [`Trace`]'s events as a single chunk.
    pub fn of_trace(trace: &'t Trace) -> Self {
        Self::new(trace.blocks())
    }

    /// Streams `blocks` in pulls of at most `chunk` events.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(blocks: &'t [BlockId], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        TraceBlocks { blocks, pos: 0, chunk }
    }
}

impl BlockSource for TraceBlocks<'_> {
    fn next_chunk(&mut self) -> Result<Option<&[BlockId]>, ArtifactError> {
        if self.pos >= self.blocks.len() {
            return Ok(None);
        }
        let take = if self.chunk == 0 {
            self.blocks.len() - self.pos
        } else {
            self.chunk.min(self.blocks.len() - self.pos)
        };
        let out = &self.blocks[self.pos..self.pos + take];
        self.pos += take;
        Ok(Some(out))
    }

    fn len_hint(&self) -> Option<u64> {
        Some((self.blocks.len() - self.pos) as u64)
    }
}

/// A [`BlockSource`] that synthesizes its events from a [`Walker`].
///
/// This is how unbounded traces exist without RAM: the nine app models are
/// deterministic generators, so "a 100-million-block cassandra trace" is
/// fully described by (program, input seed, length) and can be produced —
/// and re-produced, identically — one chunk at a time. Cloning the source
/// checkpoints the generator: the clone resumes from the same position.
///
/// # Examples
///
/// ```
/// use ispy_trace::source::{BlockSource, WalkerSource};
/// use ispy_trace::{apps, Walker};
///
/// let model = apps::tomcat();
/// let program = model.generate();
/// let reference = program.record_trace(model.default_input(), 1_000);
/// let mut src = WalkerSource::new(Walker::new(&program, model.default_input()), 1_000);
/// let mut streamed = Vec::new();
/// while let Some(chunk) = src.next_chunk().unwrap() {
///     streamed.extend_from_slice(chunk);
/// }
/// assert_eq!(streamed, reference.blocks());
/// ```
#[derive(Debug, Clone)]
pub struct WalkerSource<'p> {
    walker: Walker<'p>,
    remaining: u64,
    chunk: usize,
    buf: Vec<BlockId>,
}

impl<'p> WalkerSource<'p> {
    /// Streams the next `events` blocks of `walker` in default-size chunks.
    pub fn new(walker: Walker<'p>, events: u64) -> Self {
        Self::with_chunk(walker, events, DEFAULT_CHUNK_EVENTS)
    }

    /// Streams the next `events` blocks of `walker` in pulls of at most
    /// `chunk` events.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(walker: Walker<'p>, events: u64, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        WalkerSource { walker, remaining: events, chunk, buf: Vec::new() }
    }

    /// Events this source will still yield.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl BlockSource for WalkerSource<'_> {
    fn next_chunk(&mut self) -> Result<Option<&[BlockId]>, ArtifactError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let take = u64::min(self.chunk as u64, self.remaining) as usize;
        self.buf.clear();
        self.buf.extend(self.walker.by_ref().take(take));
        self.remaining -= self.buf.len() as u64;
        Ok(Some(&self.buf))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    fn drain<S: BlockSource>(mut s: S) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut pulls = 0usize;
        while let Some(chunk) = s.next_chunk().unwrap() {
            assert!(!chunk.is_empty(), "sources must not yield empty chunks");
            out.extend_from_slice(chunk);
            pulls += 1;
            assert!(pulls <= out.len() + 1, "runaway pull loop");
        }
        out
    }

    #[test]
    fn trace_blocks_single_pull_is_the_whole_slice() {
        let blocks: Vec<BlockId> = (0..100u32).map(BlockId).collect();
        let mut s = TraceBlocks::new(&blocks);
        assert_eq!(s.len_hint(), Some(100));
        assert_eq!(s.next_chunk().unwrap(), Some(blocks.as_slice()));
        assert_eq!(s.len_hint(), Some(0));
        assert_eq!(s.next_chunk().unwrap(), None);
    }

    #[test]
    fn trace_blocks_chunking_preserves_the_sequence() {
        let blocks: Vec<BlockId> = (0..1000u32).map(|i| BlockId(i % 37)).collect();
        for chunk in [1, 7, 64, 999, 1000, 5000] {
            assert_eq!(drain(TraceBlocks::with_chunk(&blocks, chunk)), blocks, "chunk {chunk}");
        }
    }

    #[test]
    fn empty_slice_yields_nothing() {
        let mut s = TraceBlocks::new(&[]);
        assert_eq!(s.next_chunk().unwrap(), None);
        let mut s = TraceBlocks::with_chunk(&[], 8);
        assert_eq!(s.next_chunk().unwrap(), None);
    }

    #[test]
    fn walker_source_matches_record_trace_for_any_chunk() {
        let model = apps::kafka().scaled_down(40);
        let program = model.generate();
        let reference = program.record_trace(model.default_input(), 5_000);
        for chunk in [1, 13, 4096, 5_000, 1 << 20] {
            let walker = Walker::new(&program, model.default_input());
            let got = drain(WalkerSource::with_chunk(walker, 5_000, chunk));
            assert_eq!(got, reference.blocks(), "chunk {chunk}");
        }
    }

    #[test]
    fn cloned_walker_source_resumes_identically() {
        let model = apps::verilator().scaled_down(40);
        let program = model.generate();
        let mut src =
            WalkerSource::with_chunk(Walker::new(&program, model.default_input()), 4_000, 512);
        // Consume one chunk, checkpoint, then confirm clone == original.
        src.next_chunk().unwrap().unwrap();
        let checkpoint = src.clone();
        assert_eq!(drain(checkpoint), drain(src));
    }

    #[test]
    fn skipped_walker_resumes_at_the_exact_position() {
        let model = apps::drupal().scaled_down(40);
        let program = model.generate();
        let reference = program.record_trace(model.default_input(), 3_000);
        let mut walker = Walker::new(&program, model.default_input());
        for _ in 0..1_234 {
            walker.next();
        }
        let src = WalkerSource::new(walker, 3_000 - 1_234);
        assert_eq!(drain(src), &reference.blocks()[1_234..]);
    }

    #[test]
    fn mut_ref_forwards() {
        let blocks: Vec<BlockId> = (0..10u32).map(BlockId).collect();
        let mut s = TraceBlocks::with_chunk(&blocks, 4);
        let r: &mut TraceBlocks<'_> = &mut s;
        assert_eq!(drain(r), blocks);
    }
}
