//! External LBR ingest: perf-script branch dumps → program + trace.
//!
//! The paper's profiles come from production machines: `perf record -b`
//! capturing Intel LBR branch stacks, rendered to text by
//! `perf script -F brstack`. This module parses that text shape and lifts
//! it into the reproduction's own [`Program`]/[`Trace`] representation, so
//! real-hardware dumps can enter the pipeline through the same `.itrace`
//! artifact path as the synthetic apps.
//!
//! Accepted input: whitespace-separated brstack entries of the form
//! `0x<from>/0x<to>/...` (any trailing `/`-separated flag fields are
//! ignored), in retirement order. Comment lines (`#`) and tokens that are
//! not branch entries are skipped; a dump with no branch entries at all is
//! an error.
//!
//! The lift necessarily reconstructs structure the text does not carry:
//!
//! * **Blocks** start at every branch *target* and extend to the next
//!   branch *source* above them (+4 bytes for the branch instruction
//!   itself), capped at 4 KiB — the classic basic-block inference from
//!   branch traces.
//! * **Instruction counts** are estimated at one per 4 bytes (min 1).
//! * **Edges** become [`BlockExit::Branch`] weights from observed
//!   transition counts; blocks with no observed successor return.
//! * Everything lands in a single synthetic function with a single request
//!   path, since call structure is not recoverable from bare from/to pairs.
//!
//! # Examples
//!
//! ```
//! use ispy_trace::ingest;
//!
//! let dump = "0x400010/0x400100/P/-/-/3 0x400140/0x400010/P/-/-/5\n\
//!             0x400010/0x400100/M/-/-/2\n";
//! let (program, trace) = ingest::parse_perf_script(dump).unwrap();
//! assert_eq!(program.num_blocks(), 2);
//! assert_eq!(trace.len(), 3);
//! program.validate().unwrap();
//! ```

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::program::{BlockExit, FuncId, Function, Program};
use crate::trace::Trace;
use std::collections::HashMap;
use std::fmt;

/// Largest block the lift will infer; gaps beyond this are treated as
/// unrelated code (shared-library padding, unmapped regions).
const MAX_BLOCK_BYTES: u64 = 4096;

/// Estimated bytes per instruction when lifting counts from spans.
const BYTES_PER_INSTR: u64 = 4;

/// Why a perf-script dump could not be ingested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The dump contained no parsable branch entries.
    NoBranches,
    /// A token looked like a branch entry but had an unparsable address.
    BadAddress {
        /// 1-based line number in the input.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::NoBranches => write!(f, "no LBR branch entries found in input"),
            IngestError::BadAddress { line, token } => {
                write!(f, "line {line}: unparsable branch entry {token:?}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Parses one `0xFROM/0xTO/...` token; `None` if the token is not a branch
/// entry at all (so non-branch perf fields are skipped silently).
fn parse_entry(token: &str) -> Option<Result<(u64, u64), ()>> {
    let mut parts = token.split('/');
    let from = parts.next()?;
    let to = parts.next()?;
    if !from.starts_with("0x") || !to.starts_with("0x") {
        return None;
    }
    let parse = |s: &str| u64::from_str_radix(s.trim_start_matches("0x"), 16).map_err(|_| ());
    Some(parse(from).and_then(|f| parse(to).map(|t| (f, t))))
}

/// Parses a perf-script-style LBR dump into a program and trace.
///
/// # Errors
///
/// [`IngestError::NoBranches`] for an empty dump,
/// [`IngestError::BadAddress`] for a malformed branch entry.
pub fn parse_perf_script(input: &str) -> Result<(Program, Trace), IngestError> {
    // Pass 1: collect the raw (from, to) pairs in retirement order.
    let mut branches: Vec<(u64, u64)> = Vec::new();
    for (line_no, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        for token in line.split_whitespace() {
            match parse_entry(token) {
                Some(Ok(pair)) => branches.push(pair),
                Some(Err(())) => {
                    return Err(IngestError::BadAddress {
                        line: line_no + 1,
                        token: token.to_string(),
                    })
                }
                None => {}
            }
        }
    }
    if branches.is_empty() {
        return Err(IngestError::NoBranches);
    }

    // Pass 2: infer block starts (branch targets) and their extents (up to
    // the next branch source at or above the start, +branch bytes).
    let mut starts: Vec<u64> = branches.iter().map(|&(_, to)| to).collect();
    starts.sort_unstable();
    starts.dedup();
    let mut sources: Vec<u64> = branches.iter().map(|&(from, _)| from).collect();
    sources.sort_unstable();
    sources.dedup();

    let mut blocks = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let next_start = starts.get(i + 1).copied();
        let src_idx = sources.partition_point(|&s| s < start);
        let from_source = sources.get(src_idx).map(|&s| s + BYTES_PER_INSTR - start);
        let mut bytes = from_source.unwrap_or(MAX_BLOCK_BYTES).clamp(1, MAX_BLOCK_BYTES);
        // Never overlap the next inferred block.
        if let Some(next) = next_start {
            bytes = bytes.min(next - start);
        }
        let instrs = (bytes / BYTES_PER_INSTR).max(1);
        blocks.push(BasicBlock::new(
            Addr::new(start),
            bytes as u32,
            instrs.min(u64::from(u16::MAX)) as u16,
            0,
        ));
    }

    let block_of: HashMap<u64, BlockId> =
        starts.iter().enumerate().map(|(i, &s)| (s, BlockId(i as u32))).collect();

    // Pass 3: trace events (each branch target is a block entry) and edge
    // counts between consecutive events.
    let mut events = Vec::with_capacity(branches.len());
    let mut edge_counts: HashMap<(u32, u32), u64> = HashMap::new();
    let mut prev: Option<BlockId> = None;
    for &(_, to) in &branches {
        let b = block_of[&to];
        if let Some(p) = prev {
            *edge_counts.entry((p.0, b.0)).or_insert(0) += 1;
        }
        events.push(b);
        prev = Some(b);
    }

    // Pass 4: lift edge counts into branch exits (sorted heaviest-first,
    // ties by id, so ingest output is deterministic).
    let mut exits = Vec::with_capacity(blocks.len());
    for i in 0..blocks.len() {
        let mut targets: Vec<(BlockId, f64)> = edge_counts
            .iter()
            .filter(|&(&(from, _), _)| from == i as u32)
            .map(|(&(_, to), &w)| (BlockId(to), w as f64))
            .collect();
        targets.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        if targets.is_empty() {
            exits.push(BlockExit::Return);
        } else {
            exits.push(BlockExit::Branch(targets));
        }
    }

    let entry = events.first().copied().unwrap_or(BlockId(0));
    let funcs = vec![Function::new(entry, 0, blocks.len() as u32)];
    let owner = vec![FuncId(0); blocks.len()];
    let program = Program::new("ingested", blocks, exits, funcs, owner, vec![vec![FuncId(0)]]);
    Ok((program, Trace::new("ingested", events)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_brstack_tokens_and_skips_noise() {
        let dump = "# comment line\n\
                    swapper 0 [000] 12.5: branches:\n\
                    0x1000/0x2000/P/-/-/7 0x2040/0x1000/M/-/-/2\n\
                    0x1000/0x2000/P/-/-/1\n";
        let (program, trace) = parse_perf_script(dump).unwrap();
        program.validate().unwrap();
        assert_eq!(program.num_blocks(), 2);
        assert_eq!(trace.len(), 3);
        // Block at 0x1000 ends at the source 0x1000 + 4 bytes.
        let b = program.block(trace.blocks()[1]);
        assert_eq!(b.start().raw(), 0x1000);
        assert_eq!(b.bytes(), 4);
    }

    #[test]
    fn blocks_never_overlap_and_are_capped() {
        let dump = "0x100/0x200/P 0x2c0/0x240/P 0x300/0x1000000/P 0x1000010/0x100/P";
        let (program, _) = parse_perf_script(dump).unwrap();
        program.validate().unwrap();
        let mut prev_end = 0;
        for b in program.blocks() {
            assert!(b.start().raw() >= prev_end, "blocks overlap");
            assert!(u64::from(b.bytes()) <= MAX_BLOCK_BYTES);
            prev_end = b.end().raw();
        }
    }

    #[test]
    fn edge_weights_reflect_transition_counts() {
        // 0x10 -> 0x20 twice, 0x10 -> 0x30 once (as consecutive events).
        let dump = "0xa0/0x10/P 0xa4/0x20/P 0xa8/0x10/P 0xac/0x20/P 0xb0/0x10/P 0xb4/0x30/P";
        let (program, trace) = parse_perf_script(dump).unwrap();
        let first = trace.blocks()[0];
        if let BlockExit::Branch(targets) = program.exit(first) {
            assert_eq!(targets[0].1, 2.0); // heaviest first
        } else {
            panic!("expected a branch exit");
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(parse_perf_script("").unwrap_err(), IngestError::NoBranches);
        assert_eq!(parse_perf_script("# only comments\\n").unwrap_err(), IngestError::NoBranches);
    }

    #[test]
    fn bad_hex_is_reported_with_line() {
        let err = parse_perf_script("0x10/0x20/P\n0xZZ/0x30/P").unwrap_err();
        assert!(matches!(err, IngestError::BadAddress { line: 2, .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn ingested_recording_round_trips_through_itrace() {
        let dump = "0x1000/0x2000/P 0x2040/0x3000/P 0x3040/0x1000/P 0x1000/0x2000/P";
        let (program, trace) = parse_perf_script(dump).unwrap();
        let bytes = crate::artifact::recording_to_bytes(&program, &trace);
        let (p2, t2) = crate::artifact::recording_from_bytes(&bytes).unwrap();
        assert_eq!(p2.blocks(), program.blocks());
        assert_eq!(t2, trace);
    }
}
