//! Static program representation: blocks, functions, control-flow edges.

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::exec::{InputSpec, Walker};
use crate::trace::Trace;
use std::fmt;

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// A function: a contiguous range of basic blocks with a single entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    entry: BlockId,
    first_block: u32,
    num_blocks: u32,
}

impl Function {
    /// Creates a function covering blocks `[first_block, first_block + num_blocks)`.
    pub fn new(entry: BlockId, first_block: u32, num_blocks: u32) -> Self {
        Function { entry, first_block, num_blocks }
    }

    /// The entry block executed on call.
    pub const fn entry(&self) -> BlockId {
        self.entry
    }

    /// Ids of all blocks belonging to this function.
    pub fn block_range(&self) -> std::ops::Range<u32> {
        self.first_block..self.first_block + self.num_blocks
    }

    /// Whether `b` belongs to this function.
    pub fn contains(&self, b: BlockId) -> bool {
        self.block_range().contains(&b.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockExit {
    /// Conditional/unconditional branch to one of several intra-function
    /// targets, each with a (static model) probability weight.
    Branch(Vec<(BlockId, f64)>),
    /// Call `callee`, then continue at `ret` (a block in the same function).
    Call {
        /// The function invoked.
        callee: FuncId,
        /// Continuation block after the callee returns.
        ret: BlockId,
    },
    /// Return to the caller (or to the top-level request loop).
    Return,
}

/// Errors produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A branch/call names a block id outside the program.
    BlockOutOfRange {
        /// Block whose exit is broken.
        from: BlockId,
        /// The out-of-range target.
        target: u32,
    },
    /// A branch target or call return leaves the enclosing function.
    CrossFunctionEdge {
        /// Block whose exit is broken.
        from: BlockId,
        /// The offending target.
        target: BlockId,
    },
    /// A branch has no targets or non-positive total weight.
    DegenerateBranch {
        /// Block whose exit is broken.
        from: BlockId,
    },
    /// A call names a function id outside the program.
    FuncOutOfRange {
        /// Block whose exit is broken.
        from: BlockId,
        /// The out-of-range callee.
        callee: u32,
    },
    /// A request path references a function id outside the program.
    RequestPathFuncOutOfRange {
        /// Index of the request type.
        request: usize,
        /// The out-of-range function.
        callee: u32,
    },
    /// The program has no request paths, so nothing can execute.
    NoRequestPaths,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::BlockOutOfRange { from, target } => {
                write!(f, "block {from} targets out-of-range block {target}")
            }
            ValidateProgramError::CrossFunctionEdge { from, target } => {
                write!(f, "block {from} has intra-function edge to foreign block {target}")
            }
            ValidateProgramError::DegenerateBranch { from } => {
                write!(f, "block {from} has a branch with no viable targets")
            }
            ValidateProgramError::FuncOutOfRange { from, callee } => {
                write!(f, "block {from} calls out-of-range function {callee}")
            }
            ValidateProgramError::RequestPathFuncOutOfRange { request, callee } => {
                write!(f, "request path {request} calls out-of-range function {callee}")
            }
            ValidateProgramError::NoRequestPaths => write!(f, "program has no request paths"),
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// A complete synthetic program: text layout, control flow, and the request
/// code paths its (synthetic) server loop can execute.
///
/// # Examples
///
/// ```
/// use ispy_trace::apps;
///
/// let program = apps::kafka().generate();
/// assert!(program.num_blocks() > 1000);
/// program.validate().expect("generated programs are well-formed");
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    blocks: Vec<BasicBlock>,
    exits: Vec<BlockExit>,
    funcs: Vec<Function>,
    /// Function each block belongs to (parallel to `blocks`).
    owner: Vec<FuncId>,
    request_paths: Vec<Vec<FuncId>>,
    text_bytes: u64,
    data_footprint_lines: u64,
    branch_determinism: f64,
    request_variants: u16,
}

impl Program {
    /// Assembles a program from parts.
    ///
    /// # Panics
    ///
    /// Panics if `blocks`, `exits`, and `owner` lengths disagree.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        exits: Vec<BlockExit>,
        funcs: Vec<Function>,
        owner: Vec<FuncId>,
        request_paths: Vec<Vec<FuncId>>,
    ) -> Self {
        assert_eq!(blocks.len(), exits.len(), "one exit per block");
        assert_eq!(blocks.len(), owner.len(), "one owner per block");
        let text_bytes = blocks
            .iter()
            .map(|b| b.end().raw())
            .max()
            .unwrap_or(0)
            .saturating_sub(blocks.iter().map(|b| b.start().raw()).min().unwrap_or(0));
        Program {
            name: name.into(),
            blocks,
            exits,
            funcs,
            owner,
            request_paths,
            text_bytes,
            data_footprint_lines: 1 << 14,
            branch_determinism: 0.85,
            request_variants: 4,
        }
    }

    /// Sets the data working-set size in cache lines used by the simulator's
    /// D-side model. Defaults to 16 Ki lines (1 MiB).
    pub fn set_data_footprint_lines(&mut self, lines: u64) {
        self.data_footprint_lines = lines.max(1);
    }

    /// Data working-set size in cache lines.
    pub fn data_footprint_lines(&self) -> u64 {
        self.data_footprint_lines
    }

    /// Sets how strongly forward branches correlate with the calling
    /// context (0 = memoryless random walk, 1 = fully determined by the
    /// call-chain mode). Real control flow is highly history-correlated,
    /// which is the signal context-driven prefetching exploits.
    pub fn set_branch_determinism(&mut self, p: f64) {
        self.branch_determinism = p.clamp(0.0, 1.0);
    }

    /// Branch-to-context correlation strength; see
    /// [`set_branch_determinism`](Self::set_branch_determinism).
    pub fn branch_determinism(&self) -> f64 {
        self.branch_determinism
    }

    /// Sets how many input-dependent variants each request type has. Each
    /// incoming request draws a variant; the variant steers the
    /// mode-correlated branches, so one request type exercises several
    /// distinct (but individually predictable) code paths — like real
    /// requests with different parameters.
    pub fn set_request_variants(&mut self, v: u16) {
        self.request_variants = v.max(1);
    }

    /// Input-dependent variants per request type.
    pub fn request_variants(&self) -> u16 {
        self.request_variants
    }

    /// The application name this program models.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All blocks, indexable by [`BlockId::index`].
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Returns how control leaves block `id`.
    pub fn exit(&self, id: BlockId) -> &BlockExit {
        &self.exits[id.index()]
    }

    /// Returns the function with the given id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// The function owning block `id`.
    pub fn owner_of(&self, id: BlockId) -> FuncId {
        self.owner[id.index()]
    }

    /// The static code paths, one per request type.
    pub fn request_paths(&self) -> &[Vec<FuncId>] {
        &self.request_paths
    }

    /// Span of the text segment in bytes (the static code footprint that
    /// injected prefetch instructions inflate).
    pub fn text_bytes(&self) -> u64 {
        self.text_bytes
    }

    /// Sum of static instruction counts over all blocks.
    pub fn total_static_instrs(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.instrs())).sum()
    }

    /// Lowest block start address (base of text).
    pub fn text_base(&self) -> Addr {
        self.blocks.iter().map(|b| b.start()).min().unwrap_or(Addr::new(0))
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; see [`ValidateProgramError`].
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        let n = self.blocks.len() as u32;
        if self.request_paths.is_empty() {
            return Err(ValidateProgramError::NoRequestPaths);
        }
        for (i, exit) in self.exits.iter().enumerate() {
            let from = BlockId(i as u32);
            let my_func = self.owner[i];
            match exit {
                BlockExit::Branch(targets) => {
                    if targets.is_empty() || targets.iter().map(|(_, w)| w).sum::<f64>() <= 0.0 {
                        return Err(ValidateProgramError::DegenerateBranch { from });
                    }
                    for &(t, _) in targets {
                        if t.0 >= n {
                            return Err(ValidateProgramError::BlockOutOfRange {
                                from,
                                target: t.0,
                            });
                        }
                        if self.owner[t.index()] != my_func {
                            return Err(ValidateProgramError::CrossFunctionEdge {
                                from,
                                target: t,
                            });
                        }
                    }
                }
                BlockExit::Call { callee, ret } => {
                    if callee.0 as usize >= self.funcs.len() {
                        return Err(ValidateProgramError::FuncOutOfRange {
                            from,
                            callee: callee.0,
                        });
                    }
                    if ret.0 >= n {
                        return Err(ValidateProgramError::BlockOutOfRange { from, target: ret.0 });
                    }
                    if self.owner[ret.index()] != my_func {
                        return Err(ValidateProgramError::CrossFunctionEdge { from, target: *ret });
                    }
                }
                BlockExit::Return => {}
            }
        }
        for (r, path) in self.request_paths.iter().enumerate() {
            for &f in path {
                if f.0 as usize >= self.funcs.len() {
                    return Err(ValidateProgramError::RequestPathFuncOutOfRange {
                        request: r,
                        callee: f.0,
                    });
                }
            }
        }
        Ok(())
    }

    /// Records a deterministic execution trace of `len` block events under
    /// the given input.
    pub fn record_trace(&self, input: InputSpec, len: usize) -> Trace {
        Walker::new(self, input).record(len)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A tiny two-function program used by unit tests across the crate:
    /// `f0`: b0 -> b1 -> call f1 -> b2 -> return; `f1`: b3 -> return.
    pub fn tiny_program() -> Program {
        let blocks = vec![
            BasicBlock::new(Addr::new(0), 32, 8, 1),
            BasicBlock::new(Addr::new(32), 32, 8, 0),
            BasicBlock::new(Addr::new(64), 32, 8, 2),
            BasicBlock::new(Addr::new(4096), 48, 12, 1),
        ];
        let exits = vec![
            BlockExit::Branch(vec![(BlockId(1), 1.0)]),
            BlockExit::Call { callee: FuncId(1), ret: BlockId(2) },
            BlockExit::Return,
            BlockExit::Return,
        ];
        let funcs = vec![Function::new(BlockId(0), 0, 3), Function::new(BlockId(3), 3, 1)];
        let owner = vec![FuncId(0), FuncId(0), FuncId(0), FuncId(1)];
        Program::new("tiny", blocks, exits, funcs, owner, vec![vec![FuncId(0)]])
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::tiny_program;
    use super::*;

    #[test]
    fn tiny_program_validates() {
        tiny_program().validate().unwrap();
    }

    #[test]
    fn text_bytes_spans_layout() {
        let p = tiny_program();
        assert_eq!(p.text_bytes(), 4096 + 48);
    }

    #[test]
    fn owner_lookup() {
        let p = tiny_program();
        assert_eq!(p.owner_of(BlockId(2)), FuncId(0));
        assert_eq!(p.owner_of(BlockId(3)), FuncId(1));
    }

    #[test]
    fn invalid_branch_target_detected() {
        let mut p = tiny_program();
        p.exits[0] = BlockExit::Branch(vec![(BlockId(99), 1.0)]);
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::BlockOutOfRange { target: 99, .. })
        ));
    }

    #[test]
    fn cross_function_edge_detected() {
        let mut p = tiny_program();
        p.exits[0] = BlockExit::Branch(vec![(BlockId(3), 1.0)]);
        assert!(matches!(p.validate(), Err(ValidateProgramError::CrossFunctionEdge { .. })));
    }

    #[test]
    fn degenerate_branch_detected() {
        let mut p = tiny_program();
        p.exits[0] = BlockExit::Branch(vec![]);
        assert!(matches!(p.validate(), Err(ValidateProgramError::DegenerateBranch { .. })));
    }

    #[test]
    fn missing_request_paths_detected() {
        let p = tiny_program();
        let p2 = Program::new(
            "empty",
            p.blocks.clone(),
            p.exits.clone(),
            p.funcs.clone(),
            p.owner.clone(),
            vec![],
        );
        assert_eq!(p2.validate(), Err(ValidateProgramError::NoRequestPaths));
    }

    #[test]
    fn bad_call_detected() {
        let mut p = tiny_program();
        p.exits[1] = BlockExit::Call { callee: FuncId(9), ret: BlockId(2) };
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::FuncOutOfRange { callee: 9, .. })
        ));
    }

    #[test]
    fn total_static_instrs_sums_blocks() {
        assert_eq!(tiny_program().total_static_instrs(), 8 + 8 + 8 + 12);
    }
}
