//! Byte addresses and cache-line addresses.

use std::fmt;

/// Size of a cache line in bytes (64 B, matching the paper's Table I system).
pub const LINE_BYTES: u64 = 64;

/// A virtual byte address in the simulated address space.
///
/// # Examples
///
/// ```
/// use ispy_trace::{Addr, Line};
///
/// let a = Addr::new(0x1040);
/// assert_eq!(a.line(), Line::new(0x41));
/// assert_eq!(a.offset_in_line(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub const fn line(self) -> Line {
        Line(self.0 / LINE_BYTES)
    }

    /// Byte offset of this address within its cache line.
    pub const fn offset_in_line(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// The address `bytes` past this one.
    pub const fn add(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address (byte address divided by [`LINE_BYTES`]).
///
/// # Examples
///
/// ```
/// use ispy_trace::Line;
///
/// let base = Line::new(100);
/// assert_eq!(base.offset(3), Line::new(103));
/// assert_eq!(Line::new(103).distance_from(base), Some(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Line(u64);

impl Line {
    /// Wraps a raw line number.
    pub const fn new(raw: u64) -> Self {
        Line(raw)
    }

    /// The raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of this line.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The line `n` lines after this one.
    pub const fn offset(self, n: u64) -> Line {
        Line(self.0 + n)
    }

    /// Forward distance from `base` to this line, or `None` if this line
    /// precedes `base`.
    pub fn distance_from(self, base: Line) -> Option<u64> {
        self.0.checked_sub(base.0)
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<u64> for Line {
    fn from(raw: u64) -> Self {
        Line(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_mapping() {
        assert_eq!(Addr::new(0).line(), Line::new(0));
        assert_eq!(Addr::new(63).line(), Line::new(0));
        assert_eq!(Addr::new(64).line(), Line::new(1));
        assert_eq!(Addr::new(129).line(), Line::new(2));
    }

    #[test]
    fn offsets() {
        assert_eq!(Addr::new(70).offset_in_line(), 6);
        assert_eq!(Line::new(2).base_addr(), Addr::new(128));
    }

    #[test]
    fn line_distance() {
        assert_eq!(Line::new(10).distance_from(Line::new(4)), Some(6));
        assert_eq!(Line::new(4).distance_from(Line::new(10)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(Line::new(0x40).to_string(), "L0x40");
    }
}
