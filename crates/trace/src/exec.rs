//! Deterministic execution engine: turns a [`Program`] plus an input
//! specification into a dynamic stream of basic blocks.
//!
//! The walker models a data-center server's steady state: an endless loop
//! that draws a request type from a skewed mix and executes that request's
//! code path (a sequence of function calls, each of which may branch, loop,
//! and call further functions).

use crate::block::BlockId;
use crate::program::{BlockExit, FuncId, Program};
use crate::rng::{Pcg32, Zipf};
use crate::trace::Trace;

/// Maximum dynamic call depth; deeper calls are elided (treated as inlined
/// returns) to keep synthetic call graphs from recursing unboundedly.
pub const MAX_CALL_DEPTH: usize = 24;

/// A workload input: which request mix drives the server loop.
///
/// The same [`Program`] (binary) can be run under different inputs — this is
/// how the reproduction models the paper's Fig. 16 input-generalization
/// study: profile under one input, evaluate under others.
///
/// # Examples
///
/// ```
/// use ispy_trace::InputSpec;
///
/// let profiled = InputSpec::zipf(1, 8, 1.2);
/// let drifted = profiled.clone().with_rotation(3).with_seed(99);
/// assert_ne!(profiled, drifted);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    seed: u64,
    weights: Vec<f64>,
}

impl InputSpec {
    /// An input whose request mix follows a Zipf distribution with skew `s`
    /// over `n` request types.
    pub fn zipf(seed: u64, n: usize, s: f64) -> Self {
        let zipf = Zipf::new(n, s);
        // Materialize the pmf so inputs can be rotated/perturbed.
        let mut weights = Vec::with_capacity(n);
        let mut prev = 0.0;
        for k in 1..=n {
            let mut acc = 0.0;
            for j in 1..=k {
                acc += 1.0 / (j as f64).powf(s);
            }
            let mut total = 0.0;
            for j in 1..=n {
                total += 1.0 / (j as f64).powf(s);
            }
            let c = acc / total;
            weights.push(c - prev);
            prev = c;
        }
        let _ = zipf;
        InputSpec { seed, weights }
    }

    /// A uniform request mix over `n` request types.
    pub fn uniform(seed: u64, n: usize) -> Self {
        InputSpec { seed, weights: vec![1.0 / n as f64; n] }
    }

    /// An input with explicit request weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn with_weights(seed: u64, weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one request weight");
        assert!(weights.iter().sum::<f64>() > 0.0, "weights must sum > 0");
        InputSpec { seed, weights }
    }

    /// Rotates the request mix by `k` positions — a cheap model of input
    /// drift (hot request types change, code paths stay the same).
    #[must_use]
    pub fn with_rotation(mut self, k: usize) -> Self {
        let n = self.weights.len();
        self.weights.rotate_right(k % n);
        self
    }

    /// Replaces the RNG seed, yielding a different interleaving of the same
    /// statistical mix.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The request-type weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Call-stack frame: where to resume in the caller, and the caller's mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    ret: BlockId,
    saved_mode: u64,
}

/// Cheap 64-bit mixer for mode propagation and deterministic branch picks.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(0x94D049BB133111EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic random-walk executor over a program.
///
/// Implements [`Iterator`] yielding one [`BlockId`] per executed basic block.
/// The walker is `Clone`, and a clone resumes from exactly the same machine
/// state — cloning at block `n` and continuing yields the same suffix as the
/// original. Streaming replay leans on this to checkpoint generator state at
/// shard-window boundaries instead of materializing the trace.
///
/// # Examples
///
/// ```
/// use ispy_trace::{apps, Walker};
///
/// let model = apps::tomcat();
/// let program = model.generate();
/// let blocks: Vec<_> = Walker::new(&program, model.default_input()).take(100).collect();
/// assert_eq!(blocks.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Walker<'p> {
    program: &'p Program,
    rng: Pcg32,
    weights: Vec<f64>,
    /// Remaining top-level calls of the current request with their modes,
    /// in reverse order.
    pending: Vec<(FuncId, u64)>,
    stack: Vec<Frame>,
    /// Block to execute next, if control is inside a function.
    current: Option<BlockId>,
    /// The executing call chain's mode: a deterministic digest of the
    /// request type and call path. Forward branches mostly follow the mode
    /// (real control flow is highly correlated with calling context), so
    /// the path taken through a function is predictable from *how it was
    /// reached* — the property context-driven prefetching exploits.
    mode: u64,
}

impl<'p> Walker<'p> {
    /// Creates a walker over `program` driven by `input`.
    ///
    /// # Panics
    ///
    /// Panics if the input has a different number of request weights than the
    /// program has request paths.
    pub fn new(program: &'p Program, input: InputSpec) -> Self {
        assert_eq!(
            input.weights.len(),
            program.request_paths().len(),
            "input weights must match the program's request types"
        );
        Walker {
            program,
            rng: Pcg32::seed_from_u64(input.seed),
            weights: input.weights,
            pending: Vec::new(),
            stack: Vec::new(),
            current: None,
            mode: 0,
        }
    }

    /// Records the next `len` block events into a [`Trace`].
    pub fn record(self, len: usize) -> Trace {
        let name = self.program.name().to_string();
        Trace::new(name, self.take(len).collect())
    }

    /// Starts the next request: draws a request type and an input-dependent
    /// variant, then queues the type's calls.
    fn begin_request(&mut self) {
        let r = self.rng.weighted_index(&self.weights);
        let nv = u64::from(self.program.request_variants());
        let v = self.rng.below(nv);
        let path = &self.program.request_paths()[r];
        for (k, &f) in path.iter().enumerate().rev() {
            // The variant selects which stretches of the type's code path
            // this request exercises (~3/4 of them), so one request type
            // spans several distinct but individually predictable paths.
            let step_mode = mix(r as u64 + 1, mix(k as u64, v));
            if path.len() > 4 && step_mode.is_multiple_of(4) {
                continue;
            }
            self.pending.push((f, step_mode));
        }
    }

    /// Enters `func`, respecting the depth cap.
    fn enter(&mut self, func: FuncId) {
        self.current = Some(self.program.func(func).entry());
    }

    /// Weighted choice over branch targets given a uniform sample `u`.
    fn pick_weighted(targets: &[(BlockId, f64)], u: f64) -> usize {
        let total: f64 = targets.iter().map(|(_, w)| *w).sum();
        let mut x = u * total;
        for (j, (_, w)) in targets.iter().enumerate() {
            x -= *w;
            if x < 0.0 {
                return j;
            }
        }
        targets.len() - 1
    }

    /// Advances control past the end of `block`.
    fn step_exit(&mut self, block: BlockId) {
        match self.program.exit(block) {
            BlockExit::Branch(targets) => {
                let i = if targets.len() == 1 {
                    0
                } else {
                    let has_back_edge = targets.iter().any(|(t, _)| t.0 <= block.0);
                    let deterministic =
                        !has_back_edge && self.rng.chance(self.program.branch_determinism());
                    if deterministic {
                        // The calling context decides the path: derive the
                        // "random" sample from (mode, block) so the same
                        // call chain always walks the same way.
                        let h = mix(self.mode, u64::from(block.0));
                        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        Self::pick_weighted(targets, u)
                    } else {
                        // Loops and residual noise stay stochastic.
                        let u = self.rng.f64();
                        Self::pick_weighted(targets, u)
                    }
                };
                self.current = Some(targets[i].0);
            }
            BlockExit::Call { callee, ret } => {
                if self.stack.len() >= MAX_CALL_DEPTH {
                    // Depth cap: elide the call.
                    self.current = Some(*ret);
                } else {
                    self.stack.push(Frame { ret: *ret, saved_mode: self.mode });
                    // The callee's mode digests the caller's mode and the
                    // call site: distinct call chains walk callees
                    // differently, predictably.
                    self.mode = mix(self.mode, u64::from(block.0));
                    self.enter(*callee);
                }
            }
            BlockExit::Return => match self.stack.pop() {
                Some(frame) => {
                    self.mode = frame.saved_mode;
                    self.current = Some(frame.ret);
                }
                None => self.current = None,
            },
        }
    }
}

impl Iterator for Walker<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        loop {
            if let Some(block) = self.current {
                self.step_exit(block);
                return Some(block);
            }
            // Between functions at top level.
            match self.pending.pop() {
                Some((func, mode)) => {
                    self.mode = mode;
                    self.enter(func);
                }
                None => self.begin_request(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::testutil::tiny_program;

    fn input1() -> InputSpec {
        InputSpec::uniform(7, 1)
    }

    #[test]
    fn walks_expected_sequence() {
        let p = tiny_program();
        let seq: Vec<_> = Walker::new(&p, input1()).take(8).map(|b| b.0).collect();
        // f0: b0 b1, call f1: b3, return to b2, return; repeat.
        assert_eq!(seq, vec![0, 1, 3, 2, 0, 1, 3, 2]);
    }

    #[test]
    fn deterministic_for_seed() {
        let p = tiny_program();
        let a: Vec<_> = Walker::new(&p, input1()).take(50).collect();
        let b: Vec<_> = Walker::new(&p, input1()).take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn record_produces_requested_length() {
        let p = tiny_program();
        let t = p.record_trace(input1(), 123);
        assert_eq!(t.len(), 123);
    }

    #[test]
    #[should_panic(expected = "request types")]
    fn mismatched_weights_panic() {
        let p = tiny_program();
        let _ = Walker::new(&p, InputSpec::uniform(0, 3));
    }

    #[test]
    fn rotation_changes_weights() {
        let i = InputSpec::with_weights(0, vec![0.7, 0.2, 0.1]);
        let r = i.clone().with_rotation(1);
        assert_eq!(r.weights(), &[0.1, 0.7, 0.2]);
    }

    #[test]
    fn branch_determinism_makes_paths_context_correlated() {
        // With full determinism, the same (request type, variant, call
        // chain) always walks the same blocks; with zero determinism the
        // walk is memoryless. Measure path diversity through a generated
        // program under both settings.
        use crate::gen::{generate, GenParams};
        let mk = |det: f64| {
            let mut p =
                generate("d", &GenParams { funcs: 60, request_types: 2, ..GenParams::default() });
            p.set_branch_determinism(det);
            p.record_trace(InputSpec::uniform(3, 2), 20_000)
        };
        let deterministic = mk(1.0);
        let random = mk(0.0);
        // Count distinct 4-grams: the memoryless walk explores more paths.
        let grams = |t: &crate::trace::Trace| {
            let b = t.blocks();
            let mut set = std::collections::HashSet::new();
            for w in b.windows(4) {
                set.insert((w[0], w[1], w[2], w[3]));
            }
            set.len()
        };
        assert!(
            grams(&random) > grams(&deterministic),
            "random {} should out-diversify deterministic {}",
            grams(&random),
            grams(&deterministic)
        );
    }

    #[test]
    fn variants_expand_the_footprint() {
        use crate::gen::{generate, GenParams};
        let base = GenParams { funcs: 80, request_types: 2, ..GenParams::default() };
        let mut single = generate("v", &base);
        single.set_request_variants(1);
        let mut many = generate("v", &base);
        many.set_request_variants(8);
        let input = InputSpec::uniform(5, 2);
        let s1 = single.record_trace(input.clone(), 30_000).stats(&single);
        let s8 = many.record_trace(input, 30_000).stats(&many);
        assert!(
            s8.distinct_blocks >= s1.distinct_blocks,
            "variants should touch at least as much code: {} vs {}",
            s8.distinct_blocks,
            s1.distinct_blocks
        );
    }

    #[test]
    fn depth_cap_prevents_unbounded_stacks() {
        // A pathological program where every block calls deeper: the walker
        // must elide calls past MAX_CALL_DEPTH rather than recurse forever.
        use crate::block::BasicBlock;
        use crate::program::{BlockExit, Function, Program};
        use crate::Addr;
        let n = 64u32;
        let blocks: Vec<BasicBlock> =
            (0..n).map(|i| BasicBlock::new(Addr::new(u64::from(i) * 64), 32, 8, 0)).collect();
        // Function i = single block i; block i calls function (i+1) % n with
        // ret = itself -> infinite call chain without the cap.
        let exits: Vec<BlockExit> = (0..n)
            .map(|i| BlockExit::Call {
                callee: crate::program::FuncId((i + 1) % n),
                ret: BlockId(i),
            })
            .collect();
        let funcs: Vec<Function> = (0..n).map(|i| Function::new(BlockId(i), i, 1)).collect();
        let owner = (0..n).map(crate::program::FuncId).collect();
        let p = Program::new(
            "deep",
            blocks,
            exits,
            funcs,
            owner,
            vec![vec![crate::program::FuncId(0)]],
        );
        // Must terminate and produce events.
        let t = p.record_trace(InputSpec::uniform(1, 1), 1_000);
        assert_eq!(t.len(), 1_000);
    }

    #[test]
    fn zipf_weights_sum_to_one_and_skew() {
        let i = InputSpec::zipf(0, 10, 1.3);
        let sum: f64 = i.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(i.weights()[0] > i.weights()[9]);
    }
}
