//! Basic blocks: the unit of control flow in a program.

use crate::addr::{Addr, Line, LINE_BYTES};
use std::fmt;

/// Identifier of a basic block within a [`Program`](crate::Program).
///
/// Block ids are dense indices; the whole pipeline (traces, dynamic CFGs,
/// injection maps) uses them as array indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl From<u32> for BlockId {
    fn from(raw: u32) -> Self {
        BlockId(raw)
    }
}

/// A straight-line sequence of instructions ending in a branch.
///
/// # Examples
///
/// ```
/// use ispy_trace::{Addr, BasicBlock};
///
/// let b = BasicBlock::new(Addr::new(60), 10, 3, 1);
/// // Spans the line boundary at 64, so it touches two cache lines.
/// assert_eq!(b.lines().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasicBlock {
    start: Addr,
    bytes: u32,
    instrs: u16,
    data_accesses: u8,
}

impl BasicBlock {
    /// Creates a block at `start` spanning `bytes` bytes containing `instrs`
    /// instructions, `data_accesses` of which touch memory.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` or `instrs` is zero.
    pub fn new(start: Addr, bytes: u32, instrs: u16, data_accesses: u8) -> Self {
        assert!(bytes > 0, "block must occupy at least one byte");
        assert!(instrs > 0, "block must contain at least one instruction");
        BasicBlock { start, bytes, instrs, data_accesses }
    }

    /// First byte of the block (also the block's identity for LBR purposes:
    /// the paper identifies context blocks by the address of their first
    /// instruction).
    pub const fn start(&self) -> Addr {
        self.start
    }

    /// Size in bytes.
    pub const fn bytes(&self) -> u32 {
        self.bytes
    }

    /// One past the last byte of the block.
    pub const fn end(&self) -> Addr {
        Addr::new(self.start.raw() + self.bytes as u64)
    }

    /// Number of instructions.
    pub const fn instrs(&self) -> u16 {
        self.instrs
    }

    /// Number of data accesses performed by one execution of the block.
    pub const fn data_accesses(&self) -> u8 {
        self.data_accesses
    }

    /// First cache line touched when fetching the block.
    pub const fn first_line(&self) -> Line {
        self.start.line()
    }

    /// Iterates over every cache line the block's bytes span, in fetch order.
    pub fn lines(&self) -> LineIter {
        LineIter {
            next: self.start.line().raw(),
            last: Addr::new(self.start.raw() + self.bytes as u64 - 1).line().raw(),
        }
    }

    /// Number of cache lines spanned.
    pub fn line_count(&self) -> u64 {
        let first = self.start.line().raw();
        let last = (self.start.raw() + self.bytes as u64 - 1) / LINE_BYTES;
        last - first + 1
    }
}

/// Iterator over the cache lines of a block; see [`BasicBlock::lines`].
#[derive(Debug, Clone)]
pub struct LineIter {
    next: u64,
    last: u64,
}

impl Iterator for LineIter {
    type Item = Line;

    fn next(&mut self) -> Option<Line> {
        if self.next > self.last {
            None
        } else {
            let l = Line::new(self.next);
            self.next += 1;
            Some(l)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.last + 1).saturating_sub(self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LineIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_block() {
        let b = BasicBlock::new(Addr::new(0), 32, 8, 2);
        let lines: Vec<_> = b.lines().collect();
        assert_eq!(lines, vec![Line::new(0)]);
        assert_eq!(b.line_count(), 1);
    }

    #[test]
    fn straddling_block() {
        let b = BasicBlock::new(Addr::new(60), 10, 3, 0);
        let lines: Vec<_> = b.lines().collect();
        assert_eq!(lines, vec![Line::new(0), Line::new(1)]);
        assert_eq!(b.line_count(), 2);
    }

    #[test]
    fn exact_line_end_is_not_next_line() {
        // A block ending exactly at a line boundary touches only its own line.
        let b = BasicBlock::new(Addr::new(0), 64, 16, 0);
        assert_eq!(b.line_count(), 1);
        assert_eq!(b.end(), Addr::new(64));
    }

    #[test]
    fn large_block_spans_many_lines() {
        let b = BasicBlock::new(Addr::new(64), 64 * 3, 40, 5);
        assert_eq!(b.line_count(), 3);
        assert_eq!(b.lines().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_block_panics() {
        let _ = BasicBlock::new(Addr::new(0), 0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_instr_block_panics() {
        let _ = BasicBlock::new(Addr::new(0), 8, 0, 0);
    }
}
