//! Recorded execution traces.

use crate::block::BlockId;
use crate::program::Program;
use std::collections::HashMap;

/// A recorded dynamic execution: the sequence of basic blocks a program
/// visited, in order.
///
/// Traces are recorded once per (application, input) pair and replayed
/// through the simulator under every prefetching configuration, exactly like
/// the paper's trace-driven ZSim methodology — this guarantees all
/// configurations see the identical instruction stream.
///
/// # Examples
///
/// ```
/// use ispy_trace::apps;
///
/// let model = apps::cassandra();
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 5_000);
/// let stats = trace.stats(&program);
/// assert!(stats.total_instrs > 5_000); // blocks hold multiple instructions
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    blocks: Vec<BlockId>,
}

/// Aggregate statistics over a trace; see [`Trace::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Number of block events.
    pub events: u64,
    /// Total dynamic instruction count.
    pub total_instrs: u64,
    /// Total dynamic data accesses.
    pub total_data_accesses: u64,
    /// Number of distinct blocks executed.
    pub distinct_blocks: u64,
    /// Number of distinct instruction cache lines touched.
    pub distinct_lines: u64,
}

impl Trace {
    /// Wraps a recorded block sequence.
    pub fn new(name: impl Into<String>, blocks: Vec<BlockId>) -> Self {
        Trace { name: name.into(), blocks }
    }

    /// Name of the application/input this trace was recorded from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of block events.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block events in execution order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Iterates over block events.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, BlockId>> {
        self.blocks.iter().copied()
    }

    /// Computes dynamic statistics against the program the trace came from.
    ///
    /// # Panics
    ///
    /// Panics if the trace references blocks outside `program`.
    pub fn stats(&self, program: &Program) -> TraceStats {
        let mut distinct = vec![false; program.num_blocks()];
        let mut lines: HashMap<u64, ()> = HashMap::new();
        let mut stats = TraceStats { events: self.blocks.len() as u64, ..Default::default() };
        for &b in &self.blocks {
            let block = program.block(b);
            stats.total_instrs += u64::from(block.instrs());
            stats.total_data_accesses += u64::from(block.data_accesses());
            if !distinct[b.index()] {
                distinct[b.index()] = true;
                for line in block.lines() {
                    lines.entry(line.raw()).or_insert(());
                }
            }
        }
        stats.distinct_blocks = distinct.iter().filter(|&&d| d).count() as u64;
        stats.distinct_lines = lines.len() as u64;
        stats
    }

    /// Per-block execution counts, indexable by [`BlockId::index`].
    pub fn exec_counts(&self, num_blocks: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_blocks];
        for &b in &self.blocks {
            counts[b.index()] += 1;
        }
        counts
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = BlockId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, BlockId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::InputSpec;
    use crate::program::testutil::tiny_program;

    #[test]
    fn stats_add_up() {
        let p = tiny_program();
        let t = p.record_trace(InputSpec::uniform(1, 1), 8);
        let s = t.stats(&p);
        assert_eq!(s.events, 8);
        // Two iterations of b0 b1 b3 b2; each iteration = 8+8+12+8 instrs.
        assert_eq!(s.total_instrs, 2 * 36);
        assert_eq!(s.distinct_blocks, 4);
    }

    #[test]
    fn exec_counts_match() {
        let p = tiny_program();
        let t = p.record_trace(InputSpec::uniform(1, 1), 8);
        let counts = t.exec_counts(p.num_blocks());
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("none", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn iteration_orders_match() {
        let t = Trace::new("x", vec![BlockId(3), BlockId(1)]);
        let via_iter: Vec<_> = t.iter().collect();
        let via_into: Vec<_> = (&t).into_iter().collect();
        assert_eq!(via_iter, via_into);
        assert_eq!(via_iter, vec![BlockId(3), BlockId(1)]);
    }
}
