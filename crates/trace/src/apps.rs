//! Models of the paper's nine data-center applications.
//!
//! Each model is a [`GenParams`] preset whose shape mirrors what is publicly
//! known about the corresponding application's front-end behaviour:
//!
//! * The three HHVM PHP apps (**drupal**, **mediawiki**, **wordpress**) have
//!   the largest instruction footprints and the most scattered layouts —
//!   they sit at the top of the paper's Fig. 1 front-end-stall range.
//! * The JVM server apps (**cassandra**, **kafka**, **tomcat**,
//!   **finagle-chirper**, **finagle-http**) have mid-size footprints and
//!   moderate locality.
//! * **verilator** emits enormous machine-generated straight-line evaluation
//!   code: few branches, long blocks, call-order layout — which is why the
//!   paper finds 75 % of its misses within an 8-line window and coalescing
//!   outperforms conditional prefetching there (§VI-A).

use crate::exec::InputSpec;
use crate::gen::{generate, GenParams};
use crate::program::Program;

/// Names of the nine applications, in the paper's (alphabetical) order.
pub const NAMES: [&str; 9] = [
    "cassandra",
    "drupal",
    "finagle-chirper",
    "finagle-http",
    "kafka",
    "mediawiki",
    "tomcat",
    "verilator",
    "wordpress",
];

/// A named application model: generator parameters plus its input family.
///
/// # Examples
///
/// ```
/// use ispy_trace::apps;
///
/// let wp = apps::wordpress();
/// let program = wp.generate();
/// assert_eq!(program.name(), "wordpress");
/// // Fig. 16 evaluates five inputs; variant 0 is the profiled input.
/// let inputs: Vec<_> = (0..5).map(|k| wp.input_variant(k)).collect();
/// assert_eq!(inputs.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppModel {
    name: &'static str,
    params: GenParams,
}

impl AppModel {
    /// The application's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The generator parameters.
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// Generates the application's program (its "binary").
    pub fn generate(&self) -> Program {
        generate(self.name, &self.params)
    }

    /// The input used for profiling (variant 0).
    pub fn default_input(&self) -> InputSpec {
        self.input_variant(0)
    }

    /// The `k`-th input variant. Variant 0 is the profiled input; higher
    /// variants rotate the hot request types and change the interleaving
    /// seed, modelling diurnal load drift (paper Fig. 16).
    pub fn input_variant(&self, k: usize) -> InputSpec {
        let base = InputSpec::zipf(
            self.params.seed.wrapping_mul(0x5DEECE66D).wrapping_add(11),
            self.params.request_types,
            self.params.zipf_s,
        );
        if k == 0 {
            base
        } else {
            base.with_rotation(k).with_seed(0xD1F7 + 131 * k as u64)
        }
    }

    /// Scales the footprint down by `factor` (for fast tests/benches),
    /// keeping the app's character (locality, branchiness) intact.
    #[must_use]
    pub fn scaled_down(mut self, factor: u32) -> Self {
        self.params.funcs = (self.params.funcs / factor).max(8);
        self
    }
}

fn model(name: &'static str, params: GenParams) -> AppModel {
    AppModel { name, params }
}

/// Apache Cassandra: NoSQL storage engine (DaCapo).
pub fn cassandra() -> AppModel {
    model(
        "cassandra",
        GenParams {
            seed: 0xCA55,
            funcs: 3000,
            mean_blocks_per_func: 12.0,
            mean_block_bytes: 48,
            skip_prob: 0.25,
            loop_prob: 0.12,
            mean_loop_iters: 3.0,
            call_prob: 0.06,
            request_types: 8,
            mean_funcs_per_request: 20.0,
            shared_pool_frac: 0.25,
            layout_shuffle: 0.5,
            mean_data_accesses: 2.6,
            data_footprint_lines: 1 << 16,
            zipf_s: 1.1,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// Drupal: PHP CMS under HHVM (OSS-performance).
pub fn drupal() -> AppModel {
    model(
        "drupal",
        GenParams {
            seed: 0xD2BA,
            funcs: 5500,
            mean_blocks_per_func: 14.0,
            mean_block_bytes: 64,
            skip_prob: 0.30,
            loop_prob: 0.08,
            mean_loop_iters: 2.5,
            call_prob: 0.055,
            request_types: 12,
            mean_funcs_per_request: 32.0,
            shared_pool_frac: 0.30,
            layout_shuffle: 0.75,
            mean_data_accesses: 2.0,
            data_footprint_lines: 1 << 15,
            zipf_s: 1.08,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// Twitter Finagle micro-blogging service (Renaissance).
pub fn finagle_chirper() -> AppModel {
    model(
        "finagle-chirper",
        GenParams {
            seed: 0xF1C4,
            funcs: 2400,
            mean_blocks_per_func: 10.0,
            mean_block_bytes: 44,
            skip_prob: 0.22,
            loop_prob: 0.10,
            mean_loop_iters: 2.5,
            call_prob: 0.065,
            request_types: 6,
            mean_funcs_per_request: 16.0,
            shared_pool_frac: 0.28,
            layout_shuffle: 0.6,
            mean_data_accesses: 1.8,
            data_footprint_lines: 1 << 14,
            zipf_s: 1.15,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// Twitter Finagle HTTP server (Renaissance).
pub fn finagle_http() -> AppModel {
    model(
        "finagle-http",
        GenParams {
            seed: 0xF17B,
            funcs: 2200,
            mean_blocks_per_func: 11.0,
            mean_block_bytes: 44,
            skip_prob: 0.22,
            loop_prob: 0.10,
            mean_loop_iters: 2.5,
            call_prob: 0.065,
            request_types: 6,
            mean_funcs_per_request: 15.0,
            shared_pool_frac: 0.26,
            layout_shuffle: 0.55,
            mean_data_accesses: 1.8,
            data_footprint_lines: 1 << 14,
            zipf_s: 1.1,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// Apache Kafka stream-processing broker (DaCapo).
pub fn kafka() -> AppModel {
    model(
        "kafka",
        GenParams {
            seed: 0x4AF4A,
            funcs: 3400,
            mean_blocks_per_func: 12.0,
            mean_block_bytes: 48,
            skip_prob: 0.24,
            loop_prob: 0.14,
            mean_loop_iters: 3.5,
            call_prob: 0.055,
            request_types: 8,
            mean_funcs_per_request: 22.0,
            shared_pool_frac: 0.24,
            layout_shuffle: 0.6,
            mean_data_accesses: 3.0,
            data_footprint_lines: 1 << 16,
            zipf_s: 1.1,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// MediaWiki: PHP wiki engine under HHVM (OSS-performance).
pub fn mediawiki() -> AppModel {
    model(
        "mediawiki",
        GenParams {
            seed: 0x3ED1A,
            funcs: 6000,
            mean_blocks_per_func: 14.0,
            mean_block_bytes: 64,
            skip_prob: 0.30,
            loop_prob: 0.08,
            mean_loop_iters: 2.5,
            call_prob: 0.055,
            request_types: 12,
            mean_funcs_per_request: 34.0,
            shared_pool_frac: 0.30,
            layout_shuffle: 0.8,
            mean_data_accesses: 2.0,
            data_footprint_lines: 1 << 15,
            zipf_s: 1.05,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// Apache Tomcat servlet container (DaCapo).
pub fn tomcat() -> AppModel {
    model(
        "tomcat",
        GenParams {
            seed: 0x70CA7,
            funcs: 3200,
            mean_blocks_per_func: 12.0,
            mean_block_bytes: 52,
            skip_prob: 0.26,
            loop_prob: 0.10,
            mean_loop_iters: 3.0,
            call_prob: 0.06,
            request_types: 10,
            mean_funcs_per_request: 24.0,
            shared_pool_frac: 0.26,
            layout_shuffle: 0.65,
            mean_data_accesses: 2.2,
            data_footprint_lines: 1 << 15,
            zipf_s: 1.05,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// Verilator: machine-generated RTL evaluation code — long straight-line
/// blocks, few branches, call-order layout (very high spatial locality).
pub fn verilator() -> AppModel {
    model(
        "verilator",
        GenParams {
            seed: 0x7E21,
            funcs: 1100,
            mean_blocks_per_func: 48.0,
            mean_block_bytes: 96,
            skip_prob: 0.08,
            loop_prob: 0.04,
            mean_loop_iters: 2.0,
            call_prob: 0.015,
            request_types: 3,
            mean_funcs_per_request: 60.0,
            shared_pool_frac: 0.15,
            layout_shuffle: 0.05,
            mean_data_accesses: 3.5,
            data_footprint_lines: 1 << 16,
            zipf_s: 1.0,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// WordPress: PHP CMS under HHVM (OSS-performance).
pub fn wordpress() -> AppModel {
    model(
        "wordpress",
        GenParams {
            seed: 0x30BD,
            funcs: 6500,
            mean_blocks_per_func: 14.0,
            mean_block_bytes: 64,
            skip_prob: 0.30,
            loop_prob: 0.08,
            mean_loop_iters: 2.5,
            call_prob: 0.055,
            request_types: 14,
            mean_funcs_per_request: 36.0,
            shared_pool_frac: 0.32,
            layout_shuffle: 0.8,
            mean_data_accesses: 2.0,
            data_footprint_lines: 1 << 15,
            zipf_s: 1.05,
            branch_determinism: 0.85,
            request_variants: 8,
        },
    )
}

/// All nine models, in [`NAMES`] order.
pub fn all() -> Vec<AppModel> {
    vec![
        cassandra(),
        drupal(),
        finagle_chirper(),
        finagle_http(),
        kafka(),
        mediawiki(),
        tomcat(),
        verilator(),
        wordpress(),
    ]
}

/// Looks up a model by name.
pub fn by_name(name: &str) -> Option<AppModel> {
    all().into_iter().find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_apps_in_order() {
        let models = all();
        assert_eq!(models.len(), 9);
        for (m, n) in models.iter().zip(NAMES) {
            assert_eq!(m.name(), n);
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for n in NAMES {
            assert_eq!(by_name(n).unwrap().name(), n);
        }
        assert!(by_name("memcached").is_none());
    }

    #[test]
    fn all_generate_valid_programs_when_scaled() {
        for m in all() {
            let p = m.clone().scaled_down(20).generate();
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        }
    }

    #[test]
    fn footprints_exceed_l1i() {
        for m in [cassandra(), verilator(), wordpress()] {
            let p = m.clone().scaled_down(4).generate();
            assert!(
                p.text_bytes() > 8 * 32 * 1024,
                "{} footprint {} too small",
                m.name(),
                p.text_bytes()
            );
        }
    }

    #[test]
    fn hhvm_apps_are_biggest() {
        let wp = wordpress().params().expected_text_bytes();
        let fc = finagle_chirper().params().expected_text_bytes();
        assert!(wp > fc * 2);
    }

    #[test]
    fn input_variants_differ_but_share_arity() {
        let m = drupal();
        let v0 = m.input_variant(0);
        let v1 = m.input_variant(1);
        assert_eq!(v0.weights().len(), v1.weights().len());
        assert_ne!(v0, v1);
        // Variant 0 is the default/profiled input.
        assert_eq!(v0, m.default_input());
    }

    #[test]
    fn verilator_is_spatially_local() {
        let v = verilator();
        assert!(v.params().layout_shuffle < 0.1);
        assert!(v.params().mean_block_bytes >= 90);
    }
}
