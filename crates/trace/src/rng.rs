//! Small, self-contained deterministic PRNG.
//!
//! Workload generation and trace replay must be bit-reproducible across
//! builds and platform/crate-version changes, so instead of depending on an
//! external RNG crate whose stream may change between releases, this module
//! implements the well-known [PCG32] generator (seeded through SplitMix64)
//! plus the few sampling helpers the generator and walker need.
//!
//! [PCG32]: https://www.pcg-random.org/

/// A deterministic PCG-XSH-RR 32-bit random number generator.
///
/// # Examples
///
/// ```
/// use ispy_trace::rng::Pcg32;
///
/// let mut a = Pcg32::seed_from_u64(42);
/// let mut b = Pcg32::seed_from_u64(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 step, used to expand a single `u64` seed into PCG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1;
        let mut rng = Pcg32 { state: 0, inc };
        rng.state = state.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator; useful for giving each
    /// function / request type its own reproducible stream.
    pub fn fork(&mut self, tag: u64) -> Self {
        let s = self.next_u64() ^ tag.wrapping_mul(0x9E3779B97F4A7C15);
        Pcg32::seed_from_u64(s)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); slight bias is irrelevant
        // for workload synthesis and it keeps the stream cheap.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples a geometric-ish count with the given mean, at least 1.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 1.0);
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        // Inverse-CDF sampling of Geometric(p) on {1, 2, ...}.
        let u = self.f64().max(f64::MIN_POSITIVE);
        let n = (u.ln() / (1.0 - p).ln()).ceil();
        (n as u64).max(1)
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// Precomputed Zipf sampler over `{0, .., n-1}` with skew `s`.
///
/// Used to draw request types with a data-center-like skew (a handful of hot
/// request kinds plus a long tail).
///
/// # Examples
///
/// ```
/// use ispy_trace::rng::{Pcg32, Zipf};
///
/// let zipf = Zipf::new(16, 1.1);
/// let mut rng = Pcg32::seed_from_u64(7);
/// let first = zipf.sample(&mut rng);
/// assert!(first < 16);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one item index.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Pcg32::seed_from_u64(123);
        let mut b = Pcg32::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg32::seed_from_u64(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(77);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn geometric_mean_roughly_matches() {
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((6.0..10.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut rng = Pcg32::seed_from_u64(21);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0u32; 3];
        for _ in 0..5000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn zipf_is_skewed() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = Pcg32::seed_from_u64(3);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Pcg32::seed_from_u64(100);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(1);
        // Distinct fork calls advance the parent, so children differ.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
