//! The `.itrace` artifact codec: a durable recording of a program + trace.
//!
//! A recording captures everything the rest of the pipeline needs to replay
//! an execution bit-for-bit: the full static program (blocks, exits,
//! functions, ownership, request paths, and the generator knobs the
//! simulator's D-side model reads) and the dynamic block-event sequence.
//! Replaying a loaded recording produces *byte-identical* results to the
//! in-memory pipeline because every field round-trips exactly — `f64`s as
//! raw bit patterns, integers verbatim.
//!
//! The codec lives here rather than in `ispy-artifact` so the container
//! crate stays dependency-free; this module owns the mapping between
//! [`Program`]/[`Trace`] and container sections.
//!
//! # Examples
//!
//! ```
//! use ispy_trace::{apps, artifact};
//!
//! let model = apps::kafka().scaled_down(40);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 1_000);
//! let bytes = artifact::recording_to_bytes(&program, &trace);
//! let (program2, trace2) = artifact::recording_from_bytes(&bytes).unwrap();
//! assert_eq!(program2.name(), program.name());
//! assert_eq!(trace2, trace);
//! ```

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::program::{BlockExit, FuncId, Function, Program};
use crate::trace::Trace;
use ispy_artifact::{ArtifactError, ArtifactKind, ArtifactReader, ArtifactWriter};
use std::path::Path;

/// Program-level metadata: name, generator knobs, table sizes.
const SEC_META: u32 = 1;
/// Per-block geometry: start address (delta), bytes, instrs, data accesses.
const SEC_BLOCKS: u32 = 2;
/// Per-block control-flow exits, tagged.
const SEC_EXITS: u32 = 3;
/// Function table: entry block, first block, block count.
const SEC_FUNCS: u32 = 4;
/// Owning function per block (delta stream).
const SEC_OWNER: u32 = 5;
/// Request paths: one function sequence per request type.
const SEC_REQUEST_PATHS: u32 = 6;
/// The dynamic trace: name plus the block-event sequence (delta stream).
const SEC_TRACE: u32 = 7;

/// Exit tag values in [`SEC_EXITS`].
const EXIT_BRANCH: u8 = 0;
const EXIT_CALL: u8 = 1;
const EXIT_RETURN: u8 = 2;

/// Serializes a recording to artifact bytes.
pub fn recording_to_bytes(program: &Program, trace: &Trace) -> Vec<u8> {
    let mut w = ArtifactWriter::new(ArtifactKind::Trace);

    let mut meta = w.section(SEC_META);
    meta.put_str(program.name());
    meta.put_varint(program.data_footprint_lines());
    meta.put_f64(program.branch_determinism());
    meta.put_varint(u64::from(program.request_variants()));
    meta.put_varint(program.num_blocks() as u64);
    meta.put_varint(program.num_funcs() as u64);
    w.finish_section(meta);

    let mut blocks = w.section(SEC_BLOCKS);
    for b in program.blocks() {
        blocks.put_delta(b.start().raw());
        blocks.put_varint(u64::from(b.bytes()));
        blocks.put_varint(u64::from(b.instrs()));
        blocks.put_varint(u64::from(b.data_accesses()));
    }
    w.finish_section(blocks);

    let mut exits = w.section(SEC_EXITS);
    for i in 0..program.num_blocks() {
        match program.exit(BlockId(i as u32)) {
            BlockExit::Branch(targets) => {
                exits.put_u8(EXIT_BRANCH);
                exits.put_varint(targets.len() as u64);
                for &(t, weight) in targets {
                    exits.put_varint(u64::from(t.0));
                    exits.put_f64(weight);
                }
            }
            BlockExit::Call { callee, ret } => {
                exits.put_u8(EXIT_CALL);
                exits.put_varint(u64::from(callee.0));
                exits.put_varint(u64::from(ret.0));
            }
            BlockExit::Return => exits.put_u8(EXIT_RETURN),
        }
    }
    w.finish_section(exits);

    let mut funcs = w.section(SEC_FUNCS);
    for i in 0..program.num_funcs() {
        let f = program.func(FuncId(i as u32));
        let range = f.block_range();
        funcs.put_varint(u64::from(f.entry().0));
        funcs.put_varint(u64::from(range.start));
        funcs.put_varint(u64::from(range.end - range.start));
    }
    w.finish_section(funcs);

    let mut owner = w.section(SEC_OWNER);
    for i in 0..program.num_blocks() {
        owner.put_delta(u64::from(program.owner_of(BlockId(i as u32)).0));
    }
    w.finish_section(owner);

    let mut paths = w.section(SEC_REQUEST_PATHS);
    paths.put_varint(program.request_paths().len() as u64);
    for path in program.request_paths() {
        paths.put_varint(path.len() as u64);
        for f in path {
            paths.put_varint(u64::from(f.0));
        }
    }
    w.finish_section(paths);

    let mut events = w.section(SEC_TRACE);
    events.put_str(trace.name());
    events.put_varint(trace.len() as u64);
    for b in trace.iter() {
        events.put_delta(u64::from(b.0));
    }
    w.finish_section(events);

    w.to_bytes()
}

/// Writes a recording to `path` (conventionally `*.itrace`).
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure.
pub fn write_recording(program: &Program, trace: &Trace, path: &Path) -> Result<(), ArtifactError> {
    std::fs::create_dir_all(path.parent().unwrap_or_else(|| Path::new(".")))
        .map_err(|e| ArtifactError::io(path, e))?;
    std::fs::write(path, recording_to_bytes(program, trace)).map_err(|e| ArtifactError::io(path, e))
}

/// Checked narrowing with a typed error instead of a panicking cast.
fn narrow<T: TryFrom<u64>>(v: u64, what: &'static str) -> Result<T, ArtifactError> {
    T::try_from(v).map_err(|_| ArtifactError::malformed(what, format!("value {v} out of range")))
}

/// Decodes a recording from artifact bytes.
///
/// The decoder is strict: every id is range-checked before any container
/// type is constructed (their constructors panic on bad input, and corrupt
/// bytes must never panic), and the reconstructed program must pass
/// [`Program::validate`].
///
/// # Errors
///
/// Any container-level defect or payload-level inconsistency maps to a
/// typed [`ArtifactError`].
pub fn recording_from_bytes(bytes: &[u8]) -> Result<(Program, Trace), ArtifactError> {
    let r = ArtifactReader::from_bytes(bytes, ArtifactKind::Trace)?;

    let mut meta = r.require_section(SEC_META)?;
    let name = meta.take_str()?;
    let data_footprint_lines = meta.take_varint()?;
    let branch_determinism = meta.take_f64()?;
    let request_variants: u16 = narrow(meta.take_varint()?, "request variants")?;
    let num_blocks: usize = narrow(meta.take_varint()?, "block count")?;
    let num_funcs: usize = narrow(meta.take_varint()?, "function count")?;
    meta.finish()?;
    if !(0.0..=1.0).contains(&branch_determinism) {
        return Err(ArtifactError::malformed(
            "branch determinism",
            format!("{branch_determinism} outside [0, 1]"),
        ));
    }
    if data_footprint_lines == 0 || request_variants == 0 {
        return Err(ArtifactError::malformed("program meta", "zero footprint or variants"));
    }

    let mut blocks_sec = r.require_section(SEC_BLOCKS)?;
    let mut blocks = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let start = blocks_sec.take_delta()?;
        let bytes_: u32 = narrow(blocks_sec.take_varint()?, "block bytes")?;
        let instrs: u16 = narrow(blocks_sec.take_varint()?, "block instrs")?;
        let data_accesses: u8 = narrow(blocks_sec.take_varint()?, "block data accesses")?;
        if bytes_ == 0 || instrs == 0 {
            return Err(ArtifactError::malformed("block", "zero bytes or instructions"));
        }
        blocks.push(BasicBlock::new(Addr::new(start), bytes_, instrs, data_accesses));
    }
    blocks_sec.finish()?;

    let in_blocks = |raw: u64, what: &'static str| -> Result<BlockId, ArtifactError> {
        if (raw as usize) < num_blocks {
            Ok(BlockId(raw as u32))
        } else {
            Err(ArtifactError::malformed(what, format!("block id {raw} out of range")))
        }
    };
    let in_funcs = |raw: u64, what: &'static str| -> Result<FuncId, ArtifactError> {
        if (raw as usize) < num_funcs {
            Ok(FuncId(raw as u32))
        } else {
            Err(ArtifactError::malformed(what, format!("function id {raw} out of range")))
        }
    };

    let mut exits_sec = r.require_section(SEC_EXITS)?;
    let mut exits = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        exits.push(match exits_sec.take_u8()? {
            EXIT_BRANCH => {
                let n: usize = narrow(exits_sec.take_varint()?, "branch targets")?;
                let mut targets = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let t = in_blocks(exits_sec.take_varint()?, "branch target")?;
                    targets.push((t, exits_sec.take_f64()?));
                }
                BlockExit::Branch(targets)
            }
            EXIT_CALL => {
                let callee = in_funcs(exits_sec.take_varint()?, "call callee")?;
                let ret = in_blocks(exits_sec.take_varint()?, "call return")?;
                BlockExit::Call { callee, ret }
            }
            EXIT_RETURN => BlockExit::Return,
            t => return Err(ArtifactError::malformed("exit tag", format!("unknown tag {t}"))),
        });
    }
    exits_sec.finish()?;

    let mut funcs_sec = r.require_section(SEC_FUNCS)?;
    let mut funcs = Vec::with_capacity(num_funcs);
    for _ in 0..num_funcs {
        let entry = in_blocks(funcs_sec.take_varint()?, "function entry")?;
        let first: u32 = narrow(funcs_sec.take_varint()?, "function first block")?;
        let count: u32 = narrow(funcs_sec.take_varint()?, "function block count")?;
        if u64::from(first) + u64::from(count) > num_blocks as u64 {
            return Err(ArtifactError::malformed("function", "block range out of bounds"));
        }
        funcs.push(Function::new(entry, first, count));
    }
    funcs_sec.finish()?;

    let mut owner_sec = r.require_section(SEC_OWNER)?;
    let mut owner = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        owner.push(in_funcs(owner_sec.take_delta()?, "block owner")?);
    }
    owner_sec.finish()?;

    let mut paths_sec = r.require_section(SEC_REQUEST_PATHS)?;
    let n_paths: usize = narrow(paths_sec.take_varint()?, "request path count")?;
    let mut request_paths = Vec::with_capacity(n_paths.min(1 << 16));
    for _ in 0..n_paths {
        let len: usize = narrow(paths_sec.take_varint()?, "request path length")?;
        let mut path = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            path.push(in_funcs(paths_sec.take_varint()?, "request path function")?);
        }
        request_paths.push(path);
    }
    paths_sec.finish()?;

    let mut events_sec = r.require_section(SEC_TRACE)?;
    let trace_name = events_sec.take_str()?;
    let n_events: usize = narrow(events_sec.take_varint()?, "trace length")?;
    let mut events = Vec::with_capacity(n_events.min(1 << 24));
    for _ in 0..n_events {
        events.push(in_blocks(events_sec.take_delta()?, "trace event")?);
    }
    events_sec.finish()?;

    let mut program = Program::new(name, blocks, exits, funcs, owner, request_paths);
    program.set_data_footprint_lines(data_footprint_lines);
    program.set_branch_determinism(branch_determinism);
    program.set_request_variants(request_variants);
    program
        .validate()
        .map_err(|e| ArtifactError::malformed("program invariants", e.to_string()))?;

    Ok((program, Trace::new(trace_name, events)))
}

/// Reads a recording from `path`.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`recording_from_bytes`].
pub fn read_recording(path: &Path) -> Result<(Program, Trace), ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::io(path, e))?;
    recording_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::exec::InputSpec;

    fn sample() -> (Program, Trace) {
        let model = apps::wordpress().scaled_down(60);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 2_000);
        (program, trace)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        let (p2, t2) = recording_from_bytes(&bytes).unwrap();
        assert_eq!(p2.name(), program.name());
        assert_eq!(p2.num_blocks(), program.num_blocks());
        assert_eq!(p2.num_funcs(), program.num_funcs());
        assert_eq!(p2.blocks(), program.blocks());
        assert_eq!(p2.data_footprint_lines(), program.data_footprint_lines());
        assert_eq!(p2.branch_determinism().to_bits(), program.branch_determinism().to_bits());
        assert_eq!(p2.request_variants(), program.request_variants());
        assert_eq!(p2.request_paths(), program.request_paths());
        for i in 0..program.num_blocks() {
            let b = BlockId(i as u32);
            assert_eq!(p2.exit(b), program.exit(b));
            assert_eq!(p2.owner_of(b), program.owner_of(b));
        }
        assert_eq!(t2, trace);
    }

    #[test]
    fn reencoding_is_byte_identical() {
        // Determinism of the encoder itself: encode(decode(encode(x)))
        // must reproduce the same bytes, or cache keys would churn.
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        let (p2, t2) = recording_from_bytes(&bytes).unwrap();
        assert_eq!(recording_to_bytes(&p2, &t2), bytes);
    }

    #[test]
    fn replayed_walk_matches_original() {
        // A loaded program must generate the same traces as the original:
        // the walker's behaviour depends on every serialized field.
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        let (p2, _) = recording_from_bytes(&bytes).unwrap();
        let input = InputSpec::uniform(7, program.request_paths().len());
        let a = program.record_trace(input.clone(), 3_000);
        let b = p2.record_trace(input, 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_trace_event_is_malformed() {
        let (program, _) = sample();
        let bogus = Trace::new("bad", vec![BlockId(program.num_blocks() as u32)]);
        let bytes = recording_to_bytes(&program, &bogus);
        assert!(matches!(
            recording_from_bytes(&bytes),
            Err(ArtifactError::Malformed { context: "trace event", .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let (program, trace) = sample();
        let dir = std::env::temp_dir().join(format!("ispy-itrace-test-{}", std::process::id()));
        let path = dir.join("sample.itrace");
        write_recording(&program, &trace, &path).unwrap();
        let (p2, t2) = read_recording(&path).unwrap();
        assert_eq!(p2.name(), program.name());
        assert_eq!(t2, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
