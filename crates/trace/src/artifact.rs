//! The `.itrace` artifact codec: a durable recording of a program + trace.
//!
//! A recording captures everything the rest of the pipeline needs to replay
//! an execution bit-for-bit: the full static program (blocks, exits,
//! functions, ownership, request paths, and the generator knobs the
//! simulator's D-side model reads) and the dynamic block-event sequence.
//! Replaying a loaded recording produces *byte-identical* results to the
//! in-memory pipeline because every field round-trips exactly — `f64`s as
//! raw bit patterns, integers verbatim.
//!
//! The codec lives here rather than in `ispy-artifact` so the container
//! crate stays dependency-free; this module owns the mapping between
//! [`Program`]/[`Trace`] and container sections.
//!
//! Two trace encodings share the container. The **monolithic** form
//! ([`recording_to_bytes`]) stores all events in one section — simplest,
//! but writing it requires the whole trace in memory. The **framed** form
//! ([`RecordingWriter`]) splits events into fixed-size frame sections, each
//! an independent delta stream, so arbitrarily long traces are written and
//! read ([`open_recording_stream`]) in bounded memory. Both decoders accept
//! both forms; see `docs/STREAMING.md` for the framing contract.
//!
//! # Examples
//!
//! ```
//! use ispy_trace::{apps, artifact};
//!
//! let model = apps::kafka().scaled_down(40);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 1_000);
//! let bytes = artifact::recording_to_bytes(&program, &trace);
//! let (program2, trace2) = artifact::recording_from_bytes(&bytes).unwrap();
//! assert_eq!(program2.name(), program.name());
//! assert_eq!(trace2, trace);
//! ```

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::program::{BlockExit, FuncId, Function, Program};
use crate::source::BlockSource;
use crate::trace::Trace;
use ispy_artifact::{
    varint, ArtifactError, ArtifactKind, ArtifactReader, ArtifactWriter, SectionReader,
    SectionWriter, StreamReader, StreamWriter,
};
use std::io::{Read, Seek, Write};
use std::path::Path;

/// Program-level metadata: name, generator knobs, table sizes.
const SEC_META: u32 = 1;
/// Per-block geometry: start address (delta), bytes, instrs, data accesses.
const SEC_BLOCKS: u32 = 2;
/// Per-block control-flow exits, tagged.
const SEC_EXITS: u32 = 3;
/// Function table: entry block, first block, block count.
const SEC_FUNCS: u32 = 4;
/// Owning function per block (delta stream).
const SEC_OWNER: u32 = 5;
/// Request paths: one function sequence per request type.
const SEC_REQUEST_PATHS: u32 = 6;
/// The dynamic trace, monolithic form: name plus the full block-event
/// sequence (delta stream). Written by [`recording_to_bytes`].
const SEC_TRACE: u32 = 7;
/// The dynamic trace, framed form: just the trace name. The events follow
/// as frame sections. Written by [`RecordingWriter`].
const SEC_TRACE_HEAD: u32 = 8;
/// First frame-section id; frame `i` is `SEC_FRAME_BASE + i`. Each frame is
/// an independent delta stream (base restarts at 0) of consecutive events,
/// so a frame decodes without any state from earlier frames.
const SEC_FRAME_BASE: u32 = 0x4000_0000;

/// Events per frame section written by [`RecordingWriter`] (64 Ki events ≈
/// 64–320 KiB encoded: the unit of buffering on both ends of the stream).
pub const FRAME_EVENTS: usize = 64 * 1024;

/// Exit tag values in [`SEC_EXITS`].
const EXIT_BRANCH: u8 = 0;
const EXIT_CALL: u8 = 1;
const EXIT_RETURN: u8 = 2;

/// Builds the six program sections (ids 1–6, in id order). Shared by the
/// buffered and streaming writers so both forms carry bit-identical program
/// payloads.
fn program_sections(program: &Program) -> Vec<SectionWriter> {
    let mut meta = SectionWriter::new(SEC_META);
    meta.put_str(program.name());
    meta.put_varint(program.data_footprint_lines());
    meta.put_f64(program.branch_determinism());
    meta.put_varint(u64::from(program.request_variants()));
    meta.put_varint(program.num_blocks() as u64);
    meta.put_varint(program.num_funcs() as u64);

    let mut blocks = SectionWriter::new(SEC_BLOCKS);
    for b in program.blocks() {
        blocks.put_delta(b.start().raw());
        blocks.put_varint(u64::from(b.bytes()));
        blocks.put_varint(u64::from(b.instrs()));
        blocks.put_varint(u64::from(b.data_accesses()));
    }

    let mut exits = SectionWriter::new(SEC_EXITS);
    for i in 0..program.num_blocks() {
        match program.exit(BlockId(i as u32)) {
            BlockExit::Branch(targets) => {
                exits.put_u8(EXIT_BRANCH);
                exits.put_varint(targets.len() as u64);
                for &(t, weight) in targets {
                    exits.put_varint(u64::from(t.0));
                    exits.put_f64(weight);
                }
            }
            BlockExit::Call { callee, ret } => {
                exits.put_u8(EXIT_CALL);
                exits.put_varint(u64::from(callee.0));
                exits.put_varint(u64::from(ret.0));
            }
            BlockExit::Return => exits.put_u8(EXIT_RETURN),
        }
    }

    let mut funcs = SectionWriter::new(SEC_FUNCS);
    for i in 0..program.num_funcs() {
        let f = program.func(FuncId(i as u32));
        let range = f.block_range();
        funcs.put_varint(u64::from(f.entry().0));
        funcs.put_varint(u64::from(range.start));
        funcs.put_varint(u64::from(range.end - range.start));
    }

    let mut owner = SectionWriter::new(SEC_OWNER);
    for i in 0..program.num_blocks() {
        owner.put_delta(u64::from(program.owner_of(BlockId(i as u32)).0));
    }

    let mut paths = SectionWriter::new(SEC_REQUEST_PATHS);
    paths.put_varint(program.request_paths().len() as u64);
    for path in program.request_paths() {
        paths.put_varint(path.len() as u64);
        for f in path {
            paths.put_varint(u64::from(f.0));
        }
    }

    vec![meta, blocks, exits, funcs, owner, paths]
}

/// Serializes a recording to artifact bytes (monolithic trace section).
pub fn recording_to_bytes(program: &Program, trace: &Trace) -> Vec<u8> {
    let mut w = ArtifactWriter::new(ArtifactKind::Trace);
    for s in program_sections(program) {
        w.finish_section(s);
    }

    let mut events = w.section(SEC_TRACE);
    events.put_str(trace.name());
    events.put_varint(trace.len() as u64);
    for b in trace.iter() {
        events.put_delta(u64::from(b.0));
    }
    w.finish_section(events);

    w.to_bytes()
}

/// Writes a recording to `path` (conventionally `*.itrace`).
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure.
pub fn write_recording(program: &Program, trace: &Trace, path: &Path) -> Result<(), ArtifactError> {
    std::fs::create_dir_all(path.parent().unwrap_or_else(|| Path::new(".")))
        .map_err(|e| ArtifactError::io(path, e))?;
    std::fs::write(path, recording_to_bytes(program, trace)).map_err(|e| ArtifactError::io(path, e))
}

/// Checked narrowing with a typed error instead of a panicking cast.
fn narrow<T: TryFrom<u64>>(v: u64, what: &'static str) -> Result<T, ArtifactError> {
    T::try_from(v).map_err(|_| ArtifactError::malformed(what, format!("value {v} out of range")))
}

/// Range-checked conversion of a raw event to a [`BlockId`].
fn in_range_block(raw: u64, num_blocks: u64, what: &'static str) -> Result<BlockId, ArtifactError> {
    if raw < num_blocks {
        Ok(BlockId(raw as u32))
    } else {
        Err(ArtifactError::malformed(what, format!("block id {raw} out of range")))
    }
}

/// Decodes the six program sections through `section` (a lookup from id to
/// payload cursor). Shared by the buffered and streaming readers.
fn decode_program<'a, F>(mut section: F) -> Result<Program, ArtifactError>
where
    F: FnMut(u32) -> Result<SectionReader<'a>, ArtifactError>,
{
    let mut meta = section(SEC_META)?;
    let name = meta.take_str()?;
    let data_footprint_lines = meta.take_varint()?;
    let branch_determinism = meta.take_f64()?;
    let request_variants: u16 = narrow(meta.take_varint()?, "request variants")?;
    let num_blocks: usize = narrow(meta.take_varint()?, "block count")?;
    let num_funcs: usize = narrow(meta.take_varint()?, "function count")?;
    meta.finish()?;
    if !(0.0..=1.0).contains(&branch_determinism) {
        return Err(ArtifactError::malformed(
            "branch determinism",
            format!("{branch_determinism} outside [0, 1]"),
        ));
    }
    if data_footprint_lines == 0 || request_variants == 0 {
        return Err(ArtifactError::malformed("program meta", "zero footprint or variants"));
    }

    let mut blocks_sec = section(SEC_BLOCKS)?;
    let mut blocks = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let start = blocks_sec.take_delta()?;
        let bytes_: u32 = narrow(blocks_sec.take_varint()?, "block bytes")?;
        let instrs: u16 = narrow(blocks_sec.take_varint()?, "block instrs")?;
        let data_accesses: u8 = narrow(blocks_sec.take_varint()?, "block data accesses")?;
        if bytes_ == 0 || instrs == 0 {
            return Err(ArtifactError::malformed("block", "zero bytes or instructions"));
        }
        blocks.push(BasicBlock::new(Addr::new(start), bytes_, instrs, data_accesses));
    }
    blocks_sec.finish()?;

    let in_blocks = |raw: u64, what: &'static str| -> Result<BlockId, ArtifactError> {
        in_range_block(raw, num_blocks as u64, what)
    };
    let in_funcs = |raw: u64, what: &'static str| -> Result<FuncId, ArtifactError> {
        if (raw as usize) < num_funcs {
            Ok(FuncId(raw as u32))
        } else {
            Err(ArtifactError::malformed(what, format!("function id {raw} out of range")))
        }
    };

    let mut exits_sec = section(SEC_EXITS)?;
    let mut exits = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        exits.push(match exits_sec.take_u8()? {
            EXIT_BRANCH => {
                let n: usize = narrow(exits_sec.take_varint()?, "branch targets")?;
                let mut targets = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let t = in_blocks(exits_sec.take_varint()?, "branch target")?;
                    targets.push((t, exits_sec.take_f64()?));
                }
                BlockExit::Branch(targets)
            }
            EXIT_CALL => {
                let callee = in_funcs(exits_sec.take_varint()?, "call callee")?;
                let ret = in_blocks(exits_sec.take_varint()?, "call return")?;
                BlockExit::Call { callee, ret }
            }
            EXIT_RETURN => BlockExit::Return,
            t => return Err(ArtifactError::malformed("exit tag", format!("unknown tag {t}"))),
        });
    }
    exits_sec.finish()?;

    let mut funcs_sec = section(SEC_FUNCS)?;
    let mut funcs = Vec::with_capacity(num_funcs);
    for _ in 0..num_funcs {
        let entry = in_blocks(funcs_sec.take_varint()?, "function entry")?;
        let first: u32 = narrow(funcs_sec.take_varint()?, "function first block")?;
        let count: u32 = narrow(funcs_sec.take_varint()?, "function block count")?;
        if u64::from(first) + u64::from(count) > num_blocks as u64 {
            return Err(ArtifactError::malformed("function", "block range out of bounds"));
        }
        funcs.push(Function::new(entry, first, count));
    }
    funcs_sec.finish()?;

    let mut owner_sec = section(SEC_OWNER)?;
    let mut owner = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        owner.push(in_funcs(owner_sec.take_delta()?, "block owner")?);
    }
    owner_sec.finish()?;

    let mut paths_sec = section(SEC_REQUEST_PATHS)?;
    let n_paths: usize = narrow(paths_sec.take_varint()?, "request path count")?;
    let mut request_paths = Vec::with_capacity(n_paths.min(1 << 16));
    for _ in 0..n_paths {
        let len: usize = narrow(paths_sec.take_varint()?, "request path length")?;
        let mut path = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            path.push(in_funcs(paths_sec.take_varint()?, "request path function")?);
        }
        request_paths.push(path);
    }
    paths_sec.finish()?;

    let mut program = Program::new(name, blocks, exits, funcs, owner, request_paths);
    program.set_data_footprint_lines(data_footprint_lines);
    program.set_branch_determinism(branch_determinism);
    program.set_request_variants(request_variants);
    program
        .validate()
        .map_err(|e| ArtifactError::malformed("program invariants", e.to_string()))?;
    Ok(program)
}

/// Decodes a recording from artifact bytes.
///
/// Accepts both trace forms: the monolithic `SEC_TRACE` section written by
/// [`recording_to_bytes`] and the framed form written by
/// [`RecordingWriter`]. The decoder is strict: every id is range-checked
/// before any container type is constructed (their constructors panic on bad
/// input, and corrupt bytes must never panic), and the reconstructed program
/// must pass [`Program::validate`].
///
/// # Errors
///
/// Any container-level defect or payload-level inconsistency maps to a
/// typed [`ArtifactError`].
pub fn recording_from_bytes(bytes: &[u8]) -> Result<(Program, Trace), ArtifactError> {
    let r = ArtifactReader::from_bytes(bytes, ArtifactKind::Trace)?;
    let program = decode_program(|id| r.require_section(id))?;
    let num_blocks = program.num_blocks() as u64;

    let (trace_name, events) = if let Some(mut events_sec) = r.section(SEC_TRACE) {
        let trace_name = events_sec.take_str()?;
        let n_events: usize = narrow(events_sec.take_varint()?, "trace length")?;
        let mut events = Vec::with_capacity(n_events.min(1 << 24));
        for _ in 0..n_events {
            events.push(in_range_block(events_sec.take_delta()?, num_blocks, "trace event")?);
        }
        events_sec.finish()?;
        (trace_name, events)
    } else {
        let mut head = r.require_section(SEC_TRACE_HEAD)?;
        let trace_name = head.take_str()?;
        head.finish()?;
        let mut events = Vec::new();
        let mut frame = 0u32;
        while let Some(mut sec) = r.section(SEC_FRAME_BASE + frame) {
            while sec.remaining() > 0 {
                events.push(in_range_block(sec.take_delta()?, num_blocks, "trace event")?);
            }
            frame += 1;
        }
        (trace_name, events)
    };

    Ok((program, Trace::new(trace_name, events)))
}

/// Reads a recording from `path`.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`recording_from_bytes`].
pub fn read_recording(path: &Path) -> Result<(Program, Trace), ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::io(path, e))?;
    recording_from_bytes(&bytes)
}

/// Streams a recording to disk frame by frame, in bounded memory.
///
/// The program sections and a `SEC_TRACE_HEAD` section (just the trace
/// name — the event count is unknown up front) are written immediately;
/// events pushed via [`push`](RecordingWriter::push) are buffered into
/// [`FRAME_EVENTS`]-sized frame sections and flushed as they fill, so peak
/// memory is one frame regardless of trace length. The resulting file reads
/// back through [`read_recording`] *and* [`open_recording_stream`].
///
/// # Examples
///
/// ```
/// use std::io::Cursor;
/// use ispy_trace::{apps, artifact};
///
/// let model = apps::kafka().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 1_000);
///
/// let mut w = artifact::RecordingWriter::new(
///     Cursor::new(Vec::new()), &program, trace.name()).unwrap();
/// w.push(trace.blocks()).unwrap();
/// let bytes = w.finish().unwrap().into_inner();
///
/// let (_, trace2) = artifact::recording_from_bytes(&bytes).unwrap();
/// assert_eq!(trace2, trace);
/// ```
#[derive(Debug)]
pub struct RecordingWriter<W: Write + Seek> {
    stream: StreamWriter<W>,
    num_blocks: u64,
    frame: Vec<BlockId>,
    frames_written: u32,
    events: u64,
}

impl<W: Write + Seek> RecordingWriter<W> {
    /// Starts a streamed recording of `program` on `sink`, writing the
    /// program sections and trace header immediately.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if the sink rejects the writes.
    pub fn new(sink: W, program: &Program, trace_name: &str) -> Result<Self, ArtifactError> {
        let mut stream = StreamWriter::new(sink, ArtifactKind::Trace)?;
        for s in program_sections(program) {
            stream.write_section(s)?;
        }
        let mut head = SectionWriter::new(SEC_TRACE_HEAD);
        head.put_str(trace_name);
        stream.write_section(head)?;
        Ok(RecordingWriter {
            stream,
            num_blocks: program.num_blocks() as u64,
            frame: Vec::with_capacity(FRAME_EVENTS),
            frames_written: 0,
            events: 0,
        })
    }

    /// Appends `blocks` to the trace, flushing full frames to the sink.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if a frame flush fails.
    ///
    /// # Panics
    ///
    /// Panics if an event references a block outside the program — the
    /// writer refuses to produce a file its own decoder would reject.
    pub fn push(&mut self, blocks: &[BlockId]) -> Result<(), ArtifactError> {
        for &b in blocks {
            assert!(
                u64::from(b.0) < self.num_blocks,
                "trace event {} out of range for a {}-block program",
                b.0,
                self.num_blocks
            );
            self.frame.push(b);
            if self.frame.len() == FRAME_EVENTS {
                self.flush_frame()?;
            }
        }
        self.events += blocks.len() as u64;
        Ok(())
    }

    /// Events pushed so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes the final partial frame and seals the artifact, returning the
    /// sink.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if the flush or header patch fails.
    pub fn finish(mut self) -> Result<W, ArtifactError> {
        self.flush_frame()?;
        self.stream.finish()
    }

    /// Encodes the buffered frame as its own section (fresh delta stream).
    fn flush_frame(&mut self) -> Result<(), ArtifactError> {
        if self.frame.is_empty() {
            return Ok(());
        }
        let mut s = SectionWriter::new(SEC_FRAME_BASE + self.frames_written);
        for &b in &self.frame {
            s.put_delta(u64::from(b.0));
        }
        self.stream.write_section(s)?;
        self.frames_written += 1;
        self.frame.clear();
        Ok(())
    }
}

impl RecordingWriter<std::io::BufWriter<std::fs::File>> {
    /// Opens a streamed recording writer on `path` (conventionally
    /// `*.itrace`), creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on any filesystem failure.
    pub fn create(path: &Path, program: &Program, trace_name: &str) -> Result<Self, ArtifactError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| ArtifactError::io(path, e))?;
            }
        }
        let file = std::fs::File::create(path).map_err(|e| ArtifactError::io(path, e))?;
        RecordingWriter::new(std::io::BufWriter::new(file), program, trace_name)
    }
}

/// Bytes pulled off the source per refill in the monolithic-section decode
/// path (the framed path reads whole frames instead).
const RAW_CHUNK: usize = 64 * 1024;

/// Upper bound on a trace name's encoded length — names are human-scale
/// strings; a longer prefix means a corrupt or hostile file.
const MAX_NAME_LEN: u64 = 1 << 20;

/// Decode state specific to the two on-disk trace forms.
#[derive(Debug)]
enum StreamForm {
    /// Monolithic [`SEC_TRACE`]: one continuous delta stream with a known
    /// event count, decoded through a carry buffer so varints may span
    /// refill boundaries.
    Monolithic { raw: Vec<u8>, raw_pos: usize, last: u64, remaining_events: u64 },
    /// Framed [`SEC_TRACE_HEAD`] + frame sections: each frame is decoded
    /// whole (bounded by [`FRAME_EVENTS`]).
    Framed { next_frame: u32 },
}

/// A [`BlockSource`] that decodes an `.itrace` event stream chunk by chunk.
///
/// Obtained from [`open_recording_stream`]; handles both trace forms. Peak
/// memory is one decode buffer regardless of file size.
///
/// **Integrity timing:** each frame section is CRC-verified before any of
/// its events are handed out; the monolithic form's single CRC only
/// resolves at end of section, so its events are provisional until the
/// stream finishes (any corruption still surfaces as a typed error before
/// the final chunk is delivered — a consumer that runs to completion can
/// never mistake a corrupt file for a clean one).
#[derive(Debug)]
pub struct TraceEventStream<R: Read> {
    reader: StreamReader<R>,
    num_blocks: u64,
    name: String,
    form: StreamForm,
    out: Vec<BlockId>,
    chunk_events: usize,
    done: bool,
}

impl<R: Read> TraceEventStream<R> {
    /// The trace's recorded name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Overrides the events-per-chunk target of the monolithic decode path
    /// (frames always decode whole). For tests and tuning.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_chunk_events(&mut self, n: usize) {
        assert!(n > 0, "chunk size must be positive");
        self.chunk_events = n;
    }

    /// Ensures the carry buffer holds at least `want` undecoded bytes, or
    /// as many as the section has left.
    fn refill(
        reader: &mut StreamReader<R>,
        raw: &mut Vec<u8>,
        raw_pos: &mut usize,
        want: usize,
    ) -> Result<(), ArtifactError> {
        while raw.len() - *raw_pos < want {
            if *raw_pos > 0 {
                raw.drain(..*raw_pos);
                *raw_pos = 0;
            }
            let old_len = raw.len();
            raw.resize(old_len + RAW_CHUNK, 0);
            let n = reader.read_chunk(&mut raw[old_len..])?;
            raw.truncate(old_len + n);
            if n == 0 {
                break;
            }
        }
        Ok(())
    }

    /// Decodes a length-prefixed string from the carry buffer.
    fn take_str_buffered(
        reader: &mut StreamReader<R>,
        raw: &mut Vec<u8>,
        raw_pos: &mut usize,
    ) -> Result<String, ArtifactError> {
        Self::refill(reader, raw, raw_pos, 10)?;
        let (len, n) = varint::take_u64(&raw[*raw_pos..])?;
        *raw_pos += n;
        if len > MAX_NAME_LEN {
            return Err(ArtifactError::malformed(
                "trace name",
                format!("implausible length {len}"),
            ));
        }
        Self::refill(reader, raw, raw_pos, len as usize)?;
        if (raw.len() - *raw_pos) < len as usize {
            return Err(ArtifactError::Truncated { context: "string" });
        }
        let bytes = &raw[*raw_pos..*raw_pos + len as usize];
        let s = String::from_utf8(bytes.to_vec())
            .map_err(|e| ArtifactError::malformed("string", e.to_string()))?;
        *raw_pos += len as usize;
        Ok(s)
    }

    /// Fills `out` with up to `chunk_events` events of the monolithic form.
    fn next_monolithic(&mut self) -> Result<Option<&[BlockId]>, ArtifactError> {
        let StreamForm::Monolithic { raw, raw_pos, last, remaining_events } = &mut self.form else {
            unreachable!("monolithic decode on framed stream")
        };
        if *remaining_events == 0 {
            // Declared events all delivered: the payload must be exactly
            // consumed and no sections may follow.
            Self::refill(&mut self.reader, raw, raw_pos, 1)?;
            if raw.len() - *raw_pos != 0 {
                return Err(ArtifactError::malformed(
                    "trace",
                    "bytes remain after the declared events",
                ));
            }
            if self.reader.next_section()?.is_some() {
                return Err(ArtifactError::malformed(
                    "section order",
                    "unexpected section after the trace events",
                ));
            }
            self.done = true;
            return Ok(None);
        }
        let want = u64::min(self.chunk_events as u64, *remaining_events) as usize;
        self.out.clear();
        while self.out.len() < want {
            // A varint is at most 10 bytes: with that much buffered (or the
            // section exhausted) a decode failure is real, not a boundary
            // artifact.
            Self::refill(&mut self.reader, raw, raw_pos, 10)?;
            let (d, n) = varint::take_i64(&raw[*raw_pos..])?;
            *raw_pos += n;
            *last = last.wrapping_add(d as u64);
            self.out.push(in_range_block(*last, self.num_blocks, "trace event")?);
        }
        *remaining_events -= self.out.len() as u64;
        Ok(Some(&self.out))
    }

    /// Decodes the next frame section whole.
    fn next_framed(&mut self) -> Result<Option<&[BlockId]>, ArtifactError> {
        let StreamForm::Framed { next_frame } = &mut self.form else {
            unreachable!("framed decode on monolithic stream")
        };
        loop {
            match self.reader.next_section()? {
                None => {
                    self.done = true;
                    return Ok(None);
                }
                Some((id, _)) if id == SEC_FRAME_BASE + *next_frame => {
                    *next_frame += 1;
                    let payload = self.reader.take_payload()?;
                    let mut sec = SectionReader::new(id, &payload);
                    self.out.clear();
                    while sec.remaining() > 0 {
                        let v = sec.take_delta()?;
                        self.out.push(in_range_block(v, self.num_blocks, "trace event")?);
                    }
                    if !self.out.is_empty() {
                        return Ok(Some(&self.out));
                    }
                    // Tolerate (skip) an empty frame a foreign writer made.
                }
                Some((id, _)) => {
                    return Err(ArtifactError::malformed(
                        "section order",
                        format!(
                            "expected frame {}, found section {id}",
                            SEC_FRAME_BASE + *next_frame
                        ),
                    ));
                }
            }
        }
    }
}

impl<R: Read> BlockSource for TraceEventStream<R> {
    fn next_chunk(&mut self) -> Result<Option<&[BlockId]>, ArtifactError> {
        if self.done {
            return Ok(None);
        }
        match self.form {
            StreamForm::Monolithic { .. } => self.next_monolithic(),
            StreamForm::Framed { .. } => self.next_framed(),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        match &self.form {
            StreamForm::Monolithic { remaining_events, .. } => Some(*remaining_events),
            StreamForm::Framed { .. } => None,
        }
    }
}

/// Opens a recording for streamed replay: decodes the program up front
/// (it is small and the simulator needs it whole) and returns the event
/// sections as a [`BlockSource`] that decodes on demand.
///
/// The reader is sequential and expects the section order our writers
/// produce (program sections 1–6, then the trace); it accepts both trace
/// forms.
///
/// # Errors
///
/// Header/program-section corruption surfaces here; event-payload
/// corruption surfaces from the returned stream's `next_chunk`.
///
/// # Examples
///
/// ```
/// use ispy_trace::{apps, artifact, BlockSource};
///
/// let model = apps::kafka().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 1_000);
/// let bytes = artifact::recording_to_bytes(&program, &trace);
///
/// let (program2, mut stream) = artifact::open_recording_stream(bytes.as_slice()).unwrap();
/// assert_eq!(program2.name(), program.name());
/// let mut events = Vec::new();
/// while let Some(chunk) = stream.next_chunk().unwrap() {
///     events.extend_from_slice(chunk);
/// }
/// assert_eq!(events, trace.blocks());
/// ```
pub fn open_recording_stream<R: Read>(
    source: R,
) -> Result<(Program, TraceEventStream<R>), ArtifactError> {
    let mut reader = StreamReader::new(source, ArtifactKind::Trace)?;
    let mut payloads: [Vec<u8>; 6] = Default::default();
    for (i, payload) in payloads.iter_mut().enumerate() {
        let expect = SEC_META + i as u32;
        match reader.next_section()? {
            Some((id, _)) if id == expect => *payload = reader.take_payload()?,
            Some((id, _)) => {
                return Err(ArtifactError::malformed(
                    "section order",
                    format!("expected section {expect}, found {id}"),
                ))
            }
            None => return Err(ArtifactError::MissingSection { id: expect }),
        }
    }
    let program =
        decode_program(|id| Ok(SectionReader::new(id, &payloads[(id - SEC_META) as usize])))?;
    let num_blocks = program.num_blocks() as u64;

    let stream = match reader.next_section()? {
        Some((SEC_TRACE, _)) => {
            let mut raw = Vec::new();
            let mut raw_pos = 0;
            let name = TraceEventStream::take_str_buffered(&mut reader, &mut raw, &mut raw_pos)?;
            TraceEventStream::refill(&mut reader, &mut raw, &mut raw_pos, 10)?;
            let (remaining_events, n) = varint::take_u64(&raw[raw_pos..])?;
            raw_pos += n;
            TraceEventStream {
                reader,
                num_blocks,
                name,
                form: StreamForm::Monolithic { raw, raw_pos, last: 0, remaining_events },
                out: Vec::new(),
                chunk_events: crate::source::DEFAULT_CHUNK_EVENTS,
                done: false,
            }
        }
        Some((SEC_TRACE_HEAD, _)) => {
            let payload = reader.take_payload()?;
            let mut head = SectionReader::new(SEC_TRACE_HEAD, &payload);
            let name = head.take_str()?;
            head.finish()?;
            TraceEventStream {
                reader,
                num_blocks,
                name,
                form: StreamForm::Framed { next_frame: 0 },
                out: Vec::new(),
                chunk_events: crate::source::DEFAULT_CHUNK_EVENTS,
                done: false,
            }
        }
        Some((id, _)) => {
            return Err(ArtifactError::malformed(
                "section order",
                format!("expected a trace section, found {id}"),
            ))
        }
        None => return Err(ArtifactError::MissingSection { id: SEC_TRACE }),
    };
    Ok((program, stream))
}

/// Opens a recording file for streamed replay; see [`open_recording_stream`].
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`open_recording_stream`].
pub fn open_recording_file(
    path: &Path,
) -> Result<(Program, TraceEventStream<std::io::BufReader<std::fs::File>>), ArtifactError> {
    let file = std::fs::File::open(path).map_err(|e| ArtifactError::io(path, e))?;
    open_recording_stream(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::exec::InputSpec;

    fn sample() -> (Program, Trace) {
        let model = apps::wordpress().scaled_down(60);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 2_000);
        (program, trace)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        let (p2, t2) = recording_from_bytes(&bytes).unwrap();
        assert_eq!(p2.name(), program.name());
        assert_eq!(p2.num_blocks(), program.num_blocks());
        assert_eq!(p2.num_funcs(), program.num_funcs());
        assert_eq!(p2.blocks(), program.blocks());
        assert_eq!(p2.data_footprint_lines(), program.data_footprint_lines());
        assert_eq!(p2.branch_determinism().to_bits(), program.branch_determinism().to_bits());
        assert_eq!(p2.request_variants(), program.request_variants());
        assert_eq!(p2.request_paths(), program.request_paths());
        for i in 0..program.num_blocks() {
            let b = BlockId(i as u32);
            assert_eq!(p2.exit(b), program.exit(b));
            assert_eq!(p2.owner_of(b), program.owner_of(b));
        }
        assert_eq!(t2, trace);
    }

    #[test]
    fn reencoding_is_byte_identical() {
        // Determinism of the encoder itself: encode(decode(encode(x)))
        // must reproduce the same bytes, or cache keys would churn.
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        let (p2, t2) = recording_from_bytes(&bytes).unwrap();
        assert_eq!(recording_to_bytes(&p2, &t2), bytes);
    }

    #[test]
    fn replayed_walk_matches_original() {
        // A loaded program must generate the same traces as the original:
        // the walker's behaviour depends on every serialized field.
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        let (p2, _) = recording_from_bytes(&bytes).unwrap();
        let input = InputSpec::uniform(7, program.request_paths().len());
        let a = program.record_trace(input.clone(), 3_000);
        let b = p2.record_trace(input, 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_trace_event_is_malformed() {
        let (program, _) = sample();
        let bogus = Trace::new("bad", vec![BlockId(program.num_blocks() as u32)]);
        let bytes = recording_to_bytes(&program, &bogus);
        assert!(matches!(
            recording_from_bytes(&bytes),
            Err(ArtifactError::Malformed { context: "trace event", .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let (program, trace) = sample();
        let dir = std::env::temp_dir().join(format!("ispy-itrace-test-{}", std::process::id()));
        let path = dir.join("sample.itrace");
        write_recording(&program, &trace, &path).unwrap();
        let (p2, t2) = read_recording(&path).unwrap();
        assert_eq!(p2.name(), program.name());
        assert_eq!(t2, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Encodes via the streaming writer into memory.
    fn framed_bytes(program: &Program, trace: &Trace) -> Vec<u8> {
        let mut w =
            RecordingWriter::new(std::io::Cursor::new(Vec::new()), program, trace.name()).unwrap();
        // Push in uneven slices so frame boundaries don't align with pushes.
        for piece in trace.blocks().chunks(777) {
            w.push(piece).unwrap();
        }
        assert_eq!(w.events_written(), trace.len() as u64);
        w.finish().unwrap().into_inner()
    }

    fn drain<S: BlockSource>(s: &mut S) -> Vec<BlockId> {
        let mut out = Vec::new();
        while let Some(chunk) = s.next_chunk().unwrap() {
            out.extend_from_slice(chunk);
        }
        out
    }

    #[test]
    fn framed_form_round_trips_through_the_buffered_decoder() {
        let (program, trace) = sample();
        let (p2, t2) = recording_from_bytes(&framed_bytes(&program, &trace)).unwrap();
        assert_eq!(p2.name(), program.name());
        assert_eq!(p2.blocks(), program.blocks());
        assert_eq!(t2, trace);
    }

    #[test]
    fn both_forms_stream_back_identically() {
        let (program, trace) = sample();
        for bytes in [recording_to_bytes(&program, &trace), framed_bytes(&program, &trace)] {
            let (p2, mut stream) = open_recording_stream(bytes.as_slice()).unwrap();
            assert_eq!(p2.name(), program.name());
            assert_eq!(stream.name(), trace.name());
            assert_eq!(drain(&mut stream), trace.blocks());
            assert_eq!(stream.next_chunk().unwrap(), None, "stream must stay exhausted");
        }
    }

    #[test]
    fn monolithic_stream_decode_is_chunk_size_invariant() {
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        for chunk in [1usize, 3, 1024, trace.len(), 1 << 22] {
            let (_, mut stream) = open_recording_stream(bytes.as_slice()).unwrap();
            stream.set_chunk_events(chunk);
            assert_eq!(drain(&mut stream), trace.blocks(), "chunk {chunk}");
        }
    }

    #[test]
    fn len_hint_tracks_the_monolithic_form() {
        let (program, trace) = sample();
        let bytes = recording_to_bytes(&program, &trace);
        let (_, mut stream) = open_recording_stream(bytes.as_slice()).unwrap();
        assert_eq!(stream.len_hint(), Some(trace.len() as u64));
        stream.set_chunk_events(500);
        let first = stream.next_chunk().unwrap().unwrap().len();
        assert_eq!(stream.len_hint(), Some((trace.len() - first) as u64));
        let framed = framed_bytes(&program, &trace);
        let (_, stream) = open_recording_stream(framed.as_slice()).unwrap();
        assert_eq!(stream.len_hint(), None);
    }

    #[test]
    fn truncated_streams_yield_typed_errors_not_partial_results() {
        let (program, trace) = sample();
        for bytes in [recording_to_bytes(&program, &trace), framed_bytes(&program, &trace)] {
            // Cut in the middle of the event data (well past the program
            // sections) and at the very end (missing trailer CRC bytes).
            for cut in [bytes.len() - bytes.len() / 4, bytes.len() - 2] {
                let truncated = &bytes[..cut];
                let mut err = None;
                match open_recording_stream(truncated) {
                    Err(e) => err = Some(e),
                    Ok((_, mut stream)) => loop {
                        match stream.next_chunk() {
                            Ok(Some(_)) => continue,
                            Ok(None) => break,
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    },
                }
                let err =
                    err.unwrap_or_else(|| panic!("truncated stream at {cut} decoded cleanly"));
                assert!(
                    matches!(
                        err,
                        ArtifactError::Truncated { .. }
                            | ArtifactError::SectionChecksum { .. }
                            | ArtifactError::TrailingBytes
                            | ArtifactError::Malformed { .. }
                    ),
                    "unexpected error class at cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_event_in_framed_form_is_malformed() {
        let (program, _) = sample();
        let bogus = Trace::new("bad", vec![BlockId(0), BlockId(program.num_blocks() as u32)]);
        // RecordingWriter refuses to write it; hand-build the frame instead.
        let mut w =
            StreamWriter::new(std::io::Cursor::new(Vec::new()), ArtifactKind::Trace).unwrap();
        for s in program_sections(&program) {
            w.write_section(s).unwrap();
        }
        let mut head = SectionWriter::new(SEC_TRACE_HEAD);
        head.put_str("bad");
        w.write_section(head).unwrap();
        let mut frame = SectionWriter::new(SEC_FRAME_BASE);
        for b in bogus.iter() {
            frame.put_delta(u64::from(b.0));
        }
        w.write_section(frame).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        assert!(matches!(
            recording_from_bytes(&bytes),
            Err(ArtifactError::Malformed { context: "trace event", .. })
        ));
        let (_, mut stream) = open_recording_stream(bytes.as_slice()).unwrap();
        let mut err = None;
        loop {
            match stream.next_chunk() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(ArtifactError::Malformed { context: "trace event", .. })));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recording_writer_rejects_foreign_blocks() {
        let (program, _) = sample();
        let mut w = RecordingWriter::new(std::io::Cursor::new(Vec::new()), &program, "x").unwrap();
        let _ = w.push(&[BlockId(program.num_blocks() as u32)]);
    }

    #[test]
    fn streamed_file_round_trip() {
        let (program, trace) = sample();
        let dir =
            std::env::temp_dir().join(format!("ispy-itrace-stream-test-{}", std::process::id()));
        let path = dir.join("sample.itrace");
        let mut w = RecordingWriter::create(&path, &program, trace.name()).unwrap();
        w.push(trace.blocks()).unwrap();
        w.finish().unwrap();
        let (p2, mut stream) = open_recording_file(&path).unwrap();
        assert_eq!(p2.name(), program.name());
        assert_eq!(drain(&mut stream), trace.blocks());
        // The same file also loads through the buffered path.
        let (_, t2) = read_recording(&path).unwrap();
        assert_eq!(t2, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
