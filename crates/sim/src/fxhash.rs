//! An in-tree FxHash-style hasher for the engine's hot maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 — keyed and DoS-resistant,
//! but ~10× the cost of a multiply for the 8-byte keys the replay engine
//! hashes on every in-flight-prefetch lookup. This is the usual
//! multiply-and-rotate construction (as popularised by the `rustc-hash`
//! crate, which the offline build environment cannot fetch): fast, fixed-key,
//! and perfectly adequate for line addresses, which are simulator-internal
//! and not attacker-controlled.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier (2⁶⁴ / φ), the classic Fibonacci-hashing constant.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, fixed-key hasher for small simulator-internal keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast fixed-key hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_iterate_all_entries() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k * 64, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 64)), Some(&k));
        }
    }

    #[test]
    fn hash_is_deterministic_and_spreads_aligned_keys() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        // Line addresses are low-entropy sequential integers; the hash must
        // not collapse them onto a few buckets.
        let mut low_bits = std::collections::HashSet::new();
        for k in 0..256u64 {
            low_bits.insert(b.hash_one(k) & 0xFF);
        }
        assert!(low_bits.len() > 128, "only {} distinct low bytes", low_bits.len());
    }

    #[test]
    fn byte_writes_match_word_writes_for_whole_words() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let mut h1 = b.build_hasher();
        h1.write(&0xDEAD_BEEFu64.to_le_bytes());
        let mut h2 = b.build_hasher();
        h2.write_u64(0xDEAD_BEEF);
        assert_eq!(h1.finish(), h2.finish());
    }
}
