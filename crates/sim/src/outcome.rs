//! Per-injection outcome attribution: maps every runtime prefetch event back
//! to the [`ProvenanceId`] of the planned injection that caused it.
//!
//! The paper's evaluation (Figs. 11–19) reports aggregate fired/suppressed/
//! useful/late counts; a production deployment additionally needs to answer
//! "what did *this* injection buy?". Attaching an [`OutcomeLedger`] to
//! [`RunOptions`](crate::RunOptions) makes the engine bucket each event by
//! the provenance id carried on the executing op (hardware-prefetcher lines
//! and untagged ops land in [`OutcomeLedger::untracked`]).

use ispy_isa::ProvenanceId;

/// Runtime outcome counts for one planned injection.
///
/// `executed == fired + suppressed` always holds per injection; the line
/// counters (`lines_issued`, `useful`, `late`, `evicted_unused`) account for
/// the individual cache lines the op requested when it fired.
///
/// # Examples
///
/// ```
/// use ispy_sim::InjectionOutcome;
///
/// let mut o = InjectionOutcome::default();
/// o.executed += 2;
/// o.fired += 1;
/// o.suppressed += 1;
/// assert_eq!(o.executed, o.fired + o.suppressed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionOutcome {
    /// Times the injected op was executed (its site block was entered).
    pub executed: u64,
    /// Executions whose condition matched (or that were unconditional).
    pub fired: u64,
    /// Executions suppressed by a non-matching context hash.
    pub suppressed: u64,
    /// Prefetch line requests actually sent to the hierarchy.
    pub lines_issued: u64,
    /// Line requests dropped because the line was already resident/in flight.
    pub lines_resident: u64,
    /// Prefetched lines later hit by a demand fetch before eviction.
    pub useful: u64,
    /// Prefetched lines demanded while still in flight (late but stall-shortening).
    pub late: u64,
    /// Prefetched lines evicted untouched (wasted prefetch).
    pub evicted_unused: u64,
}

/// Outcome counts for a whole run, indexed by [`ProvenanceId`].
///
/// Index `k` of [`OutcomeLedger::per_injection`] holds the outcome of the
/// injection with provenance id `k`; events with no id (hand-built maps,
/// hardware prefetcher lines) accumulate in [`OutcomeLedger::untracked`].
///
/// # Examples
///
/// ```
/// use ispy_isa::ProvenanceId;
/// use ispy_sim::OutcomeLedger;
///
/// let mut ledger = OutcomeLedger::with_capacity(2);
/// ledger.outcome_mut(Some(ProvenanceId(1))).fired += 1;
/// ledger.outcome_mut(None).lines_issued += 1; // hardware prefetch
/// assert_eq!(ledger.per_injection[1].fired, 1);
/// assert_eq!(ledger.untracked.lines_issued, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutcomeLedger {
    /// Per-injection outcomes, indexed by provenance id.
    pub per_injection: Vec<InjectionOutcome>,
    /// Events not attributable to a planned injection.
    pub untracked: InjectionOutcome,
}

impl OutcomeLedger {
    /// Creates a ledger pre-sized for `n` planned injections.
    pub fn with_capacity(n: usize) -> Self {
        OutcomeLedger {
            per_injection: vec![InjectionOutcome::default(); n],
            untracked: InjectionOutcome::default(),
        }
    }

    /// The outcome bucket for `id`, growing the table if needed; `None`
    /// selects the untracked bucket.
    pub fn outcome_mut(&mut self, id: Option<ProvenanceId>) -> &mut InjectionOutcome {
        match id {
            Some(id) => {
                let i = id.index();
                if i >= self.per_injection.len() {
                    self.per_injection.resize(i + 1, InjectionOutcome::default());
                }
                &mut self.per_injection[i]
            }
            None => &mut self.untracked,
        }
    }

    /// Sums one field across every bucket, untracked included. The closure
    /// picks the field: `ledger.total(|o| o.fired)`.
    pub fn total(&self, field: impl Fn(&InjectionOutcome) -> u64) -> u64 {
        self.per_injection.iter().map(&field).sum::<u64>() + field(&self.untracked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_presizes() {
        let l = OutcomeLedger::with_capacity(3);
        assert_eq!(l.per_injection.len(), 3);
        assert_eq!(l.per_injection[2], InjectionOutcome::default());
    }

    #[test]
    fn outcome_mut_grows_and_routes() {
        let mut l = OutcomeLedger::default();
        l.outcome_mut(Some(ProvenanceId(4))).useful = 7;
        assert_eq!(l.per_injection.len(), 5);
        assert_eq!(l.per_injection[4].useful, 7);
        l.outcome_mut(None).late = 2;
        assert_eq!(l.untracked.late, 2);
    }

    #[test]
    fn total_includes_untracked() {
        let mut l = OutcomeLedger::with_capacity(2);
        l.per_injection[0].fired = 3;
        l.per_injection[1].fired = 4;
        l.untracked.fired = 5;
        assert_eq!(l.total(|o| o.fired), 12);
        assert_eq!(l.total(|o| o.late), 0);
    }
}
