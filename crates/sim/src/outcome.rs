//! Per-injection outcome attribution: maps every runtime prefetch event back
//! to the [`ProvenanceId`] of the planned injection that caused it.
//!
//! The paper's evaluation (Figs. 11–19) reports aggregate fired/suppressed/
//! useful/late counts; a production deployment additionally needs to answer
//! "what did *this* injection buy?". Attaching an [`OutcomeLedger`] to
//! [`RunOptions`](crate::RunOptions) makes the engine bucket each event by
//! the provenance id carried on the executing op (hardware-prefetcher lines
//! and untagged ops land in [`OutcomeLedger::untracked`]).

use ispy_isa::ProvenanceId;

/// Runtime outcome counts for one planned injection.
///
/// `executed == fired + suppressed` always holds per injection; the line
/// counters (`lines_issued`, `useful`, `late`, `evicted_unused`) account for
/// the individual cache lines the op requested when it fired.
///
/// # Examples
///
/// ```
/// use ispy_sim::InjectionOutcome;
///
/// let mut o = InjectionOutcome::default();
/// o.executed += 2;
/// o.fired += 1;
/// o.suppressed += 1;
/// assert_eq!(o.executed, o.fired + o.suppressed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionOutcome {
    /// Times the injected op was executed (its site block was entered).
    pub executed: u64,
    /// Executions whose condition matched (or that were unconditional).
    pub fired: u64,
    /// Executions suppressed by a non-matching context hash.
    pub suppressed: u64,
    /// Prefetch line requests actually sent to the hierarchy.
    pub lines_issued: u64,
    /// Line requests dropped because the line was already resident/in flight.
    pub lines_resident: u64,
    /// Prefetched lines later hit by a demand fetch before eviction.
    pub useful: u64,
    /// Prefetched lines demanded while still in flight (late but stall-shortening).
    pub late: u64,
    /// Prefetched lines evicted untouched (wasted prefetch).
    pub evicted_unused: u64,
}

/// Outcome counts for a whole run, indexed by [`ProvenanceId`].
///
/// Index `k` of [`OutcomeLedger::per_injection`] holds the outcome of the
/// injection with provenance id `k`; events with no id (hand-built maps,
/// hardware prefetcher lines) accumulate in [`OutcomeLedger::untracked`].
///
/// # Examples
///
/// ```
/// use ispy_isa::ProvenanceId;
/// use ispy_sim::OutcomeLedger;
///
/// let mut ledger = OutcomeLedger::with_capacity(2);
/// ledger.outcome_mut(Some(ProvenanceId(1))).fired += 1;
/// ledger.outcome_mut(None).lines_issued += 1; // hardware prefetch
/// assert_eq!(ledger.per_injection[1].fired, 1);
/// assert_eq!(ledger.untracked.lines_issued, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutcomeLedger {
    /// Per-injection outcomes, indexed by provenance id.
    pub per_injection: Vec<InjectionOutcome>,
    /// Events not attributable to a planned injection.
    pub untracked: InjectionOutcome,
}

impl OutcomeLedger {
    /// Creates a ledger pre-sized for `n` planned injections.
    pub fn with_capacity(n: usize) -> Self {
        OutcomeLedger {
            per_injection: vec![InjectionOutcome::default(); n],
            untracked: InjectionOutcome::default(),
        }
    }

    /// The outcome bucket for `id`, growing the table if needed; `None`
    /// selects the untracked bucket.
    pub fn outcome_mut(&mut self, id: Option<ProvenanceId>) -> &mut InjectionOutcome {
        match id {
            Some(id) => {
                let i = id.index();
                if i >= self.per_injection.len() {
                    self.per_injection.resize(i + 1, InjectionOutcome::default());
                }
                &mut self.per_injection[i]
            }
            None => &mut self.untracked,
        }
    }

    /// Sums one field across every bucket, untracked included. The closure
    /// picks the field: `ledger.total(|o| o.fired)`.
    pub fn total(&self, field: impl Fn(&InjectionOutcome) -> u64) -> u64 {
        self.per_injection.iter().map(&field).sum::<u64>() + field(&self.untracked)
    }

    /// Bucket-wise difference `self − earlier`, where `earlier` is a
    /// snapshot of this ledger from earlier in the same run (its table is a
    /// prefix, since the table only grows). Used by the sharded replay to
    /// subtract warmup-window events.
    #[must_use]
    pub fn delta_since(&self, earlier: &OutcomeLedger) -> OutcomeLedger {
        debug_assert!(earlier.per_injection.len() <= self.per_injection.len());
        let per_injection = self
            .per_injection
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let before = earlier.per_injection.get(i).copied().unwrap_or_default();
                o.delta_since(&before)
            })
            .collect();
        OutcomeLedger { per_injection, untracked: self.untracked.delta_since(&earlier.untracked) }
    }

    /// Adds every bucket of `other` into `self`, growing the table as
    /// needed — the shard stitch-up's merge over per-window ledger deltas.
    pub fn merge_add(&mut self, other: &OutcomeLedger) {
        if other.per_injection.len() > self.per_injection.len() {
            self.per_injection.resize(other.per_injection.len(), InjectionOutcome::default());
        }
        for (mine, theirs) in self.per_injection.iter_mut().zip(&other.per_injection) {
            mine.accumulate(theirs);
        }
        self.untracked.accumulate(&other.untracked);
    }
}

impl InjectionOutcome {
    /// Counter-wise difference `self − earlier` (see
    /// [`OutcomeLedger::delta_since`]).
    #[must_use]
    pub fn delta_since(&self, earlier: &InjectionOutcome) -> InjectionOutcome {
        // Exhaustive field list: a new counter must be wired in here to
        // compile, keeping the shard stitch-up honest.
        InjectionOutcome {
            executed: self.executed - earlier.executed,
            fired: self.fired - earlier.fired,
            suppressed: self.suppressed - earlier.suppressed,
            lines_issued: self.lines_issued - earlier.lines_issued,
            lines_resident: self.lines_resident - earlier.lines_resident,
            useful: self.useful - earlier.useful,
            late: self.late - earlier.late,
            evicted_unused: self.evicted_unused - earlier.evicted_unused,
        }
    }

    /// Adds every counter of `other` into `self`.
    pub fn accumulate(&mut self, other: &InjectionOutcome) {
        *self = InjectionOutcome {
            executed: self.executed + other.executed,
            fired: self.fired + other.fired,
            suppressed: self.suppressed + other.suppressed,
            lines_issued: self.lines_issued + other.lines_issued,
            lines_resident: self.lines_resident + other.lines_resident,
            useful: self.useful + other.useful,
            late: self.late + other.late,
            evicted_unused: self.evicted_unused + other.evicted_unused,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_presizes() {
        let l = OutcomeLedger::with_capacity(3);
        assert_eq!(l.per_injection.len(), 3);
        assert_eq!(l.per_injection[2], InjectionOutcome::default());
    }

    #[test]
    fn outcome_mut_grows_and_routes() {
        let mut l = OutcomeLedger::default();
        l.outcome_mut(Some(ProvenanceId(4))).useful = 7;
        assert_eq!(l.per_injection.len(), 5);
        assert_eq!(l.per_injection[4].useful, 7);
        l.outcome_mut(None).late = 2;
        assert_eq!(l.untracked.late, 2);
    }

    #[test]
    fn ledger_delta_and_merge_roundtrip() {
        let mut early = OutcomeLedger::with_capacity(1);
        early.per_injection[0].fired = 2;
        early.untracked.lines_issued = 1;
        let mut late = early.clone();
        late.outcome_mut(Some(ProvenanceId(2))).useful = 5; // table grew
        late.per_injection[0].fired = 7;
        late.untracked.lines_issued = 4;
        let delta = late.delta_since(&early);
        assert_eq!(delta.per_injection.len(), 3);
        assert_eq!(delta.per_injection[0].fired, 5);
        assert_eq!(delta.per_injection[2].useful, 5);
        assert_eq!(delta.untracked.lines_issued, 3);
        let mut rebuilt = early.clone();
        rebuilt.merge_add(&delta);
        assert_eq!(rebuilt, late);
        // Merging in the other direction grows the shorter table.
        let mut short = OutcomeLedger::default();
        short.merge_add(&delta);
        assert_eq!(short, delta);
    }

    #[test]
    fn total_includes_untracked() {
        let mut l = OutcomeLedger::with_capacity(2);
        l.per_injection[0].fired = 3;
        l.per_injection[1].fired = 4;
        l.untracked.fired = 5;
        assert_eq!(l.total(|o| o.fired), 12);
        assert_eq!(l.total(|o| o.late), 0);
    }
}
