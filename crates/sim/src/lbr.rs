//! The Last Branch Record and the counting-Bloom-filter runtime hash.
//!
//! §III-A / Fig. 7: the 32-entry LBR is mirrored into a counting Bloom
//! filter — one 6-bit counter per context-hash bit (96 bits of state for the
//! 16-bit design point). Pushing an LBR entry increments the counters of the
//! new block's hash bits; the entry evicted from the FIFO decrements its
//! counters. The *runtime hash* is the bitmask of non-zero counters, so it
//! exactly reflects the set of blocks currently in the LBR; a conditional
//! prefetch fires iff its context-hash bits are a subset of the runtime hash.

use ispy_isa::HashConfig;
use ispy_trace::Addr;
use std::collections::VecDeque;

/// The precomputed Bloom signature of one block address: which filter
/// counters it touches. Pushing an LBR entry hashes the address twice
/// (FNV-1 + MurmurHash3) to find these positions; the replay engine visits
/// the same few thousand static blocks millions of times, so it computes
/// each block's signature once up front and replays pushes hash-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomSig {
    bits: [u8; 2],
    n: u8,
}

impl BloomSig {
    /// Computes the counter positions `addr` touches under `cfg`.
    pub fn of(cfg: HashConfig, addr: Addr) -> Self {
        let [b0, b1] = cfg.bit_positions(addr);
        if cfg.k() == 2 && b1 != b0 {
            BloomSig { bits: [b0, b1], n: 2 }
        } else {
            BloomSig { bits: [b0, 0], n: 1 }
        }
    }
}

/// Counting Bloom filter over block signatures.
///
/// # Examples
///
/// ```
/// use ispy_isa::HashConfig;
/// use ispy_sim::CountingBloom;
/// use ispy_trace::Addr;
///
/// let cfg = HashConfig::default();
/// let mut bloom = CountingBloom::new(cfg);
/// bloom.insert(Addr::new(0x400000));
/// let ctx = cfg.context_hash([Addr::new(0x400000)]);
/// assert!(ctx.matches(bloom.runtime_hash()));
/// bloom.remove(Addr::new(0x400000));
/// assert_eq!(bloom.runtime_hash(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloom {
    cfg: HashConfig,
    counters: Vec<u8>,
    /// Bitmask of non-zero counters, maintained incrementally on every
    /// 0 ↔ 1 counter transition so [`CountingBloom::runtime_hash`] — which
    /// the engine consults on every conditional-prefetch execution — is a
    /// field read instead of a counter scan.
    mask: u64,
}

impl CountingBloom {
    /// Creates an empty filter for the given hash scheme.
    pub fn new(cfg: HashConfig) -> Self {
        CountingBloom { cfg, counters: vec![0; usize::from(cfg.bits())], mask: 0 }
    }

    /// The hash scheme in use.
    pub fn config(&self) -> HashConfig {
        self.cfg
    }

    /// Accounts one occurrence of the block starting at `addr`.
    pub fn insert(&mut self, addr: Addr) {
        self.insert_sig(BloomSig::of(self.cfg, addr));
    }

    /// [`CountingBloom::insert`] with the address's signature precomputed.
    #[inline]
    pub fn insert_sig(&mut self, sig: BloomSig) {
        for &bit in &sig.bits[..usize::from(sig.n)] {
            let c = &mut self.counters[usize::from(bit)];
            // 6-bit counters never overflow with a 32-entry LBR (≤ 64
            // increments per bit even if every entry hashed to one bit).
            debug_assert!(*c < 64, "6-bit Bloom counter overflow");
            *c += 1;
            self.mask |= 1 << bit;
        }
    }

    /// Removes one occurrence of the block starting at `addr`.
    ///
    /// Counters saturate at zero in **every** build profile: removing an
    /// address that was never inserted (unbalanced insert/remove calls)
    /// leaves its counters — and the runtime hash — unchanged. The hardware
    /// analogue is a counting Bloom filter that simply cannot decrement an
    /// empty counter, and keeping one behaviour everywhere means release and
    /// debug simulations can never diverge.
    pub fn remove(&mut self, addr: Addr) {
        self.remove_sig(BloomSig::of(self.cfg, addr));
    }

    /// [`CountingBloom::remove`] with the address's signature precomputed;
    /// saturates at zero exactly like `remove`.
    #[inline]
    pub fn remove_sig(&mut self, sig: BloomSig) {
        for &bit in &sig.bits[..usize::from(sig.n)] {
            let c = &mut self.counters[usize::from(bit)];
            if *c > 0 {
                *c -= 1;
                if *c == 0 {
                    self.mask &= !(1 << bit);
                }
            }
        }
    }

    /// The runtime hash: one bit per non-zero counter.
    #[inline]
    pub fn runtime_hash(&self) -> u64 {
        self.mask
    }

    /// The raw counter values (for white-box tests / the Fig. 7 walkthrough).
    pub fn counters(&self) -> &[u8] {
        &self.counters
    }
}

/// The 32-entry Last Branch Record with its attached Bloom filter.
///
/// Each retired basic block is pushed as one entry (the paper identifies LBR
/// entries by the target basic-block address). The filter is maintained
/// incrementally exactly as Fig. 7 describes.
///
/// # Examples
///
/// ```
/// use ispy_isa::HashConfig;
/// use ispy_sim::Lbr;
/// use ispy_trace::Addr;
///
/// let mut lbr = Lbr::new(32, HashConfig::default());
/// for i in 0..40u64 {
///     lbr.push(Addr::new(0x400000 + i * 64));
/// }
/// assert_eq!(lbr.len(), 32); // FIFO keeps only the last 32
/// ```
#[derive(Debug, Clone)]
pub struct Lbr {
    depth: usize,
    /// Each entry keeps its Bloom signature so the FIFO eviction can
    /// decrement the right counters without re-hashing the evicted address.
    entries: VecDeque<(Addr, BloomSig)>,
    bloom: CountingBloom,
}

impl Lbr {
    /// Creates an empty LBR of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize, hash: HashConfig) -> Self {
        assert!(depth > 0, "LBR depth must be positive");
        Lbr { depth, entries: VecDeque::with_capacity(depth + 1), bloom: CountingBloom::new(hash) }
    }

    /// Records a basic-block entry, evicting the oldest beyond `depth`.
    pub fn push(&mut self, block_start: Addr) {
        self.push_sig(block_start, self.sig_of(block_start));
    }

    /// [`Lbr::push`] with the address's Bloom signature precomputed (see
    /// [`BloomSig`]); the replay engine caches one signature per static
    /// block, making the per-event push hash-free.
    #[inline]
    pub fn push_sig(&mut self, block_start: Addr, sig: BloomSig) {
        self.entries.push_back((block_start, sig));
        self.bloom.insert_sig(sig);
        if self.entries.len() > self.depth {
            let (_, evicted_sig) = self.entries.pop_front().expect("non-empty");
            self.bloom.remove_sig(evicted_sig);
        }
    }

    /// The Bloom signature of `addr` under this LBR's hash configuration.
    #[inline]
    pub fn sig_of(&self, addr: Addr) -> BloomSig {
        BloomSig::of(self.bloom.config(), addr)
    }

    /// Number of recorded entries (≤ depth).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no branches have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Entries from oldest to newest.
    pub fn entries(&self) -> impl Iterator<Item = Addr> + '_ {
        self.entries.iter().map(|&(a, _)| a)
    }

    /// Whether `block_start` is among the recorded entries.
    pub fn contains(&self, block_start: Addr) -> bool {
        self.entries.iter().any(|&(a, _)| a == block_start)
    }

    /// The Bloom-filter runtime hash over the current contents.
    #[inline]
    pub fn runtime_hash(&self) -> u64 {
        self.bloom.runtime_hash()
    }

    /// The underlying Bloom filter.
    pub fn bloom(&self) -> &CountingBloom {
        &self.bloom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_isa::HashConfig;

    fn addr(i: u64) -> Addr {
        Addr::new(0x400000 + i * 64)
    }

    #[test]
    fn fifo_depth_enforced() {
        let mut lbr = Lbr::new(4, HashConfig::default());
        for i in 0..10 {
            lbr.push(addr(i));
        }
        assert_eq!(lbr.len(), 4);
        let e: Vec<_> = lbr.entries().collect();
        assert_eq!(e, vec![addr(6), addr(7), addr(8), addr(9)]);
    }

    #[test]
    fn bloom_tracks_contents_exactly() {
        // "The counters never overflow and the runtime-hash precisely tracks
        // the LBR contents" (§III-A).
        let cfg = HashConfig::default();
        let mut lbr = Lbr::new(8, cfg);
        for i in 0..64 {
            lbr.push(addr(i % 16));
            // Recompute the expected hash from scratch.
            let mut fresh = CountingBloom::new(cfg);
            for e in lbr.entries() {
                fresh.insert(e);
            }
            assert_eq!(lbr.runtime_hash(), fresh.runtime_hash());
        }
    }

    #[test]
    fn no_false_negatives() {
        let cfg = HashConfig::default();
        let mut lbr = Lbr::new(32, cfg);
        for i in 0..32 {
            lbr.push(addr(i));
        }
        for i in 0..32 {
            let ctx = cfg.context_hash([addr(i)]);
            assert!(ctx.matches(lbr.runtime_hash()), "entry {i} must match");
        }
    }

    #[test]
    fn removal_returns_counters_to_zero() {
        let cfg = HashConfig::default();
        let mut bloom = CountingBloom::new(cfg);
        let addrs: Vec<_> = (0..20).map(addr).collect();
        for &a in &addrs {
            bloom.insert(a);
        }
        for &a in &addrs {
            bloom.remove(a);
        }
        assert_eq!(bloom.runtime_hash(), 0);
        assert!(bloom.counters().iter().all(|&c| c == 0));
    }

    #[test]
    fn duplicate_entries_need_matching_removals() {
        let cfg = HashConfig::default();
        let mut bloom = CountingBloom::new(cfg);
        bloom.insert(addr(1));
        bloom.insert(addr(1));
        bloom.remove(addr(1));
        // Still present once.
        let ctx = cfg.context_hash([addr(1)]);
        assert!(ctx.matches(bloom.runtime_hash()));
        bloom.remove(addr(1));
        assert!(!ctx.matches(bloom.runtime_hash()) || ctx.bits() == 0);
    }

    #[test]
    fn paper_subset_semantics_through_lbr() {
        // Blocks B and E in the LBR -> Cprefetch conditioned on {B, E} fires.
        let cfg = HashConfig::default();
        let mut lbr = Lbr::new(32, cfg);
        let b = addr(100);
        let e = addr(200);
        lbr.push(b);
        lbr.push(addr(5));
        lbr.push(e);
        let ctx = cfg.context_hash([b, e]);
        assert!(ctx.matches(lbr.runtime_hash()));
        // Push 32 other blocks; B and E fall out, prefetch is disabled
        // (unless hash collisions keep the bits set, which default 16-bit
        // config avoids for these addresses).
        for i in 0..32 {
            lbr.push(addr(i));
        }
        assert!(!lbr.contains(b) && !lbr.contains(e));
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        let _ = Lbr::new(0, HashConfig::default());
    }

    #[test]
    fn remove_of_absent_address_saturates_in_every_profile() {
        // One behaviour in debug *and* release: decrementing an empty
        // counter is a no-op, never an underflow (and never a panic).
        let cfg = HashConfig::default();
        let mut bloom = CountingBloom::new(cfg);
        bloom.remove(addr(3)); // never inserted
        assert!(bloom.counters().iter().all(|&c| c == 0));
        assert_eq!(bloom.runtime_hash(), 0);
        // Unbalanced removes around a real insert stay consistent too.
        bloom.insert(addr(3));
        bloom.remove(addr(3));
        bloom.remove(addr(3));
        assert!(bloom.counters().iter().all(|&c| c == 0));
        assert_eq!(bloom.runtime_hash(), 0);
        // The filter remains usable afterwards.
        bloom.insert(addr(3));
        assert!(cfg.context_hash([addr(3)]).matches(bloom.runtime_hash()));
    }

    #[test]
    fn precomputed_signature_push_matches_hashing_push() {
        for cfg in [HashConfig::default(), HashConfig::new(32, 2), HashConfig::new(16, 1)] {
            let mut hashed = Lbr::new(8, cfg);
            let mut precomputed = Lbr::new(8, cfg);
            for i in 0..64 {
                let a = addr(i % 13);
                hashed.push(a);
                let sig = precomputed.sig_of(a);
                precomputed.push_sig(a, sig);
                assert_eq!(hashed.runtime_hash(), precomputed.runtime_hash());
                assert_eq!(hashed.bloom().counters(), precomputed.bloom().counters());
                assert_eq!(
                    hashed.entries().collect::<Vec<_>>(),
                    precomputed.entries().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn incremental_mask_equals_counter_scan() {
        // The maintained bitmask must always equal a from-scratch scan of
        // the counters, including through saturating removes.
        let cfg = HashConfig::default();
        let mut bloom = CountingBloom::new(cfg);
        let mut state = 0x9E3779B97F4A7C15u64;
        // Keep every counter under the 6-bit ceiling: a counter never
        // exceeds the total number of live inserts, so cap that at 60.
        let mut live = [0u32; 48];
        let mut total_live = 0u32;
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % 48) as usize;
            let a = addr(i as u64);
            if state >> 20 & 3 == 0 || total_live >= 60 {
                bloom.remove(a); // sometimes of an absent address: saturates
                if live[i] > 0 {
                    live[i] -= 1;
                    total_live -= 1;
                }
            } else {
                bloom.insert(a);
                live[i] += 1;
                total_live += 1;
            }
            let scanned = bloom
                .counters()
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .fold(0u64, |m, (i, _)| m | 1 << i);
            assert_eq!(bloom.runtime_hash(), scanned);
        }
    }
}
