//! Simulation results and the derived metrics the paper reports.

/// Raw counters plus derived metrics from one simulation run.
///
/// # Examples
///
/// ```
/// use ispy_sim::{run, RunOptions, SimConfig};
/// use ispy_trace::apps;
///
/// let model = apps::kafka().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 10_000);
/// let r = run(&program, &trace, &SimConfig::default(), RunOptions::default());
/// assert!(r.mpki() >= 0.0);
/// assert!(r.frontend_bound() <= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions executed, *including* injected prefetch
    /// instructions.
    pub instrs: u64,
    /// Dynamic instructions of the original binary (excluding injections).
    pub base_instrs: u64,
    /// Basic-block events replayed.
    pub blocks: u64,

    /// Demand L1 I-cache line accesses.
    pub i_accesses: u64,
    /// Demand L1 I-cache misses (late prefetches included).
    pub i_misses: u64,
    /// Cycles the front end stalled waiting for instruction lines.
    pub i_stall_cycles: u64,

    /// Demand data accesses.
    pub d_accesses: u64,
    /// Demand data misses (any level beyond L1D).
    pub d_misses: u64,
    /// Backend stall cycles charged to data misses.
    pub d_stall_cycles: u64,

    /// Injected prefetch instructions executed (dynamic code footprint).
    pub pf_ops_executed: u64,
    /// Injected ops whose condition was met (or that were unconditional).
    pub pf_ops_fired: u64,
    /// Injected ops suppressed by a non-matching context.
    pub pf_ops_suppressed: u64,
    /// Prefetch line requests issued to the memory system (non-resident).
    pub pf_lines_issued: u64,
    /// Prefetch line requests whose target was already in L1I.
    pub pf_lines_resident: u64,
    /// Prefetched lines that were demanded before eviction (useful).
    pub pf_useful: u64,
    /// Demanded while still in flight (late but partially useful).
    pub pf_late: u64,
    /// Prefetched lines evicted without ever being demanded.
    pub pf_evicted_unused: u64,
}

impl SimResult {
    /// Counter-wise difference `self − earlier`, where `earlier` is a
    /// snapshot taken earlier in the same run. Every counter is monotone
    /// during replay, which is what makes the sharded replay's
    /// record-then-subtract warmup accounting exact; callers must uphold
    /// that `earlier` really is an earlier snapshot.
    #[must_use]
    pub fn delta_since(&self, earlier: &SimResult) -> SimResult {
        // Exhaustive field list (no `..`): adding a counter to SimResult
        // without teaching the shard stitch-up about it must not compile.
        SimResult {
            cycles: self.cycles - earlier.cycles,
            instrs: self.instrs - earlier.instrs,
            base_instrs: self.base_instrs - earlier.base_instrs,
            blocks: self.blocks - earlier.blocks,
            i_accesses: self.i_accesses - earlier.i_accesses,
            i_misses: self.i_misses - earlier.i_misses,
            i_stall_cycles: self.i_stall_cycles - earlier.i_stall_cycles,
            d_accesses: self.d_accesses - earlier.d_accesses,
            d_misses: self.d_misses - earlier.d_misses,
            d_stall_cycles: self.d_stall_cycles - earlier.d_stall_cycles,
            pf_ops_executed: self.pf_ops_executed - earlier.pf_ops_executed,
            pf_ops_fired: self.pf_ops_fired - earlier.pf_ops_fired,
            pf_ops_suppressed: self.pf_ops_suppressed - earlier.pf_ops_suppressed,
            pf_lines_issued: self.pf_lines_issued - earlier.pf_lines_issued,
            pf_lines_resident: self.pf_lines_resident - earlier.pf_lines_resident,
            pf_useful: self.pf_useful - earlier.pf_useful,
            pf_late: self.pf_late - earlier.pf_late,
            pf_evicted_unused: self.pf_evicted_unused - earlier.pf_evicted_unused,
        }
    }

    /// Adds every counter of `other` into `self` — the shard stitch-up's
    /// elementwise sum over per-window deltas.
    pub fn accumulate(&mut self, other: &SimResult) {
        *self = SimResult {
            cycles: self.cycles + other.cycles,
            instrs: self.instrs + other.instrs,
            base_instrs: self.base_instrs + other.base_instrs,
            blocks: self.blocks + other.blocks,
            i_accesses: self.i_accesses + other.i_accesses,
            i_misses: self.i_misses + other.i_misses,
            i_stall_cycles: self.i_stall_cycles + other.i_stall_cycles,
            d_accesses: self.d_accesses + other.d_accesses,
            d_misses: self.d_misses + other.d_misses,
            d_stall_cycles: self.d_stall_cycles + other.d_stall_cycles,
            pf_ops_executed: self.pf_ops_executed + other.pf_ops_executed,
            pf_ops_fired: self.pf_ops_fired + other.pf_ops_fired,
            pf_ops_suppressed: self.pf_ops_suppressed + other.pf_ops_suppressed,
            pf_lines_issued: self.pf_lines_issued + other.pf_lines_issued,
            pf_lines_resident: self.pf_lines_resident + other.pf_lines_resident,
            pf_useful: self.pf_useful + other.pf_useful,
            pf_late: self.pf_late + other.pf_late,
            pf_evicted_unused: self.pf_evicted_unused + other.pf_evicted_unused,
        };
    }

    /// L1 I-cache misses per kilo-instruction, counted against the original
    /// binary's instructions so configurations are comparable.
    pub fn mpki(&self) -> f64 {
        if self.base_instrs == 0 {
            0.0
        } else {
            self.i_misses as f64 * 1000.0 / self.base_instrs as f64
        }
    }

    /// Fraction of cycles stalled on instruction fetch (paper Fig. 1's
    /// "frontend-bound" share).
    pub fn frontend_bound(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.i_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Instructions per cycle (including injected ops).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of an ideal configuration's speedup this run achieved,
    /// relative to a common baseline: `(base - self) / (base - ideal)`
    /// in cycles. 1.0 = ideal, 0.0 = no better than baseline.
    pub fn fraction_of_ideal(&self, baseline: &SimResult, ideal: &SimResult) -> f64 {
        let denom = baseline.cycles.saturating_sub(ideal.cycles) as f64;
        if denom <= 0.0 {
            return 1.0;
        }
        baseline.cycles.saturating_sub(self.cycles) as f64 / denom
    }

    /// Prefetch accuracy: useful prefetches over issued (non-resident)
    /// prefetch lines.
    pub fn accuracy(&self) -> f64 {
        if self.pf_lines_issued == 0 {
            0.0
        } else {
            self.pf_useful as f64 / self.pf_lines_issued as f64
        }
    }

    /// Miss coverage relative to a no-prefetch baseline: the fraction of the
    /// baseline's misses this run eliminated.
    pub fn coverage_vs(&self, baseline: &SimResult) -> f64 {
        if baseline.i_misses == 0 {
            return 0.0;
        }
        1.0 - (self.i_misses as f64 / baseline.i_misses as f64).min(1.0)
    }

    /// MPKI reduction relative to a baseline (0..1).
    pub fn mpki_reduction_vs(&self, baseline: &SimResult) -> f64 {
        if baseline.mpki() <= 0.0 {
            0.0
        } else {
            (1.0 - self.mpki() / baseline.mpki()).max(0.0)
        }
    }

    /// Dynamic code-footprint increase: injected ops executed over the
    /// original dynamic instruction count.
    pub fn dynamic_increase(&self) -> f64 {
        if self.base_instrs == 0 {
            0.0
        } else {
            self.pf_ops_executed as f64 / self.base_instrs as f64
        }
    }

    /// Rate at which fired conditional checks were false positives: the op
    /// fired, issued lines, and those lines went unused. Approximated as
    /// unused evictions over issued lines.
    pub fn waste_rate(&self) -> f64 {
        if self.pf_lines_issued == 0 {
            0.0
        } else {
            self.pf_evicted_unused as f64 / self.pf_lines_issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            cycles: 1000,
            instrs: 2100,
            base_instrs: 2000,
            blocks: 100,
            i_accesses: 500,
            i_misses: 50,
            i_stall_cycles: 400,
            pf_ops_executed: 100,
            pf_ops_fired: 80,
            pf_ops_suppressed: 20,
            pf_lines_issued: 90,
            pf_useful: 72,
            pf_evicted_unused: 10,
            ..Default::default()
        }
    }

    #[test]
    fn mpki_math() {
        assert!((sample().mpki() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn frontend_bound_math() {
        assert!((sample().frontend_bound() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn speedup_math() {
        let fast = SimResult { cycles: 500, ..sample() };
        assert!((fast.speedup_over(&sample()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_ideal_bounds() {
        let base = SimResult { cycles: 1000, ..Default::default() };
        let ideal = SimResult { cycles: 600, ..Default::default() };
        let mid = SimResult { cycles: 700, ..Default::default() };
        assert!((mid.fraction_of_ideal(&base, &ideal) - 0.75).abs() < 1e-12);
        assert!((ideal.fraction_of_ideal(&base, &ideal) - 1.0).abs() < 1e-12);
        assert!((base.fraction_of_ideal(&base, &ideal)).abs() < 1e-12);
    }

    #[test]
    fn accuracy_math() {
        assert!((sample().accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn coverage_and_mpki_reduction() {
        let base = SimResult { i_misses: 100, base_instrs: 2000, ..Default::default() };
        let better = SimResult { i_misses: 5, base_instrs: 2000, ..Default::default() };
        assert!((better.coverage_vs(&base) - 0.95).abs() < 1e-12);
        assert!((better.mpki_reduction_vs(&base) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn dynamic_increase_math() {
        assert!((sample().dynamic_increase() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn delta_and_accumulate_roundtrip_every_field() {
        // All-distinct, all-nonzero values so a counter dropped from either
        // helper shows up as a mismatch.
        let full = SimResult {
            cycles: 1,
            instrs: 2,
            base_instrs: 3,
            blocks: 4,
            i_accesses: 5,
            i_misses: 6,
            i_stall_cycles: 7,
            d_accesses: 8,
            d_misses: 9,
            d_stall_cycles: 10,
            pf_ops_executed: 11,
            pf_ops_fired: 12,
            pf_ops_suppressed: 13,
            pf_lines_issued: 14,
            pf_lines_resident: 15,
            pf_useful: 16,
            pf_late: 17,
            pf_evicted_unused: 18,
        };
        assert_eq!(full.delta_since(&SimResult::default()), full);
        assert_eq!(full.delta_since(&full), SimResult::default());
        let mut sum = SimResult::default();
        sum.accumulate(&full);
        assert_eq!(sum, full);
        sum.accumulate(&full);
        assert_eq!(sum.delta_since(&full), full);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let z = SimResult::default();
        assert_eq!(z.mpki(), 0.0);
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.accuracy(), 0.0);
        assert_eq!(z.frontend_bound(), 0.0);
        assert_eq!(z.dynamic_increase(), 0.0);
        assert_eq!(z.waste_rate(), 0.0);
        assert_eq!(z.speedup_over(&z), 0.0);
    }
}
