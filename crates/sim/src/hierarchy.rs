//! The Table-I memory hierarchy: split L1s over unified L2/L3.

use crate::cache::{Cache, InsertPriority};
use crate::config::SimConfig;
use ispy_trace::Line;

/// Where a line was found on a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResidencyLevel {
    /// Hit in the accessed L1.
    L1,
    /// Found in the unified L2.
    L2,
    /// Found in the unified L3.
    L3,
    /// Served from memory.
    Memory,
}

/// Outcome of a demand fetch/load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Level that served the access.
    pub level: ResidencyLevel,
    /// Extra stall cycles beyond the L1 hit latency.
    pub extra_cycles: u32,
    /// The untouched prefetched line evicted from L1I to make room, if any.
    /// Carrying the identity (not just a flag) lets the engine attribute the
    /// wasted prefetch back to the injection that issued it.
    pub evicted_untouched: Option<Line>,
}

/// The simulated cache hierarchy.
///
/// Instruction and data sides have private L1s and share L2/L3 (so useless
/// instruction prefetches pollute the levels data misses are served from,
/// as in a real part). Code lines and data lines live in disjoint address
/// ranges, which the engine guarantees.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    lat_l1i: u32,
    lat_l1d: u32,
    lat_l2: u32,
    lat_l3: u32,
    lat_mem: u32,
    prefetch_insert: InsertPriority,
}

impl Hierarchy {
    /// Builds an empty hierarchy from a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            lat_l1i: cfg.lat.l1i,
            lat_l1d: cfg.lat.l1d,
            lat_l2: cfg.lat.l2,
            lat_l3: cfg.lat.l3,
            lat_mem: cfg.lat.mem,
            prefetch_insert: cfg.prefetch_insert,
        }
    }

    /// Looks up where `line` would be served from, without changing state.
    pub fn residency(&self, line: Line) -> ResidencyLevel {
        if self.l1i.contains(line) || self.l1d.contains(line) {
            ResidencyLevel::L1
        } else if self.l2.contains(line) {
            ResidencyLevel::L2
        } else if self.l3.contains(line) {
            ResidencyLevel::L3
        } else {
            ResidencyLevel::Memory
        }
    }

    /// Latency (cycles) to obtain `line` for the I-side, as the prefetch
    /// engine would see it.
    pub fn prefetch_latency(&self, line: Line) -> u32 {
        match self.residency(line) {
            ResidencyLevel::L1 => self.lat_l1i,
            ResidencyLevel::L2 => self.lat_l2,
            ResidencyLevel::L3 => self.lat_l3,
            ResidencyLevel::Memory => self.lat_mem,
        }
    }

    /// Whether `line` is resident in the L1 I-cache.
    pub fn in_l1i(&self, line: Line) -> bool {
        self.l1i.contains(line)
    }

    /// Demand instruction fetch of `line`.
    pub fn fetch_instr(&mut self, line: Line) -> AccessOutcome {
        if self.l1i.access(line) {
            return AccessOutcome {
                level: ResidencyLevel::L1,
                extra_cycles: 0,
                evicted_untouched: None,
            };
        }
        let (level, total_lat) = self.lookup_fill_shared(line);
        let fill = self.l1i.fill(line, InsertPriority::Mru, false);
        AccessOutcome {
            level,
            extra_cycles: total_lat - self.lat_l1i,
            evicted_untouched: if fill.evicted_untouched_prefetch { fill.evicted } else { None },
        }
    }

    /// Demand data load of `line`.
    pub fn load_data(&mut self, line: Line) -> AccessOutcome {
        if self.l1d.access(line) {
            return AccessOutcome {
                level: ResidencyLevel::L1,
                extra_cycles: 0,
                evicted_untouched: None,
            };
        }
        let (level, total_lat) = self.lookup_fill_shared(line);
        self.l1d.fill(line, InsertPriority::Mru, false);
        AccessOutcome { level, extra_cycles: total_lat - self.lat_l1d, evicted_untouched: None }
    }

    /// Completes a prefetch: fills L1I (and L2) at the configured prefetch
    /// priority, marking the line for usefulness accounting. Returns the
    /// untouched prefetched line evicted from L1I to make room, if any.
    pub fn prefetch_fill(&mut self, line: Line) -> Option<Line> {
        self.l2.fill(line, self.prefetch_insert, true);
        let out = self.l1i.fill(line, self.prefetch_insert, true);
        if out.evicted_untouched_prefetch {
            out.evicted
        } else {
            None
        }
    }

    /// Whether `line` sits in L1I as a not-yet-demanded prefetch.
    pub fn is_untouched_prefetch(&self, line: Line) -> bool {
        self.l1i.is_untouched_prefetch(line)
    }

    /// Serves a miss from the shared levels, filling them on the way.
    fn lookup_fill_shared(&mut self, line: Line) -> (ResidencyLevel, u32) {
        if self.l2.access(line) {
            (ResidencyLevel::L2, self.lat_l2)
        } else if self.l3.access(line) {
            self.l2.fill(line, InsertPriority::Mru, false);
            (ResidencyLevel::L3, self.lat_l3)
        } else {
            self.l3.fill(line, InsertPriority::Mru, false);
            self.l2.fill(line, InsertPriority::Mru, false);
            (ResidencyLevel::Memory, self.lat_mem)
        }
    }

    /// Direct access to the L1I, for tests and white-box inspection.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn h() -> Hierarchy {
        Hierarchy::new(&SimConfig::default())
    }

    #[test]
    fn cold_fetch_comes_from_memory() {
        let mut hier = h();
        let out = hier.fetch_instr(Line::new(100));
        assert_eq!(out.level, ResidencyLevel::Memory);
        assert_eq!(out.extra_cycles, 260 - 3);
    }

    #[test]
    fn refetch_hits_l1() {
        let mut hier = h();
        hier.fetch_instr(Line::new(100));
        let out = hier.fetch_instr(Line::new(100));
        assert_eq!(out.level, ResidencyLevel::L1);
        assert_eq!(out.extra_cycles, 0);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut hier = h();
        hier.fetch_instr(Line::new(0));
        // Fill set 0 of the 64-set 8-way L1I with conflicting lines.
        for i in 1..=8u64 {
            hier.fetch_instr(Line::new(i * 64));
        }
        let out = hier.fetch_instr(Line::new(0));
        assert_eq!(out.level, ResidencyLevel::L2);
        assert_eq!(out.extra_cycles, 12 - 3);
    }

    #[test]
    fn prefetch_fill_makes_next_fetch_hit() {
        let mut hier = h();
        let l = Line::new(77);
        hier.prefetch_fill(l);
        assert!(hier.is_untouched_prefetch(l));
        let out = hier.fetch_instr(l);
        assert_eq!(out.level, ResidencyLevel::L1);
        assert!(!hier.is_untouched_prefetch(l));
    }

    #[test]
    fn prefetch_latency_tracks_residency() {
        let mut hier = h();
        let l = Line::new(5);
        assert_eq!(hier.prefetch_latency(l), 260);
        hier.fetch_instr(l); // now in l1i + l2 + l3
        assert_eq!(hier.prefetch_latency(l), 3);
        // Evict from L1I only: conflicting fetches.
        for i in 1..=8u64 {
            hier.fetch_instr(Line::new(5 + i * 64));
        }
        assert_eq!(hier.prefetch_latency(l), 12);
    }

    #[test]
    fn data_and_instruction_l1s_are_split() {
        let mut hier = h();
        let l = Line::new(9);
        hier.load_data(l);
        // Same line fetched as an instruction must miss L1I but hit L2.
        let out = hier.fetch_instr(l);
        assert_eq!(out.level, ResidencyLevel::L2);
    }

    #[test]
    fn data_load_latency() {
        let mut hier = h();
        let out = hier.load_data(Line::new(1000));
        assert_eq!(out.extra_cycles, 260 - 4);
        let out2 = hier.load_data(Line::new(1000));
        assert_eq!(out2.extra_cycles, 0);
    }
}
