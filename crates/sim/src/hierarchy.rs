//! The Table-I memory hierarchy: split L1s over unified L2/L3.

use crate::cache::{Cache, InsertPriority};
use crate::config::SimConfig;
use ispy_trace::Line;

/// Where a line was found on a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResidencyLevel {
    /// Hit in the accessed L1.
    L1,
    /// Found in the unified L2.
    L2,
    /// Found in the unified L3.
    L3,
    /// Served from memory.
    Memory,
}

/// Outcome of a demand fetch/load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Level that served the access.
    pub level: ResidencyLevel,
    /// Extra stall cycles beyond the L1 hit latency.
    pub extra_cycles: u32,
    /// The untouched prefetched line evicted from L1I to make room, if any.
    /// Carrying the identity (not just a flag) lets the engine attribute the
    /// wasted prefetch back to the injection that issued it.
    pub evicted_untouched: Option<Line>,
}

/// The simulated cache hierarchy.
///
/// Instruction and data sides have private L1s and share L2/L3 (so useless
/// instruction prefetches pollute the levels data misses are served from,
/// as in a real part). Code lines and data lines live in disjoint address
/// ranges, which the engine guarantees.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    lat_l1i: u32,
    lat_l1d: u32,
    lat_l2: u32,
    lat_l3: u32,
    lat_mem: u32,
    prefetch_insert: InsertPriority,
    /// Exact presence bitmap mirroring L1I contents for lines below
    /// `shadow_limit`, maintained at the (rare) fill/evict points so the
    /// (frequent) [`Hierarchy::in_l1i`] probes are a bit test instead of a
    /// set scan. Empty when disabled; lines at/above the limit fall back to
    /// scanning the cache, so the shadow is never a correctness question —
    /// only a fast path.
    l1i_shadow: Vec<u64>,
    /// Same exact-mirror bitmaps for the shared L2/L3, over the code-line
    /// range plus (after [`Hierarchy::enable_data_shadow`]) the data-line
    /// range, whose words are appended after the code words. The injected
    /// hot path asks "where would this prefetch be served from?" for every
    /// issued line, and every data load asks "which shared level holds this
    /// line?"; with the shadows, known misses skip the scans over the
    /// (large, cache-hostile) L2/L3 slot arrays entirely.
    l2_shadow: Vec<u64>,
    l3_shadow: Vec<u64>,
    shadow_limit: u64,
    /// First line id of the shadowed data range (`u64::MAX` = disabled).
    data_base: u64,
    /// One past the last shadowed data line id.
    data_limit: u64,
    /// Word index where the data range's shadow words start.
    data_words: usize,
    /// Line-id range ever filled into L1D (inclusive watermarks; min >
    /// max = never filled). The prefetch-latency walk probes L1D for every
    /// issued line even though the engine only loads data lines into it;
    /// the watermark turns those provably-absent probes into two compares.
    /// Never shrinks on eviction, so it over-approximates — absent outside
    /// the range is exact, inside falls back to the scan.
    l1d_min: u64,
    l1d_max: u64,
}

/// Upper bound on shadowed line ids (8 MiB of bitmap). Programs the
/// generator produces stay far below this; pathological hand-built plans
/// simply fall back to the scan path.
const SHADOW_LINE_CAP: u64 = 1 << 26;

impl Hierarchy {
    /// Builds an empty hierarchy from a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            lat_l1i: cfg.lat.l1i,
            lat_l1d: cfg.lat.l1d,
            lat_l2: cfg.lat.l2,
            lat_l3: cfg.lat.l3,
            lat_mem: cfg.lat.mem,
            prefetch_insert: cfg.prefetch_insert,
            l1i_shadow: Vec::new(),
            l2_shadow: Vec::new(),
            l3_shadow: Vec::new(),
            shadow_limit: 0,
            data_base: u64::MAX,
            data_limit: 0,
            data_words: 0,
            l1d_min: u64::MAX,
            l1d_max: 0,
        }
    }

    /// Enables the L1I/L2/L3 presence shadows for lines `0..line_limit`
    /// (clamped to an 8 MiB bitmap each). Must be called while the hierarchy
    /// is still empty — i.e. before any fetch or prefetch — which is when
    /// the engine calls it.
    pub fn enable_l1i_shadow(&mut self, line_limit: u64) {
        debug_assert_eq!(self.l1i.occupancy(), 0, "shadow must start from an empty L1I");
        debug_assert_eq!(
            self.l2.occupancy() + self.l3.occupancy(),
            0,
            "shadow must start from empty shared levels"
        );
        let limit = line_limit.min(SHADOW_LINE_CAP);
        let words = (limit as usize).div_ceil(64);
        self.l1i_shadow = vec![0u64; words];
        self.l2_shadow = vec![0u64; words];
        self.l3_shadow = vec![0u64; words];
        self.shadow_limit = limit;
    }

    /// Extends the L2/L3 presence shadows over the `data_lines`-line data
    /// range starting at `data_base` (clamped to an 8 MiB bitmap), so data
    /// loads answer "which shared level?" by bit test too. Requires the code
    /// shadows to be enabled first and, like them, must be called while the
    /// shared levels are still empty. L1I is never extended: only code lines
    /// are ever fetched or prefetched into it.
    pub fn enable_data_shadow(&mut self, data_base: u64, data_lines: u64) {
        debug_assert!(self.shadow_limit > 0, "enable the code-range shadows first");
        debug_assert_eq!(
            self.l2.occupancy() + self.l3.occupancy(),
            0,
            "shadow must start from empty shared levels"
        );
        debug_assert!(data_base >= self.shadow_limit, "data range overlaps code range");
        let words = (data_lines.min(SHADOW_LINE_CAP) as usize).div_ceil(64);
        self.data_words = self.l2_shadow.len();
        self.l2_shadow.resize(self.data_words + words, 0);
        self.l3_shadow.resize(self.data_words + words, 0);
        self.data_base = data_base;
        // Whole trailing words are covered exactly: any line in them is
        // tracked at the same fill/evict points as the rest of the range.
        self.data_limit = data_base + (words as u64) * 64;
    }

    /// The `(word, bit)` slot of `raw` in the shared L2/L3 shadows, or
    /// `None` for lines outside both shadowed ranges.
    #[inline]
    fn shared_shadow_pos(&self, raw: u64) -> Option<(usize, u64)> {
        if raw < self.shadow_limit {
            Some(((raw >> 6) as usize, 1u64 << (raw & 63)))
        } else if raw >= self.data_base && raw < self.data_limit {
            let off = raw - self.data_base;
            Some((self.data_words + (off >> 6) as usize, 1u64 << (off & 63)))
        } else {
            None
        }
    }

    #[inline]
    fn shadow_set(&mut self, line: Line) {
        let raw = line.raw();
        if raw < self.shadow_limit {
            self.l1i_shadow[(raw >> 6) as usize] |= 1 << (raw & 63);
        }
    }

    #[inline]
    fn shadow_clear(&mut self, evicted: Option<Line>) {
        if let Some(line) = evicted {
            let raw = line.raw();
            if raw < self.shadow_limit {
                self.l1i_shadow[(raw >> 6) as usize] &= !(1 << (raw & 63));
            }
        }
    }

    /// Looks up where `line` would be served from, without changing state.
    pub fn residency(&self, line: Line) -> ResidencyLevel {
        if self.l1i.contains(line) || self.l1d.contains(line) {
            ResidencyLevel::L1
        } else if self.l2.contains(line) {
            ResidencyLevel::L2
        } else if self.l3.contains(line) {
            ResidencyLevel::L3
        } else {
            ResidencyLevel::Memory
        }
    }

    /// Latency (cycles) to obtain `line` for the I-side, as the prefetch
    /// engine would see it.
    pub fn prefetch_latency(&self, line: Line) -> u32 {
        match self.residency(line) {
            ResidencyLevel::L1 => self.lat_l1i,
            ResidencyLevel::L2 => self.lat_l2,
            ResidencyLevel::L3 => self.lat_l3,
            ResidencyLevel::Memory => self.lat_mem,
        }
    }

    /// The line-id limit of the enabled L1I presence shadow (0 = disabled).
    /// Lines below it answer [`Hierarchy::in_l1i`] from the shadow bitmap.
    #[inline]
    pub fn l1i_shadow_limit(&self) -> u64 {
        self.shadow_limit
    }

    /// Whether every bit of `masks` is set in the respective shadow `words`
    /// — the batched "are all of this op's target lines already in L1I?"
    /// probe. The caller guarantees the word indices are in range, i.e. every
    /// covered line id is below [`Hierarchy::l1i_shadow_limit`] (compiled
    /// injection plans carry `max_line` for exactly this check).
    #[inline]
    pub fn l1i_shadow_covers(&self, words: [u32; 2], masks: [u64; 2]) -> bool {
        (self.l1i_shadow[words[0] as usize] & masks[0]) == masks[0]
            && (self.l1i_shadow[words[1] as usize] & masks[1]) == masks[1]
    }

    /// One word of the L1I presence shadow; the caller guarantees the index
    /// is in range (below `l1i_shadow_limit / 64`).
    #[inline]
    pub fn l1i_shadow_word(&self, word: u32) -> u64 {
        self.l1i_shadow[word as usize]
    }

    /// Whether `line` is resident in the L1 I-cache.
    #[inline]
    pub fn in_l1i(&self, line: Line) -> bool {
        let raw = line.raw();
        if raw < self.shadow_limit {
            self.l1i_shadow[(raw >> 6) as usize] & (1 << (raw & 63)) != 0
        } else {
            self.l1i.contains(line)
        }
    }

    /// Demand instruction fetch of `line`.
    pub fn fetch_instr(&mut self, line: Line) -> AccessOutcome {
        if self.fetch_instr_hit(line).is_some() {
            return AccessOutcome {
                level: ResidencyLevel::L1,
                extra_cycles: 0,
                evicted_untouched: None,
            };
        }
        self.fetch_instr_miss(line)
    }

    /// L1I demand-fetch fast path: on a hit, promotes the line, clears its
    /// untouched-prefetch flag, and returns `Some(flag's previous value)` —
    /// residency check, usefulness accounting, and recency update in one set
    /// scan. Returns `None` on a miss without touching any state.
    #[inline]
    pub fn fetch_instr_hit(&mut self, line: Line) -> Option<bool> {
        self.l1i.demand(line)
    }

    /// L1I demand-fetch slow path; the caller has established (via
    /// [`Hierarchy::fetch_instr_hit`]) that `line` is not in L1I.
    pub fn fetch_instr_miss(&mut self, line: Line) -> AccessOutcome {
        let (level, total_lat) = self.lookup_fill_shared(line);
        let fill = self.l1i.fill(line, InsertPriority::Mru, false);
        self.shadow_set(line);
        self.shadow_clear(fill.evicted);
        AccessOutcome {
            level,
            extra_cycles: total_lat - self.lat_l1i,
            evicted_untouched: if fill.evicted_untouched_prefetch { fill.evicted } else { None },
        }
    }

    /// Demand data load of `line`.
    pub fn load_data(&mut self, line: Line) -> AccessOutcome {
        if self.l1d.access(line) {
            return AccessOutcome {
                level: ResidencyLevel::L1,
                extra_cycles: 0,
                evicted_untouched: None,
            };
        }
        let (level, total_lat) = self.lookup_fill_shared(line);
        self.l1d.fill(line, InsertPriority::Mru, false);
        let raw = line.raw();
        self.l1d_min = self.l1d_min.min(raw);
        self.l1d_max = self.l1d_max.max(raw);
        AccessOutcome { level, extra_cycles: total_lat - self.lat_l1d, evicted_untouched: None }
    }

    /// Completes a prefetch: fills L1I (and L2) at the configured prefetch
    /// priority, marking the line for usefulness accounting. Returns the
    /// untouched prefetched line evicted from L1I to make room, if any.
    pub fn prefetch_fill(&mut self, line: Line) -> Option<Line> {
        self.fill_l2(line, self.prefetch_insert, true);
        let out = self.l1i.fill(line, self.prefetch_insert, true);
        self.shadow_set(line);
        self.shadow_clear(out.evicted);
        if out.evicted_untouched_prefetch {
            out.evicted
        } else {
            None
        }
    }

    /// Whether `line` sits in L1I as a not-yet-demanded prefetch.
    pub fn is_untouched_prefetch(&self, line: Line) -> bool {
        self.l1i.is_untouched_prefetch(line)
    }

    /// [`Hierarchy::prefetch_latency`] for a line the caller has already
    /// established (via [`Hierarchy::in_l1i`]) to be absent from L1I — skips
    /// the redundant L1I scan of the full `residency` walk, and answers from
    /// the L2/L3 presence shadows (bit tests) for lines they cover.
    #[inline]
    pub fn prefetch_latency_missing_l1i(&self, line: Line) -> u32 {
        let raw = line.raw();
        if raw >= self.l1d_min && raw <= self.l1d_max && self.l1d.contains(line) {
            self.lat_l1i // ResidencyLevel::L1, as `residency` reports it
        } else if raw < self.shadow_limit {
            let (word, bit) = ((raw >> 6) as usize, 1u64 << (raw & 63));
            if self.l2_shadow[word] & bit != 0 {
                self.lat_l2
            } else if self.l3_shadow[word] & bit != 0 {
                self.lat_l3
            } else {
                self.lat_mem
            }
        } else if self.l2.contains(line) {
            self.lat_l2
        } else if self.l3.contains(line) {
            self.lat_l3
        } else {
            self.lat_mem
        }
    }

    /// [`Cache::fill`] into L2, keeping its presence shadow exact.
    fn fill_l2(&mut self, line: Line, priority: InsertPriority, prefetched: bool) {
        let out = self.l2.fill(line, priority, prefetched);
        if let Some((w, b)) = self.shared_shadow_pos(line.raw()) {
            self.l2_shadow[w] |= b;
        }
        if let Some((w, b)) = out.evicted.and_then(|e| self.shared_shadow_pos(e.raw())) {
            self.l2_shadow[w] &= !b;
        }
    }

    /// [`Cache::fill`] into L3, keeping its presence shadow exact.
    fn fill_l3(&mut self, line: Line, priority: InsertPriority, prefetched: bool) {
        let out = self.l3.fill(line, priority, prefetched);
        if let Some((w, b)) = self.shared_shadow_pos(line.raw()) {
            self.l3_shadow[w] |= b;
        }
        if let Some((w, b)) = out.evicted.and_then(|e| self.shared_shadow_pos(e.raw())) {
            self.l3_shadow[w] &= !b;
        }
    }

    /// Serves a miss from the shared levels, filling them on the way.
    ///
    /// For shadowed lines the presence bits decide which level serves the
    /// access before any set is scanned: a demand [`Cache::access`] mutates
    /// state only when it hits (recency promotion), so skipping it on a
    /// shadow-proven miss is invisible, and the one access that does run is
    /// the one that hits.
    fn lookup_fill_shared(&mut self, line: Line) -> (ResidencyLevel, u32) {
        if let Some((w, b)) = self.shared_shadow_pos(line.raw()) {
            return if self.l2_shadow[w] & b != 0 {
                let hit = self.l2.access(line);
                debug_assert!(hit, "L2 shadow bit set for absent line {line:?}");
                (ResidencyLevel::L2, self.lat_l2)
            } else if self.l3_shadow[w] & b != 0 {
                let hit = self.l3.access(line);
                debug_assert!(hit, "L3 shadow bit set for absent line {line:?}");
                self.fill_l2(line, InsertPriority::Mru, false);
                (ResidencyLevel::L3, self.lat_l3)
            } else {
                self.fill_l3(line, InsertPriority::Mru, false);
                self.fill_l2(line, InsertPriority::Mru, false);
                (ResidencyLevel::Memory, self.lat_mem)
            };
        }
        if self.l2.access(line) {
            (ResidencyLevel::L2, self.lat_l2)
        } else if self.l3.access(line) {
            self.fill_l2(line, InsertPriority::Mru, false);
            (ResidencyLevel::L3, self.lat_l3)
        } else {
            self.fill_l3(line, InsertPriority::Mru, false);
            self.fill_l2(line, InsertPriority::Mru, false);
            (ResidencyLevel::Memory, self.lat_mem)
        }
    }

    /// Direct access to the L1I, for tests and white-box inspection.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn h() -> Hierarchy {
        Hierarchy::new(&SimConfig::default())
    }

    #[test]
    fn cold_fetch_comes_from_memory() {
        let mut hier = h();
        let out = hier.fetch_instr(Line::new(100));
        assert_eq!(out.level, ResidencyLevel::Memory);
        assert_eq!(out.extra_cycles, 260 - 3);
    }

    #[test]
    fn refetch_hits_l1() {
        let mut hier = h();
        hier.fetch_instr(Line::new(100));
        let out = hier.fetch_instr(Line::new(100));
        assert_eq!(out.level, ResidencyLevel::L1);
        assert_eq!(out.extra_cycles, 0);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut hier = h();
        hier.fetch_instr(Line::new(0));
        // Fill set 0 of the 64-set 8-way L1I with conflicting lines.
        for i in 1..=8u64 {
            hier.fetch_instr(Line::new(i * 64));
        }
        let out = hier.fetch_instr(Line::new(0));
        assert_eq!(out.level, ResidencyLevel::L2);
        assert_eq!(out.extra_cycles, 12 - 3);
    }

    #[test]
    fn prefetch_fill_makes_next_fetch_hit() {
        let mut hier = h();
        let l = Line::new(77);
        hier.prefetch_fill(l);
        assert!(hier.is_untouched_prefetch(l));
        let out = hier.fetch_instr(l);
        assert_eq!(out.level, ResidencyLevel::L1);
        assert!(!hier.is_untouched_prefetch(l));
    }

    #[test]
    fn prefetch_latency_tracks_residency() {
        let mut hier = h();
        let l = Line::new(5);
        assert_eq!(hier.prefetch_latency(l), 260);
        hier.fetch_instr(l); // now in l1i + l2 + l3
        assert_eq!(hier.prefetch_latency(l), 3);
        // Evict from L1I only: conflicting fetches.
        for i in 1..=8u64 {
            hier.fetch_instr(Line::new(5 + i * 64));
        }
        assert_eq!(hier.prefetch_latency(l), 12);
    }

    #[test]
    fn data_and_instruction_l1s_are_split() {
        let mut hier = h();
        let l = Line::new(9);
        hier.load_data(l);
        // Same line fetched as an instruction must miss L1I but hit L2.
        let out = hier.fetch_instr(l);
        assert_eq!(out.level, ResidencyLevel::L2);
    }

    #[test]
    fn l1i_shadow_agrees_with_cache_scan() {
        // Drive fills and evictions through both fetch and prefetch paths and
        // check the presence shadow never diverges from the authoritative
        // cache contents, including for lines outside the shadowed range.
        let mut hier = h();
        hier.enable_l1i_shadow(512);
        let mut state = 0x243F6A8885A308D3u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let line = Line::new(state % 600); // some lines beyond the limit
            match state >> 40 & 3 {
                0 | 1 => {
                    hier.fetch_instr(line);
                }
                2 => {
                    hier.prefetch_fill(line);
                }
                _ => {
                    // Data loads churn L2/L3 (and their shadows) too.
                    hier.load_data(line);
                }
            }
            for probe in [Line::new(state >> 8 & 0x3FF), line] {
                assert_eq!(hier.in_l1i(probe), hier.l1i().contains(probe), "line {probe:?}");
                // The shadow-served latency walk must agree with the
                // scan-based residency walk for any line absent from L1I.
                if !hier.l1i().contains(probe) {
                    assert_eq!(
                        hier.prefetch_latency_missing_l1i(probe),
                        hier.prefetch_latency(probe),
                        "L2/L3 shadow diverged for line {probe:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shadow_covers_matches_per_line_probes() {
        let mut hier = h();
        hier.enable_l1i_shadow(256);
        assert_eq!(hier.l1i_shadow_limit(), 256);
        for l in [3u64, 62, 63, 64, 65, 130] {
            hier.prefetch_fill(Line::new(l));
        }
        // All-resident word pair: lines 62..=64 straddle words 0 and 1.
        let covers = hier.l1i_shadow_covers([0, 1], [0b11 << 62, 0b11]);
        assert_eq!(
            covers,
            [62u64, 63, 64, 65].iter().all(|&l| hier.in_l1i(Line::new(l))),
            "batched probe must agree with per-line probes"
        );
        assert!(covers);
        // A missing line (61) breaks coverage.
        assert!(!hier.l1i_shadow_covers([0, 1], [0b111 << 61, 0b11]));
        // An empty second mask is trivially covered (single-word ops).
        assert!(hier.l1i_shadow_covers([2, 2], [1 << (130 - 128), 0]));
    }

    #[test]
    fn data_shadow_matches_shadowless_twin() {
        // Drive one shadowed and one shadowless hierarchy through an
        // identical interleaved code/data access sequence; every outcome
        // (level, latency, eviction identity) must match, or the
        // shadow-guided lookup_fill_shared diverged from the scan path.
        let mut fast = h();
        fast.enable_l1i_shadow(512);
        fast.enable_data_shadow(1 << 40, 300); // clamps to whole words
        let mut slow = h();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..30_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state >> 40 & 3 {
                0 => {
                    let line = Line::new(state % 600);
                    assert_eq!(fast.fetch_instr(line), slow.fetch_instr(line));
                }
                1 => {
                    let line = Line::new(state % 600);
                    assert_eq!(fast.prefetch_fill(line), slow.prefetch_fill(line));
                }
                _ => {
                    // Data range churns L2/L3 against the code lines.
                    let line = Line::new((1 << 40) + state % 300);
                    assert_eq!(fast.load_data(line), slow.load_data(line));
                }
            }
        }
    }

    #[test]
    fn data_load_latency() {
        let mut hier = h();
        let out = hier.load_data(Line::new(1000));
        assert_eq!(out.extra_cycles, 260 - 4);
        let out2 = hier.load_data(Line::new(1000));
        assert_eq!(out2.extra_cycles, 0);
    }
}
