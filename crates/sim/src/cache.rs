//! Set-associative caches with priority-aware LRU replacement.
//!
//! I-SPY's prefetch instructions insert prefetched lines at *half* the
//! highest replacement priority instead of MRU (§III-B), so a mispredicted
//! prefetch is evicted sooner than demand-fetched lines. [`InsertPriority`]
//! models that policy knob.

use ispy_trace::Line;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheParams {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or the capacity is smaller than one set.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        let p = CacheParams { size_bytes, ways, line_bytes: ispy_trace::LINE_BYTES };
        assert!(p.num_sets() >= 1, "cache must have at least one set");
        p
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.ways)
    }

    /// Number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// Where a fill enters a set's LRU recency stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertPriority {
    /// Most-recently-used position (demand fills).
    #[default]
    Mru,
    /// Half of the highest priority (I-SPY's policy for prefetched lines).
    Half,
    /// Least-recently-used position (next to evict).
    Lru,
}

/// Metadata carried per resident line, used for prefetch-usefulness
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    line: Line,
    /// Line was brought in by a prefetch and has not been demanded yet.
    prefetched_untouched: bool,
}

/// Outcome of [`Cache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Line evicted to make room, if the set was full.
    pub evicted: Option<Line>,
    /// The evicted line was an untouched prefetch (wasted prefetch).
    pub evicted_untouched_prefetch: bool,
}

/// A set-associative cache over [`Line`] addresses.
///
/// Each set is a recency-ordered stack (`Vec`), index 0 = MRU. This keeps the
/// model simple and exact; associativities here are ≤ 20 so linear scans are
/// fast.
///
/// # Examples
///
/// ```
/// use ispy_sim::{Cache, CacheParams, InsertPriority};
/// use ispy_trace::Line;
///
/// let mut l1 = Cache::new(CacheParams::new(32 * 1024, 8));
/// assert!(!l1.access(Line::new(3)));          // cold miss
/// l1.fill(Line::new(3), InsertPriority::Mru, false);
/// assert!(l1.access(Line::new(3)));           // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: Vec<Vec<Entry>>,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(params: CacheParams) -> Self {
        let sets = vec![Vec::with_capacity(params.ways as usize); params.num_sets() as usize];
        Cache { params, sets }
    }

    /// The cache's geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    fn set_index(&self, line: Line) -> usize {
        (line.raw() % self.params.num_sets()) as usize
    }

    /// Demand access: returns `true` on hit and promotes the line to MRU,
    /// clearing its untouched-prefetch flag.
    pub fn access(&mut self, line: Line) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.line == line) {
            let mut e = set.remove(pos);
            e.prefetched_untouched = false;
            set.insert(0, e);
            true
        } else {
            false
        }
    }

    /// Whether the line is resident, without touching recency or flags.
    pub fn contains(&self, line: Line) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|e| e.line == line)
    }

    /// Whether the line is resident as an untouched prefetch.
    pub fn is_untouched_prefetch(&self, line: Line) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|e| e.line == line && e.prefetched_untouched)
    }

    /// Inserts a line at the given priority; `prefetched` marks it for
    /// usefulness accounting. Re-filling a resident line only updates its
    /// position/flag.
    pub fn fill(&mut self, line: Line, priority: InsertPriority, prefetched: bool) -> FillOutcome {
        let ways = self.params.ways as usize;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let existing = set.iter().position(|e| e.line == line).map(|pos| set.remove(pos));
        let entry = existing.unwrap_or(Entry { line, prefetched_untouched: prefetched });

        let mut outcome = FillOutcome { evicted: None, evicted_untouched_prefetch: false };
        if set.len() >= ways {
            let victim = set.pop().expect("full set has a victim");
            outcome.evicted = Some(victim.line);
            outcome.evicted_untouched_prefetch = victim.prefetched_untouched;
        }
        let pos = match priority {
            InsertPriority::Mru => 0,
            InsertPriority::Half => ways / 2,
            InsertPriority::Lru => set.len(),
        };
        set.insert(pos.min(set.len()), entry);
        outcome
    }

    /// Removes a line if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: Line) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.line == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> u64 {
        self.sets.iter().map(|s| s.len() as u64).sum()
    }

    /// Clears all contents.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheParams { size_bytes: 8 * 64, ways: 2, line_bytes: 64 })
    }

    /// Lines that all map to set 0 of the tiny cache.
    fn set0_lines() -> [Line; 3] {
        [Line::new(0), Line::new(4), Line::new(8)]
    }

    #[test]
    fn geometry() {
        let p = CacheParams::new(32 * 1024, 8);
        assert_eq!(p.num_sets(), 64);
        assert_eq!(p.num_lines(), 512);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let l = Line::new(7);
        assert!(!c.access(l));
        c.fill(l, InsertPriority::Mru, false);
        assert!(c.access(l));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        let [a, b, x] = set0_lines();
        c.fill(a, InsertPriority::Mru, false);
        c.fill(b, InsertPriority::Mru, false);
        // `a` is LRU; touching it makes `b` the victim.
        assert!(c.access(a));
        let out = c.fill(x, InsertPriority::Mru, false);
        assert_eq!(out.evicted, Some(b));
        assert!(c.contains(a) && c.contains(x) && !c.contains(b));
    }

    #[test]
    fn half_priority_is_evicted_before_mru_fill() {
        let mut c = tiny();
        let [a, b, x] = set0_lines();
        c.fill(a, InsertPriority::Mru, false);
        // Prefetch fill at half priority lands behind the MRU line.
        c.fill(b, InsertPriority::Half, true);
        // Under pure-MRU insertion the *older* line `a` would be the victim;
        // half-priority insertion makes the prefetched `b` the victim.
        let out = c.fill(x, InsertPriority::Mru, false);
        assert_eq!(out.evicted, Some(b));
        assert!(out.evicted_untouched_prefetch);
    }

    #[test]
    fn demand_access_clears_prefetch_flag() {
        let mut c = tiny();
        let l = Line::new(4);
        c.fill(l, InsertPriority::Half, true);
        assert!(c.is_untouched_prefetch(l));
        assert!(c.access(l));
        assert!(!c.is_untouched_prefetch(l));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        let l = Line::new(0);
        c.fill(l, InsertPriority::Mru, false);
        c.fill(l, InsertPriority::Mru, false);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        let l = Line::new(3);
        c.fill(l, InsertPriority::Mru, false);
        assert!(c.invalidate(l));
        assert!(!c.contains(l));
        assert!(!c.invalidate(l));
    }

    #[test]
    fn occupancy_caps_at_ways() {
        let mut c = tiny();
        for l in [0u64, 4, 8, 12, 16, 20] {
            c.fill(Line::new(l), InsertPriority::Mru, false);
        }
        // All map to set 0 -> at most 2 resident.
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn lru_insert_priority_is_next_victim() {
        let mut c = tiny();
        let [a, b, x] = set0_lines();
        c.fill(a, InsertPriority::Mru, false);
        c.fill(b, InsertPriority::Lru, false);
        let out = c.fill(x, InsertPriority::Mru, false);
        assert_eq!(out.evicted, Some(b));
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.fill(Line::new(1), InsertPriority::Mru, false);
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }
}
