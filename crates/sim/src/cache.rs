//! Set-associative caches with priority-aware LRU replacement.
//!
//! I-SPY's prefetch instructions insert prefetched lines at *half* the
//! highest replacement priority instead of MRU (§III-B), so a mispredicted
//! prefetch is evicted sooner than demand-fetched lines. [`InsertPriority`]
//! models that policy knob.

use ispy_trace::Line;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheParams {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or the capacity is smaller than one set.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        let p = CacheParams { size_bytes, ways, line_bytes: ispy_trace::LINE_BYTES };
        assert!(p.num_sets() >= 1, "cache must have at least one set");
        p
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.ways)
    }

    /// Number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// Where a fill enters a set's LRU recency stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertPriority {
    /// Most-recently-used position (demand fills).
    #[default]
    Mru,
    /// Half of the highest priority (I-SPY's policy for prefetched lines).
    Half,
    /// Least-recently-used position (next to evict).
    Lru,
}

/// Outcome of [`Cache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Line evicted to make room, if the set was full.
    pub evicted: Option<Line>,
    /// The evicted line was an untouched prefetch (wasted prefetch).
    pub evicted_untouched_prefetch: bool,
}

/// A set-associative cache over [`Line`] addresses.
///
/// Storage is one flat `sets × ways` array of packed slots plus a per-set
/// occupancy count; each set's occupied prefix is a recency-ordered stack
/// (offset 0 = MRU). A slot packs `line << 1 | untouched_prefetch_flag`, so
/// recency updates are in-place 8-byte slice rotations instead of `Vec`
/// element shifts, and the whole working set of a small cache stays in a few
/// hardware cache lines. The set-index divisor is precomputed once (a mask
/// for the usual power-of-two set counts); associativities here are ≤ 20 so
/// linear scans are fast.
///
/// # Examples
///
/// ```
/// use ispy_sim::{Cache, CacheParams, InsertPriority};
/// use ispy_trace::Line;
///
/// let mut l1 = Cache::new(CacheParams::new(32 * 1024, 8));
/// assert!(!l1.access(Line::new(3)));          // cold miss
/// l1.fill(Line::new(3), InsertPriority::Mru, false);
/// assert!(l1.access(Line::new(3)));           // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    ways: usize,
    num_sets: u64,
    /// `num_sets - 1` when the set count is a power of two (`u64::MAX`
    /// sentinel otherwise, in which case indexing falls back to `%`).
    set_mask: u64,
    /// Packed `line << 1 | untouched` slots, `ways` per set.
    slots: Vec<u64>,
    /// Occupied prefix length of each set.
    occ: Vec<u32>,
}

/// Packs a line and its untouched-prefetch flag into one slot word.
#[inline]
fn pack(line: Line, untouched: bool) -> u64 {
    (line.raw() << 1) | u64::from(untouched)
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(params: CacheParams) -> Self {
        let num_sets = params.num_sets();
        let ways = params.ways as usize;
        let set_mask = if num_sets.is_power_of_two() { num_sets - 1 } else { u64::MAX };
        Cache {
            params,
            ways,
            num_sets,
            set_mask,
            slots: vec![0; num_sets as usize * ways],
            occ: vec![0; num_sets as usize],
        }
    }

    /// The cache's geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    #[inline]
    fn set_index(&self, line: Line) -> usize {
        let raw = line.raw();
        let idx = if self.set_mask != u64::MAX { raw & self.set_mask } else { raw % self.num_sets };
        idx as usize
    }

    /// The occupied prefix of `line`'s set, MRU first.
    #[inline]
    fn set_of(&self, line: Line) -> &[u64] {
        let si = self.set_index(line);
        let base = si * self.ways;
        &self.slots[base..base + self.occ[si] as usize]
    }

    /// Demand access: returns `true` on hit and promotes the line to MRU,
    /// clearing its untouched-prefetch flag. See [`Cache::demand`] for the
    /// variant that reports the cleared flag.
    pub fn access(&mut self, line: Line) -> bool {
        self.demand(line).is_some()
    }

    /// Demand access returning `Some(was_untouched_prefetch)` on hit — the
    /// hit is promoted to MRU and its flag cleared in the same single scan.
    #[inline]
    pub fn demand(&mut self, line: Line) -> Option<bool> {
        let si = self.set_index(line);
        let base = si * self.ways;
        let set = &mut self.slots[base..base + self.occ[si] as usize];
        let raw = line.raw();
        let pos = set.iter().position(|&s| s >> 1 == raw)?;
        let was_untouched = set[pos] & 1 == 1;
        // Shift [0, pos) right one and write the promoted line at MRU. An
        // element loop, not `copy_within`: the dynamic-length copy lowers to
        // a libc memmove call whose overhead dwarfs these ≤ 20-slot moves,
        // and the common MRU re-hit (pos = 0) skips the loop entirely.
        let mut i = pos;
        while i > 0 {
            set[i] = set[i - 1];
            i -= 1;
        }
        set[0] = raw << 1;
        Some(was_untouched)
    }

    /// Whether the line is resident, without touching recency or flags.
    #[inline]
    pub fn contains(&self, line: Line) -> bool {
        let raw = line.raw();
        self.set_of(line).iter().any(|&s| s >> 1 == raw)
    }

    /// Whether the line is resident as an untouched prefetch.
    pub fn is_untouched_prefetch(&self, line: Line) -> bool {
        let key = pack(line, true);
        self.set_of(line).contains(&key)
    }

    /// Inserts a line at the given priority; `prefetched` marks it for
    /// usefulness accounting. Re-filling a resident line only updates its
    /// position/flag.
    pub fn fill(&mut self, line: Line, priority: InsertPriority, prefetched: bool) -> FillOutcome {
        let ways = self.ways;
        let si = self.set_index(line);
        let base = si * self.ways;
        let mut occ = self.occ[si] as usize;
        let raw = line.raw();

        // Remove an existing copy (keeping its flag) so the re-fill only
        // moves it.
        let mut entry = None;
        {
            let set = &mut self.slots[base..base + occ];
            if let Some(pos) = set.iter().position(|&s| s >> 1 == raw) {
                entry = Some(set[pos]);
                for i in pos..occ - 1 {
                    set[i] = set[i + 1];
                }
                occ -= 1;
            }
        }
        let entry = entry.unwrap_or_else(|| pack(line, prefetched));

        let mut outcome = FillOutcome { evicted: None, evicted_untouched_prefetch: false };
        if occ >= ways {
            let victim = self.slots[base + occ - 1];
            outcome.evicted = Some(Line::new(victim >> 1));
            outcome.evicted_untouched_prefetch = victim & 1 == 1;
            occ -= 1;
        }
        let pos = match priority {
            InsertPriority::Mru => 0,
            InsertPriority::Half => ways / 2,
            InsertPriority::Lru => occ,
        }
        .min(occ);
        // Shift [pos, occ) right one and write the entry — an element loop
        // for the same reason as in `demand`.
        let set = &mut self.slots[base..base + occ + 1];
        let mut i = occ;
        while i > pos {
            set[i] = set[i - 1];
            i -= 1;
        }
        set[pos] = entry;
        self.occ[si] = (occ + 1) as u32;
        outcome
    }

    /// Removes a line if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: Line) -> bool {
        let si = self.set_index(line);
        let base = si * self.ways;
        let occ = self.occ[si] as usize;
        let set = &mut self.slots[base..base + occ];
        let raw = line.raw();
        if let Some(pos) = set.iter().position(|&s| s >> 1 == raw) {
            for i in pos..occ - 1 {
                set[i] = set[i + 1];
            }
            self.occ[si] = (occ - 1) as u32;
            true
        } else {
            false
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> u64 {
        self.occ.iter().map(|&n| u64::from(n)).sum()
    }

    /// Clears all contents.
    pub fn clear(&mut self) {
        self.occ.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheParams { size_bytes: 8 * 64, ways: 2, line_bytes: 64 })
    }

    /// Lines that all map to set 0 of the tiny cache.
    fn set0_lines() -> [Line; 3] {
        [Line::new(0), Line::new(4), Line::new(8)]
    }

    #[test]
    fn geometry() {
        let p = CacheParams::new(32 * 1024, 8);
        assert_eq!(p.num_sets(), 64);
        assert_eq!(p.num_lines(), 512);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let l = Line::new(7);
        assert!(!c.access(l));
        c.fill(l, InsertPriority::Mru, false);
        assert!(c.access(l));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        let [a, b, x] = set0_lines();
        c.fill(a, InsertPriority::Mru, false);
        c.fill(b, InsertPriority::Mru, false);
        // `a` is LRU; touching it makes `b` the victim.
        assert!(c.access(a));
        let out = c.fill(x, InsertPriority::Mru, false);
        assert_eq!(out.evicted, Some(b));
        assert!(c.contains(a) && c.contains(x) && !c.contains(b));
    }

    #[test]
    fn half_priority_is_evicted_before_mru_fill() {
        let mut c = tiny();
        let [a, b, x] = set0_lines();
        c.fill(a, InsertPriority::Mru, false);
        // Prefetch fill at half priority lands behind the MRU line.
        c.fill(b, InsertPriority::Half, true);
        // Under pure-MRU insertion the *older* line `a` would be the victim;
        // half-priority insertion makes the prefetched `b` the victim.
        let out = c.fill(x, InsertPriority::Mru, false);
        assert_eq!(out.evicted, Some(b));
        assert!(out.evicted_untouched_prefetch);
    }

    #[test]
    fn demand_access_clears_prefetch_flag() {
        let mut c = tiny();
        let l = Line::new(4);
        c.fill(l, InsertPriority::Half, true);
        assert!(c.is_untouched_prefetch(l));
        assert!(c.access(l));
        assert!(!c.is_untouched_prefetch(l));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        let l = Line::new(0);
        c.fill(l, InsertPriority::Mru, false);
        c.fill(l, InsertPriority::Mru, false);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        let l = Line::new(3);
        c.fill(l, InsertPriority::Mru, false);
        assert!(c.invalidate(l));
        assert!(!c.contains(l));
        assert!(!c.invalidate(l));
    }

    #[test]
    fn occupancy_caps_at_ways() {
        let mut c = tiny();
        for l in [0u64, 4, 8, 12, 16, 20] {
            c.fill(Line::new(l), InsertPriority::Mru, false);
        }
        // All map to set 0 -> at most 2 resident.
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn lru_insert_priority_is_next_victim() {
        let mut c = tiny();
        let [a, b, x] = set0_lines();
        c.fill(a, InsertPriority::Mru, false);
        c.fill(b, InsertPriority::Lru, false);
        let out = c.fill(x, InsertPriority::Mru, false);
        assert_eq!(out.evicted, Some(b));
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.fill(Line::new(1), InsertPriority::Mru, false);
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn demand_reports_and_clears_untouched_flag() {
        let mut c = tiny();
        let l = Line::new(4);
        assert_eq!(c.demand(l), None);
        c.fill(l, InsertPriority::Half, true);
        assert_eq!(c.demand(l), Some(true));
        assert_eq!(c.demand(l), Some(false), "flag cleared by the first demand");
    }

    /// Naive recency-stack model (the pre-rework `Vec<Vec<Entry>>` cache),
    /// kept as the behavioural reference the flat layout must match.
    struct RefCache {
        ways: usize,
        num_sets: u64,
        sets: Vec<Vec<(u64, bool)>>,
    }

    impl RefCache {
        fn new(p: CacheParams) -> Self {
            RefCache {
                ways: p.ways as usize,
                num_sets: p.num_sets(),
                sets: vec![Vec::new(); p.num_sets() as usize],
            }
        }

        fn set(&mut self, line: Line) -> &mut Vec<(u64, bool)> {
            let idx = (line.raw() % self.num_sets) as usize;
            &mut self.sets[idx]
        }

        fn demand(&mut self, line: Line) -> Option<bool> {
            let raw = line.raw();
            let set = self.set(line);
            let pos = set.iter().position(|e| e.0 == raw)?;
            let e = set.remove(pos);
            set.insert(0, (raw, false));
            Some(e.1)
        }

        fn fill(&mut self, line: Line, priority: InsertPriority, prefetched: bool) -> FillOutcome {
            let ways = self.ways;
            let raw = line.raw();
            let set = self.set(line);
            let existing = set.iter().position(|e| e.0 == raw).map(|pos| set.remove(pos));
            let entry = existing.unwrap_or((raw, prefetched));
            let mut outcome = FillOutcome { evicted: None, evicted_untouched_prefetch: false };
            if set.len() >= ways {
                let victim = set.pop().expect("full set has a victim");
                outcome.evicted = Some(Line::new(victim.0));
                outcome.evicted_untouched_prefetch = victim.1;
            }
            let pos = match priority {
                InsertPriority::Mru => 0,
                InsertPriority::Half => ways / 2,
                InsertPriority::Lru => set.len(),
            };
            set.insert(pos.min(set.len()), entry);
            outcome
        }

        fn invalidate(&mut self, line: Line) -> bool {
            let raw = line.raw();
            let set = self.set(line);
            if let Some(pos) = set.iter().position(|e| e.0 == raw) {
                set.remove(pos);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn flat_cache_matches_reference_model() {
        // Drive both implementations with the same pseudo-random op stream
        // (power-of-two and non-power-of-two set counts) and require
        // identical observable behaviour at every step.
        for params in [
            CacheParams { size_bytes: 8 * 64, ways: 2, line_bytes: 64 },
            CacheParams { size_bytes: 24 * 64, ways: 4, line_bytes: 64 }, // 6 sets: not pow2
            CacheParams::new(4 * 1024, 8),
        ] {
            let mut flat = Cache::new(params);
            let mut reference = RefCache::new(params);
            let mut state = 0x2545F4914F6CDD1Du64;
            for step in 0..20_000u64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let line = Line::new(state % 64);
                let prio = match state >> 8 & 3 {
                    0 => InsertPriority::Mru,
                    1 => InsertPriority::Half,
                    _ => InsertPriority::Lru,
                };
                match state >> 16 & 3 {
                    0 => assert_eq!(
                        flat.demand(line),
                        reference.demand(line),
                        "demand diverged at step {step} ({params:?})"
                    ),
                    1 => assert_eq!(
                        flat.fill(line, prio, state >> 24 & 1 == 1),
                        reference.fill(line, prio, state >> 24 & 1 == 1),
                        "fill diverged at step {step} ({params:?})"
                    ),
                    2 => assert_eq!(flat.invalidate(line), reference.invalidate(line)),
                    _ => {
                        assert_eq!(
                            flat.contains(line),
                            reference.set(line).iter().any(|e| e.0 == line.raw())
                        );
                        assert_eq!(
                            flat.is_untouched_prefetch(line),
                            reference.set(line).iter().any(|e| e.0 == line.raw() && e.1)
                        );
                    }
                }
            }
        }
    }
}
