//! Trace-driven microarchitectural simulator — the reproduction's stand-in
//! for the modified ZSim the paper evaluates with (§V).
//!
//! The simulator replays a recorded block [`Trace`](ispy_trace::Trace)
//! through the Table-I memory hierarchy, models front-end stalls caused by
//! L1 I-cache misses, executes injected code-prefetch instructions
//! (including the conditional/coalesced semantics backed by a simulated LBR
//! plus counting Bloom filter), and reports the metrics the paper's
//! evaluation section is built from: cycles, MPKI, prefetch accuracy, and
//! dynamic instruction overhead.
//!
//! # Examples
//!
//! ```
//! use ispy_sim::{run, RunOptions, SimConfig};
//! use ispy_trace::apps;
//!
//! let model = apps::finagle_http().scaled_down(20);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 20_000);
//!
//! let base = run(&program, &trace, &SimConfig::default(), RunOptions::default());
//! let ideal = run(&program, &trace, &SimConfig::ideal(), RunOptions::default());
//! assert!(ideal.cycles <= base.cycles); // an ideal I-cache never slows you down
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod fxhash;
pub mod hierarchy;
pub mod lbr;
pub mod metrics;
pub mod outcome;
pub mod replay;
pub mod shard;

pub use cache::{Cache, CacheParams, InsertPriority};
pub use config::{Latencies, SimConfig};
pub use engine::{run, run_streaming, HwPrefetcher, NoopObserver, RunOptions, SimObserver};
pub use fxhash::{FxBuildHasher, FxHashMap};
pub use hierarchy::{Hierarchy, ResidencyLevel};
pub use lbr::{BloomSig, CountingBloom, Lbr};
pub use metrics::SimResult;
pub use outcome::{InjectionOutcome, OutcomeLedger};
pub use replay::{replay_bytes, replay_file, replay_file_streaming, replay_stream, ReplayOutcome};
pub use shard::{
    simulate_sharded, simulate_sharded_source, GenWindows, ShardConfig, SliceWindows,
    WindowedBlockSource,
};
