//! Simulation configuration (the paper's Table I system).

use crate::cache::{CacheParams, InsertPriority};
use ispy_isa::HashConfig;

/// Access latencies in cycles (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Latencies {
    /// L1 instruction cache hit latency.
    pub l1i: u32,
    /// L1 data cache hit latency.
    pub l1d: u32,
    /// L2 unified cache latency.
    pub l2: u32,
    /// L3 unified cache latency.
    pub l3: u32,
    /// Memory latency.
    pub mem: u32,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies { l1i: 3, l1d: 4, l2: 12, l3: 36, mem: 260 }
    }
}

/// Full simulator configuration.
///
/// Defaults reproduce the paper's simulated system (Table I): 32 KiB 8-way
/// L1I/L1D, 1 MiB 16-way L2, 10 MiB 20-way L3, 2.5 GHz all-core turbo (only
/// latency ratios matter here), a 4-wide core, a 32-entry LBR, and a 16-bit
/// context hash backed by two hash functions.
///
/// # Examples
///
/// ```
/// use ispy_sim::SimConfig;
///
/// let cfg = SimConfig::default();
/// assert_eq!(cfg.l1i.num_lines(), 512);
/// assert!(!cfg.ideal_icache);
/// assert!(SimConfig::ideal().ideal_icache);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheParams,
    /// L1 data cache geometry.
    pub l1d: CacheParams,
    /// Unified L2 geometry.
    pub l2: CacheParams,
    /// Unified (per-socket share) L3 geometry.
    pub l3: CacheParams,
    /// Access latencies.
    pub lat: Latencies,
    /// Superscalar issue width.
    pub issue_width: u32,
    /// When set, every instruction fetch hits — the paper's "ideal cache"
    /// upper bound.
    pub ideal_icache: bool,
    /// Context-hash scheme shared by hardware and planner.
    pub hash: HashConfig,
    /// LBR depth (32 on x86-64).
    pub lbr_depth: usize,
    /// Insertion priority for prefetched lines (§III-B: half priority).
    pub prefetch_insert: InsertPriority,
    /// Fraction of a data-miss latency that shows up as backend stall (the
    /// OoO core hides the rest).
    pub d_stall_factor: f64,
    /// Fraction of data accesses that stream through the working set rather
    /// than reusing a block-affine location.
    pub d_stream_frac: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            l1i: CacheParams::new(32 * 1024, 8),
            l1d: CacheParams::new(32 * 1024, 8),
            l2: CacheParams::new(1024 * 1024, 16),
            l3: CacheParams::new(10 * 1024 * 1024, 20),
            lat: Latencies::default(),
            issue_width: 4,
            ideal_icache: false,
            hash: HashConfig::default(),
            lbr_depth: 32,
            prefetch_insert: InsertPriority::Half,
            d_stall_factor: 0.3,
            d_stream_frac: 0.25,
        }
    }
}

impl SimConfig {
    /// The ideal-cache configuration (no I-cache misses), used as the upper
    /// bound in Figs. 3, 10, 16–19.
    pub fn ideal() -> Self {
        SimConfig { ideal_icache: true, ..SimConfig::default() }
    }

    /// Returns this configuration with a different context-hash scheme
    /// (Fig. 21 sweeps hash width).
    #[must_use]
    pub fn with_hash(mut self, hash: HashConfig) -> Self {
        self.hash = hash;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l1i.ways, 8);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l3.size_bytes, 10 * 1024 * 1024);
        assert_eq!(c.l3.ways, 20);
        assert_eq!(c.lat.l1i, 3);
        assert_eq!(c.lat.l1d, 4);
        assert_eq!(c.lat.l2, 12);
        assert_eq!(c.lat.l3, 36);
        assert_eq!(c.lat.mem, 260);
        assert_eq!(c.lbr_depth, 32);
        assert_eq!(c.hash.bits(), 16);
    }

    #[test]
    fn ideal_flag() {
        assert!(SimConfig::ideal().ideal_icache);
        assert!(!SimConfig::default().ideal_icache);
    }

    #[test]
    fn with_hash_overrides() {
        let c = SimConfig::default().with_hash(HashConfig::new(32, 2));
        assert_eq!(c.hash.bits(), 32);
    }
}
