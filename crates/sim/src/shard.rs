//! Deterministic intra-trace parallel replay.
//!
//! [`run`](crate::run) is inherently sequential: every block's outcome
//! depends on the microarchitectural state left by every block before it.
//! [`simulate_sharded`] trades that strict dependency for parallelism the
//! standard way simulators do (time-sliced sampling with functional warmup):
//! the trace is cut into fixed-size windows, each window is replayed by an
//! independent engine that first replays the `warmup_blocks` immediately
//! preceding the window to reconstruct warm cache/LBR/in-flight state, the
//! warmup's counters are subtracted back out via snapshot-and-delta, and the
//! per-window deltas are summed in window order.
//!
//! Two properties are load-bearing:
//!
//! 1. **Shard-count invariance.** A window's result depends only on the
//!    trace slice it replays — never on which worker ran it or how many
//!    workers exist — and the stitch-up sums deltas in window index order.
//!    The output is therefore byte-identical for *any* `shards` value
//!    (the `parallel_determinism` suite sweeps 1/2/4/8).
//! 2. **Exactness at one window.** When `window_blocks` covers the whole
//!    trace there is a single window with no warmup, and the result equals
//!    [`run`](crate::run) exactly. Warmup only approximates the sequential
//!    machine state for *later* windows; longer warmups converge toward the
//!    sequential result at the cost of more replayed blocks.
//!
//! This is an opt-in layer: nothing in [`run`](crate::run) changes, and the
//! defaults here are tuned for the bundled app models (64k-block windows,
//! 8k-block warmup).

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::metrics::SimResult;
use crate::outcome::OutcomeLedger;
use ispy_isa::{CompiledInjections, InjectionMap};
use ispy_trace::{Program, Trace};

/// Shape of a sharded replay: how the trace is sliced and how many workers
/// replay slices concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Blocks per window (each window is one unit of parallel work).
    pub window_blocks: usize,
    /// Blocks replayed before each window (uncounted) to reconstruct warm
    /// microarchitectural state. The first window never needs warmup.
    pub warmup_blocks: usize,
    /// Worker threads; `0` means the process-wide
    /// [`ispy_parallel::threads`] budget.
    pub shards: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { window_blocks: 65_536, warmup_blocks: 8_192, shards: 0 }
    }
}

impl ShardConfig {
    /// The worker count this configuration resolves to.
    pub fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            ispy_parallel::threads()
        } else {
            self.shards
        }
    }
}

/// Replays `trace` in parallel time slices and returns the stitched-up
/// counters; see the [module docs](self) for the windowing semantics.
///
/// `outcomes` works like [`RunOptions::outcomes`](crate::RunOptions): each
/// window attributes its events to a private ledger and the per-window
/// deltas are merged into the caller's. Observers and hardware prefetchers
/// are not supported here — both assume they see the whole sequential
/// stream.
///
/// # Panics
///
/// Panics if `window_blocks` is zero or the trace references blocks outside
/// `program`.
///
/// # Examples
///
/// ```
/// use ispy_sim::{run, simulate_sharded, RunOptions, ShardConfig, SimConfig};
/// use ispy_trace::apps;
///
/// let model = apps::tomcat().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 5_000);
/// let cfg = SimConfig::default();
/// // One window covering the whole trace reproduces `run` exactly.
/// let whole = ShardConfig { window_blocks: 5_000, warmup_blocks: 0, shards: 2 };
/// let sharded = simulate_sharded(&program, &trace, &cfg, None, &whole, None);
/// assert_eq!(sharded, run(&program, &trace, &cfg, RunOptions::default()));
/// ```
pub fn simulate_sharded(
    program: &Program,
    trace: &Trace,
    cfg: &SimConfig,
    injections: Option<&InjectionMap>,
    shard: &ShardConfig,
    outcomes: Option<&mut OutcomeLedger>,
) -> SimResult {
    assert!(shard.window_blocks > 0, "window_blocks must be positive");
    let compiled = match injections {
        Some(map) if !map.is_empty() => map.compile(program.num_blocks()),
        _ => CompiledInjections::default(),
    };
    let blocks = trace.blocks();
    let n = blocks.len();
    let windows = n.div_ceil(shard.window_blocks).max(1);
    let want_ledger = outcomes.is_some();
    let ledger_cap = outcomes.as_ref().map_or(0, |l| l.per_injection.len());

    let deltas = ispy_parallel::par_collect_bounded(shard.resolved_shards(), windows, |w| {
        let start = w * shard.window_blocks;
        let end = (start + shard.window_blocks).min(n);
        let warm_start = start.saturating_sub(shard.warmup_blocks);
        let mut local = want_ledger.then(|| OutcomeLedger::with_capacity(ledger_cap));
        let mut eng = Engine::new(program, cfg, &compiled, None, None, local.as_mut(), false);
        eng.replay(&blocks[warm_start..start], warm_start);
        let res_before = eng.result_so_far();
        let led_before = eng.ledger_snapshot();
        eng.replay(&blocks[start..end], start);
        let res_after = eng.result_so_far();
        let led_after = eng.ledger_snapshot();
        let led_delta = match (led_after, led_before) {
            (Some(after), Some(before)) => Some(after.delta_since(&before)),
            _ => None,
        };
        (res_after.delta_since(&res_before), led_delta)
    });

    let mut total = SimResult::default();
    let mut ledger_out = outcomes;
    for (res, led) in &deltas {
        total.accumulate(res);
        if let (Some(out), Some(led)) = (ledger_out.as_deref_mut(), led.as_ref()) {
            out.merge_add(led);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, RunOptions};
    use ispy_isa::{InjectionMap, PrefetchOp};
    use ispy_trace::{apps, Line};

    fn workload() -> (Program, Trace, InjectionMap) {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 20_000);
        let mut map = InjectionMap::new();
        for (i, b) in program.blocks().iter().enumerate().step_by(3) {
            map.push(
                ispy_trace::BlockId(i as u32),
                PrefetchOp::Plain { target: Line::new(b.first_line().raw() + 1) },
            );
        }
        (program, trace, map)
    }

    #[test]
    fn whole_trace_window_matches_run_exactly() {
        let (p, t, map) = workload();
        let cfg = SimConfig::default();
        let direct = run(&p, &t, &cfg, RunOptions { injections: Some(&map), ..Default::default() });
        let shard = ShardConfig { window_blocks: t.blocks().len(), warmup_blocks: 0, shards: 4 };
        let sharded = simulate_sharded(&p, &t, &cfg, Some(&map), &shard, None);
        assert_eq!(sharded, direct);
    }

    #[test]
    fn shard_count_does_not_change_the_result() {
        let (p, t, map) = workload();
        let cfg = SimConfig::default();
        let base = ShardConfig { window_blocks: 4_096, warmup_blocks: 1_024, shards: 1 };
        let mut led_ref = OutcomeLedger::default();
        let reference = simulate_sharded(&p, &t, &cfg, Some(&map), &base, Some(&mut led_ref));
        for shards in [2, 3, 8] {
            let mut led = OutcomeLedger::default();
            let got = simulate_sharded(
                &p,
                &t,
                &cfg,
                Some(&map),
                &ShardConfig { shards, ..base },
                Some(&mut led),
            );
            assert_eq!(got, reference, "shards={shards}");
            assert_eq!(led, led_ref, "ledger diverged at shards={shards}");
        }
    }

    #[test]
    fn windowing_approximates_the_sequential_run() {
        let (p, t, map) = workload();
        let cfg = SimConfig::default();
        let direct = run(&p, &t, &cfg, RunOptions { injections: Some(&map), ..Default::default() });
        let shard = ShardConfig { window_blocks: 8_192, warmup_blocks: 8_192, shards: 0 };
        let sharded = simulate_sharded(&p, &t, &cfg, Some(&map), &shard, None);
        // Block/instruction counts are exact by construction; timing-derived
        // counters drift only as far as cold-start error at window seams
        // (measured ~1.6% here; shrinking warmup to 2k raises it past 19%).
        assert_eq!(sharded.blocks, direct.blocks);
        assert_eq!(sharded.instrs, direct.instrs);
        assert_eq!(sharded.d_accesses, direct.d_accesses);
        let drift = (sharded.cycles as f64 - direct.cycles as f64).abs() / direct.cycles as f64;
        assert!(drift < 0.05, "cycle drift {drift:.4} exceeds 5%");
    }

    #[test]
    #[should_panic(expected = "window_blocks must be positive")]
    fn zero_window_panics() {
        let (p, t, _) = workload();
        let shard = ShardConfig { window_blocks: 0, warmup_blocks: 0, shards: 1 };
        let _ = simulate_sharded(&p, &t, &SimConfig::default(), None, &shard, None);
    }

    #[test]
    fn empty_trace_is_defaultish() {
        let model = apps::tomcat().scaled_down(40);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 0);
        let r = simulate_sharded(
            &program,
            &trace,
            &SimConfig::default(),
            None,
            &ShardConfig::default(),
            None,
        );
        assert_eq!(r.blocks, 0);
        assert_eq!(r.cycles, 0);
    }
}
