//! Deterministic intra-trace parallel replay.
//!
//! [`run`](crate::run) is inherently sequential: every block's outcome
//! depends on the microarchitectural state left by every block before it.
//! [`simulate_sharded`] trades that strict dependency for parallelism the
//! standard way simulators do (time-sliced sampling with functional warmup):
//! the trace is cut into fixed-size windows, each window is replayed by an
//! independent engine that first replays the `warmup_blocks` immediately
//! preceding the window to reconstruct warm cache/LBR/in-flight state, the
//! warmup's counters are subtracted back out via snapshot-and-delta, and the
//! per-window deltas are summed in window order.
//!
//! Two properties are load-bearing:
//!
//! 1. **Shard-count invariance.** A window's result depends only on the
//!    trace slice it replays — never on which worker ran it or how many
//!    workers exist — and the stitch-up sums deltas in window index order.
//!    The output is therefore byte-identical for *any* `shards` value
//!    (the `parallel_determinism` suite sweeps 1/2/4/8).
//! 2. **Exactness at one window.** When `window_blocks` covers the whole
//!    trace there is a single window with no warmup, and the result equals
//!    [`run`](crate::run) exactly. Warmup only approximates the sequential
//!    machine state for *later* windows; longer warmups converge toward the
//!    sequential result at the cost of more replayed blocks.
//!
//! This is an opt-in layer: nothing in [`run`](crate::run) changes, and the
//! defaults here are tuned for the bundled app models (64k-block windows,
//! 8k-block warmup).

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::metrics::SimResult;
use crate::outcome::OutcomeLedger;
use ispy_artifact::ArtifactError;
use ispy_isa::{CompiledInjections, InjectionMap};
use ispy_trace::{BlockId, BlockSource, Program, Trace, TraceBlocks, Walker, WalkerSource};

/// Shape of a sharded replay: how the trace is sliced and how many workers
/// replay slices concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Blocks per window (each window is one unit of parallel work).
    pub window_blocks: usize,
    /// Blocks replayed before each window (uncounted) to reconstruct warm
    /// microarchitectural state. The first window never needs warmup.
    pub warmup_blocks: usize,
    /// Worker threads; `0` means the process-wide
    /// [`ispy_parallel::threads`] budget.
    pub shards: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { window_blocks: 65_536, warmup_blocks: 8_192, shards: 0 }
    }
}

impl ShardConfig {
    /// The worker count this configuration resolves to.
    pub fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            ispy_parallel::threads()
        } else {
            self.shards
        }
    }
}

/// A trace that can hand out independent [`BlockSource`]s over arbitrary
/// `[start, start + len)` event ranges, concurrently.
///
/// This is what sharded replay actually requires of its input — not a
/// materialized `&[BlockId]`, just the ability to (re)produce any window of
/// the event sequence on demand. Two implementations cover both ends of the
/// memory spectrum:
///
/// * [`SliceWindows`] borrows windows out of an in-RAM slice (zero copy;
///   exactly the old slicing behaviour), and
/// * [`GenWindows`] *re-generates* windows from periodic [`Walker`]
///   checkpoints, so a billion-block synthetic trace shards without ever
///   existing in memory.
///
/// Implementors must be deterministic: every `open_window(s, l)` call yields
/// the same block sequence, and that sequence equals the corresponding range
/// of the full trace.
pub trait WindowedBlockSource: Sync {
    /// The per-window stream type. Generic over `'a` so slice-backed
    /// implementations can borrow from `self`.
    type Window<'a>: BlockSource
    where
        Self: 'a;

    /// Opens a fresh stream over events `start .. min(start + len, total)`.
    /// Callable from multiple threads at once.
    fn open_window(&self, start: u64, len: u64) -> Self::Window<'_>;

    /// Total events in the trace this source represents.
    fn total_events(&self) -> u64;
}

/// [`WindowedBlockSource`] over a materialized block slice: windows are
/// plain subslice borrows, so sharding over it is byte-for-byte the old
/// slice-indexing code path.
#[derive(Debug, Clone, Copy)]
pub struct SliceWindows<'t> {
    blocks: &'t [BlockId],
}

impl<'t> SliceWindows<'t> {
    /// Windows over `blocks`.
    pub fn new(blocks: &'t [BlockId]) -> Self {
        SliceWindows { blocks }
    }

    /// Windows over a [`Trace`]'s events.
    pub fn of_trace(trace: &'t Trace) -> Self {
        Self::new(trace.blocks())
    }
}

impl WindowedBlockSource for SliceWindows<'_> {
    type Window<'a>
        = TraceBlocks<'a>
    where
        Self: 'a;

    fn open_window(&self, start: u64, len: u64) -> TraceBlocks<'_> {
        let n = self.blocks.len();
        let s = (start.min(n as u64)) as usize;
        let e = ((start + len).min(n as u64)) as usize;
        TraceBlocks::new(&self.blocks[s..e])
    }

    fn total_events(&self) -> u64 {
        self.blocks.len() as u64
    }
}

/// [`WindowedBlockSource`] that re-generates windows from a deterministic
/// [`Walker`] instead of storing the trace.
///
/// Construction does one sequential *generation* pass (no simulation) over
/// the first `events` blocks, keeping a cloned walker checkpoint every
/// `stride` events. `open_window` then clones the nearest checkpoint at or
/// before the window start and fast-forwards the remainder — at most
/// `stride - 1` generator steps — so workers can open windows concurrently
/// with bounded redo work and O(`events / stride`) resident state.
///
/// # Examples
///
/// ```
/// use ispy_sim::shard::{GenWindows, WindowedBlockSource};
/// use ispy_trace::{BlockSource, Walker, apps};
///
/// let model = apps::tomcat().scaled_down(40);
/// let program = model.generate();
/// let reference = program.record_trace(model.default_input(), 3_000);
/// let windows = GenWindows::new(Walker::new(&program, model.default_input()), 3_000, 1_024);
/// let mut got = Vec::new();
/// let mut w = windows.open_window(1_500, 700);
/// while let Some(chunk) = w.next_chunk().unwrap() {
///     got.extend_from_slice(chunk);
/// }
/// assert_eq!(got, &reference.blocks()[1_500..2_200]);
/// ```
#[derive(Debug, Clone)]
pub struct GenWindows<'p> {
    /// `checkpoints[i]` is the walker state exactly `i * stride` events in.
    checkpoints: Vec<Walker<'p>>,
    stride: u64,
    events: u64,
}

impl<'p> GenWindows<'p> {
    /// Checkpoints `walker` every `stride` events across the first `events`
    /// blocks it yields.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(walker: Walker<'p>, events: u64, stride: u64) -> Self {
        assert!(stride > 0, "checkpoint stride must be positive");
        let mut checkpoints = vec![walker.clone()];
        let mut walker = walker;
        let mut pos = 0u64;
        while pos + stride < events {
            for _ in 0..stride {
                walker.next();
            }
            pos += stride;
            checkpoints.push(walker.clone());
        }
        GenWindows { checkpoints, stride, events }
    }

    /// Checkpoints aligned to a shard configuration's window starts, so
    /// window bodies fast-forward zero events (only warmup prefixes redo
    /// up to `warmup_blocks` generator steps).
    pub fn for_shards(walker: Walker<'p>, events: u64, shard: &ShardConfig) -> Self {
        Self::new(walker, events, shard.window_blocks.max(1) as u64)
    }
}

impl<'p> WindowedBlockSource for GenWindows<'p> {
    type Window<'a>
        = WalkerSource<'p>
    where
        Self: 'a;

    fn open_window(&self, start: u64, len: u64) -> WalkerSource<'p> {
        let start = start.min(self.events);
        let end = (start + len).min(self.events);
        let ck = ((start / self.stride) as usize).min(self.checkpoints.len() - 1);
        let mut walker = self.checkpoints[ck].clone();
        for _ in (ck as u64 * self.stride)..start {
            walker.next();
        }
        WalkerSource::new(walker, end - start)
    }

    fn total_events(&self) -> u64 {
        self.events
    }
}

/// Feeds every chunk of `source` through `eng` with absolute trace indices.
fn replay_source<S: BlockSource>(
    eng: &mut Engine<'_, '_>,
    mut source: S,
    mut idx0: usize,
) -> Result<(), ArtifactError> {
    while let Some(chunk) = source.next_chunk()? {
        eng.replay(chunk, idx0);
        idx0 += chunk.len();
    }
    Ok(())
}

/// Replays `trace` in parallel time slices and returns the stitched-up
/// counters; see the [module docs](self) for the windowing semantics.
///
/// `outcomes` works like [`RunOptions::outcomes`](crate::RunOptions): each
/// window attributes its events to a private ledger and the per-window
/// deltas are merged into the caller's. Observers and hardware prefetchers
/// are not supported here — both assume they see the whole sequential
/// stream.
///
/// # Panics
///
/// Panics if `window_blocks` is zero or the trace references blocks outside
/// `program`.
///
/// # Examples
///
/// ```
/// use ispy_sim::{run, simulate_sharded, RunOptions, ShardConfig, SimConfig};
/// use ispy_trace::apps;
///
/// let model = apps::tomcat().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 5_000);
/// let cfg = SimConfig::default();
/// // One window covering the whole trace reproduces `run` exactly.
/// let whole = ShardConfig { window_blocks: 5_000, warmup_blocks: 0, shards: 2 };
/// let sharded = simulate_sharded(&program, &trace, &cfg, None, &whole, None);
/// assert_eq!(sharded, run(&program, &trace, &cfg, RunOptions::default()));
/// ```
pub fn simulate_sharded(
    program: &Program,
    trace: &Trace,
    cfg: &SimConfig,
    injections: Option<&InjectionMap>,
    shard: &ShardConfig,
    outcomes: Option<&mut OutcomeLedger>,
) -> SimResult {
    simulate_sharded_source(
        program,
        &SliceWindows::of_trace(trace),
        cfg,
        injections,
        shard,
        outcomes,
    )
    .expect("slice-backed windows cannot fail")
}

/// Replays any [`WindowedBlockSource`] in parallel time slices — the
/// source-generic core of [`simulate_sharded`], and the entry point that
/// shards traces too large to materialize (pass a [`GenWindows`]).
///
/// Windows are carved by event index exactly as in [`simulate_sharded`]; a
/// slice-backed source reproduces its results byte-for-byte, and a
/// generator-backed source over the same event sequence does too (pinned by
/// the `streaming` suite).
///
/// # Errors
///
/// Propagates the first [`ArtifactError`] any window's stream raises (in
/// window order). In-memory and generator sources never fail.
///
/// # Panics
///
/// Panics if `window_blocks` is zero or the source yields blocks outside
/// `program`.
pub fn simulate_sharded_source<W: WindowedBlockSource>(
    program: &Program,
    source: &W,
    cfg: &SimConfig,
    injections: Option<&InjectionMap>,
    shard: &ShardConfig,
    outcomes: Option<&mut OutcomeLedger>,
) -> Result<SimResult, ArtifactError> {
    assert!(shard.window_blocks > 0, "window_blocks must be positive");
    let compiled = match injections {
        Some(map) if !map.is_empty() => map.compile(program.num_blocks()),
        _ => CompiledInjections::default(),
    };
    let n = source.total_events();
    let window = shard.window_blocks as u64;
    let windows = (n.div_ceil(window).max(1)) as usize;
    let want_ledger = outcomes.is_some();
    let ledger_cap = outcomes.as_ref().map_or(0, |l| l.per_injection.len());

    let deltas = ispy_parallel::par_collect_bounded(shard.resolved_shards(), windows, |w| {
        let start = w as u64 * window;
        let end = (start + window).min(n);
        let warm_start = start.saturating_sub(shard.warmup_blocks as u64);
        let mut local = want_ledger.then(|| OutcomeLedger::with_capacity(ledger_cap));
        let mut eng = Engine::new(program, cfg, &compiled, None, None, local.as_mut(), false);
        replay_source(
            &mut eng,
            source.open_window(warm_start, start - warm_start),
            warm_start as usize,
        )?;
        let res_before = eng.result_so_far();
        let led_before = eng.ledger_snapshot();
        replay_source(&mut eng, source.open_window(start, end - start), start as usize)?;
        let res_after = eng.result_so_far();
        let led_after = eng.ledger_snapshot();
        let led_delta = match (led_after, led_before) {
            (Some(after), Some(before)) => Some(after.delta_since(&before)),
            _ => None,
        };
        Ok((res_after.delta_since(&res_before), led_delta))
    });

    let mut total = SimResult::default();
    let mut ledger_out = outcomes;
    for window_result in deltas {
        let (res, led) = window_result?;
        total.accumulate(&res);
        if let (Some(out), Some(led)) = (ledger_out.as_deref_mut(), led.as_ref()) {
            out.merge_add(led);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, RunOptions};
    use ispy_isa::{InjectionMap, PrefetchOp};
    use ispy_trace::{apps, Line};

    fn workload() -> (Program, Trace, InjectionMap) {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 20_000);
        let mut map = InjectionMap::new();
        for (i, b) in program.blocks().iter().enumerate().step_by(3) {
            map.push(
                ispy_trace::BlockId(i as u32),
                PrefetchOp::Plain { target: Line::new(b.first_line().raw() + 1) },
            );
        }
        (program, trace, map)
    }

    #[test]
    fn whole_trace_window_matches_run_exactly() {
        let (p, t, map) = workload();
        let cfg = SimConfig::default();
        let direct = run(&p, &t, &cfg, RunOptions { injections: Some(&map), ..Default::default() });
        let shard = ShardConfig { window_blocks: t.blocks().len(), warmup_blocks: 0, shards: 4 };
        let sharded = simulate_sharded(&p, &t, &cfg, Some(&map), &shard, None);
        assert_eq!(sharded, direct);
    }

    #[test]
    fn shard_count_does_not_change_the_result() {
        let (p, t, map) = workload();
        let cfg = SimConfig::default();
        let base = ShardConfig { window_blocks: 4_096, warmup_blocks: 1_024, shards: 1 };
        let mut led_ref = OutcomeLedger::default();
        let reference = simulate_sharded(&p, &t, &cfg, Some(&map), &base, Some(&mut led_ref));
        for shards in [2, 3, 8] {
            let mut led = OutcomeLedger::default();
            let got = simulate_sharded(
                &p,
                &t,
                &cfg,
                Some(&map),
                &ShardConfig { shards, ..base },
                Some(&mut led),
            );
            assert_eq!(got, reference, "shards={shards}");
            assert_eq!(led, led_ref, "ledger diverged at shards={shards}");
        }
    }

    #[test]
    fn windowing_approximates_the_sequential_run() {
        let (p, t, map) = workload();
        let cfg = SimConfig::default();
        let direct = run(&p, &t, &cfg, RunOptions { injections: Some(&map), ..Default::default() });
        let shard = ShardConfig { window_blocks: 8_192, warmup_blocks: 8_192, shards: 0 };
        let sharded = simulate_sharded(&p, &t, &cfg, Some(&map), &shard, None);
        // Block/instruction counts are exact by construction; timing-derived
        // counters drift only as far as cold-start error at window seams
        // (measured ~1.6% here; shrinking warmup to 2k raises it past 19%).
        assert_eq!(sharded.blocks, direct.blocks);
        assert_eq!(sharded.instrs, direct.instrs);
        assert_eq!(sharded.d_accesses, direct.d_accesses);
        let drift = (sharded.cycles as f64 - direct.cycles as f64).abs() / direct.cycles as f64;
        assert!(drift < 0.05, "cycle drift {drift:.4} exceeds 5%");
    }

    #[test]
    fn generator_windows_match_materialized_sharding_exactly() {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let events = 20_000u64;
        let trace = program.record_trace(model.default_input(), events as usize);
        let cfg = SimConfig::default();
        let shard = ShardConfig { window_blocks: 4_096, warmup_blocks: 1_024, shards: 4 };
        let materialized = simulate_sharded(&program, &trace, &cfg, None, &shard, None);
        let gen =
            GenWindows::for_shards(Walker::new(&program, model.default_input()), events, &shard);
        let regenerated =
            simulate_sharded_source(&program, &gen, &cfg, None, &shard, None).unwrap();
        assert_eq!(regenerated, materialized);
    }

    #[test]
    fn gen_windows_misaligned_stride_still_matches() {
        // Stride deliberately coprime-ish with the window size, so every
        // open_window fast-forwards from mid-checkpoint.
        let model = apps::drupal().scaled_down(30);
        let program = model.generate();
        let events = 10_000u64;
        let trace = program.record_trace(model.default_input(), events as usize);
        let cfg = SimConfig::default();
        let shard = ShardConfig { window_blocks: 3_000, warmup_blocks: 500, shards: 2 };
        let materialized = simulate_sharded(&program, &trace, &cfg, None, &shard, None);
        let gen = GenWindows::new(Walker::new(&program, model.default_input()), events, 777);
        let regenerated =
            simulate_sharded_source(&program, &gen, &cfg, None, &shard, None).unwrap();
        assert_eq!(regenerated, materialized);
    }

    #[test]
    fn open_window_clamps_to_total_events() {
        let model = apps::tomcat().scaled_down(40);
        let program = model.generate();
        let gen = GenWindows::new(Walker::new(&program, model.default_input()), 1_000, 256);
        let mut past_end = gen.open_window(2_000, 100);
        assert_eq!(past_end.next_chunk().unwrap(), None);
        let mut tail = gen.open_window(900, 1_000);
        let mut got = 0usize;
        while let Some(chunk) = tail.next_chunk().unwrap() {
            got += chunk.len();
        }
        assert_eq!(got, 100);
    }

    #[test]
    #[should_panic(expected = "window_blocks must be positive")]
    fn zero_window_panics() {
        let (p, t, _) = workload();
        let shard = ShardConfig { window_blocks: 0, warmup_blocks: 0, shards: 1 };
        let _ = simulate_sharded(&p, &t, &SimConfig::default(), None, &shard, None);
    }

    #[test]
    fn empty_trace_is_defaultish() {
        let model = apps::tomcat().scaled_down(40);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 0);
        let r = simulate_sharded(
            &program,
            &trace,
            &SimConfig::default(),
            None,
            &ShardConfig::default(),
            None,
        );
        assert_eq!(r.blocks, 0);
        assert_eq!(r.cycles, 0);
    }
}
