//! Replay-from-artifact: run the simulator straight off a `.itrace` file.
//!
//! The artifact path decouples *recording* an execution from *simulating*
//! it: a trace captured once (synthetically, or ingested from a perf LBR
//! dump) can be replayed under any simulator or injection configuration
//! without re-running the workload. Because the `.itrace` codec is exact,
//! a replayed run is byte-identical to a run over the in-memory recording —
//! the property the golden tests pin.
//!
//! # Examples
//!
//! ```
//! use ispy_sim::{replay, run, RunOptions, SimConfig};
//! use ispy_trace::{apps, artifact};
//!
//! let model = apps::kafka().scaled_down(20);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 5_000);
//! let bytes = artifact::recording_to_bytes(&program, &trace);
//!
//! let live = run(&program, &trace, &SimConfig::default(), RunOptions::default());
//! let replayed =
//!     replay::replay_bytes(&bytes, &SimConfig::default(), RunOptions::default()).unwrap();
//! assert_eq!(replayed.name, "kafka");
//! assert_eq!(replayed.result, live);
//! ```

use crate::config::SimConfig;
use crate::engine::{run, run_streaming, RunOptions};
use crate::metrics::SimResult;
use ispy_artifact::ArtifactError;
use ispy_trace::artifact::{open_recording_stream, read_recording, recording_from_bytes};
use std::io::Read;
use std::path::Path;

/// What a replay produced: the identity of the recording plus the metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The recorded program's name (the app label).
    pub name: String,
    /// The recorded trace's name.
    pub trace_name: String,
    /// The simulation result, identical to a run over the live recording.
    pub result: SimResult,
}

/// Replays a serialized recording through the simulator.
///
/// # Errors
///
/// Any [`ArtifactError`] from decoding the recording.
pub fn replay_bytes(
    bytes: &[u8],
    cfg: &SimConfig,
    opts: RunOptions<'_>,
) -> Result<ReplayOutcome, ArtifactError> {
    let (program, trace) = recording_from_bytes(bytes)?;
    let result = run(&program, &trace, cfg, opts);
    Ok(ReplayOutcome {
        name: program.name().to_string(),
        trace_name: trace.name().to_string(),
        result,
    })
}

/// Replays a `.itrace` file through the simulator.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`replay_bytes`].
pub fn replay_file(
    path: &Path,
    cfg: &SimConfig,
    opts: RunOptions<'_>,
) -> Result<ReplayOutcome, ArtifactError> {
    let (program, trace) = read_recording(path)?;
    let result = run(&program, &trace, cfg, opts);
    Ok(ReplayOutcome {
        name: program.name().to_string(),
        trace_name: trace.name().to_string(),
        result,
    })
}

/// Replays a recording off a byte stream without materializing the trace:
/// the program sections decode up front, the event sections decode chunk by
/// chunk straight into [`run_streaming`]. Byte-identical to [`replay_bytes`]
/// on the same input, in bounded memory on input of any size.
///
/// # Errors
///
/// Any [`ArtifactError`] from decoding — including corruption or truncation
/// discovered mid-stream, in which case no result is returned.
pub fn replay_stream<R: Read>(
    source: R,
    cfg: &SimConfig,
    opts: RunOptions<'_>,
) -> Result<ReplayOutcome, ArtifactError> {
    let (program, mut stream) = open_recording_stream(source)?;
    let trace_name = stream.name().to_string();
    let result = run_streaming(&program, &mut stream, cfg, opts)?;
    Ok(ReplayOutcome { name: program.name().to_string(), trace_name, result })
}

/// Replays a `.itrace` file through the simulator in bounded memory; see
/// [`replay_stream`].
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`replay_stream`].
pub fn replay_file_streaming(
    path: &Path,
    cfg: &SimConfig,
    opts: RunOptions<'_>,
) -> Result<ReplayOutcome, ArtifactError> {
    let file = std::fs::File::open(path).map_err(|e| ArtifactError::io(path, e))?;
    replay_stream(std::io::BufReader::new(file), cfg, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::apps;
    use ispy_trace::artifact::{recording_to_bytes, write_recording};

    fn recording() -> (ispy_trace::Program, ispy_trace::Trace) {
        let model = apps::tomcat().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 6_000);
        (program, trace)
    }

    #[test]
    fn replay_matches_live_run_exactly() {
        let (program, trace) = recording();
        let cfg = SimConfig::default();
        let live = run(&program, &trace, &cfg, RunOptions::default());
        let out = replay_bytes(&recording_to_bytes(&program, &trace), &cfg, RunOptions::default())
            .unwrap();
        assert_eq!(out.name, program.name());
        assert_eq!(out.trace_name, trace.name());
        assert_eq!(out.result, live);
    }

    #[test]
    fn replay_from_file_round_trips() {
        let (program, trace) = recording();
        // Unique per-process dir: a fixed path collides when test binaries
        // run in parallel or two checkouts share a host.
        let dir = std::env::temp_dir().join(format!("ispy-replay-test-{}", std::process::id()));
        let path = dir.join("tomcat.itrace");
        write_recording(&program, &trace, &path).unwrap();
        let cfg = SimConfig::default();
        let out = replay_file(&path, &cfg, RunOptions::default()).unwrap();
        assert_eq!(out.result, run(&program, &trace, &cfg, RunOptions::default()));
        let streamed = replay_file_streaming(&path, &cfg, RunOptions::default()).unwrap();
        assert_eq!(streamed, out);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_replay_matches_buffered_replay_exactly() {
        let (program, trace) = recording();
        let cfg = SimConfig::default();
        let bytes = recording_to_bytes(&program, &trace);
        let buffered = replay_bytes(&bytes, &cfg, RunOptions::default()).unwrap();
        let streamed = replay_stream(bytes.as_slice(), &cfg, RunOptions::default()).unwrap();
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn truncated_stream_is_a_typed_error_not_a_partial_result() {
        let (program, trace) = recording();
        let bytes = recording_to_bytes(&program, &trace);
        let cut = &bytes[..bytes.len() - bytes.len() / 3];
        let err = replay_stream(cut, &SimConfig::default(), RunOptions::default()).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Truncated { .. } | ArtifactError::SectionChecksum { .. }),
            "unexpected error class: {err:?}"
        );
    }

    #[test]
    fn corrupt_bytes_are_a_typed_error() {
        let err = replay_bytes(
            b"definitely not an artifact container",
            &SimConfig::default(),
            RunOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ArtifactError::BadMagic);
    }
}
