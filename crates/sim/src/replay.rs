//! Replay-from-artifact: run the simulator straight off a `.itrace` file.
//!
//! The artifact path decouples *recording* an execution from *simulating*
//! it: a trace captured once (synthetically, or ingested from a perf LBR
//! dump) can be replayed under any simulator or injection configuration
//! without re-running the workload. Because the `.itrace` codec is exact,
//! a replayed run is byte-identical to a run over the in-memory recording —
//! the property the golden tests pin.
//!
//! # Examples
//!
//! ```
//! use ispy_sim::{replay, run, RunOptions, SimConfig};
//! use ispy_trace::{apps, artifact};
//!
//! let model = apps::kafka().scaled_down(20);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 5_000);
//! let bytes = artifact::recording_to_bytes(&program, &trace);
//!
//! let live = run(&program, &trace, &SimConfig::default(), RunOptions::default());
//! let replayed =
//!     replay::replay_bytes(&bytes, &SimConfig::default(), RunOptions::default()).unwrap();
//! assert_eq!(replayed.name, "kafka");
//! assert_eq!(replayed.result, live);
//! ```

use crate::config::SimConfig;
use crate::engine::{run, RunOptions};
use crate::metrics::SimResult;
use ispy_artifact::ArtifactError;
use ispy_trace::artifact::{read_recording, recording_from_bytes};
use std::path::Path;

/// What a replay produced: the identity of the recording plus the metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The recorded program's name (the app label).
    pub name: String,
    /// The recorded trace's name.
    pub trace_name: String,
    /// The simulation result, identical to a run over the live recording.
    pub result: SimResult,
}

/// Replays a serialized recording through the simulator.
///
/// # Errors
///
/// Any [`ArtifactError`] from decoding the recording.
pub fn replay_bytes(
    bytes: &[u8],
    cfg: &SimConfig,
    opts: RunOptions<'_>,
) -> Result<ReplayOutcome, ArtifactError> {
    let (program, trace) = recording_from_bytes(bytes)?;
    let result = run(&program, &trace, cfg, opts);
    Ok(ReplayOutcome {
        name: program.name().to_string(),
        trace_name: trace.name().to_string(),
        result,
    })
}

/// Replays a `.itrace` file through the simulator.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`replay_bytes`].
pub fn replay_file(
    path: &Path,
    cfg: &SimConfig,
    opts: RunOptions<'_>,
) -> Result<ReplayOutcome, ArtifactError> {
    let (program, trace) = read_recording(path)?;
    let result = run(&program, &trace, cfg, opts);
    Ok(ReplayOutcome {
        name: program.name().to_string(),
        trace_name: trace.name().to_string(),
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::apps;
    use ispy_trace::artifact::{recording_to_bytes, write_recording};

    fn recording() -> (ispy_trace::Program, ispy_trace::Trace) {
        let model = apps::tomcat().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 6_000);
        (program, trace)
    }

    #[test]
    fn replay_matches_live_run_exactly() {
        let (program, trace) = recording();
        let cfg = SimConfig::default();
        let live = run(&program, &trace, &cfg, RunOptions::default());
        let out = replay_bytes(&recording_to_bytes(&program, &trace), &cfg, RunOptions::default())
            .unwrap();
        assert_eq!(out.name, program.name());
        assert_eq!(out.trace_name, trace.name());
        assert_eq!(out.result, live);
    }

    #[test]
    fn replay_from_file_round_trips() {
        let (program, trace) = recording();
        let dir = std::env::temp_dir().join("ispy-replay-test");
        let path = dir.join("tomcat.itrace");
        write_recording(&program, &trace, &path).unwrap();
        let cfg = SimConfig::default();
        let out = replay_file(&path, &cfg, RunOptions::default()).unwrap();
        assert_eq!(out.result, run(&program, &trace, &cfg, RunOptions::default()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_bytes_are_a_typed_error() {
        let err = replay_bytes(
            b"definitely not an artifact container",
            &SimConfig::default(),
            RunOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ArtifactError::BadMagic);
    }
}
