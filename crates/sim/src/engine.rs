//! The trace-replay engine: executes a block trace against the hierarchy,
//! running injected prefetch instructions with their conditional/coalesced
//! semantics, and charges cycles.
//!
//! ## Timing model
//!
//! Per block event:
//!
//! 1. The block's entry is pushed into the LBR (updating the Bloom filter).
//! 2. Injected prefetch ops at the block execute: each costs one issued
//!    instruction; conditional ops check the Bloom runtime hash; firing ops
//!    issue line requests that complete after the line's current residency
//!    latency, then fill L1I at the configured (half) priority.
//! 3. Each I-line the block spans is fetched: L1I hit = no stall; miss
//!    stalls for `lat(level) − lat(L1I)`; a line still in flight from a
//!    prefetch stalls only for the remaining time (late prefetch).
//! 4. Data accesses run against L1D/L2/L3 with a fractional stall charge
//!    (the OoO backend hides most data latency).
//! 5. Issue bandwidth: `ceil(instrs / width)` cycles.
//!
//! Absolute cycle counts are a simplification of the authors' ZSim setup;
//! the harness only interprets *relative* results (speedups, fractions of
//! ideal), which is also how the paper reports its evaluation.
//!
//! ## Hot-path structure
//!
//! The loop is organised around three observations about injected replay
//! (see DESIGN.md "Engine internals"):
//!
//! * **Injection-skip index** — most blocks carry no ops, and while nothing
//!   is in flight an op-free block cannot interact with the prefetch
//!   machinery at all. The compiled plan's per-block bitmap lets the loop
//!   batch whole runs of such blocks through a lean step that skips the
//!   completion drain, the op dispatch, and the in-flight probes.
//! * **Branch-free op execution** — [`CompiledOp`](ispy_isa::CompiledOp)s
//!   carry the condition as
//!   a raw bitmask (`bits & !runtime == 0`, `0` for unconditional ops) and
//!   the target lines pre-flattened with presence-shadow word masks, so the
//!   steady-state firing (everything already resident) is two `u64`
//!   AND-compares instead of a per-line residency walk.
//! * **Arena in-flight state** — in-flight prefetches and prefetch-line
//!   owners are dense arrays indexed by line id (code lines are small and
//!   bounded), so the steady state never hashes; only lines beyond the
//!   arena limit fall back to a hash map.

use crate::config::SimConfig;
use crate::fxhash::FxHashMap;
use crate::hierarchy::Hierarchy;
use crate::lbr::{BloomSig, Lbr};
use crate::metrics::SimResult;
use crate::outcome::OutcomeLedger;
use ispy_artifact::ArtifactError;
use ispy_isa::{CompiledInjections, InjectionMap, ProvenanceId};
use ispy_trace::{Addr, BlockId, BlockSource, Line, Program, Trace};

/// Data lines live in a disjoint address range from code lines.
const DATA_LINE_BASE: u64 = 1 << 40;

/// Callbacks the engine raises during replay; used by the profiler.
pub trait SimObserver {
    /// A block is about to execute at `cycle` (trace position `idx`).
    fn block_entered(&mut self, idx: usize, block: BlockId, cycle: u64) {
        let _ = (idx, block, cycle);
    }

    /// A demand instruction fetch missed L1I.
    fn icache_miss(&mut self, idx: usize, block: BlockId, line: Line, cycle: u64) {
        let _ = (idx, block, line, cycle);
    }
}

/// An observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// A hardware prefetcher hook (used by the next-line baselines).
pub trait HwPrefetcher {
    /// Called on every demand instruction fetch; push lines to prefetch into
    /// `out`.
    fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>);
}

/// Optional attachments for a run.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Injected code-prefetch instructions (the rewritten binary).
    pub injections: Option<&'a InjectionMap>,
    /// A pre-lowered injection plan (see [`InjectionMap::compile`]). When
    /// set it takes precedence over `injections`; callers replaying the same
    /// plan across many configurations (the figure sweeps) compile once and
    /// pass it here to skip the per-run lowering.
    pub compiled: Option<&'a CompiledInjections>,
    /// A hardware prefetcher observing the fetch stream.
    pub hw_prefetcher: Option<&'a mut dyn HwPrefetcher>,
    /// An observer receiving replay events.
    pub observer: Option<&'a mut dyn SimObserver>,
    /// Collects per-injection outcome counts, bucketed by the provenance ids
    /// the injection map carries.
    pub outcomes: Option<&'a mut OutcomeLedger>,
    /// Validation knob: route every block through the full per-block step
    /// and every injected op through the plain per-op loop, disabling both
    /// the injection-skip fast path and the site-group accounting fast path.
    /// Results must be bit-identical either way (the `engine_fastpath` suite
    /// asserts it); the flag exists so that equivalence is testable from
    /// outside the crate.
    pub reference_loop: bool,
}

/// Vacant-slot sentinel in the in-flight arena. A real completion cycle can
/// never reach it (it would overflow the cycle counter first).
const EMPTY_SLOT: u64 = u64::MAX;

/// Untagged sentinel in the arena's provenance column.
const NO_TAG: u32 = u32::MAX;

/// Upper bound on arena-indexed line ids (24 MiB of dense state). Generated
/// programs stay far below this; pathological hand-built plans spill to the
/// hash-map side.
const ARENA_LINE_CAP: u64 = 1 << 21;

/// Compact the completion queue once it holds at least this many entries and
/// stale ones are the majority. Small enough to bound memory on pathological
/// traces, large enough that compaction is rare in healthy ones.
const INFLIGHT_COMPACT_MIN: usize = 64;

/// In-flight prefetch bookkeeping, slab-style: lines below `limit` (all code
/// lines, in practice) live in a dense completion array indexed by line id —
/// insert, probe, and remove are array reads with no hashing — while far-out
/// lines (hand-built plans prefetching garbage addresses) spill to a hash
/// map. Each entry remembers the provenance id of the injection that issued
/// it, so completions and late demand hits can be attributed; throughput
/// runs carry no provenance, so their arenas skip the tag array entirely —
/// halving the dense footprint the hot path's scattered probes touch.
///
/// Pending completions are kept in a handful of FIFO *lanes* instead of a
/// binary heap: a completion is `cycle + latency` with latency drawn from
/// the few hierarchy levels, so per latency the completions arrive already
/// sorted. Insert picks the lane whose tail fits (patience-sorting style —
/// lane count converges to the number of distinct latencies) and drain
/// merges the lane heads, grouping ties by completion and ordering them by
/// line id — exactly the `(completion, line)` min-heap pop order, at
/// push-back/pop-front cost.
struct InflightArena {
    limit: u64,
    /// Completion cycle per line id; [`EMPTY_SLOT`] = not in flight.
    completion: Vec<u64>,
    /// Presence bitmap over the dense slots — one bit per line id, set iff
    /// the slot is occupied. The issue path's "already in flight?" probe
    /// touches this (a few KB, cache-resident) instead of the slot array
    /// (hundreds of KB, a guaranteed scattered read per probe).
    present: Vec<u64>,
    /// Provenance tag per line id ([`NO_TAG`] = untagged), parallel to
    /// `completion` — empty in untagged arenas, which never consult it.
    tags: Vec<u32>,
    /// Lines at/above `limit`.
    far: FxHashMap<u64, (u64, Option<ProvenanceId>)>,
    /// `(completion, line)` FIFOs, nondecreasing completion within each.
    lanes: Vec<std::collections::VecDeque<(u64, u64)>>,
    /// Cached minimum completion across lane heads (`u64::MAX` when no
    /// entries are queued) — the per-block "anything ready?" probe is one
    /// compare.
    next_completion: u64,
    /// Total queued lane entries, live or stale.
    entries: usize,
    /// Same-completion scratch group reused across drains.
    scratch: Vec<(u64, u64)>,
    /// Total lines currently in flight (dense + far); the loop's "anything
    /// pending?" probe is a zero test on this.
    live: usize,
    /// Lane entries whose line is no longer (or differently) in flight.
    /// Tracked so the lanes can be rebuilt before stale entries dominate:
    /// a demand-heavy run would otherwise grow them without bound.
    stale: usize,
}

impl InflightArena {
    /// `tagged` arenas (attributed runs) keep a provenance tag per dense
    /// slot; untagged ones only track completions.
    fn new(limit: u64, tagged: bool) -> Self {
        InflightArena {
            limit,
            completion: vec![EMPTY_SLOT; limit as usize],
            present: vec![0u64; (limit as usize).div_ceil(64)],
            tags: if tagged { vec![NO_TAG; limit as usize] } else { Vec::new() },
            far: FxHashMap::default(),
            lanes: Vec::new(),
            next_completion: u64::MAX,
            entries: 0,
            scratch: Vec::new(),
            live: 0,
            stale: 0,
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn insert(&mut self, line: Line, completion: u64, tag: Option<ProvenanceId>) {
        debug_assert_ne!(completion, EMPTY_SLOT);
        debug_assert!(tag.is_none_or(|t| t.0 != NO_TAG), "provenance id collides with sentinel");
        let raw = line.raw();
        let replaced = if raw < self.limit {
            debug_assert!(
                tag.is_none() || !self.tags.is_empty(),
                "tag inserted into untagged arena"
            );
            let slot = &mut self.completion[raw as usize];
            let replaced = *slot != EMPTY_SLOT;
            *slot = completion;
            self.present[(raw >> 6) as usize] |= 1 << (raw & 63);
            if !self.tags.is_empty() {
                self.tags[raw as usize] = tag.map_or(NO_TAG, |t| t.0);
            }
            replaced
        } else {
            self.far.insert(raw, (completion, tag)).is_some()
        };
        self.enqueue(completion, raw);
        if replaced {
            // The replaced entry's lane slot became stale.
            self.note_stale();
        } else {
            self.live += 1;
        }
    }

    /// Appends to the first lane whose tail does not exceed `completion`,
    /// keeping every lane's completion order; opens a new lane otherwise.
    fn enqueue(&mut self, completion: u64, raw: u64) {
        self.next_completion = self.next_completion.min(completion);
        self.entries += 1;
        for lane in &mut self.lanes {
            if lane.back().is_none_or(|&(c, _)| c <= completion) {
                lane.push_back((completion, raw));
                return;
            }
        }
        let mut lane = std::collections::VecDeque::new();
        lane.push_back((completion, raw));
        self.lanes.push(lane);
    }

    /// Whether `line` is in flight — the issue path's probe, answered from
    /// the presence bitmap without touching the slot array.
    #[inline]
    fn contains(&self, line: Line) -> bool {
        if self.live == 0 {
            return false;
        }
        let raw = line.raw();
        if raw < self.limit {
            self.present[(raw >> 6) as usize] & (1 << (raw & 63)) != 0
        } else {
            self.far.contains_key(&raw)
        }
    }

    #[inline]
    fn get(&self, line: Line) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        let raw = line.raw();
        if raw < self.limit {
            let c = self.completion[raw as usize];
            if c == EMPTY_SLOT {
                None
            } else {
                Some(c)
            }
        } else {
            self.far.get(&raw).map(|&(c, _)| c)
        }
    }

    #[inline]
    fn tag(&self, line: Line) -> Option<ProvenanceId> {
        let raw = line.raw();
        if raw < self.limit {
            let t = if self.tags.is_empty() { NO_TAG } else { self.tags[raw as usize] };
            if t == NO_TAG {
                None
            } else {
                Some(ProvenanceId(t))
            }
        } else {
            self.far.get(&raw).and_then(|&(_, tag)| tag)
        }
    }

    /// Forgets an in-flight line (demanded before completion). The lane
    /// entry becomes stale and is skipped when drained.
    fn remove(&mut self, line: Line) {
        let raw = line.raw();
        let removed = if raw < self.limit {
            let slot = &mut self.completion[raw as usize];
            let removed = *slot != EMPTY_SLOT;
            *slot = EMPTY_SLOT;
            self.present[(raw >> 6) as usize] &= !(1 << (raw & 63));
            if !self.tags.is_empty() {
                self.tags[raw as usize] = NO_TAG;
            }
            removed
        } else {
            self.far.remove(&raw).is_some()
        };
        if removed {
            self.live -= 1;
            self.note_stale();
        }
    }

    fn note_stale(&mut self) {
        self.stale += 1;
        if self.entries >= INFLIGHT_COMPACT_MIN && self.stale * 2 > self.entries {
            self.compact();
        }
    }

    /// What's in flight for `raw`, if anything (compaction's liveness probe).
    fn lookup(&self, raw: u64) -> Option<u64> {
        if raw < self.limit {
            let c = self.completion[raw as usize];
            if c == EMPTY_SLOT {
                None
            } else {
                Some(c)
            }
        } else {
            self.far.get(&raw).map(|&(c, _)| c)
        }
    }

    /// Drops stale lane entries. Retaining in place preserves each lane's
    /// completion order, so drain order is unchanged. O(entries) — never
    /// scans the dense slot array.
    fn compact(&mut self) {
        let mut lanes = std::mem::take(&mut self.lanes);
        for lane in &mut lanes {
            lane.retain(|&(completion, raw)| self.lookup(raw) == Some(completion));
        }
        lanes.retain(|lane| !lane.is_empty());
        self.lanes = lanes;
        self.entries = self.lanes.iter().map(|l| l.len()).sum();
        self.stale = 0;
        self.refresh_next();
    }

    /// Recomputes the cached minimum completion from the lane heads.
    fn refresh_next(&mut self) {
        self.next_completion =
            self.lanes.iter().filter_map(|l| l.front().map(|&(c, _)| c)).min().unwrap_or(u64::MAX);
    }

    /// Pops lines whose prefetch has completed by `now`, in `(completion,
    /// line)` order.
    fn drain_completed(&mut self, now: u64, mut f: impl FnMut(Line, Option<ProvenanceId>)) {
        if self.next_completion > now {
            return;
        }
        let mut group = std::mem::take(&mut self.scratch);
        loop {
            // The earliest pending completion across lane heads.
            let c = match self.lanes.iter().filter_map(|l| l.front().map(|&(c, _)| c)).min() {
                Some(c) if c <= now => c,
                _ => break,
            };
            // Gather the whole completion-tie group (each lane's head run)
            // and order it by line id — the heap's pop order for ties.
            group.clear();
            for lane in &mut self.lanes {
                while lane.front().is_some_and(|&(comp, _)| comp == c) {
                    group.push(lane.pop_front().expect("head just probed"));
                }
            }
            self.entries -= group.len();
            group.sort_unstable();
            for &(completion, raw) in &group {
                // Skip stale entries (line demanded or re-issued meanwhile).
                let fired = if raw < self.limit {
                    let slot = &mut self.completion[raw as usize];
                    if *slot == completion {
                        *slot = EMPTY_SLOT;
                        self.present[(raw >> 6) as usize] &= !(1 << (raw & 63));
                        let t = if self.tags.is_empty() {
                            NO_TAG
                        } else {
                            std::mem::replace(&mut self.tags[raw as usize], NO_TAG)
                        };
                        self.live -= 1;
                        Some(if t == NO_TAG { None } else { Some(ProvenanceId(t)) })
                    } else {
                        None
                    }
                } else {
                    match self.far.get(&raw) {
                        Some(&(stored, tag)) if stored == completion => {
                            self.far.remove(&raw);
                            self.live -= 1;
                            Some(tag)
                        }
                        _ => None,
                    }
                };
                match fired {
                    Some(tag) => f(Line::new(raw), tag),
                    None => self.stale = self.stale.saturating_sub(1),
                }
            }
        }
        self.scratch = group;
        self.refresh_next();
    }
}

/// Owner map from filled-but-untouched prefetch lines to the injection that
/// fetched them, arena-indexed like [`InflightArena`]. Stays empty (and
/// zero-sized) when no ledger is attached.
struct OwnerArena {
    limit: u64,
    dense: Vec<u32>,
    far: FxHashMap<u64, ProvenanceId>,
    live: usize,
}

impl OwnerArena {
    fn new(limit: u64) -> Self {
        OwnerArena {
            limit,
            dense: vec![NO_TAG; limit as usize],
            far: FxHashMap::default(),
            live: 0,
        }
    }

    fn insert(&mut self, line: Line, id: ProvenanceId) {
        debug_assert_ne!(id.0, NO_TAG, "provenance id collides with sentinel");
        let raw = line.raw();
        let replaced = if raw < self.limit {
            std::mem::replace(&mut self.dense[raw as usize], id.0) != NO_TAG
        } else {
            self.far.insert(raw, id).is_some()
        };
        if !replaced {
            self.live += 1;
        }
    }

    fn take(&mut self, line: Line) -> Option<ProvenanceId> {
        if self.live == 0 {
            return None;
        }
        let raw = line.raw();
        let owner = if raw < self.limit {
            let t = std::mem::replace(&mut self.dense[raw as usize], NO_TAG);
            if t == NO_TAG {
                None
            } else {
                Some(ProvenanceId(t))
            }
        } else {
            self.far.remove(&raw)
        };
        if owner.is_some() {
            self.live -= 1;
        }
        owner
    }
}

/// Attribution state threaded through a run: the ledger (if requested) and
/// the owner arena for filled-but-untouched prefetch lines. Both stay inert
/// when no ledger is attached.
struct Attribution<'a> {
    ledger: Option<&'a mut OutcomeLedger>,
    owner: OwnerArena,
}

impl Attribution<'_> {
    fn enabled(&self) -> bool {
        self.ledger.is_some()
    }

    /// Records one event against `id`'s bucket (no-op without a ledger).
    #[inline]
    fn note(
        &mut self,
        id: Option<ProvenanceId>,
        f: impl FnOnce(&mut crate::outcome::InjectionOutcome),
    ) {
        if let Some(ledger) = self.ledger.as_deref_mut() {
            f(ledger.outcome_mut(id));
        }
    }

    /// A prefetch of `line` issued by `tag` completed and filled L1I.
    fn filled(&mut self, line: Line, tag: Option<ProvenanceId>) {
        if self.enabled() {
            if let Some(id) = tag {
                self.owner.insert(line, id);
            }
        }
    }

    /// The untouched prefetch of `line` reached its end state (demanded or
    /// evicted); returns and forgets its owner.
    #[inline]
    fn settle(&mut self, line: Line) -> Option<ProvenanceId> {
        self.owner.take(line)
    }
}

/// `words` sentinel in [`HotOp`]: take the per-line path instead of the
/// shadow-batch compare.
const NO_BATCH: u32 = u32::MAX;

/// Run-specialized lowered op, rebuilt per engine from
/// [`CompiledOp`](ispy_isa::CompiledOp)s once the run's shadow limit is
/// known: exactly 32 bytes (two ops per cache line, half a
/// [`CompiledOp`](ispy_isa::CompiledOp)), with the batchability decision
/// pre-folded
/// into the `words` sentinel so the steady-state execution reads nothing
/// else. Line counts come back out of the masks by popcount; provenance ids
/// and flattened line lists stay in the compiled plan, which only the cold
/// paths consult.
#[derive(Clone, Copy)]
struct HotOp {
    /// Condition mask: fires iff `ctx_bits & !runtime_hash == 0`.
    ctx_bits: u64,
    /// Presence-shadow masks, index-aligned with `words`.
    masks: [u64; 2],
    /// Presence-shadow word indices, or `[NO_BATCH; 2]` when this op cannot
    /// take the batch compare under this run's shadow limit.
    words: [u32; 2],
}

fn hot_ops(injections: &CompiledInjections, shadow_limit: u64) -> Vec<HotOp> {
    injections
        .compiled_ops()
        .iter()
        .map(|cop| {
            let batch = cop.shadow_batchable && cop.max_line < shadow_limit;
            if batch {
                debug_assert_eq!(
                    u64::from(cop.shadow_masks[0].count_ones() + cop.shadow_masks[1].count_ones()),
                    cop.num_lines(),
                    "shadow masks must cover each target line exactly once"
                );
            }
            HotOp {
                ctx_bits: cop.ctx_bits,
                masks: cop.shadow_masks,
                words: if batch { cop.shadow_words } else { [NO_BATCH; 2] },
            }
        })
        .collect()
}

/// `site_groups` start sentinel in [`BlockMeta`]: the site fast check does
/// not apply at this block (not every op shadow-batchable).
const SITE_NO_FAST: u32 = u32::MAX;

/// One condition-group of a site's ops: every op at the site sharing one
/// condition mask, with their shadow cover pairs merged. Grouping matters
/// because a block's ops either all see the same runtime hash — so ops with
/// equal masks fire or suppress *together* — and without a ledger only the
/// totals are observable, letting the engine account a whole group in one
/// compare instead of walking its ops.
///
/// A site with more than one group additionally stores a *union summary* as
/// its first entry: the OR of the groups' condition masks, their combined
/// op/line totals, and their merged cover pairs. The union mask passing the
/// subset test implies every group's mask passes (each is a subset of the
/// OR), and the union cover being shadow-resident implies every group's
/// cover is, so the steady state — all groups fire, every target line
/// resident — settles the whole site in one compare without visiting the
/// per-group entries at all. A single-group site's one entry *is* its union.
#[derive(Clone, Copy)]
struct SiteGroup {
    /// The group's shared condition mask.
    ctx: u64,
    /// Op count in the group.
    n: u32,
    /// Sum of the ops' target-line counts.
    lines: u32,
    /// Range into the engine's flat merged `(word, mask)` pair store.
    pairs: (u32, u32),
    /// Range into the engine's flat per-group op-index store, so a group
    /// that does need issuing walks only its own ops. Issue order across
    /// groups then differs from op order, which is unobservable without a
    /// ledger: the hierarchy is read-only during op execution, completed
    /// prefetches drain in `(completion, line)` order regardless of
    /// insertion order, and a line targeted twice in one block issues once
    /// and counts once resident under any ordering.
    ops: (u32, u32),
}

/// Per-block facts the replay loop consults on every event, precomputed once
/// per run so the hot loop never re-derives line spans from byte addresses
/// or re-hashes block addresses into Bloom positions.
///
/// The site fast-path aggregates ride along in the same struct — the meta is
/// the one scattered per-block load the loop already pays, so folding a whole
/// site's op list into it makes the steady-state check (all ops fire, every
/// target line shadow-resident) free of further table lookups: when every op
/// at the site is batchable, the union of their condition bits passes, and
/// the union of their shadow masks is covered, the per-op loop's outcome is
/// fully determined without walking the ops.
#[derive(Clone, Copy)]
struct BlockMeta {
    start: Addr,
    first_line: u64,
    last_line: u64,
    instrs: u64,
    data_accesses: u32,
    /// The block address's Bloom signature under the run's hash config.
    sig: BloomSig,
    /// Range into the engine's flat [`SiteGroup`] store, or
    /// `(SITE_NO_FAST, _)` when the fast check is disabled at this site.
    site_groups: (u32, u32),
}

/// The flat site tables [`block_metas`] builds alongside the metas: the
/// [`SiteGroup`] store, its cover-pair pool, and its member-op pool.
type SiteTables = (Vec<BlockMeta>, Vec<SiteGroup>, Vec<(u32, u64)>, Vec<u32>);

/// Per-site scratch accumulator for one distinct ctx mask: the mask, op and
/// line counts, merged `(word, mask)` cover pairs, and member op indices.
type GroupAcc = (u64, u32, u32, Vec<(u32, u64)>, Vec<u32>);

fn block_metas(
    program: &Program,
    lbr: &Lbr,
    injections: &CompiledInjections,
    hot_ops: &[HotOp],
) -> SiteTables {
    let mut groups: Vec<SiteGroup> = Vec::new();
    let mut pairs: Vec<(u32, u64)> = Vec::new();
    let mut group_ops: Vec<u32> = Vec::new();
    let mut acc: Vec<GroupAcc> = Vec::new();
    let metas = program
        .blocks()
        .iter()
        .enumerate()
        .map(|(site, b)| {
            let first_line = b.first_line().raw();
            let mut meta = BlockMeta {
                start: b.start(),
                first_line,
                last_line: first_line + b.line_count() - 1,
                instrs: u64::from(b.instrs()),
                data_accesses: u32::from(b.data_accesses()),
                sig: lbr.sig_of(b.start()),
                site_groups: (SITE_NO_FAST, 0),
            };
            let range = injections.site_range(BlockId(site as u32));
            if range.is_empty() {
                meta.site_groups = (0, 0); // no ops: trivially fast (never consulted)
                return meta;
            }
            let mut used = 0usize;
            for (i, op) in hot_ops[range.clone()].iter().enumerate() {
                if op.words[1] == NO_BATCH {
                    return meta; // fast check disabled at this site
                }
                let slot = match acc[..used].iter().position(|a| a.0 == op.ctx_bits) {
                    Some(i) => i,
                    None => {
                        if used == acc.len() {
                            acc.push((0, 0, 0, Vec::new(), Vec::new()));
                        }
                        let a = &mut acc[used];
                        a.0 = op.ctx_bits;
                        a.1 = 0;
                        a.2 = 0;
                        a.3.clear();
                        a.4.clear();
                        used += 1;
                        used - 1
                    }
                };
                let a = &mut acc[slot];
                a.1 += 1;
                a.2 += op.masks[0].count_ones() + op.masks[1].count_ones();
                a.4.push((range.start + i) as u32);
                for k in 0..2 {
                    if op.masks[k] == 0 {
                        continue;
                    }
                    match a.3.iter_mut().find(|(w, _)| *w == op.words[k]) {
                        Some((_, m)) => *m |= op.masks[k],
                        None => a.3.push((op.words[k], op.masks[k])),
                    }
                }
            }
            let gstart = groups.len() as u32;
            if used > 1 {
                // Union summary entry: OR of masks, merged pairs, totals.
                let mut union: Vec<(u32, u64)> = Vec::new();
                let (mut ctx, mut n, mut lines) = (0u64, 0u32, 0u32);
                for a in &acc[..used] {
                    ctx |= a.0;
                    n += a.1;
                    lines += a.2;
                    for &(w, m) in &a.3 {
                        match union.iter_mut().find(|(uw, _)| *uw == w) {
                            Some((_, um)) => *um |= m,
                            None => union.push((w, m)),
                        }
                    }
                }
                let pstart = pairs.len() as u32;
                pairs.extend_from_slice(&union);
                groups.push(SiteGroup {
                    ctx,
                    n,
                    lines,
                    pairs: (pstart, pairs.len() as u32),
                    ops: (0, 0), // never walked: issuing falls to the groups
                });
            }
            for a in &acc[..used] {
                let pstart = pairs.len() as u32;
                pairs.extend_from_slice(&a.3);
                let ostart = group_ops.len() as u32;
                group_ops.extend_from_slice(&a.4);
                groups.push(SiteGroup {
                    ctx: a.0,
                    n: a.1,
                    lines: a.2,
                    pairs: (pstart, pairs.len() as u32),
                    ops: (ostart, group_ops.len() as u32),
                });
            }
            meta.site_groups = (gstart, groups.len() as u32);
            meta
        })
        .collect();
    (metas, groups, pairs, group_ops)
}

/// The whole simulated machine plus replay bookkeeping, packaged so the
/// loop can be driven over arbitrary trace windows — [`run`] replays the
/// full trace in one call; the sharded replay
/// ([`simulate_sharded`](crate::shard::simulate_sharded)) replays a warmup
/// slice, snapshots, then replays its window.
pub(crate) struct Engine<'a, 'o> {
    hier: Hierarchy,
    lbr: Lbr,
    inflight: InflightArena,
    attr: Attribution<'o>,
    m: SimResult,
    cycle: u64,
    hw_out: Vec<Line>,
    data_lines: u64,
    /// `data_lines − 1` when the data footprint is a power of two (every
    /// bundled app model), letting the data side reduce addresses with an
    /// AND instead of two 64-bit divisions per access; `0` disables it.
    data_mask: u64,
    stream_counter: u64,
    stream_threshold: u64,
    issue_width: u64,
    d_stall_factor: f64,
    ideal_icache: bool,
    metas: Vec<BlockMeta>,
    hot_ops: Vec<HotOp>,
    /// Flat storage for every site's condition groups, indexed by the
    /// `site_groups` range in its [`BlockMeta`].
    site_groups: Vec<SiteGroup>,
    /// Flat storage for the groups' merged `(shadow word, mask)` cover pairs.
    site_pairs: Vec<(u32, u64)>,
    /// Flat storage for the groups' member op indices into the hot-op table.
    site_group_ops: Vec<u32>,
    injections: &'a CompiledInjections,
    observer: Option<&'o mut dyn SimObserver>,
    hw: Option<&'o mut dyn HwPrefetcher>,
    /// Whether injection-free runs may take the lean step: no observer (it
    /// expects per-block callbacks), no hardware prefetcher (it watches
    /// every fetch), and the validation knob not set.
    fast_ok: bool,
}

impl<'a, 'o> Engine<'a, 'o> {
    pub(crate) fn new(
        program: &Program,
        cfg: &SimConfig,
        injections: &'a CompiledInjections,
        observer: Option<&'o mut dyn SimObserver>,
        hw: Option<&'o mut dyn HwPrefetcher>,
        ledger: Option<&'o mut OutcomeLedger>,
        reference_loop: bool,
    ) -> Self {
        let mut hier = Hierarchy::new(cfg);
        let lbr = Lbr::new(cfg.lbr_depth, cfg.hash);
        // Shadow the code-line range (plus slack for next-line prefetchers
        // past the last block); prefetches of lines beyond it use the scan
        // path.
        let max_code_line = program
            .blocks()
            .iter()
            .map(|b| b.first_line().raw() + b.line_count() - 1)
            .max()
            .unwrap_or(0);
        hier.enable_l1i_shadow(max_code_line + 65);
        hier.enable_data_shadow(DATA_LINE_BASE, program.data_footprint_lines());
        // Prefetches only exist with an injection plan or a hardware
        // prefetcher; plain baseline runs skip the arena allocations.
        let want_arena = !injections.is_empty() || hw.is_some();
        let arena_limit = if want_arena { (max_code_line + 65).min(ARENA_LINE_CAP) } else { 0 };
        let owner_limit = if want_arena && ledger.is_some() { arena_limit } else { 0 };
        let tagged = ledger.is_some();
        let fast_ok = !reference_loop && observer.is_none() && hw.is_none();
        let hot_ops = hot_ops(injections, hier.l1i_shadow_limit());
        let (metas, site_groups, site_pairs, site_group_ops) =
            block_metas(program, &lbr, injections, &hot_ops);
        let data_lines = program.data_footprint_lines();
        Engine {
            hier,
            lbr,
            inflight: InflightArena::new(arena_limit, tagged),
            attr: Attribution { ledger, owner: OwnerArena::new(owner_limit) },
            m: SimResult::default(),
            cycle: 0,
            hw_out: Vec::new(),
            data_lines,
            data_mask: if data_lines.is_power_of_two() { data_lines - 1 } else { 0 },
            stream_counter: 0,
            stream_threshold: (cfg.d_stream_frac * 100.0) as u64,
            issue_width: u64::from(cfg.issue_width),
            d_stall_factor: cfg.d_stall_factor,
            ideal_icache: cfg.ideal_icache,
            metas,
            hot_ops,
            site_groups,
            site_pairs,
            site_group_ops,
            injections,
            observer,
            hw,
            fast_ok,
        }
    }

    /// Replays a window of trace blocks; `idx0` is the window's position in
    /// the full trace (observer callbacks report absolute indices).
    pub(crate) fn replay(&mut self, blocks: &[BlockId], idx0: usize) {
        let n = blocks.len();
        let mut i = 0;
        while i < n {
            if self.fast_ok && self.inflight.is_empty() && !self.injections.has_ops(blocks[i]) {
                // A run of injection-free blocks with nothing in flight:
                // nothing can complete, fire, or be probed, so batch the
                // whole span through the lean step. The skip index keeps
                // this scan one bit test per block.
                let mut j = i + 1;
                while j < n && !self.injections.has_ops(blocks[j]) {
                    j += 1;
                }
                for &b in &blocks[i..j] {
                    self.step_lean(b);
                }
                i = j;
            } else {
                self.step_full(idx0 + i, blocks[i]);
                i += 1;
            }
        }
    }

    /// The counters so far, with the running cycle count folded in — what
    /// [`run`] returns at the end, and what the sharded replay snapshots
    /// around its warmup.
    pub(crate) fn result_so_far(&self) -> SimResult {
        let mut m = self.m;
        m.cycles = self.cycle;
        m
    }

    /// A copy of the attached ledger's current state (None when detached).
    pub(crate) fn ledger_snapshot(&self) -> Option<OutcomeLedger> {
        self.attr.ledger.as_deref().cloned()
    }

    /// One block event through the lean path. Caller guarantees: no ops at
    /// the block, nothing in flight, no observer, no hardware prefetcher.
    /// Under those facts this is step-for-step identical to
    /// [`Engine::step_full`] — the drain has nothing to drain, the op loop
    /// nothing to execute, and the in-flight probes nothing to find.
    fn step_lean(&mut self, block_id: BlockId) {
        let meta = self.metas[block_id.index()];
        self.m.blocks += 1;
        self.lbr.push_sig(meta.start, meta.sig);
        if self.ideal_icache {
            self.m.i_accesses += meta.last_line - meta.first_line + 1;
        } else {
            for raw in meta.first_line..=meta.last_line {
                let line = Line::new(raw);
                self.m.i_accesses += 1;
                if let Some(was_untouched) = self.hier.fetch_instr_hit(line) {
                    if was_untouched {
                        self.m.pf_useful += 1;
                        let owner = self.attr.settle(line);
                        self.attr.note(owner, |o| o.useful += 1);
                    }
                } else {
                    self.m.i_misses += 1;
                    let out = self.hier.fetch_instr_miss(line);
                    if let Some(evicted) = out.evicted_untouched {
                        self.m.pf_evicted_unused += 1;
                        let owner = self.attr.settle(evicted);
                        self.attr.note(owner, |o| o.evicted_unused += 1);
                    }
                    let stall = u64::from(out.extra_cycles);
                    self.m.i_stall_cycles += stall;
                    self.cycle += stall;
                }
            }
        }
        self.data_side(block_id, &meta);
        self.m.base_instrs += meta.instrs;
        self.m.instrs += meta.instrs;
        self.cycle += meta.instrs.div_ceil(self.issue_width);
    }

    /// One block event through the full path.
    fn step_full(&mut self, idx: usize, block_id: BlockId) {
        let meta = self.metas[block_id.index()];
        self.m.blocks += 1;

        if let Some(obs) = self.observer.as_deref_mut() {
            obs.block_entered(idx, block_id, self.cycle);
        }

        // 1. Retire the branch into this block.
        self.lbr.push_sig(meta.start, meta.sig);

        // 2. Drain prefetches that completed before this block.
        self.drain_completed();

        // 3. Execute injected prefetch ops.
        let ops_issued = self.exec_ops(block_id, &meta);

        // 4. Fetch the block's instruction lines.
        if self.ideal_icache {
            self.m.i_accesses += meta.last_line - meta.first_line + 1;
        } else {
            for raw in meta.first_line..=meta.last_line {
                let line = Line::new(raw);
                self.m.i_accesses += 1;
                // Fast path: one L1I set scan resolves residency, promotes
                // the line, and reports whether it was an untouched prefetch.
                if let Some(was_untouched) = self.hier.fetch_instr_hit(line) {
                    if was_untouched {
                        self.m.pf_useful += 1;
                        let owner = self.attr.settle(line);
                        self.attr.note(owner, |o| o.useful += 1);
                    }
                    self.hw_hook(line, false);
                    continue;
                }
                // Miss path.
                self.m.i_misses += 1;
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.icache_miss(idx, block_id, line, self.cycle);
                }
                let stall = if let Some(completion) = self.inflight.get(line) {
                    // Late prefetch: wait only the remaining time.
                    let tag = self.inflight.tag(line);
                    self.inflight.remove(line);
                    self.m.pf_late += 1;
                    self.m.pf_useful += 1;
                    self.attr.note(tag, |o| {
                        o.late += 1;
                        o.useful += 1;
                    });
                    let remaining = completion.saturating_sub(self.cycle);
                    self.hier.fetch_instr_miss(line); // state update; timing overridden
                    remaining
                } else {
                    let out = self.hier.fetch_instr_miss(line);
                    if let Some(evicted) = out.evicted_untouched {
                        self.m.pf_evicted_unused += 1;
                        let owner = self.attr.settle(evicted);
                        self.attr.note(owner, |o| o.evicted_unused += 1);
                    }
                    u64::from(out.extra_cycles)
                };
                self.m.i_stall_cycles += stall;
                self.cycle += stall;
                self.hw_hook(line, true);
            }
        }

        // 5. Data side.
        self.data_side(block_id, &meta);

        // 6. Issue bandwidth.
        self.m.base_instrs += meta.instrs;
        self.m.instrs += meta.instrs + ops_issued;
        self.cycle += (meta.instrs + ops_issued).div_ceil(self.issue_width);
    }

    /// Drains prefetches that completed by the current cycle into L1I.
    fn drain_completed(&mut self) {
        let Self { inflight, hier, m, attr, cycle, .. } = self;
        inflight.drain_completed(*cycle, |line, tag| {
            attr.filled(line, tag);
            if let Some(evicted) = hier.prefetch_fill(line) {
                m.pf_evicted_unused += 1;
                let owner = attr.settle(evicted);
                attr.note(owner, |o| o.evicted_unused += 1);
            }
        });
    }

    /// Executes the compiled ops at `block_id`; returns how many there were.
    fn exec_ops(&mut self, block_id: BlockId, meta: &BlockMeta) -> u64 {
        let range = self.injections.site_range(block_id);
        if range.is_empty() {
            return 0;
        }
        let n = range.len() as u64;
        // Monomorphize the op loop on ledger presence: the throughput
        // configuration never touches provenance ids or outcome buckets.
        if self.attr.enabled() {
            self.exec_op_range::<true>(range);
        } else if !self.fast_ok {
            // Reference loop (or observer/hw run): keep the plain per-op
            // walk so `reference_loop: true` really is the unoptimized
            // baseline the fast-path equivalence suite compares against.
            self.exec_op_range::<false>(range);
        } else {
            // Site fast path: walk the site's condition groups instead of
            // its ops. Each group fires or suppresses wholesale (its ops
            // share one mask), a firing group whose merged cover pairs are
            // all shadow-resident issues nothing and accounts in one
            // compare, and only a firing group with at least one line to
            // issue walks its own ops. Issue order across groups differs
            // from op order, which is unobservable here (see
            // [`SiteGroup::ops`]); the ledger path keeps the per-op loop —
            // it attributes per op.
            let (gs, ge) = meta.site_groups;
            if gs == SITE_NO_FAST {
                self.exec_op_range::<false>(range);
                return n;
            }
            self.m.pf_ops_executed += n;
            let not_runtime = !self.lbr.runtime_hash();
            // Steady-state check against the site's union entry: all groups
            // fire and every target line is shadow-resident — one compare
            // plus a couple of word tests settles the whole site.
            let u = self.site_groups[gs as usize];
            let single = ge == gs + 1;
            if u.ctx & not_runtime == 0 {
                let (s, e) = u.pairs;
                if self.site_pairs[s as usize..e as usize]
                    .iter()
                    .all(|&(w, m)| self.hier.l1i_shadow_word(w) & m == m)
                {
                    self.m.pf_ops_fired += u64::from(u.n);
                    self.m.pf_lines_resident += u64::from(u.lines);
                    return n;
                }
            } else if single {
                self.m.pf_ops_suppressed += u64::from(u.n);
                return n;
            }
            // Mixed outcome: walk the per-group entries (for a single-group
            // site that *is* the union entry).
            let (mut fired, mut suppressed, mut resident) = (0u64, 0u64, 0u64);
            for gi in if single { gs } else { gs + 1 }..ge {
                let g = self.site_groups[gi as usize];
                if g.ctx & not_runtime != 0 {
                    suppressed += u64::from(g.n);
                    continue;
                }
                fired += u64::from(g.n);
                let (s, e) = g.pairs;
                if self.site_pairs[s as usize..e as usize]
                    .iter()
                    .all(|&(w, m)| self.hier.l1i_shadow_word(w) & m == m)
                {
                    resident += u64::from(g.lines);
                    continue;
                }
                let (os, oe) = g.ops;
                for k in os..oe {
                    let i = self.site_group_ops[k as usize] as usize;
                    let op = self.hot_ops[i];
                    if self.hier.l1i_shadow_covers(op.words, op.masks) {
                        resident += u64::from(op.masks[0].count_ones() + op.masks[1].count_ones());
                    } else {
                        let inj = self.injections;
                        for &line in inj.op_lines(&inj.compiled_ops()[i]) {
                            self.issue_prefetch(line, None);
                        }
                    }
                }
            }
            self.m.pf_ops_fired += fired;
            self.m.pf_ops_suppressed += suppressed;
            self.m.pf_lines_resident += resident;
        }
        n
    }

    /// The op-execution loop over one site's range of the hot-op table.
    fn exec_op_range<const LEDGER: bool>(&mut self, range: std::ops::Range<usize>) {
        self.m.pf_ops_executed += range.len() as u64;
        let not_runtime = !self.lbr.runtime_hash();
        let (mut fired, mut suppressed, mut resident) = (0u64, 0u64, 0u64);
        for i in range {
            let op = self.hot_ops[i];
            let id = if LEDGER { self.injections.compiled_ops()[i].id } else { None };
            if LEDGER {
                self.attr.note(id, |o| o.executed += 1);
            }
            // Branch-free condition: unconditional ops lowered to 0 pass
            // trivially; conditional ops pass iff their context bits are a
            // subset of the runtime hash.
            if op.ctx_bits & not_runtime == 0 {
                fired += 1;
                if LEDGER {
                    self.attr.note(id, |o| o.fired += 1);
                }
                if op.words[1] != NO_BATCH && self.hier.l1i_shadow_covers(op.words, op.masks) {
                    // Every target line already resident — the steady state.
                    // Identical accounting to issuing each line and taking
                    // the resident early-out, without the per-line walk.
                    let lines = u64::from(op.masks[0].count_ones() + op.masks[1].count_ones());
                    resident += lines;
                    if LEDGER {
                        self.attr.note(id, |o| o.lines_resident += lines);
                    }
                } else {
                    let inj = self.injections;
                    for &line in inj.op_lines(&inj.compiled_ops()[i]) {
                        self.issue_prefetch(line, id);
                    }
                }
            } else {
                suppressed += 1;
                if LEDGER {
                    self.attr.note(id, |o| o.suppressed += 1);
                }
            }
        }
        self.m.pf_ops_fired += fired;
        self.m.pf_ops_suppressed += suppressed;
        self.m.pf_lines_resident += resident;
    }

    /// Issues one prefetch line request on behalf of injection `tag`.
    #[inline]
    fn issue_prefetch(&mut self, line: Line, tag: Option<ProvenanceId>) {
        if self.hier.in_l1i(line) || self.inflight.contains(line) {
            self.m.pf_lines_resident += 1;
            self.attr.note(tag, |o| o.lines_resident += 1);
            return;
        }
        let latency = self.hier.prefetch_latency_missing_l1i(line);
        self.inflight.insert(line, self.cycle + u64::from(latency), tag);
        self.m.pf_lines_issued += 1;
        self.attr.note(tag, |o| o.lines_issued += 1);
    }

    /// Invokes the hardware prefetcher, if any, and issues its requests
    /// (never attributed to a planned injection — they carry no provenance).
    fn hw_hook(&mut self, line: Line, was_miss: bool) {
        if let Some(hw) = self.hw.as_deref_mut() {
            hw.on_fetch(line, was_miss, &mut self.hw_out);
        }
        if !self.hw_out.is_empty() {
            let mut out = std::mem::take(&mut self.hw_out);
            for line in out.drain(..) {
                self.issue_prefetch(line, None);
            }
            self.hw_out = out;
        }
    }

    /// Reduces `x` into the data footprint: a mask when the footprint is a
    /// power of two (bit-identical to the modulo), a division otherwise.
    #[inline]
    fn data_index(&self, x: u64) -> u64 {
        if self.data_mask != 0 {
            x & self.data_mask
        } else {
            x % self.data_lines
        }
    }

    /// Replays the block's data accesses.
    fn data_side(&mut self, block_id: BlockId, meta: &BlockMeta) {
        for k in 0..meta.data_accesses {
            self.m.d_accesses += 1;
            let site = mix(u64::from(block_id.0), u64::from(k));
            let line = if site % 100 < self.stream_threshold {
                self.stream_counter = self.stream_counter.wrapping_add(1);
                Line::new(DATA_LINE_BASE + self.data_index(self.stream_counter))
            } else {
                Line::new(DATA_LINE_BASE + self.data_index(site))
            };
            let out = self.hier.load_data(line);
            if out.extra_cycles > 0 {
                self.m.d_misses += 1;
                let stall = (f64::from(out.extra_cycles) * self.d_stall_factor) as u64;
                self.m.d_stall_cycles += stall;
                self.cycle += stall;
            }
        }
    }
}

/// Replays `trace` through the simulated machine.
///
/// # Panics
///
/// Panics if the trace references blocks outside `program`.
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_sim::{run, RunOptions, SimConfig};
/// use ispy_trace::apps;
///
/// let model = apps::tomcat().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 5_000);
/// let result = run(&program, &trace, &SimConfig::default(), RunOptions::default());
/// assert_eq!(result.blocks, 5_000);
/// ```
pub fn run(
    program: &Program,
    trace: &Trace,
    cfg: &SimConfig,
    mut opts: RunOptions<'_>,
) -> SimResult {
    // Lower the injection plan into its dense compiled form unless the
    // caller already did (sweeps reuse one compiled plan across many runs).
    let compiled_storage;
    let injections: &CompiledInjections = match opts.compiled {
        Some(c) => c,
        None => {
            compiled_storage = match opts.injections {
                Some(map) if !map.is_empty() => map.compile(program.num_blocks()),
                _ => CompiledInjections::default(),
            };
            &compiled_storage
        }
    };
    let mut eng = Engine::new(
        program,
        cfg,
        injections,
        opts.observer.take(),
        opts.hw_prefetcher.take(),
        opts.outcomes.take(),
        opts.reference_loop,
    );
    eng.replay(trace.blocks(), 0);
    eng.result_so_far()
}

/// Replays a [`BlockSource`] through the simulated machine, chunk by chunk.
///
/// This is [`run`] with the trace decoupled from RAM: the engine's per-block
/// semantics are chunk-agnostic (each internal replay call continues from
/// the machine state the previous one left), so the result is byte-identical
/// to materializing the source into a `Vec` and calling [`run`] — for any
/// source and any chunking. The injected fast path (skip index, arena
/// in-flight, hot ops) is reused unchanged. Peak memory is one chunk plus
/// the fixed machine state, which is what removes the RAM ceiling on trace
/// length.
///
/// # Errors
///
/// Propagates the source's typed [`ArtifactError`]s (a decoding source may
/// fail mid-stream on corrupt or truncated input); no result is returned for
/// a stream that did not complete cleanly.
///
/// # Panics
///
/// Panics if the source yields blocks outside `program`.
///
/// # Examples
///
/// ```
/// use ispy_sim::{run, run_streaming, RunOptions, SimConfig};
/// use ispy_trace::source::TraceBlocks;
/// use ispy_trace::apps;
///
/// let model = apps::tomcat().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 5_000);
/// let cfg = SimConfig::default();
/// let direct = run(&program, &trace, &cfg, RunOptions::default());
/// let mut source = TraceBlocks::with_chunk(trace.blocks(), 512);
/// let streamed = run_streaming(&program, &mut source, &cfg, RunOptions::default()).unwrap();
/// assert_eq!(streamed, direct);
/// ```
pub fn run_streaming<S: BlockSource + ?Sized>(
    program: &Program,
    source: &mut S,
    cfg: &SimConfig,
    mut opts: RunOptions<'_>,
) -> Result<SimResult, ArtifactError> {
    let compiled_storage;
    let injections: &CompiledInjections = match opts.compiled {
        Some(c) => c,
        None => {
            compiled_storage = match opts.injections {
                Some(map) if !map.is_empty() => map.compile(program.num_blocks()),
                _ => CompiledInjections::default(),
            };
            &compiled_storage
        }
    };
    let mut eng = Engine::new(
        program,
        cfg,
        injections,
        opts.observer.take(),
        opts.hw_prefetcher.take(),
        opts.outcomes.take(),
        opts.reference_loop,
    );
    let mut idx0 = 0usize;
    while let Some(chunk) = source.next_chunk()? {
        eng.replay(chunk, idx0);
        idx0 += chunk.len();
    }
    Ok(eng.result_so_far())
}

/// Cheap 64-bit mix for deterministic pseudo-random data addresses.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(0x94D049BB133111EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_isa::PrefetchOp;
    use ispy_trace::apps;

    fn small_app() -> (Program, Trace) {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 30_000);
        (program, trace)
    }

    #[test]
    fn deterministic_replay() {
        let (p, t) = small_app();
        let a = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let b = run(&p, &t, &SimConfig::default(), RunOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn ideal_is_fastest_and_missless() {
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let ideal = run(&p, &t, &SimConfig::ideal(), RunOptions::default());
        assert_eq!(ideal.i_misses, 0);
        assert_eq!(ideal.i_stall_cycles, 0);
        assert!(ideal.cycles < base.cycles);
        assert!(base.i_misses > 0, "workload must actually miss");
    }

    #[test]
    fn baseline_workload_is_frontend_bound() {
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let fb = base.frontend_bound();
        assert!(fb > 0.15, "frontend-bound fraction {fb} too small to study");
    }

    #[test]
    fn observer_sees_all_blocks_and_misses() {
        #[derive(Default)]
        struct Counter {
            blocks: usize,
            misses: usize,
        }
        impl SimObserver for Counter {
            fn block_entered(&mut self, _i: usize, _b: BlockId, _c: u64) {
                self.blocks += 1;
            }
            fn icache_miss(&mut self, _i: usize, _b: BlockId, _l: Line, _c: u64) {
                self.misses += 1;
            }
        }
        let (p, t) = small_app();
        let mut obs = Counter::default();
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { observer: Some(&mut obs), ..Default::default() },
        );
        assert_eq!(obs.blocks as u64, r.blocks);
        assert_eq!(obs.misses as u64, r.i_misses);
    }

    #[test]
    fn plain_injection_reduces_misses_on_repeating_pattern() {
        // Inject, at every block, a prefetch of the line that block's
        // successor misses — here simply prefetch every block's own next
        // lines far in advance via a map built from a profiling pass.
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());

        // Build a crude plan: for each observed miss, inject a plain
        // prefetch 8 dynamic blocks earlier.
        struct Rec {
            events: Vec<(usize, Line)>,
        }
        impl SimObserver for Rec {
            fn icache_miss(&mut self, idx: usize, _b: BlockId, line: Line, _c: u64) {
                self.events.push((idx, line));
            }
        }
        let mut rec = Rec { events: Vec::new() };
        run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { observer: Some(&mut rec), ..Default::default() },
        );
        let mut map = InjectionMap::new();
        let mut seen = std::collections::HashSet::new();
        for (idx, line) in rec.events {
            if idx >= 8 {
                let site = t.blocks()[idx - 8];
                if seen.insert((site, line)) {
                    map.push(site, PrefetchOp::Plain { target: line });
                }
            }
        }
        let with = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert!(
            with.i_misses < base.i_misses,
            "prefetching must reduce misses: {} vs {}",
            with.i_misses,
            base.i_misses
        );
        assert!(with.pf_ops_executed > 0);
        assert!(with.pf_useful > 0);
    }

    #[test]
    fn conditional_op_with_impossible_context_never_fires() {
        let (p, t) = small_app();
        let mut map = InjectionMap::new();
        // A context hash demanding every bit set will (essentially) never
        // match a 32-entry LBR under the 16-bit scheme... but could.
        // Use all 64 bits of a 64-bit scheme for certainty.
        let cfg = SimConfig::default().with_hash(ispy_isa::HashConfig::new(64, 2));
        let ctx = ispy_isa::ContextHash::from_bits(u64::MAX, 64);
        map.push(t.blocks()[0], PrefetchOp::Cond { target: Line::new(0x999999), ctx });
        let r = run(&p, &t, &cfg, RunOptions { injections: Some(&map), ..Default::default() });
        assert!(r.pf_ops_executed > 0);
        assert_eq!(r.pf_ops_fired, 0);
        assert_eq!(r.pf_ops_suppressed, r.pf_ops_executed);
        assert_eq!(r.pf_lines_issued, 0);
    }

    #[test]
    fn injected_ops_count_toward_dynamic_instrs() {
        let (p, t) = small_app();
        let mut map = InjectionMap::new();
        map.push(t.blocks()[0], PrefetchOp::Plain { target: Line::new(1) });
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert_eq!(r.instrs, r.base_instrs + r.pf_ops_executed);
        assert!(r.dynamic_increase() > 0.0);
    }

    #[test]
    fn useless_prefetches_hurt_or_do_not_help() {
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        // Prefetch garbage lines everywhere: pure pollution.
        let mut map = InjectionMap::new();
        let hot: Vec<BlockId> = t.blocks()[..200].to_vec();
        for (i, b) in hot.into_iter().enumerate() {
            map.push(b, PrefetchOp::Plain { target: Line::new(0xBAD_0000 + i as u64 * 7) });
        }
        let with = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert!(with.cycles >= base.cycles, "{} < {}", with.cycles, base.cycles);
        assert_eq!(with.pf_useful, 0);
    }

    #[test]
    fn coalesced_op_prefetches_all_targets() {
        let (p, t) = small_app();
        let mut map = InjectionMap::new();
        let mask = ispy_isa::CoalesceMask::from_bits(0xFF, 8);
        map.push(t.blocks()[0], PrefetchOp::Coalesced { base: Line::new(0x700000), mask });
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        // Base + 8 extra lines, issued at least once (the first execution).
        assert!(r.pf_lines_issued >= 9);
    }

    #[test]
    fn hw_prefetcher_hook_is_invoked() {
        struct NextLine;
        impl HwPrefetcher for NextLine {
            fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
                if was_miss {
                    out.push(line.offset(1));
                }
            }
        }
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let mut hw = NextLine;
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { hw_prefetcher: Some(&mut hw), ..Default::default() },
        );
        assert!(r.pf_lines_issued > 0);
        assert!(r.i_misses < base.i_misses, "next-line should help sequential code");
    }

    #[test]
    fn timely_prefetch_eliminates_stall_late_prefetch_reduces_it() {
        // Construct a two-block loop: block 0 (hot) and block 1 at a far
        // line. Injecting a prefetch of block 1's line at block 0 hides the
        // latency when the issue-to-use distance is long enough.
        use ispy_trace::program::{BlockExit, FuncId, Function};
        use ispy_trace::{Addr, BasicBlock, Program};
        let blocks = vec![
            BasicBlock::new(Addr::new(0), 64, 64, 0), // 16 issue cycles
            BasicBlock::new(Addr::new(1 << 20), 64, 16, 0),
        ];
        let exits = vec![
            BlockExit::Branch(vec![(BlockId(1), 1.0)]),
            BlockExit::Branch(vec![(BlockId(0), 1.0)]),
        ];
        let funcs = vec![Function::new(BlockId(0), 0, 2)];
        let owner = vec![FuncId(0), FuncId(0)];
        let program = Program::new("loop", blocks, exits, funcs, owner, vec![vec![FuncId(0)]]);
        let trace = program.record_trace(ispy_trace::InputSpec::uniform(0, 1), 4_000);
        let cfg = SimConfig::default();
        // Thrash block 1's line out of L1I? In this tiny program it stays
        // resident, so instead compare cold-start behaviour over a fresh
        // hierarchy per run: the first access misses either way; with the
        // prefetch the *remaining stall* shrinks because the line is in
        // flight by the time it is fetched.
        let base = run(&program, &trace, &cfg, RunOptions::default());
        let mut map = InjectionMap::new();
        map.push(BlockId(0), PrefetchOp::Plain { target: Line::new((1 << 20) / 64) });
        let with = run(
            &program,
            &trace,
            &cfg,
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert!(with.i_stall_cycles <= base.i_stall_cycles);
        assert!(with.pf_lines_resident > 0, "steady-state firings find the line resident");
    }

    #[test]
    fn late_prefetch_counts_as_miss_but_shortens_stall() {
        // Issue a prefetch of a memory-resident line in the same block that
        // fetches it next: the prefetch is in flight when the demand
        // arrives (late), the stall is the remaining time, and the event
        // still counts as a miss.
        use ispy_trace::program::{BlockExit, FuncId, Function};
        use ispy_trace::{Addr, BasicBlock, Program};
        let target_line = Line::new((1 << 21) / 64);
        // Block 0: 4 instrs + the injected op = ceil(5/4) = 2 issue cycles,
        // after a 257-cycle cold miss -> block 1 enters at cycle 259, one
        // cycle before the 260-cycle prefetch completes: strictly late.
        let blocks = vec![
            BasicBlock::new(Addr::new(0), 32, 4, 0),
            BasicBlock::new(Addr::new(1 << 21), 32, 8, 0),
        ];
        let exits = vec![BlockExit::Branch(vec![(BlockId(1), 1.0)]), BlockExit::Return];
        let funcs = vec![Function::new(BlockId(0), 0, 2)];
        let owner = vec![FuncId(0), FuncId(0)];
        let program = Program::new("late", blocks, exits, funcs, owner, vec![vec![FuncId(0)]]);
        let trace = ispy_trace::Trace::new("late", vec![BlockId(0), BlockId(1)]);
        let mut map = InjectionMap::new();
        map.push(BlockId(0), PrefetchOp::Plain { target: target_line });
        let cfg = SimConfig::default();
        let base = run(&program, &trace, &cfg, RunOptions::default());
        let with = run(
            &program,
            &trace,
            &cfg,
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert_eq!(with.pf_late, 1, "demand must catch the prefetch in flight");
        assert_eq!(with.i_misses, base.i_misses, "late prefetch still counts as a miss");
        assert!(
            with.i_stall_cycles < base.i_stall_cycles,
            "but the stall shrinks: {} vs {}",
            with.i_stall_cycles,
            base.i_stall_cycles
        );
    }

    #[test]
    fn ideal_icache_still_runs_data_side_and_issue() {
        let (p, t) = small_app();
        let r = run(&p, &t, &SimConfig::ideal(), RunOptions::default());
        assert!(r.cycles > 0);
        assert!(r.d_accesses > 0);
        assert_eq!(r.i_misses, 0);
        // Accesses are still counted for bookkeeping.
        assert!(r.i_accesses > 0);
    }

    #[test]
    fn outcome_ledger_matches_aggregate_counters() {
        use crate::outcome::OutcomeLedger;
        use ispy_isa::ProvenanceId;
        // Build a miss-driven plan as in plain_injection_reduces_misses, but
        // tag every op with a provenance id and check the ledger's totals
        // reconcile exactly with the aggregate SimResult counters.
        let (p, t) = small_app();
        struct Rec {
            events: Vec<(usize, Line)>,
        }
        impl SimObserver for Rec {
            fn icache_miss(&mut self, idx: usize, _b: BlockId, line: Line, _c: u64) {
                self.events.push((idx, line));
            }
        }
        let mut rec = Rec { events: Vec::new() };
        run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { observer: Some(&mut rec), ..Default::default() },
        );
        let mut map = InjectionMap::new();
        let mut seen = std::collections::HashSet::new();
        let mut next_id = 0u32;
        for (idx, line) in rec.events {
            if idx >= 8 {
                let site = t.blocks()[idx - 8];
                if seen.insert((site, line)) {
                    map.push_traced(
                        site,
                        PrefetchOp::Plain { target: line },
                        ProvenanceId(next_id),
                    );
                    next_id += 1;
                }
            }
        }
        let mut ledger = OutcomeLedger::with_capacity(next_id as usize);
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                injections: Some(&map),
                outcomes: Some(&mut ledger),
                ..Default::default()
            },
        );
        assert_eq!(ledger.per_injection.len(), next_id as usize);
        assert_eq!(ledger.total(|o| o.executed), r.pf_ops_executed);
        assert_eq!(ledger.total(|o| o.fired), r.pf_ops_fired);
        assert_eq!(ledger.total(|o| o.suppressed), r.pf_ops_suppressed);
        assert_eq!(ledger.total(|o| o.lines_issued), r.pf_lines_issued);
        assert_eq!(ledger.total(|o| o.lines_resident), r.pf_lines_resident);
        assert_eq!(ledger.total(|o| o.useful), r.pf_useful);
        assert_eq!(ledger.total(|o| o.late), r.pf_late);
        assert_eq!(ledger.total(|o| o.evicted_unused), r.pf_evicted_unused);
        // Plain ops are tagged, so nothing should land in the untracked bucket.
        assert_eq!(ledger.untracked, crate::outcome::InjectionOutcome::default());
        // Per-injection invariant: every execution either fired or was suppressed.
        for o in &ledger.per_injection {
            assert_eq!(o.executed, o.fired + o.suppressed);
        }
    }

    #[test]
    fn ledger_routes_hw_prefetches_to_untracked() {
        use crate::outcome::OutcomeLedger;
        struct NextLine;
        impl HwPrefetcher for NextLine {
            fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
                if was_miss {
                    out.push(line.offset(1));
                }
            }
        }
        let (p, t) = small_app();
        let mut hw = NextLine;
        let mut ledger = OutcomeLedger::default();
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                hw_prefetcher: Some(&mut hw),
                outcomes: Some(&mut ledger),
                ..Default::default()
            },
        );
        assert!(ledger.per_injection.is_empty());
        assert_eq!(ledger.untracked.lines_issued, r.pf_lines_issued);
        assert_eq!(ledger.untracked.useful, r.pf_useful);
    }

    #[test]
    fn attaching_a_ledger_does_not_change_results() {
        use crate::outcome::OutcomeLedger;
        let (p, t) = small_app();
        let plain = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let mut ledger = OutcomeLedger::default();
        let observed = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { outcomes: Some(&mut ledger), ..Default::default() },
        );
        assert_eq!(plain, observed);
    }

    #[test]
    fn reference_loop_matches_fast_path() {
        use crate::outcome::OutcomeLedger;
        let (p, t) = small_app();
        // A sparse plan leaves long injection-free runs for the skip index.
        let mut map = InjectionMap::new();
        for (n, idx) in (0..t.blocks().len()).step_by(701).enumerate() {
            map.push_traced(
                t.blocks()[idx],
                PrefetchOp::Plain { target: Line::new(0x5000 + n as u64) },
                ispy_isa::ProvenanceId(n as u32),
            );
        }
        let mut fast_ledger = OutcomeLedger::default();
        let fast = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                injections: Some(&map),
                outcomes: Some(&mut fast_ledger),
                ..Default::default()
            },
        );
        let mut ref_ledger = OutcomeLedger::default();
        let reference = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                injections: Some(&map),
                outcomes: Some(&mut ref_ledger),
                reference_loop: true,
                ..Default::default()
            },
        );
        assert_eq!(fast, reference);
        assert_eq!(fast_ledger, ref_ledger);
    }

    #[test]
    fn inflight_stale_heap_stays_bounded() {
        // A line demanded before its prefetch completes leaves a stale lane
        // entry behind; compaction must keep the queue proportional to the
        // *live* in-flight set, not to the total number of such events.
        let mut inf = InflightArena::new(16, true);
        for i in 0..100_000u64 {
            let line = Line::new(i % 16);
            inf.insert(line, i + 1_000, None);
            inf.remove(line); // demand hit while in flight
        }
        assert!(inf.is_empty());
        assert!(
            inf.entries < 2 * INFLIGHT_COMPACT_MIN,
            "stale entries must be compacted away, lanes hold {}",
            inf.entries
        );
    }

    #[test]
    fn inflight_compaction_preserves_drain_order() {
        // Half the lines in the dense arena, half in the far map, so
        // compaction and drain cross both sides.
        let mut inf = InflightArena::new(100, true);
        for i in 0..200u64 {
            inf.insert(Line::new(i), 1_000 - i, None);
        }
        // Invalidate every other line, forcing at least one compaction.
        for i in (0..200u64).step_by(2) {
            inf.remove(Line::new(i));
        }
        let mut drained = Vec::new();
        inf.drain_completed(u64::MAX, |line, _| drained.push(line.raw()));
        let expected: Vec<u64> = (0..200u64).filter(|i| i % 2 == 1).rev().collect();
        assert_eq!(drained, expected, "completion order must survive compaction");
        assert!(inf.is_empty());
    }

    #[test]
    fn inflight_arena_and_far_sides_agree() {
        // Same operation sequence against a dense-arena instance and a
        // limit-0 (all-far) instance: every probe must answer identically.
        let mut dense = InflightArena::new(64, true);
        let mut far = InflightArena::new(0, true);
        let mut state = 0xDEADBEEFu64;
        for step in 0..5_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let line = Line::new(state % 48);
            let tag = (state >> 33 & 1 == 0).then_some(ProvenanceId((state >> 34) as u32 & 0xFFFF));
            match state >> 60 & 3 {
                0 => {
                    if dense.get(line).is_none() {
                        dense.insert(line, step + 3 + state % 100, tag);
                        far.insert(line, step + 3 + state % 100, tag);
                    }
                }
                1 => {
                    dense.remove(line);
                    far.remove(line);
                }
                _ => {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    dense.drain_completed(step, |l, t| a.push((l.raw(), t)));
                    far.drain_completed(step, |l, t| b.push((l.raw(), t)));
                    assert_eq!(a, b, "drain diverged at step {step}");
                }
            }
            assert_eq!(dense.get(line), far.get(line));
            assert_eq!(dense.tag(line), far.tag(line));
            assert_eq!(dense.is_empty(), far.is_empty());
        }
    }

    #[test]
    fn precompiled_plan_matches_map_lowering() {
        use crate::outcome::OutcomeLedger;
        use ispy_isa::{CoalesceMask, ProvenanceId};
        // Passing a pre-compiled plan must be byte-identical to handing the
        // engine the raw map, across all four op kinds and the ledger.
        let (p, t) = small_app();
        let hash = SimConfig::default().hash;
        let mut map = InjectionMap::new();
        for (n, idx) in (0..t.blocks().len()).step_by(97).enumerate() {
            let site = t.blocks()[idx];
            let target = Line::new(0x5000 + n as u64 * 3);
            let ctx = hash.context_hash([p.block(site).start()]);
            let mask = CoalesceMask::from_bits(0b1011, 8);
            let op = match n % 4 {
                0 => PrefetchOp::Plain { target },
                1 => PrefetchOp::Cond { target, ctx },
                2 => PrefetchOp::Coalesced { base: target, mask },
                _ => PrefetchOp::CondCoalesced { base: target, mask, ctx },
            };
            map.push_traced(site, op, ProvenanceId(n as u32));
        }
        let mut ledger_map = OutcomeLedger::default();
        let via_map = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                injections: Some(&map),
                outcomes: Some(&mut ledger_map),
                ..Default::default()
            },
        );
        let compiled = map.compile(p.num_blocks());
        let mut ledger_pre = OutcomeLedger::default();
        let via_compiled = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                compiled: Some(&compiled),
                outcomes: Some(&mut ledger_pre),
                ..Default::default()
            },
        );
        assert_eq!(via_map, via_compiled);
        assert_eq!(ledger_map, ledger_pre);
        assert!(via_map.pf_ops_executed > 0);
    }

    #[test]
    fn data_side_is_exercised() {
        let (p, t) = small_app();
        let r = run(&p, &t, &SimConfig::default(), RunOptions::default());
        assert!(r.d_accesses > 0);
        assert!(r.d_misses > 0);
        assert!(r.d_stall_cycles > 0);
    }
}
