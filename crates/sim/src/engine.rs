//! The trace-replay engine: executes a block trace against the hierarchy,
//! running injected prefetch instructions with their conditional/coalesced
//! semantics, and charges cycles.
//!
//! ## Timing model
//!
//! Per block event:
//!
//! 1. The block's entry is pushed into the LBR (updating the Bloom filter).
//! 2. Injected prefetch ops at the block execute: each costs one issued
//!    instruction; conditional ops check the Bloom runtime hash; firing ops
//!    issue line requests that complete after the line's current residency
//!    latency, then fill L1I at the configured (half) priority.
//! 3. Each I-line the block spans is fetched: L1I hit = no stall; miss
//!    stalls for `lat(level) − lat(L1I)`; a line still in flight from a
//!    prefetch stalls only for the remaining time (late prefetch).
//! 4. Data accesses run against L1D/L2/L3 with a fractional stall charge
//!    (the OoO backend hides most data latency).
//! 5. Issue bandwidth: `ceil(instrs / width)` cycles.
//!
//! Absolute cycle counts are a simplification of the authors' ZSim setup;
//! the harness only interprets *relative* results (speedups, fractions of
//! ideal), which is also how the paper reports its evaluation.

use crate::config::SimConfig;
use crate::fxhash::FxHashMap;
use crate::hierarchy::Hierarchy;
use crate::lbr::Lbr;
use crate::metrics::SimResult;
use crate::outcome::OutcomeLedger;
use ispy_isa::{CompiledInjections, InjectionMap, PrefetchOp, ProvenanceId};
use ispy_trace::{Addr, BlockId, Line, Program, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Data lines live in a disjoint address range from code lines.
const DATA_LINE_BASE: u64 = 1 << 40;

/// Callbacks the engine raises during replay; used by the profiler.
pub trait SimObserver {
    /// A block is about to execute at `cycle` (trace position `idx`).
    fn block_entered(&mut self, idx: usize, block: BlockId, cycle: u64) {
        let _ = (idx, block, cycle);
    }

    /// A demand instruction fetch missed L1I.
    fn icache_miss(&mut self, idx: usize, block: BlockId, line: Line, cycle: u64) {
        let _ = (idx, block, line, cycle);
    }
}

/// An observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// A hardware prefetcher hook (used by the next-line baselines).
pub trait HwPrefetcher {
    /// Called on every demand instruction fetch; push lines to prefetch into
    /// `out`.
    fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>);
}

/// Optional attachments for a run.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Injected code-prefetch instructions (the rewritten binary).
    pub injections: Option<&'a InjectionMap>,
    /// A pre-lowered injection plan (see [`InjectionMap::compile`]). When
    /// set it takes precedence over `injections`; callers replaying the same
    /// plan across many configurations (the figure sweeps) compile once and
    /// pass it here to skip the per-run lowering.
    pub compiled: Option<&'a CompiledInjections>,
    /// A hardware prefetcher observing the fetch stream.
    pub hw_prefetcher: Option<&'a mut dyn HwPrefetcher>,
    /// An observer receiving replay events.
    pub observer: Option<&'a mut dyn SimObserver>,
    /// Collects per-injection outcome counts, bucketed by the provenance ids
    /// the injection map carries.
    pub outcomes: Option<&'a mut OutcomeLedger>,
}

/// In-flight prefetch bookkeeping. Each entry remembers the provenance id of
/// the injection that issued it, so completions and late demand hits can be
/// attributed.
struct Inflight {
    by_line: FxHashMap<u64, (u64, Option<ProvenanceId>)>,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    /// Heap entries whose line is no longer (or differently) in flight.
    /// Tracked so the heap can be rebuilt before stale entries dominate it:
    /// a demand-heavy run would otherwise grow the heap without bound.
    stale: usize,
}

/// Compact the completion heap once it holds at least this many entries and
/// stale ones are the majority. Small enough to bound memory on pathological
/// traces, large enough that compaction is rare in healthy ones.
const INFLIGHT_COMPACT_MIN: usize = 64;

impl Inflight {
    fn new() -> Self {
        Inflight { by_line: FxHashMap::default(), queue: BinaryHeap::new(), stale: 0 }
    }

    fn insert(&mut self, line: Line, completion: u64, tag: Option<ProvenanceId>) {
        if self.by_line.insert(line.raw(), (completion, tag)).is_some() {
            self.note_stale();
        }
        self.queue.push(Reverse((completion, line.raw())));
    }

    #[inline]
    fn get(&self, line: Line) -> Option<u64> {
        if self.by_line.is_empty() {
            return None;
        }
        self.by_line.get(&line.raw()).map(|&(completion, _)| completion)
    }

    #[inline]
    fn tag(&self, line: Line) -> Option<ProvenanceId> {
        if self.by_line.is_empty() {
            return None;
        }
        self.by_line.get(&line.raw()).and_then(|&(_, tag)| tag)
    }

    fn remove(&mut self, line: Line) {
        // The heap entry becomes stale and is skipped when popped.
        if !self.by_line.is_empty() && self.by_line.remove(&line.raw()).is_some() {
            self.note_stale();
        }
    }

    fn note_stale(&mut self) {
        self.stale += 1;
        if self.queue.len() >= INFLIGHT_COMPACT_MIN && self.stale * 2 > self.queue.len() {
            self.compact();
        }
    }

    /// Rebuilds the heap from the live map. Pop order afterwards is
    /// unchanged: it is fully determined by the unique `(completion, line)`
    /// keys, never by insertion order.
    fn compact(&mut self) {
        self.queue = self
            .by_line
            .iter()
            .map(|(&raw, &(completion, _))| Reverse((completion, raw)))
            .collect();
        self.stale = 0;
    }

    /// Pops lines whose prefetch has completed by `now`.
    fn drain_completed(&mut self, now: u64, mut f: impl FnMut(Line, Option<ProvenanceId>)) {
        while let Some(&Reverse((completion, raw))) = self.queue.peek() {
            if completion > now {
                break;
            }
            self.queue.pop();
            // Skip stale entries (line demanded or re-issued meanwhile).
            match self.by_line.get(&raw) {
                Some(&(stored, tag)) if stored == completion => {
                    self.by_line.remove(&raw);
                    f(Line::new(raw), tag);
                }
                _ => self.stale = self.stale.saturating_sub(1),
            }
        }
    }
}

/// Attribution state threaded through a run: the ledger (if requested) and
/// the owner map from filled-but-untouched prefetch lines to the injection
/// that fetched them. Both stay empty/inert when no ledger is attached.
struct Attribution<'a> {
    ledger: Option<&'a mut OutcomeLedger>,
    owner: FxHashMap<u64, ProvenanceId>,
}

impl Attribution<'_> {
    fn enabled(&self) -> bool {
        self.ledger.is_some()
    }

    /// Records one event against `id`'s bucket (no-op without a ledger).
    fn note(
        &mut self,
        id: Option<ProvenanceId>,
        f: impl FnOnce(&mut crate::outcome::InjectionOutcome),
    ) {
        if let Some(ledger) = self.ledger.as_deref_mut() {
            f(ledger.outcome_mut(id));
        }
    }

    /// A prefetch of `line` issued by `tag` completed and filled L1I.
    fn filled(&mut self, line: Line, tag: Option<ProvenanceId>) {
        if self.enabled() {
            if let Some(id) = tag {
                self.owner.insert(line.raw(), id);
            }
        }
    }

    /// The untouched prefetch of `line` reached its end state (demanded or
    /// evicted); returns and forgets its owner.
    fn settle(&mut self, line: Line) -> Option<ProvenanceId> {
        if self.owner.is_empty() {
            None
        } else {
            self.owner.remove(&line.raw())
        }
    }
}

/// Per-block facts the replay loop consults on every event, precomputed once
/// per run so the hot loop never re-derives line spans from byte addresses.
struct BlockMeta {
    start: Addr,
    first_line: u64,
    last_line: u64,
    instrs: u64,
    data_accesses: u32,
}

fn block_metas(program: &Program) -> Vec<BlockMeta> {
    program
        .blocks()
        .iter()
        .map(|b| {
            let first_line = b.first_line().raw();
            BlockMeta {
                start: b.start(),
                first_line,
                last_line: first_line + b.line_count() - 1,
                instrs: u64::from(b.instrs()),
                data_accesses: u32::from(b.data_accesses()),
            }
        })
        .collect()
}

/// Replays `trace` through the simulated machine.
///
/// # Panics
///
/// Panics if the trace references blocks outside `program`.
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_sim::{run, RunOptions, SimConfig};
/// use ispy_trace::apps;
///
/// let model = apps::tomcat().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 5_000);
/// let result = run(&program, &trace, &SimConfig::default(), RunOptions::default());
/// assert_eq!(result.blocks, 5_000);
/// ```
pub fn run(
    program: &Program,
    trace: &Trace,
    cfg: &SimConfig,
    mut opts: RunOptions<'_>,
) -> SimResult {
    let mut hier = Hierarchy::new(cfg);
    let mut lbr = Lbr::new(cfg.lbr_depth, cfg.hash);
    let mut inflight = Inflight::new();
    let mut m = SimResult::default();
    let mut cycle: u64 = 0;
    let mut hw_out: Vec<Line> = Vec::new();
    let data_lines = program.data_footprint_lines();
    let mut stream_counter: u64 = 0;
    let stream_threshold = (cfg.d_stream_frac * 100.0) as u64;

    // Lower the injection plan into its dense compiled form unless the
    // caller already did (sweeps reuse one compiled plan across many runs).
    let compiled_storage;
    let injections: &CompiledInjections = match opts.compiled {
        Some(c) => c,
        None => {
            compiled_storage = match opts.injections {
                Some(map) if !map.is_empty() => map.compile(program.num_blocks()),
                _ => CompiledInjections::default(),
            };
            &compiled_storage
        }
    };
    let mut attr = Attribution { ledger: opts.outcomes.take(), owner: FxHashMap::default() };
    let metas = block_metas(program);
    // Shadow the code-line range (plus slack for next-line prefetchers past
    // the last block); prefetches of lines beyond it use the scan path.
    let max_code_line = metas.iter().map(|b| b.last_line).max().unwrap_or(0);
    hier.enable_l1i_shadow(max_code_line + 65);

    for (idx, block_id) in trace.iter().enumerate() {
        let meta = &metas[block_id.index()];
        m.blocks += 1;

        if let Some(obs) = opts.observer.as_deref_mut() {
            obs.block_entered(idx, block_id, cycle);
        }

        // 1. Retire the branch into this block.
        lbr.push(meta.start);

        // 2. Drain prefetches that completed before this block.
        inflight.drain_completed(cycle, |line, tag| {
            attr.filled(line, tag);
            if let Some(evicted) = hier.prefetch_fill(line) {
                m.pf_evicted_unused += 1;
                let owner = attr.settle(evicted);
                attr.note(owner, |o| o.evicted_unused += 1);
            }
        });

        // 3. Execute injected prefetch ops.
        let (ops, ids) = injections.site(block_id);
        let ops_issued = ops.len() as u64;
        m.pf_ops_executed += ops_issued;
        let runtime_hash = lbr.runtime_hash();
        for (op, id) in ops.iter().zip(ids) {
            attr.note(*id, |o| o.executed += 1);
            if op.fires(runtime_hash) {
                m.pf_ops_fired += 1;
                attr.note(*id, |o| o.fired += 1);
                // Issue the target lines base-first, without materialising
                // the `target_lines()` Vec (this is the injected-replay
                // hot path; one heap allocation per firing dominated it).
                match op {
                    PrefetchOp::Plain { target } | PrefetchOp::Cond { target, .. } => {
                        issue_prefetch(
                            &mut hier,
                            &mut inflight,
                            &mut m,
                            &mut attr,
                            cycle,
                            *target,
                            *id,
                        );
                    }
                    PrefetchOp::Coalesced { base, mask }
                    | PrefetchOp::CondCoalesced { base, mask, .. } => {
                        issue_prefetch(
                            &mut hier,
                            &mut inflight,
                            &mut m,
                            &mut attr,
                            cycle,
                            *base,
                            *id,
                        );
                        for line in mask.decode(*base) {
                            issue_prefetch(
                                &mut hier,
                                &mut inflight,
                                &mut m,
                                &mut attr,
                                cycle,
                                line,
                                *id,
                            );
                        }
                    }
                }
            } else {
                m.pf_ops_suppressed += 1;
                attr.note(*id, |o| o.suppressed += 1);
            }
        }

        // 4. Fetch the block's instruction lines.
        if cfg.ideal_icache {
            m.i_accesses += meta.last_line - meta.first_line + 1;
        } else {
            for raw in meta.first_line..=meta.last_line {
                let line = Line::new(raw);
                m.i_accesses += 1;
                // Fast path: one L1I set scan resolves residency, promotes
                // the line, and reports whether it was an untouched prefetch.
                if let Some(was_untouched) = hier.fetch_instr_hit(line) {
                    if was_untouched {
                        m.pf_useful += 1;
                        let owner = attr.settle(line);
                        attr.note(owner, |o| o.useful += 1);
                    }
                    hw_prefetch_hook(&mut opts, &mut hw_out, line, false);
                    issue_hw_lines(&mut hier, &mut inflight, &mut m, &mut attr, cycle, &mut hw_out);
                    continue;
                }
                // Miss path.
                m.i_misses += 1;
                if let Some(obs) = opts.observer.as_deref_mut() {
                    obs.icache_miss(idx, block_id, line, cycle);
                }
                let stall = if let Some(completion) = inflight.get(line) {
                    // Late prefetch: wait only the remaining time.
                    let tag = inflight.tag(line);
                    inflight.remove(line);
                    m.pf_late += 1;
                    m.pf_useful += 1;
                    attr.note(tag, |o| {
                        o.late += 1;
                        o.useful += 1;
                    });
                    let remaining = completion.saturating_sub(cycle);
                    hier.fetch_instr_miss(line); // state update; timing overridden
                    remaining
                } else {
                    let out = hier.fetch_instr_miss(line);
                    if let Some(evicted) = out.evicted_untouched {
                        m.pf_evicted_unused += 1;
                        let owner = attr.settle(evicted);
                        attr.note(owner, |o| o.evicted_unused += 1);
                    }
                    u64::from(out.extra_cycles)
                };
                m.i_stall_cycles += stall;
                cycle += stall;
                hw_prefetch_hook(&mut opts, &mut hw_out, line, true);
                issue_hw_lines(&mut hier, &mut inflight, &mut m, &mut attr, cycle, &mut hw_out);
            }
        }

        // 5. Data side.
        for k in 0..meta.data_accesses {
            m.d_accesses += 1;
            let site = mix(u64::from(block_id.0), u64::from(k));
            let line = if site % 100 < stream_threshold {
                stream_counter = stream_counter.wrapping_add(1);
                Line::new(DATA_LINE_BASE + stream_counter % data_lines)
            } else {
                Line::new(DATA_LINE_BASE + site % data_lines)
            };
            let out = hier.load_data(line);
            if out.extra_cycles > 0 {
                m.d_misses += 1;
                let stall = (f64::from(out.extra_cycles) * cfg.d_stall_factor) as u64;
                m.d_stall_cycles += stall;
                cycle += stall;
            }
        }

        // 6. Issue bandwidth.
        let instrs = meta.instrs;
        m.base_instrs += instrs;
        m.instrs += instrs + ops_issued;
        cycle += (instrs + ops_issued).div_ceil(u64::from(cfg.issue_width));
    }

    m.cycles = cycle;
    m
}

/// Invokes the hardware prefetcher, if any, collecting its requests.
fn hw_prefetch_hook(opts: &mut RunOptions<'_>, hw_out: &mut Vec<Line>, line: Line, was_miss: bool) {
    if let Some(hw) = opts.hw_prefetcher.as_deref_mut() {
        hw.on_fetch(line, was_miss, hw_out);
    }
}

/// Issues the lines a hardware prefetcher requested (never attributed to a
/// planned injection — they carry no provenance id).
fn issue_hw_lines(
    hier: &mut Hierarchy,
    inflight: &mut Inflight,
    m: &mut SimResult,
    attr: &mut Attribution<'_>,
    cycle: u64,
    hw_out: &mut Vec<Line>,
) {
    if hw_out.is_empty() {
        return;
    }
    for line in hw_out.drain(..) {
        issue_prefetch(hier, inflight, m, attr, cycle, line, None);
    }
}

/// Issues one prefetch line request on behalf of injection `tag`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn issue_prefetch(
    hier: &mut Hierarchy,
    inflight: &mut Inflight,
    m: &mut SimResult,
    attr: &mut Attribution<'_>,
    cycle: u64,
    line: Line,
    tag: Option<ProvenanceId>,
) {
    if hier.in_l1i(line) {
        m.pf_lines_resident += 1;
        attr.note(tag, |o| o.lines_resident += 1);
        return;
    }
    if inflight.get(line).is_some() {
        m.pf_lines_resident += 1;
        attr.note(tag, |o| o.lines_resident += 1);
        return;
    }
    let latency = hier.prefetch_latency_missing_l1i(line);
    inflight.insert(line, cycle + u64::from(latency), tag);
    m.pf_lines_issued += 1;
    attr.note(tag, |o| o.lines_issued += 1);
}

/// Cheap 64-bit mix for deterministic pseudo-random data addresses.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(0x94D049BB133111EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_isa::PrefetchOp;
    use ispy_trace::apps;

    fn small_app() -> (Program, Trace) {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 30_000);
        (program, trace)
    }

    #[test]
    fn deterministic_replay() {
        let (p, t) = small_app();
        let a = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let b = run(&p, &t, &SimConfig::default(), RunOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn ideal_is_fastest_and_missless() {
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let ideal = run(&p, &t, &SimConfig::ideal(), RunOptions::default());
        assert_eq!(ideal.i_misses, 0);
        assert_eq!(ideal.i_stall_cycles, 0);
        assert!(ideal.cycles < base.cycles);
        assert!(base.i_misses > 0, "workload must actually miss");
    }

    #[test]
    fn baseline_workload_is_frontend_bound() {
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let fb = base.frontend_bound();
        assert!(fb > 0.15, "frontend-bound fraction {fb} too small to study");
    }

    #[test]
    fn observer_sees_all_blocks_and_misses() {
        #[derive(Default)]
        struct Counter {
            blocks: usize,
            misses: usize,
        }
        impl SimObserver for Counter {
            fn block_entered(&mut self, _i: usize, _b: BlockId, _c: u64) {
                self.blocks += 1;
            }
            fn icache_miss(&mut self, _i: usize, _b: BlockId, _l: Line, _c: u64) {
                self.misses += 1;
            }
        }
        let (p, t) = small_app();
        let mut obs = Counter::default();
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { observer: Some(&mut obs), ..Default::default() },
        );
        assert_eq!(obs.blocks as u64, r.blocks);
        assert_eq!(obs.misses as u64, r.i_misses);
    }

    #[test]
    fn plain_injection_reduces_misses_on_repeating_pattern() {
        // Inject, at every block, a prefetch of the line that block's
        // successor misses — here simply prefetch every block's own next
        // lines far in advance via a map built from a profiling pass.
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());

        // Build a crude plan: for each observed miss, inject a plain
        // prefetch 8 dynamic blocks earlier.
        struct Rec {
            events: Vec<(usize, Line)>,
        }
        impl SimObserver for Rec {
            fn icache_miss(&mut self, idx: usize, _b: BlockId, line: Line, _c: u64) {
                self.events.push((idx, line));
            }
        }
        let mut rec = Rec { events: Vec::new() };
        run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { observer: Some(&mut rec), ..Default::default() },
        );
        let mut map = InjectionMap::new();
        let mut seen = std::collections::HashSet::new();
        for (idx, line) in rec.events {
            if idx >= 8 {
                let site = t.blocks()[idx - 8];
                if seen.insert((site, line)) {
                    map.push(site, PrefetchOp::Plain { target: line });
                }
            }
        }
        let with = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert!(
            with.i_misses < base.i_misses,
            "prefetching must reduce misses: {} vs {}",
            with.i_misses,
            base.i_misses
        );
        assert!(with.pf_ops_executed > 0);
        assert!(with.pf_useful > 0);
    }

    #[test]
    fn conditional_op_with_impossible_context_never_fires() {
        let (p, t) = small_app();
        let mut map = InjectionMap::new();
        // A context hash demanding every bit set will (essentially) never
        // match a 32-entry LBR under the 16-bit scheme... but could.
        // Use all 64 bits of a 64-bit scheme for certainty.
        let cfg = SimConfig::default().with_hash(ispy_isa::HashConfig::new(64, 2));
        let ctx = ispy_isa::ContextHash::from_bits(u64::MAX, 64);
        map.push(t.blocks()[0], PrefetchOp::Cond { target: Line::new(0x999999), ctx });
        let r = run(&p, &t, &cfg, RunOptions { injections: Some(&map), ..Default::default() });
        assert!(r.pf_ops_executed > 0);
        assert_eq!(r.pf_ops_fired, 0);
        assert_eq!(r.pf_ops_suppressed, r.pf_ops_executed);
        assert_eq!(r.pf_lines_issued, 0);
    }

    #[test]
    fn injected_ops_count_toward_dynamic_instrs() {
        let (p, t) = small_app();
        let mut map = InjectionMap::new();
        map.push(t.blocks()[0], PrefetchOp::Plain { target: Line::new(1) });
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert_eq!(r.instrs, r.base_instrs + r.pf_ops_executed);
        assert!(r.dynamic_increase() > 0.0);
    }

    #[test]
    fn useless_prefetches_hurt_or_do_not_help() {
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        // Prefetch garbage lines everywhere: pure pollution.
        let mut map = InjectionMap::new();
        let hot: Vec<BlockId> = t.blocks()[..200].to_vec();
        for (i, b) in hot.into_iter().enumerate() {
            map.push(b, PrefetchOp::Plain { target: Line::new(0xBAD_0000 + i as u64 * 7) });
        }
        let with = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert!(with.cycles >= base.cycles, "{} < {}", with.cycles, base.cycles);
        assert_eq!(with.pf_useful, 0);
    }

    #[test]
    fn coalesced_op_prefetches_all_targets() {
        let (p, t) = small_app();
        let mut map = InjectionMap::new();
        let mask = ispy_isa::CoalesceMask::from_bits(0xFF, 8);
        map.push(t.blocks()[0], PrefetchOp::Coalesced { base: Line::new(0x700000), mask });
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        // Base + 8 extra lines, issued at least once (the first execution).
        assert!(r.pf_lines_issued >= 9);
    }

    #[test]
    fn hw_prefetcher_hook_is_invoked() {
        struct NextLine;
        impl HwPrefetcher for NextLine {
            fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
                if was_miss {
                    out.push(line.offset(1));
                }
            }
        }
        let (p, t) = small_app();
        let base = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let mut hw = NextLine;
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { hw_prefetcher: Some(&mut hw), ..Default::default() },
        );
        assert!(r.pf_lines_issued > 0);
        assert!(r.i_misses < base.i_misses, "next-line should help sequential code");
    }

    #[test]
    fn timely_prefetch_eliminates_stall_late_prefetch_reduces_it() {
        // Construct a two-block loop: block 0 (hot) and block 1 at a far
        // line. Injecting a prefetch of block 1's line at block 0 hides the
        // latency when the issue-to-use distance is long enough.
        use ispy_trace::program::{BlockExit, FuncId, Function};
        use ispy_trace::{Addr, BasicBlock, Program};
        let blocks = vec![
            BasicBlock::new(Addr::new(0), 64, 64, 0), // 16 issue cycles
            BasicBlock::new(Addr::new(1 << 20), 64, 16, 0),
        ];
        let exits = vec![
            BlockExit::Branch(vec![(BlockId(1), 1.0)]),
            BlockExit::Branch(vec![(BlockId(0), 1.0)]),
        ];
        let funcs = vec![Function::new(BlockId(0), 0, 2)];
        let owner = vec![FuncId(0), FuncId(0)];
        let program = Program::new("loop", blocks, exits, funcs, owner, vec![vec![FuncId(0)]]);
        let trace = program.record_trace(ispy_trace::InputSpec::uniform(0, 1), 4_000);
        let cfg = SimConfig::default();
        // Thrash block 1's line out of L1I? In this tiny program it stays
        // resident, so instead compare cold-start behaviour over a fresh
        // hierarchy per run: the first access misses either way; with the
        // prefetch the *remaining stall* shrinks because the line is in
        // flight by the time it is fetched.
        let base = run(&program, &trace, &cfg, RunOptions::default());
        let mut map = InjectionMap::new();
        map.push(BlockId(0), PrefetchOp::Plain { target: Line::new((1 << 20) / 64) });
        let with = run(
            &program,
            &trace,
            &cfg,
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert!(with.i_stall_cycles <= base.i_stall_cycles);
        assert!(with.pf_lines_resident > 0, "steady-state firings find the line resident");
    }

    #[test]
    fn late_prefetch_counts_as_miss_but_shortens_stall() {
        // Issue a prefetch of a memory-resident line in the same block that
        // fetches it next: the prefetch is in flight when the demand
        // arrives (late), the stall is the remaining time, and the event
        // still counts as a miss.
        use ispy_trace::program::{BlockExit, FuncId, Function};
        use ispy_trace::{Addr, BasicBlock, Program};
        let target_line = Line::new((1 << 21) / 64);
        // Block 0: 4 instrs + the injected op = ceil(5/4) = 2 issue cycles,
        // after a 257-cycle cold miss -> block 1 enters at cycle 259, one
        // cycle before the 260-cycle prefetch completes: strictly late.
        let blocks = vec![
            BasicBlock::new(Addr::new(0), 32, 4, 0),
            BasicBlock::new(Addr::new(1 << 21), 32, 8, 0),
        ];
        let exits = vec![BlockExit::Branch(vec![(BlockId(1), 1.0)]), BlockExit::Return];
        let funcs = vec![Function::new(BlockId(0), 0, 2)];
        let owner = vec![FuncId(0), FuncId(0)];
        let program = Program::new("late", blocks, exits, funcs, owner, vec![vec![FuncId(0)]]);
        let trace = ispy_trace::Trace::new("late", vec![BlockId(0), BlockId(1)]);
        let mut map = InjectionMap::new();
        map.push(BlockId(0), PrefetchOp::Plain { target: target_line });
        let cfg = SimConfig::default();
        let base = run(&program, &trace, &cfg, RunOptions::default());
        let with = run(
            &program,
            &trace,
            &cfg,
            RunOptions { injections: Some(&map), ..Default::default() },
        );
        assert_eq!(with.pf_late, 1, "demand must catch the prefetch in flight");
        assert_eq!(with.i_misses, base.i_misses, "late prefetch still counts as a miss");
        assert!(
            with.i_stall_cycles < base.i_stall_cycles,
            "but the stall shrinks: {} vs {}",
            with.i_stall_cycles,
            base.i_stall_cycles
        );
    }

    #[test]
    fn ideal_icache_still_runs_data_side_and_issue() {
        let (p, t) = small_app();
        let r = run(&p, &t, &SimConfig::ideal(), RunOptions::default());
        assert!(r.cycles > 0);
        assert!(r.d_accesses > 0);
        assert_eq!(r.i_misses, 0);
        // Accesses are still counted for bookkeeping.
        assert!(r.i_accesses > 0);
    }

    #[test]
    fn outcome_ledger_matches_aggregate_counters() {
        use crate::outcome::OutcomeLedger;
        use ispy_isa::ProvenanceId;
        // Build a miss-driven plan as in plain_injection_reduces_misses, but
        // tag every op with a provenance id and check the ledger's totals
        // reconcile exactly with the aggregate SimResult counters.
        let (p, t) = small_app();
        struct Rec {
            events: Vec<(usize, Line)>,
        }
        impl SimObserver for Rec {
            fn icache_miss(&mut self, idx: usize, _b: BlockId, line: Line, _c: u64) {
                self.events.push((idx, line));
            }
        }
        let mut rec = Rec { events: Vec::new() };
        run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { observer: Some(&mut rec), ..Default::default() },
        );
        let mut map = InjectionMap::new();
        let mut seen = std::collections::HashSet::new();
        let mut next_id = 0u32;
        for (idx, line) in rec.events {
            if idx >= 8 {
                let site = t.blocks()[idx - 8];
                if seen.insert((site, line)) {
                    map.push_traced(
                        site,
                        PrefetchOp::Plain { target: line },
                        ProvenanceId(next_id),
                    );
                    next_id += 1;
                }
            }
        }
        let mut ledger = OutcomeLedger::with_capacity(next_id as usize);
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                injections: Some(&map),
                outcomes: Some(&mut ledger),
                ..Default::default()
            },
        );
        assert_eq!(ledger.per_injection.len(), next_id as usize);
        assert_eq!(ledger.total(|o| o.executed), r.pf_ops_executed);
        assert_eq!(ledger.total(|o| o.fired), r.pf_ops_fired);
        assert_eq!(ledger.total(|o| o.suppressed), r.pf_ops_suppressed);
        assert_eq!(ledger.total(|o| o.lines_issued), r.pf_lines_issued);
        assert_eq!(ledger.total(|o| o.lines_resident), r.pf_lines_resident);
        assert_eq!(ledger.total(|o| o.useful), r.pf_useful);
        assert_eq!(ledger.total(|o| o.late), r.pf_late);
        assert_eq!(ledger.total(|o| o.evicted_unused), r.pf_evicted_unused);
        // Plain ops are tagged, so nothing should land in the untracked bucket.
        assert_eq!(ledger.untracked, crate::outcome::InjectionOutcome::default());
        // Per-injection invariant: every execution either fired or was suppressed.
        for o in &ledger.per_injection {
            assert_eq!(o.executed, o.fired + o.suppressed);
        }
    }

    #[test]
    fn ledger_routes_hw_prefetches_to_untracked() {
        use crate::outcome::OutcomeLedger;
        struct NextLine;
        impl HwPrefetcher for NextLine {
            fn on_fetch(&mut self, line: Line, was_miss: bool, out: &mut Vec<Line>) {
                if was_miss {
                    out.push(line.offset(1));
                }
            }
        }
        let (p, t) = small_app();
        let mut hw = NextLine;
        let mut ledger = OutcomeLedger::default();
        let r = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                hw_prefetcher: Some(&mut hw),
                outcomes: Some(&mut ledger),
                ..Default::default()
            },
        );
        assert!(ledger.per_injection.is_empty());
        assert_eq!(ledger.untracked.lines_issued, r.pf_lines_issued);
        assert_eq!(ledger.untracked.useful, r.pf_useful);
    }

    #[test]
    fn attaching_a_ledger_does_not_change_results() {
        use crate::outcome::OutcomeLedger;
        let (p, t) = small_app();
        let plain = run(&p, &t, &SimConfig::default(), RunOptions::default());
        let mut ledger = OutcomeLedger::default();
        let observed = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions { outcomes: Some(&mut ledger), ..Default::default() },
        );
        assert_eq!(plain, observed);
    }

    #[test]
    fn inflight_stale_heap_stays_bounded() {
        // A line demanded before its prefetch completes leaves a stale heap
        // entry behind; compaction must keep the heap proportional to the
        // *live* in-flight set, not to the total number of such events.
        let mut inf = Inflight::new();
        for i in 0..100_000u64 {
            let line = Line::new(i % 16);
            inf.insert(line, i + 1_000, None);
            inf.remove(line); // demand hit while in flight
        }
        assert!(inf.by_line.is_empty());
        assert!(
            inf.queue.len() < 2 * INFLIGHT_COMPACT_MIN,
            "stale entries must be compacted away, heap holds {}",
            inf.queue.len()
        );
    }

    #[test]
    fn inflight_compaction_preserves_drain_order() {
        let mut inf = Inflight::new();
        for i in 0..200u64 {
            inf.insert(Line::new(i), 1_000 - i, None);
        }
        // Invalidate every other line, forcing at least one compaction.
        for i in (0..200u64).step_by(2) {
            inf.remove(Line::new(i));
        }
        let mut drained = Vec::new();
        inf.drain_completed(u64::MAX, |line, _| drained.push(line.raw()));
        let expected: Vec<u64> = (0..200u64).filter(|i| i % 2 == 1).rev().collect();
        assert_eq!(drained, expected, "completion order must survive compaction");
    }

    #[test]
    fn precompiled_plan_matches_map_lowering() {
        use crate::outcome::OutcomeLedger;
        use ispy_isa::{CoalesceMask, ProvenanceId};
        // Passing a pre-compiled plan must be byte-identical to handing the
        // engine the raw map, across all four op kinds and the ledger.
        let (p, t) = small_app();
        let hash = SimConfig::default().hash;
        let mut map = InjectionMap::new();
        for (n, idx) in (0..t.blocks().len()).step_by(97).enumerate() {
            let site = t.blocks()[idx];
            let target = Line::new(0x5000 + n as u64 * 3);
            let ctx = hash.context_hash([p.block(site).start()]);
            let mask = CoalesceMask::from_bits(0b1011, 8);
            let op = match n % 4 {
                0 => PrefetchOp::Plain { target },
                1 => PrefetchOp::Cond { target, ctx },
                2 => PrefetchOp::Coalesced { base: target, mask },
                _ => PrefetchOp::CondCoalesced { base: target, mask, ctx },
            };
            map.push_traced(site, op, ProvenanceId(n as u32));
        }
        let mut ledger_map = OutcomeLedger::default();
        let via_map = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                injections: Some(&map),
                outcomes: Some(&mut ledger_map),
                ..Default::default()
            },
        );
        let compiled = map.compile(p.num_blocks());
        let mut ledger_pre = OutcomeLedger::default();
        let via_compiled = run(
            &p,
            &t,
            &SimConfig::default(),
            RunOptions {
                compiled: Some(&compiled),
                outcomes: Some(&mut ledger_pre),
                ..Default::default()
            },
        );
        assert_eq!(via_map, via_compiled);
        assert_eq!(ledger_map, ledger_pre);
        assert!(via_map.pf_ops_executed > 0);
    }

    #[test]
    fn data_side_is_exercised() {
        let (p, t) = small_app();
        let r = run(&p, &t, &SimConfig::default(), RunOptions::default());
        assert!(r.d_accesses > 0);
        assert!(r.d_misses > 0);
        assert!(r.d_stall_cycles > 0);
    }
}
