//! Injection maps: which prefetch ops run at which basic blocks.
//!
//! An [`InjectionMap`] is the reproduction's equivalent of the paper's
//! rewritten binary: a per-block list of injected code-prefetch instructions
//! that the simulator executes when the block is entered, plus the static
//! footprint accounting the paper reports in Figs. 4/14.

use crate::ops::PrefetchOp;
use ispy_trace::BlockId;
use std::collections::BTreeMap;

/// A plan of injected prefetch instructions, keyed by injection site.
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_trace::{BlockId, Line};
///
/// let mut map = InjectionMap::new();
/// map.push(BlockId(7), PrefetchOp::Plain { target: Line::new(42) });
/// assert_eq!(map.num_ops(), 1);
/// assert_eq!(map.injected_bytes(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InjectionMap {
    per_block: BTreeMap<BlockId, Vec<PrefetchOp>>,
}

impl InjectionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an op at `site`.
    pub fn push(&mut self, site: BlockId, op: PrefetchOp) {
        self.per_block.entry(site).or_default().push(op);
    }

    /// The ops injected at `site`, if any.
    pub fn ops_at(&self, site: BlockId) -> &[PrefetchOp] {
        self.per_block.get(&site).map_or(&[], Vec::as_slice)
    }

    /// Iterates `(site, ops)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[PrefetchOp])> {
        self.per_block.iter().map(|(b, ops)| (*b, ops.as_slice()))
    }

    /// Number of injection sites.
    pub fn num_sites(&self) -> usize {
        self.per_block.len()
    }

    /// Total number of injected instructions.
    pub fn num_ops(&self) -> usize {
        self.per_block.values().map(Vec::len).sum()
    }

    /// Whether the map injects nothing.
    pub fn is_empty(&self) -> bool {
        self.per_block.is_empty()
    }

    /// Total bytes added to the text segment (static code footprint delta).
    pub fn injected_bytes(&self) -> u64 {
        self.per_block.values().flatten().map(|op| u64::from(op.encoded_bytes())).sum()
    }

    /// Static footprint increase relative to a text segment of `text_bytes`.
    pub fn static_increase(&self, text_bytes: u64) -> f64 {
        if text_bytes == 0 {
            0.0
        } else {
            self.injected_bytes() as f64 / text_bytes as f64
        }
    }

    /// Count of ops by mnemonic, for reporting.
    pub fn op_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist = BTreeMap::new();
        for ops in self.per_block.values() {
            for op in ops {
                *hist.entry(op.mnemonic()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Merges another map into this one.
    pub fn merge(&mut self, other: InjectionMap) {
        for (site, ops) in other.per_block {
            self.per_block.entry(site).or_default().extend(ops);
        }
    }
}

impl FromIterator<(BlockId, PrefetchOp)> for InjectionMap {
    fn from_iter<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(iter: I) -> Self {
        let mut map = InjectionMap::new();
        for (site, op) in iter {
            map.push(site, op);
        }
        map
    }
}

impl Extend<(BlockId, PrefetchOp)> for InjectionMap {
    fn extend<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(&mut self, iter: I) {
        for (site, op) in iter {
            self.push(site, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::Line;

    fn plain(l: u64) -> PrefetchOp {
        PrefetchOp::Plain { target: Line::new(l) }
    }

    #[test]
    fn push_and_lookup() {
        let mut m = InjectionMap::new();
        m.push(BlockId(1), plain(10));
        m.push(BlockId(1), plain(11));
        m.push(BlockId(2), plain(12));
        assert_eq!(m.ops_at(BlockId(1)).len(), 2);
        assert_eq!(m.ops_at(BlockId(2)).len(), 1);
        assert!(m.ops_at(BlockId(3)).is_empty());
        assert_eq!(m.num_sites(), 2);
        assert_eq!(m.num_ops(), 3);
    }

    #[test]
    fn footprint_accounting() {
        let m: InjectionMap =
            [(BlockId(0), plain(1)), (BlockId(0), plain(2))].into_iter().collect();
        assert_eq!(m.injected_bytes(), 14);
        assert!((m.static_increase(1400) - 0.01).abs() < 1e-12);
        assert_eq!(m.static_increase(0), 0.0);
    }

    #[test]
    fn histogram_counts_mnemonics() {
        let mut m = InjectionMap::new();
        m.push(BlockId(0), plain(1));
        m.push(BlockId(1), plain(2));
        let hist = m.op_histogram();
        assert_eq!(hist.get("prefetch"), Some(&2));
    }

    #[test]
    fn merge_concatenates() {
        let mut a: InjectionMap = [(BlockId(0), plain(1))].into_iter().collect();
        let b: InjectionMap =
            [(BlockId(0), plain(2)), (BlockId(9), plain(3))].into_iter().collect();
        a.merge(b);
        assert_eq!(a.ops_at(BlockId(0)).len(), 2);
        assert_eq!(a.num_sites(), 2);
    }

    #[test]
    fn iter_is_in_block_order() {
        let m: InjectionMap =
            [(BlockId(9), plain(1)), (BlockId(3), plain(2))].into_iter().collect();
        let sites: Vec<_> = m.iter().map(|(b, _)| b.0).collect();
        assert_eq!(sites, vec![3, 9]);
    }

    #[test]
    fn empty_map() {
        let m = InjectionMap::new();
        assert!(m.is_empty());
        assert_eq!(m.injected_bytes(), 0);
    }
}
