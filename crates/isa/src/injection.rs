//! Injection maps: which prefetch ops run at which basic blocks.
//!
//! An [`InjectionMap`] is the reproduction's equivalent of the paper's
//! rewritten binary: a per-block list of injected code-prefetch instructions
//! that the simulator executes when the block is entered, plus the static
//! footprint accounting the paper reports in Figs. 4/14.

use crate::ops::PrefetchOp;
use ispy_trace::BlockId;
use std::collections::BTreeMap;

/// Identity of one planned injection, assigned by the planner in emission
/// order and carried through the simulator so every runtime outcome can be
/// attributed back to the decision that caused it.
///
/// The id indexes the planner's provenance table (`Plan::provenance` in
/// `ispy-core`): id `k` is the `k`-th record.
///
/// # Examples
///
/// ```
/// use ispy_isa::ProvenanceId;
///
/// let id = ProvenanceId(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvenanceId(pub u32);

impl ProvenanceId {
    /// The id as a `usize` index into a provenance table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The ops at one site plus their provenance ids, kept index-aligned.
#[derive(Debug, Clone, PartialEq, Default)]
struct SiteOps {
    ops: Vec<PrefetchOp>,
    ids: Vec<Option<ProvenanceId>>,
}

impl SiteOps {
    fn push(&mut self, op: PrefetchOp, id: Option<ProvenanceId>) {
        self.ops.push(op);
        self.ids.push(id);
    }
}

/// A plan of injected prefetch instructions, keyed by injection site.
///
/// Each op optionally carries a [`ProvenanceId`] linking it back to the
/// planner decision that emitted it; maps built by hand (tests, baselines)
/// may leave ids unset via [`InjectionMap::push`].
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_trace::{BlockId, Line};
///
/// let mut map = InjectionMap::new();
/// map.push(BlockId(7), PrefetchOp::Plain { target: Line::new(42) });
/// assert_eq!(map.num_ops(), 1);
/// assert_eq!(map.injected_bytes(), 7);
/// assert_eq!(map.ids_at(ispy_trace::BlockId(7)), &[None]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InjectionMap {
    per_block: BTreeMap<BlockId, SiteOps>,
}

impl InjectionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an op at `site` with no provenance id.
    pub fn push(&mut self, site: BlockId, op: PrefetchOp) {
        self.per_block.entry(site).or_default().push(op, None);
    }

    /// Adds an op at `site` attributed to the planner decision `id`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ispy_isa::{InjectionMap, PrefetchOp, ProvenanceId};
    /// use ispy_trace::{BlockId, Line};
    ///
    /// let mut map = InjectionMap::new();
    /// map.push_traced(BlockId(1), PrefetchOp::Plain { target: Line::new(9) }, ProvenanceId(0));
    /// assert_eq!(map.ids_at(BlockId(1)), &[Some(ProvenanceId(0))]);
    /// ```
    pub fn push_traced(&mut self, site: BlockId, op: PrefetchOp, id: ProvenanceId) {
        self.per_block.entry(site).or_default().push(op, Some(id));
    }

    /// The ops injected at `site`, if any.
    pub fn ops_at(&self, site: BlockId) -> &[PrefetchOp] {
        self.per_block.get(&site).map_or(&[], |s| s.ops.as_slice())
    }

    /// The provenance ids of the ops at `site`, index-aligned with
    /// [`InjectionMap::ops_at`].
    pub fn ids_at(&self, site: BlockId) -> &[Option<ProvenanceId>] {
        self.per_block.get(&site).map_or(&[], |s| s.ids.as_slice())
    }

    /// Iterates `(site, ops)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[PrefetchOp])> {
        self.per_block.iter().map(|(b, s)| (*b, s.ops.as_slice()))
    }

    /// Number of injection sites.
    pub fn num_sites(&self) -> usize {
        self.per_block.len()
    }

    /// Total number of injected instructions.
    pub fn num_ops(&self) -> usize {
        self.per_block.values().map(|s| s.ops.len()).sum()
    }

    /// Whether the map injects nothing.
    pub fn is_empty(&self) -> bool {
        self.per_block.is_empty()
    }

    /// Total bytes added to the text segment (static code footprint delta).
    pub fn injected_bytes(&self) -> u64 {
        self.per_block.values().flat_map(|s| &s.ops).map(|op| u64::from(op.encoded_bytes())).sum()
    }

    /// Static footprint increase relative to a text segment of `text_bytes`.
    pub fn static_increase(&self, text_bytes: u64) -> f64 {
        if text_bytes == 0 {
            0.0
        } else {
            self.injected_bytes() as f64 / text_bytes as f64
        }
    }

    /// Count of ops by mnemonic, for reporting.
    pub fn op_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist = BTreeMap::new();
        for site in self.per_block.values() {
            for op in &site.ops {
                *hist.entry(op.mnemonic()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Merges another map into this one, preserving provenance ids.
    pub fn merge(&mut self, other: InjectionMap) {
        for (site, ops) in other.per_block {
            let entry = self.per_block.entry(site).or_default();
            entry.ops.extend(ops.ops);
            entry.ids.extend(ops.ids);
        }
    }
}

impl FromIterator<(BlockId, PrefetchOp)> for InjectionMap {
    fn from_iter<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(iter: I) -> Self {
        let mut map = InjectionMap::new();
        for (site, op) in iter {
            map.push(site, op);
        }
        map
    }
}

impl Extend<(BlockId, PrefetchOp)> for InjectionMap {
    fn extend<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(&mut self, iter: I) {
        for (site, op) in iter {
            self.push(site, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::Line;

    fn plain(l: u64) -> PrefetchOp {
        PrefetchOp::Plain { target: Line::new(l) }
    }

    #[test]
    fn push_and_lookup() {
        let mut m = InjectionMap::new();
        m.push(BlockId(1), plain(10));
        m.push(BlockId(1), plain(11));
        m.push(BlockId(2), plain(12));
        assert_eq!(m.ops_at(BlockId(1)).len(), 2);
        assert_eq!(m.ops_at(BlockId(2)).len(), 1);
        assert!(m.ops_at(BlockId(3)).is_empty());
        assert_eq!(m.num_sites(), 2);
        assert_eq!(m.num_ops(), 3);
    }

    #[test]
    fn footprint_accounting() {
        let m: InjectionMap =
            [(BlockId(0), plain(1)), (BlockId(0), plain(2))].into_iter().collect();
        assert_eq!(m.injected_bytes(), 14);
        assert!((m.static_increase(1400) - 0.01).abs() < 1e-12);
        assert_eq!(m.static_increase(0), 0.0);
    }

    #[test]
    fn histogram_counts_mnemonics() {
        let mut m = InjectionMap::new();
        m.push(BlockId(0), plain(1));
        m.push(BlockId(1), plain(2));
        let hist = m.op_histogram();
        assert_eq!(hist.get("prefetch"), Some(&2));
    }

    #[test]
    fn merge_concatenates() {
        let mut a: InjectionMap = [(BlockId(0), plain(1))].into_iter().collect();
        let b: InjectionMap =
            [(BlockId(0), plain(2)), (BlockId(9), plain(3))].into_iter().collect();
        a.merge(b);
        assert_eq!(a.ops_at(BlockId(0)).len(), 2);
        assert_eq!(a.num_sites(), 2);
    }

    #[test]
    fn traced_ids_stay_aligned_with_ops() {
        let mut m = InjectionMap::new();
        m.push_traced(BlockId(1), plain(10), ProvenanceId(0));
        m.push(BlockId(1), plain(11));
        m.push_traced(BlockId(1), plain(12), ProvenanceId(2));
        assert_eq!(m.ids_at(BlockId(1)), &[Some(ProvenanceId(0)), None, Some(ProvenanceId(2))]);
        assert_eq!(m.ops_at(BlockId(1)).len(), m.ids_at(BlockId(1)).len());
        assert!(m.ids_at(BlockId(99)).is_empty());
    }

    #[test]
    fn merge_preserves_ids() {
        let mut a = InjectionMap::new();
        a.push_traced(BlockId(0), plain(1), ProvenanceId(0));
        let mut b = InjectionMap::new();
        b.push_traced(BlockId(0), plain(2), ProvenanceId(1));
        a.merge(b);
        assert_eq!(a.ids_at(BlockId(0)), &[Some(ProvenanceId(0)), Some(ProvenanceId(1))]);
    }

    #[test]
    fn iter_is_in_block_order() {
        let m: InjectionMap =
            [(BlockId(9), plain(1)), (BlockId(3), plain(2))].into_iter().collect();
        let sites: Vec<_> = m.iter().map(|(b, _)| b.0).collect();
        assert_eq!(sites, vec![3, 9]);
    }

    #[test]
    fn empty_map() {
        let m = InjectionMap::new();
        assert!(m.is_empty());
        assert_eq!(m.injected_bytes(), 0);
    }
}
