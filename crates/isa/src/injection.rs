//! Injection maps: which prefetch ops run at which basic blocks.
//!
//! An [`InjectionMap`] is the reproduction's equivalent of the paper's
//! rewritten binary: a per-block list of injected code-prefetch instructions
//! that the simulator executes when the block is entered, plus the static
//! footprint accounting the paper reports in Figs. 4/14.

use crate::ops::PrefetchOp;
use ispy_trace::{BlockId, Line};
use std::collections::BTreeMap;

/// Identity of one planned injection, assigned by the planner in emission
/// order and carried through the simulator so every runtime outcome can be
/// attributed back to the decision that caused it.
///
/// The id indexes the planner's provenance table (`Plan::provenance` in
/// `ispy-core`): id `k` is the `k`-th record.
///
/// # Examples
///
/// ```
/// use ispy_isa::ProvenanceId;
///
/// let id = ProvenanceId(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvenanceId(pub u32);

impl ProvenanceId {
    /// The id as a `usize` index into a provenance table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The ops at one site plus their provenance ids, kept index-aligned.
#[derive(Debug, Clone, PartialEq, Default)]
struct SiteOps {
    ops: Vec<PrefetchOp>,
    ids: Vec<Option<ProvenanceId>>,
}

impl SiteOps {
    fn push(&mut self, op: PrefetchOp, id: Option<ProvenanceId>) {
        self.ops.push(op);
        self.ids.push(id);
    }
}

/// A plan of injected prefetch instructions, keyed by injection site.
///
/// Each op optionally carries a [`ProvenanceId`] linking it back to the
/// planner decision that emitted it; maps built by hand (tests, baselines)
/// may leave ids unset via [`InjectionMap::push`].
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_trace::{BlockId, Line};
///
/// let mut map = InjectionMap::new();
/// map.push(BlockId(7), PrefetchOp::Plain { target: Line::new(42) });
/// assert_eq!(map.num_ops(), 1);
/// assert_eq!(map.injected_bytes(), 7);
/// assert_eq!(map.ids_at(ispy_trace::BlockId(7)), &[None]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InjectionMap {
    per_block: BTreeMap<BlockId, SiteOps>,
}

impl InjectionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an op at `site` with no provenance id.
    pub fn push(&mut self, site: BlockId, op: PrefetchOp) {
        self.per_block.entry(site).or_default().push(op, None);
    }

    /// Adds an op at `site` attributed to the planner decision `id`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ispy_isa::{InjectionMap, PrefetchOp, ProvenanceId};
    /// use ispy_trace::{BlockId, Line};
    ///
    /// let mut map = InjectionMap::new();
    /// map.push_traced(BlockId(1), PrefetchOp::Plain { target: Line::new(9) }, ProvenanceId(0));
    /// assert_eq!(map.ids_at(BlockId(1)), &[Some(ProvenanceId(0))]);
    /// ```
    pub fn push_traced(&mut self, site: BlockId, op: PrefetchOp, id: ProvenanceId) {
        self.per_block.entry(site).or_default().push(op, Some(id));
    }

    /// The ops injected at `site`, if any.
    pub fn ops_at(&self, site: BlockId) -> &[PrefetchOp] {
        self.per_block.get(&site).map_or(&[], |s| s.ops.as_slice())
    }

    /// The provenance ids of the ops at `site`, index-aligned with
    /// [`InjectionMap::ops_at`].
    pub fn ids_at(&self, site: BlockId) -> &[Option<ProvenanceId>] {
        self.per_block.get(&site).map_or(&[], |s| s.ids.as_slice())
    }

    /// Iterates `(site, ops)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[PrefetchOp])> {
        self.per_block.iter().map(|(b, s)| (*b, s.ops.as_slice()))
    }

    /// Number of injection sites.
    pub fn num_sites(&self) -> usize {
        self.per_block.len()
    }

    /// Total number of injected instructions.
    pub fn num_ops(&self) -> usize {
        self.per_block.values().map(|s| s.ops.len()).sum()
    }

    /// Whether the map injects nothing.
    pub fn is_empty(&self) -> bool {
        self.per_block.is_empty()
    }

    /// Total bytes added to the text segment (static code footprint delta).
    pub fn injected_bytes(&self) -> u64 {
        self.per_block.values().flat_map(|s| &s.ops).map(|op| u64::from(op.encoded_bytes())).sum()
    }

    /// Static footprint increase relative to a text segment of `text_bytes`.
    pub fn static_increase(&self, text_bytes: u64) -> f64 {
        if text_bytes == 0 {
            0.0
        } else {
            self.injected_bytes() as f64 / text_bytes as f64
        }
    }

    /// Count of ops by mnemonic, for reporting.
    pub fn op_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist = BTreeMap::new();
        for site in self.per_block.values() {
            for op in &site.ops {
                *hist.entry(op.mnemonic()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Merges another map into this one, preserving provenance ids.
    pub fn merge(&mut self, other: InjectionMap) {
        for (site, ops) in other.per_block {
            let entry = self.per_block.entry(site).or_default();
            entry.ops.extend(ops.ops);
            entry.ids.extend(ops.ids);
        }
    }

    /// Lowers the map into its dense, replay-ready form; see
    /// [`CompiledInjections`]. `min_blocks` (typically
    /// `Program::num_blocks`) sizes the lookup table so every block the
    /// trace can reference indexes in bounds.
    pub fn compile(&self, min_blocks: usize) -> CompiledInjections {
        CompiledInjections::compile(self, min_blocks)
    }
}

/// The dense, replay-ready lowering of an [`InjectionMap`].
///
/// Block ids are dense indices, so the per-event `ops_at`/`ids_at` lookups
/// the simulator performs on *every* trace event can be one bounds-checked
/// slice index instead of two `BTreeMap` tree walks. All sites' ops (and
/// their index-aligned provenance ids) live in two contiguous arrays with a
/// prefix-offset table indexed by `BlockId` — the same layout a compiler's
/// row-displacement dispatch table would use.
///
/// Compiling is `O(sites + blocks)`; sweeps that re-simulate one plan over
/// many traces (e.g. the Fig. 16 input-drift grid) compile once and pass the
/// result through [`RunOptions`](../../ispy_sim/struct.RunOptions.html) for
/// every run.
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_trace::{BlockId, Line};
///
/// let mut map = InjectionMap::new();
/// map.push(BlockId(3), PrefetchOp::Plain { target: Line::new(42) });
/// let compiled = map.compile(10);
/// assert_eq!(compiled.ops_at(BlockId(3)), map.ops_at(BlockId(3)));
/// assert!(compiled.ops_at(BlockId(9)).is_empty());
/// assert!(compiled.ops_at(BlockId(1_000_000)).is_empty()); // out of range
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledInjections {
    /// `starts[b]..starts[b + 1]` is block `b`'s range in `ops`/`ids`.
    starts: Vec<u32>,
    ops: Vec<PrefetchOp>,
    ids: Vec<Option<ProvenanceId>>,
    /// The injection-skip index: bit `b` set iff block `b` has ops. The
    /// replay engine tests this one word per event to batch over runs of
    /// injection-free blocks without touching the offset table at all.
    site_bits: Vec<u64>,
    /// Branch-free lowering of `ops`, index-aligned with `ops`/`ids`.
    compiled: Vec<CompiledOp>,
    /// Every op's target lines, flattened base-first; a [`CompiledOp`]
    /// addresses its slice by range so firing never re-decodes a coalesce
    /// mask bit-by-bit.
    lines: Vec<Line>,
}

/// One prefetch op in the form the replay engine's hot loop consumes: the
/// condition as a raw bitmask (`0` for unconditional ops — the subset test
/// `bits & !runtime == 0` then trivially passes, so firing needs no branch
/// on op kind), the target lines pre-flattened, and the L1I presence-shadow
/// words and masks covering those lines so an all-resident firing — the
/// steady state — is two `u64` AND-compares instead of a per-line walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledOp {
    /// Context-hash bit pattern the condition requires; `0` when the op is
    /// unconditional. The op fires iff `ctx_bits & !runtime_hash == 0`.
    pub ctx_bits: u64,
    /// This op's range in [`CompiledInjections::op_lines`]' backing array.
    lines_lo: u32,
    lines_hi: u32,
    /// Presence-shadow word indices covering every target line; meaningful
    /// only when [`CompiledOp::shadow_batchable`] is set. Single-word ops
    /// duplicate the word with an empty second mask.
    pub shadow_words: [u32; 2],
    /// Required bits within [`CompiledOp::shadow_words`].
    pub shadow_masks: [u64; 2],
    /// Highest target line id; the engine only takes the shadow-batched
    /// residency check when this is below the shadow's line limit.
    pub max_line: u64,
    /// Whether the two shadow word/mask pairs cover all target lines (ops
    /// spanning more than two words fall back to the per-line path).
    pub shadow_batchable: bool,
    /// Provenance of the planner decision that emitted the op, if tracked.
    pub id: Option<ProvenanceId>,
}

impl CompiledOp {
    /// Number of lines the op prefetches when it fires.
    #[inline]
    pub fn num_lines(&self) -> u64 {
        u64::from(self.lines_hi - self.lines_lo)
    }
}

/// Lowers one op into its [`CompiledOp`] form, appending its target lines
/// (base first, then coalesced extras in mask order — the exact order the
/// interpreted path issues them) to `lines`.
fn lower_op(op: &PrefetchOp, id: Option<ProvenanceId>, lines: &mut Vec<Line>) -> CompiledOp {
    let ctx_bits = op.condition().map_or(0, |c| c.bits());
    let lo = lines.len();
    lines.push(op.base_line());
    if let PrefetchOp::Coalesced { base, mask } | PrefetchOp::CondCoalesced { base, mask, .. } = op
    {
        lines.extend(mask.decode(*base));
    }
    let mut shadow_words = [0u32; 2];
    let mut shadow_masks = [0u64; 2];
    let mut used = 0usize;
    let mut shadow_batchable = true;
    let mut max_line = 0u64;
    for l in &lines[lo..] {
        let raw = l.raw();
        max_line = max_line.max(raw);
        let word = raw >> 6;
        if word > u64::from(u32::MAX) {
            // Beyond any shadow the engine could enable; the max_line guard
            // would reject the batch anyway, so don't bother encoding it.
            shadow_batchable = false;
            continue;
        }
        let (word, bit) = (word as u32, 1u64 << (raw & 63));
        if let Some(i) = shadow_words[..used].iter().position(|&w| w == word) {
            shadow_masks[i] |= bit;
        } else if used < 2 {
            shadow_words[used] = word;
            shadow_masks[used] = bit;
            used += 1;
        } else {
            shadow_batchable = false;
        }
    }
    if used == 1 {
        // Point the unused pair at the same word with no required bits so
        // the engine's unconditional two-word test stays in bounds.
        shadow_words[1] = shadow_words[0];
        shadow_masks[1] = 0;
    }
    CompiledOp {
        ctx_bits,
        lines_lo: lo as u32,
        lines_hi: lines.len() as u32,
        shadow_words,
        shadow_masks,
        max_line,
        shadow_batchable,
        id,
    }
}

impl CompiledInjections {
    /// Lowers `map` into the dense form; see [`InjectionMap::compile`].
    ///
    /// # Panics
    ///
    /// Panics if the map holds more than `u32::MAX` ops (the offset table is
    /// 32-bit; real plans are orders of magnitude smaller).
    pub fn compile(map: &InjectionMap, min_blocks: usize) -> Self {
        let limit = map.per_block.keys().next_back().map_or(0, |b| b.index() + 1).max(min_blocks);
        let total = map.num_ops();
        assert!(u32::try_from(total).is_ok(), "injection map too large to compile");
        let mut starts = vec![0u32; limit + 1];
        let mut ops = Vec::with_capacity(total);
        let mut ids = Vec::with_capacity(total);
        let mut site_bits = vec![0u64; limit.div_ceil(64)];
        let mut compiled = Vec::with_capacity(total);
        let mut lines = Vec::with_capacity(total);
        let mut next = 0usize;
        for (site, s) in &map.per_block {
            let b = site.index();
            for slot in &mut starts[next..=b] {
                *slot = ops.len() as u32;
            }
            if !s.ops.is_empty() {
                site_bits[b >> 6] |= 1 << (b & 63);
            }
            for (op, id) in s.ops.iter().zip(&s.ids) {
                compiled.push(lower_op(op, *id, &mut lines));
            }
            ops.extend_from_slice(&s.ops);
            ids.extend_from_slice(&s.ids);
            next = b + 1;
        }
        for slot in &mut starts[next..=limit] {
            *slot = ops.len() as u32;
        }
        assert!(u32::try_from(lines.len()).is_ok(), "injection map too large to compile");
        CompiledInjections { starts, ops, ids, site_bits, compiled, lines }
    }

    /// The ops injected at `site` (empty for sites out of range).
    #[inline]
    pub fn ops_at(&self, site: BlockId) -> &[PrefetchOp] {
        self.site(site).0
    }

    /// The provenance ids at `site`, index-aligned with
    /// [`CompiledInjections::ops_at`].
    #[inline]
    pub fn ids_at(&self, site: BlockId) -> &[Option<ProvenanceId>] {
        self.site(site).1
    }

    /// Both per-site slices in one bounds check — the replay engine's
    /// per-event lookup.
    #[inline]
    pub fn site(&self, site: BlockId) -> (&[PrefetchOp], &[Option<ProvenanceId>]) {
        let b = site.index();
        if b + 1 >= self.starts.len() {
            return (&[], &[]);
        }
        let (lo, hi) = (self.starts[b] as usize, self.starts[b + 1] as usize);
        (&self.ops[lo..hi], &self.ids[lo..hi])
    }

    /// Whether any ops are injected at `site` — one word test against the
    /// skip index, cheaper than [`CompiledInjections::site`] when the answer
    /// is usually "no" (the replay engine's per-event case).
    #[inline]
    pub fn has_ops(&self, site: BlockId) -> bool {
        let b = site.index();
        match self.site_bits.get(b >> 6) {
            Some(&word) => word >> (b & 63) & 1 != 0,
            None => false,
        }
    }

    /// The branch-free lowered ops at `site` (empty for sites out of range),
    /// index-aligned with [`CompiledInjections::ops_at`].
    #[inline]
    pub fn compiled_site(&self, site: BlockId) -> &[CompiledOp] {
        let b = site.index();
        if b + 1 >= self.starts.len() {
            return &[];
        }
        let (lo, hi) = (self.starts[b] as usize, self.starts[b + 1] as usize);
        &self.compiled[lo..hi]
    }

    /// The target lines of one lowered op, base first, in issue order.
    #[inline]
    pub fn op_lines(&self, op: &CompiledOp) -> &[Line] {
        &self.lines[op.lines_lo as usize..op.lines_hi as usize]
    }

    /// `site`'s index range in [`CompiledInjections::compiled_ops`] (empty
    /// for sites out of range). Lets a caller keep side tables parallel to
    /// the compiled op array and address them per site.
    #[inline]
    pub fn site_range(&self, site: BlockId) -> std::ops::Range<usize> {
        let b = site.index();
        if b + 1 >= self.starts.len() {
            return 0..0;
        }
        self.starts[b] as usize..self.starts[b + 1] as usize
    }

    /// Every lowered op across every site, in [`CompiledInjections::site_range`]
    /// order.
    #[inline]
    pub fn compiled_ops(&self) -> &[CompiledOp] {
        &self.compiled
    }

    /// Total number of compiled ops.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Whether the compiled plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<(BlockId, PrefetchOp)> for InjectionMap {
    fn from_iter<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(iter: I) -> Self {
        let mut map = InjectionMap::new();
        for (site, op) in iter {
            map.push(site, op);
        }
        map
    }
}

impl Extend<(BlockId, PrefetchOp)> for InjectionMap {
    fn extend<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(&mut self, iter: I) {
        for (site, op) in iter {
            self.push(site, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::Line;

    fn plain(l: u64) -> PrefetchOp {
        PrefetchOp::Plain { target: Line::new(l) }
    }

    #[test]
    fn push_and_lookup() {
        let mut m = InjectionMap::new();
        m.push(BlockId(1), plain(10));
        m.push(BlockId(1), plain(11));
        m.push(BlockId(2), plain(12));
        assert_eq!(m.ops_at(BlockId(1)).len(), 2);
        assert_eq!(m.ops_at(BlockId(2)).len(), 1);
        assert!(m.ops_at(BlockId(3)).is_empty());
        assert_eq!(m.num_sites(), 2);
        assert_eq!(m.num_ops(), 3);
    }

    #[test]
    fn footprint_accounting() {
        let m: InjectionMap =
            [(BlockId(0), plain(1)), (BlockId(0), plain(2))].into_iter().collect();
        assert_eq!(m.injected_bytes(), 14);
        assert!((m.static_increase(1400) - 0.01).abs() < 1e-12);
        assert_eq!(m.static_increase(0), 0.0);
    }

    #[test]
    fn histogram_counts_mnemonics() {
        let mut m = InjectionMap::new();
        m.push(BlockId(0), plain(1));
        m.push(BlockId(1), plain(2));
        let hist = m.op_histogram();
        assert_eq!(hist.get("prefetch"), Some(&2));
    }

    #[test]
    fn merge_concatenates() {
        let mut a: InjectionMap = [(BlockId(0), plain(1))].into_iter().collect();
        let b: InjectionMap =
            [(BlockId(0), plain(2)), (BlockId(9), plain(3))].into_iter().collect();
        a.merge(b);
        assert_eq!(a.ops_at(BlockId(0)).len(), 2);
        assert_eq!(a.num_sites(), 2);
    }

    #[test]
    fn traced_ids_stay_aligned_with_ops() {
        let mut m = InjectionMap::new();
        m.push_traced(BlockId(1), plain(10), ProvenanceId(0));
        m.push(BlockId(1), plain(11));
        m.push_traced(BlockId(1), plain(12), ProvenanceId(2));
        assert_eq!(m.ids_at(BlockId(1)), &[Some(ProvenanceId(0)), None, Some(ProvenanceId(2))]);
        assert_eq!(m.ops_at(BlockId(1)).len(), m.ids_at(BlockId(1)).len());
        assert!(m.ids_at(BlockId(99)).is_empty());
    }

    #[test]
    fn merge_preserves_ids() {
        let mut a = InjectionMap::new();
        a.push_traced(BlockId(0), plain(1), ProvenanceId(0));
        let mut b = InjectionMap::new();
        b.push_traced(BlockId(0), plain(2), ProvenanceId(1));
        a.merge(b);
        assert_eq!(a.ids_at(BlockId(0)), &[Some(ProvenanceId(0)), Some(ProvenanceId(1))]);
    }

    #[test]
    fn iter_is_in_block_order() {
        let m: InjectionMap =
            [(BlockId(9), plain(1)), (BlockId(3), plain(2))].into_iter().collect();
        let sites: Vec<_> = m.iter().map(|(b, _)| b.0).collect();
        assert_eq!(sites, vec![3, 9]);
    }

    #[test]
    fn empty_map() {
        let m = InjectionMap::new();
        assert!(m.is_empty());
        assert_eq!(m.injected_bytes(), 0);
    }

    #[test]
    fn compiled_matches_map_at_every_site() {
        let mut m = InjectionMap::new();
        m.push_traced(BlockId(1), plain(10), ProvenanceId(0));
        m.push(BlockId(1), plain(11));
        m.push_traced(BlockId(4), plain(12), ProvenanceId(1));
        m.push(BlockId(9), plain(13));
        let c = m.compile(12);
        for b in 0..16u32 {
            assert_eq!(c.ops_at(BlockId(b)), m.ops_at(BlockId(b)), "ops at B{b}");
            assert_eq!(c.ids_at(BlockId(b)), m.ids_at(BlockId(b)), "ids at B{b}");
        }
        assert_eq!(c.num_ops(), m.num_ops());
        assert!(!c.is_empty());
    }

    #[test]
    fn compiled_covers_sites_beyond_min_blocks() {
        let mut m = InjectionMap::new();
        m.push(BlockId(20), plain(1));
        let c = m.compile(4);
        assert_eq!(c.ops_at(BlockId(20)).len(), 1);
        assert!(c.ops_at(BlockId(3)).is_empty());
        assert!(c.ops_at(BlockId(21)).is_empty());
    }

    #[test]
    fn skip_index_matches_site_table() {
        let mut m = InjectionMap::new();
        m.push(BlockId(0), plain(1));
        m.push(BlockId(63), plain(2));
        m.push(BlockId(64), plain(3));
        m.push(BlockId(200), plain(4));
        let c = m.compile(128);
        for b in 0..260u32 {
            assert_eq!(
                c.has_ops(BlockId(b)),
                !c.ops_at(BlockId(b)).is_empty(),
                "skip index diverges at B{b}"
            );
        }
        assert!(!c.has_ops(BlockId(1_000_000)));
        assert!(!CompiledInjections::default().has_ops(BlockId(0)));
    }

    #[test]
    fn lowered_ops_match_interpreted_semantics() {
        use crate::context::HashConfig;
        use crate::ops::CoalesceMask;
        let hash = HashConfig::default();
        let ctx = hash.context_hash([ispy_trace::Addr::new(0x400000)]);
        let mask = CoalesceMask::from_bits(0b101, 8);
        let ops = [
            PrefetchOp::Plain { target: Line::new(70) },
            PrefetchOp::Cond { target: Line::new(71), ctx },
            PrefetchOp::Coalesced { base: Line::new(100), mask },
            PrefetchOp::CondCoalesced { base: Line::new(200), mask, ctx },
        ];
        let mut m = InjectionMap::new();
        for op in ops {
            m.push(BlockId(5), op);
        }
        let c = m.compile(8);
        let lowered = c.compiled_site(BlockId(5));
        assert_eq!(lowered.len(), ops.len());
        for (cop, op) in lowered.iter().zip(&ops) {
            assert_eq!(cop.ctx_bits, op.condition().map_or(0, |x| x.bits()), "{op}");
            assert_eq!(c.op_lines(cop), op.target_lines(), "{op}");
            assert_eq!(cop.num_lines() as usize, op.target_lines().len());
            assert_eq!(cop.max_line, op.target_lines().iter().map(|l| l.raw()).max().unwrap());
            // The fire test must agree with the interpreted one for any
            // runtime hash.
            for runtime in [0u64, ctx.bits(), u64::MAX, 0b1010101] {
                assert_eq!(cop.ctx_bits & !runtime == 0, op.fires(runtime), "{op} vs {runtime:b}");
            }
        }
    }

    #[test]
    fn shadow_masks_cover_exactly_the_target_lines() {
        use crate::ops::CoalesceMask;
        // Lines 62, 63+1=64.. straddle a word boundary: two words used.
        let mask = CoalesceMask::from_bits(0b11, 8);
        let mut m = InjectionMap::new();
        m.push(BlockId(0), PrefetchOp::Coalesced { base: Line::new(62), mask });
        m.push(BlockId(0), plain(9)); // single-word op
        let c = m.compile(1);
        let [two_words, one_word] = c.compiled_site(BlockId(0)) else { panic!("two ops") };
        for cop in [two_words, one_word] {
            assert!(cop.shadow_batchable);
            let mut covered: Vec<u64> = Vec::new();
            for (w, bits) in cop.shadow_words.iter().zip(cop.shadow_masks) {
                for b in 0..64u64 {
                    if bits >> b & 1 != 0 {
                        covered.push(u64::from(*w) * 64 + b);
                    }
                }
            }
            covered.sort_unstable();
            let mut expect: Vec<u64> = c.op_lines(cop).iter().map(|l| l.raw()).collect();
            expect.sort_unstable();
            assert_eq!(covered, expect);
        }
        assert_eq!(one_word.shadow_masks[1], 0, "single-word op pads with an empty mask");
        assert_eq!(one_word.shadow_words[1], one_word.shadow_words[0]);
    }

    #[test]
    fn absurdly_far_lines_are_not_batchable() {
        // A coalesce window is at most 65 consecutive lines, so an op can
        // never span three shadow words; the only non-batchable case is a
        // line whose shadow word index would overflow the u32 encoding.
        // Such lines also sit far beyond any shadow limit, so nothing is
        // lost — the op just keeps the per-line path.
        let far = 1u64 << 39;
        let mut m = InjectionMap::new();
        m.push(BlockId(0), plain(far));
        let c = m.compile(1);
        let cop = &c.compiled_site(BlockId(0))[0];
        assert!(!cop.shadow_batchable);
        assert_eq!(c.op_lines(cop), &[Line::new(far)]);
        assert_eq!(cop.max_line, far);
    }

    #[test]
    fn compiled_empty_map_is_empty_everywhere() {
        let c = InjectionMap::new().compile(8);
        assert!(c.is_empty());
        assert_eq!(c.num_ops(), 0);
        assert!(c.ops_at(BlockId(0)).is_empty());
        let d = CompiledInjections::default();
        assert!(d.ops_at(BlockId(0)).is_empty());
        assert!(d.ids_at(BlockId(7)).is_empty());
    }
}
