//! Injection maps: which prefetch ops run at which basic blocks.
//!
//! An [`InjectionMap`] is the reproduction's equivalent of the paper's
//! rewritten binary: a per-block list of injected code-prefetch instructions
//! that the simulator executes when the block is entered, plus the static
//! footprint accounting the paper reports in Figs. 4/14.

use crate::ops::PrefetchOp;
use ispy_trace::BlockId;
use std::collections::BTreeMap;

/// Identity of one planned injection, assigned by the planner in emission
/// order and carried through the simulator so every runtime outcome can be
/// attributed back to the decision that caused it.
///
/// The id indexes the planner's provenance table (`Plan::provenance` in
/// `ispy-core`): id `k` is the `k`-th record.
///
/// # Examples
///
/// ```
/// use ispy_isa::ProvenanceId;
///
/// let id = ProvenanceId(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvenanceId(pub u32);

impl ProvenanceId {
    /// The id as a `usize` index into a provenance table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The ops at one site plus their provenance ids, kept index-aligned.
#[derive(Debug, Clone, PartialEq, Default)]
struct SiteOps {
    ops: Vec<PrefetchOp>,
    ids: Vec<Option<ProvenanceId>>,
}

impl SiteOps {
    fn push(&mut self, op: PrefetchOp, id: Option<ProvenanceId>) {
        self.ops.push(op);
        self.ids.push(id);
    }
}

/// A plan of injected prefetch instructions, keyed by injection site.
///
/// Each op optionally carries a [`ProvenanceId`] linking it back to the
/// planner decision that emitted it; maps built by hand (tests, baselines)
/// may leave ids unset via [`InjectionMap::push`].
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_trace::{BlockId, Line};
///
/// let mut map = InjectionMap::new();
/// map.push(BlockId(7), PrefetchOp::Plain { target: Line::new(42) });
/// assert_eq!(map.num_ops(), 1);
/// assert_eq!(map.injected_bytes(), 7);
/// assert_eq!(map.ids_at(ispy_trace::BlockId(7)), &[None]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InjectionMap {
    per_block: BTreeMap<BlockId, SiteOps>,
}

impl InjectionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an op at `site` with no provenance id.
    pub fn push(&mut self, site: BlockId, op: PrefetchOp) {
        self.per_block.entry(site).or_default().push(op, None);
    }

    /// Adds an op at `site` attributed to the planner decision `id`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ispy_isa::{InjectionMap, PrefetchOp, ProvenanceId};
    /// use ispy_trace::{BlockId, Line};
    ///
    /// let mut map = InjectionMap::new();
    /// map.push_traced(BlockId(1), PrefetchOp::Plain { target: Line::new(9) }, ProvenanceId(0));
    /// assert_eq!(map.ids_at(BlockId(1)), &[Some(ProvenanceId(0))]);
    /// ```
    pub fn push_traced(&mut self, site: BlockId, op: PrefetchOp, id: ProvenanceId) {
        self.per_block.entry(site).or_default().push(op, Some(id));
    }

    /// The ops injected at `site`, if any.
    pub fn ops_at(&self, site: BlockId) -> &[PrefetchOp] {
        self.per_block.get(&site).map_or(&[], |s| s.ops.as_slice())
    }

    /// The provenance ids of the ops at `site`, index-aligned with
    /// [`InjectionMap::ops_at`].
    pub fn ids_at(&self, site: BlockId) -> &[Option<ProvenanceId>] {
        self.per_block.get(&site).map_or(&[], |s| s.ids.as_slice())
    }

    /// Iterates `(site, ops)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[PrefetchOp])> {
        self.per_block.iter().map(|(b, s)| (*b, s.ops.as_slice()))
    }

    /// Number of injection sites.
    pub fn num_sites(&self) -> usize {
        self.per_block.len()
    }

    /// Total number of injected instructions.
    pub fn num_ops(&self) -> usize {
        self.per_block.values().map(|s| s.ops.len()).sum()
    }

    /// Whether the map injects nothing.
    pub fn is_empty(&self) -> bool {
        self.per_block.is_empty()
    }

    /// Total bytes added to the text segment (static code footprint delta).
    pub fn injected_bytes(&self) -> u64 {
        self.per_block.values().flat_map(|s| &s.ops).map(|op| u64::from(op.encoded_bytes())).sum()
    }

    /// Static footprint increase relative to a text segment of `text_bytes`.
    pub fn static_increase(&self, text_bytes: u64) -> f64 {
        if text_bytes == 0 {
            0.0
        } else {
            self.injected_bytes() as f64 / text_bytes as f64
        }
    }

    /// Count of ops by mnemonic, for reporting.
    pub fn op_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist = BTreeMap::new();
        for site in self.per_block.values() {
            for op in &site.ops {
                *hist.entry(op.mnemonic()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Merges another map into this one, preserving provenance ids.
    pub fn merge(&mut self, other: InjectionMap) {
        for (site, ops) in other.per_block {
            let entry = self.per_block.entry(site).or_default();
            entry.ops.extend(ops.ops);
            entry.ids.extend(ops.ids);
        }
    }

    /// Lowers the map into its dense, replay-ready form; see
    /// [`CompiledInjections`]. `min_blocks` (typically
    /// `Program::num_blocks`) sizes the lookup table so every block the
    /// trace can reference indexes in bounds.
    pub fn compile(&self, min_blocks: usize) -> CompiledInjections {
        CompiledInjections::compile(self, min_blocks)
    }
}

/// The dense, replay-ready lowering of an [`InjectionMap`].
///
/// Block ids are dense indices, so the per-event `ops_at`/`ids_at` lookups
/// the simulator performs on *every* trace event can be one bounds-checked
/// slice index instead of two `BTreeMap` tree walks. All sites' ops (and
/// their index-aligned provenance ids) live in two contiguous arrays with a
/// prefix-offset table indexed by `BlockId` — the same layout a compiler's
/// row-displacement dispatch table would use.
///
/// Compiling is `O(sites + blocks)`; sweeps that re-simulate one plan over
/// many traces (e.g. the Fig. 16 input-drift grid) compile once and pass the
/// result through [`RunOptions`](../../ispy_sim/struct.RunOptions.html) for
/// every run.
///
/// # Examples
///
/// ```
/// use ispy_isa::{InjectionMap, PrefetchOp};
/// use ispy_trace::{BlockId, Line};
///
/// let mut map = InjectionMap::new();
/// map.push(BlockId(3), PrefetchOp::Plain { target: Line::new(42) });
/// let compiled = map.compile(10);
/// assert_eq!(compiled.ops_at(BlockId(3)), map.ops_at(BlockId(3)));
/// assert!(compiled.ops_at(BlockId(9)).is_empty());
/// assert!(compiled.ops_at(BlockId(1_000_000)).is_empty()); // out of range
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledInjections {
    /// `starts[b]..starts[b + 1]` is block `b`'s range in `ops`/`ids`.
    starts: Vec<u32>,
    ops: Vec<PrefetchOp>,
    ids: Vec<Option<ProvenanceId>>,
}

impl CompiledInjections {
    /// Lowers `map` into the dense form; see [`InjectionMap::compile`].
    ///
    /// # Panics
    ///
    /// Panics if the map holds more than `u32::MAX` ops (the offset table is
    /// 32-bit; real plans are orders of magnitude smaller).
    pub fn compile(map: &InjectionMap, min_blocks: usize) -> Self {
        let limit = map.per_block.keys().next_back().map_or(0, |b| b.index() + 1).max(min_blocks);
        let total = map.num_ops();
        assert!(u32::try_from(total).is_ok(), "injection map too large to compile");
        let mut starts = vec![0u32; limit + 1];
        let mut ops = Vec::with_capacity(total);
        let mut ids = Vec::with_capacity(total);
        let mut next = 0usize;
        for (site, s) in &map.per_block {
            let b = site.index();
            for slot in &mut starts[next..=b] {
                *slot = ops.len() as u32;
            }
            ops.extend_from_slice(&s.ops);
            ids.extend_from_slice(&s.ids);
            next = b + 1;
        }
        for slot in &mut starts[next..=limit] {
            *slot = ops.len() as u32;
        }
        CompiledInjections { starts, ops, ids }
    }

    /// The ops injected at `site` (empty for sites out of range).
    #[inline]
    pub fn ops_at(&self, site: BlockId) -> &[PrefetchOp] {
        self.site(site).0
    }

    /// The provenance ids at `site`, index-aligned with
    /// [`CompiledInjections::ops_at`].
    #[inline]
    pub fn ids_at(&self, site: BlockId) -> &[Option<ProvenanceId>] {
        self.site(site).1
    }

    /// Both per-site slices in one bounds check — the replay engine's
    /// per-event lookup.
    #[inline]
    pub fn site(&self, site: BlockId) -> (&[PrefetchOp], &[Option<ProvenanceId>]) {
        let b = site.index();
        if b + 1 >= self.starts.len() {
            return (&[], &[]);
        }
        let (lo, hi) = (self.starts[b] as usize, self.starts[b + 1] as usize);
        (&self.ops[lo..hi], &self.ids[lo..hi])
    }

    /// Total number of compiled ops.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Whether the compiled plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<(BlockId, PrefetchOp)> for InjectionMap {
    fn from_iter<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(iter: I) -> Self {
        let mut map = InjectionMap::new();
        for (site, op) in iter {
            map.push(site, op);
        }
        map
    }
}

impl Extend<(BlockId, PrefetchOp)> for InjectionMap {
    fn extend<I: IntoIterator<Item = (BlockId, PrefetchOp)>>(&mut self, iter: I) {
        for (site, op) in iter {
            self.push(site, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::Line;

    fn plain(l: u64) -> PrefetchOp {
        PrefetchOp::Plain { target: Line::new(l) }
    }

    #[test]
    fn push_and_lookup() {
        let mut m = InjectionMap::new();
        m.push(BlockId(1), plain(10));
        m.push(BlockId(1), plain(11));
        m.push(BlockId(2), plain(12));
        assert_eq!(m.ops_at(BlockId(1)).len(), 2);
        assert_eq!(m.ops_at(BlockId(2)).len(), 1);
        assert!(m.ops_at(BlockId(3)).is_empty());
        assert_eq!(m.num_sites(), 2);
        assert_eq!(m.num_ops(), 3);
    }

    #[test]
    fn footprint_accounting() {
        let m: InjectionMap =
            [(BlockId(0), plain(1)), (BlockId(0), plain(2))].into_iter().collect();
        assert_eq!(m.injected_bytes(), 14);
        assert!((m.static_increase(1400) - 0.01).abs() < 1e-12);
        assert_eq!(m.static_increase(0), 0.0);
    }

    #[test]
    fn histogram_counts_mnemonics() {
        let mut m = InjectionMap::new();
        m.push(BlockId(0), plain(1));
        m.push(BlockId(1), plain(2));
        let hist = m.op_histogram();
        assert_eq!(hist.get("prefetch"), Some(&2));
    }

    #[test]
    fn merge_concatenates() {
        let mut a: InjectionMap = [(BlockId(0), plain(1))].into_iter().collect();
        let b: InjectionMap =
            [(BlockId(0), plain(2)), (BlockId(9), plain(3))].into_iter().collect();
        a.merge(b);
        assert_eq!(a.ops_at(BlockId(0)).len(), 2);
        assert_eq!(a.num_sites(), 2);
    }

    #[test]
    fn traced_ids_stay_aligned_with_ops() {
        let mut m = InjectionMap::new();
        m.push_traced(BlockId(1), plain(10), ProvenanceId(0));
        m.push(BlockId(1), plain(11));
        m.push_traced(BlockId(1), plain(12), ProvenanceId(2));
        assert_eq!(m.ids_at(BlockId(1)), &[Some(ProvenanceId(0)), None, Some(ProvenanceId(2))]);
        assert_eq!(m.ops_at(BlockId(1)).len(), m.ids_at(BlockId(1)).len());
        assert!(m.ids_at(BlockId(99)).is_empty());
    }

    #[test]
    fn merge_preserves_ids() {
        let mut a = InjectionMap::new();
        a.push_traced(BlockId(0), plain(1), ProvenanceId(0));
        let mut b = InjectionMap::new();
        b.push_traced(BlockId(0), plain(2), ProvenanceId(1));
        a.merge(b);
        assert_eq!(a.ids_at(BlockId(0)), &[Some(ProvenanceId(0)), Some(ProvenanceId(1))]);
    }

    #[test]
    fn iter_is_in_block_order() {
        let m: InjectionMap =
            [(BlockId(9), plain(1)), (BlockId(3), plain(2))].into_iter().collect();
        let sites: Vec<_> = m.iter().map(|(b, _)| b.0).collect();
        assert_eq!(sites, vec![3, 9]);
    }

    #[test]
    fn empty_map() {
        let m = InjectionMap::new();
        assert!(m.is_empty());
        assert_eq!(m.injected_bytes(), 0);
    }

    #[test]
    fn compiled_matches_map_at_every_site() {
        let mut m = InjectionMap::new();
        m.push_traced(BlockId(1), plain(10), ProvenanceId(0));
        m.push(BlockId(1), plain(11));
        m.push_traced(BlockId(4), plain(12), ProvenanceId(1));
        m.push(BlockId(9), plain(13));
        let c = m.compile(12);
        for b in 0..16u32 {
            assert_eq!(c.ops_at(BlockId(b)), m.ops_at(BlockId(b)), "ops at B{b}");
            assert_eq!(c.ids_at(BlockId(b)), m.ids_at(BlockId(b)), "ids at B{b}");
        }
        assert_eq!(c.num_ops(), m.num_ops());
        assert!(!c.is_empty());
    }

    #[test]
    fn compiled_covers_sites_beyond_min_blocks() {
        let mut m = InjectionMap::new();
        m.push(BlockId(20), plain(1));
        let c = m.compile(4);
        assert_eq!(c.ops_at(BlockId(20)).len(), 1);
        assert!(c.ops_at(BlockId(3)).is_empty());
        assert!(c.ops_at(BlockId(21)).is_empty());
    }

    #[test]
    fn compiled_empty_map_is_empty_everywhere() {
        let c = InjectionMap::new().compile(8);
        assert!(c.is_empty());
        assert_eq!(c.num_ops(), 0);
        assert!(c.ops_at(BlockId(0)).is_empty());
        let d = CompiledInjections::default();
        assert!(d.ops_at(BlockId(0)).is_empty());
        assert!(d.ids_at(BlockId(7)).is_empty());
    }
}
