//! The prefetch operations and their encodings.

use crate::context::ContextHash;
use ispy_trace::Line;
use std::fmt;

/// Byte size of a plain code-prefetch instruction; matches `prefetcht*` on
/// x86 (§III-B: "The prefetcht* instruction on x86 has a size of 7 bytes").
pub const BASE_PREFETCH_BYTES: u32 = 7;

/// A coalescing bit-vector: bit `i` selects line `base + 1 + i`.
///
/// # Examples
///
/// ```
/// use ispy_isa::CoalesceMask;
/// use ispy_trace::Line;
///
/// // Paper Fig. 8: base 0x2 with lines 0x4 and 0x7 coalesced.
/// let mask = CoalesceMask::from_lines(Line::new(0x2), [Line::new(0x4), Line::new(0x7)], 8).unwrap();
/// let lines: Vec<_> = mask.decode(Line::new(0x2)).collect();
/// assert_eq!(lines, vec![Line::new(0x4), Line::new(0x7)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoalesceMask {
    bits: u64,
    width: u8,
}

impl CoalesceMask {
    /// Creates a mask from raw bits, truncated to `width`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 64`.
    pub fn from_bits(bits: u64, width: u8) -> Self {
        assert!((1..=64).contains(&width), "mask width must be 1..=64");
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        CoalesceMask { bits: bits & mask, width }
    }

    /// Encodes the given extra lines relative to `base`.
    ///
    /// Returns `None` if any line is `base` itself, precedes `base`, or falls
    /// outside the `width`-line window after `base`.
    pub fn from_lines<I>(base: Line, lines: I, width: u8) -> Option<Self>
    where
        I: IntoIterator<Item = Line>,
    {
        let mut bits = 0u64;
        for l in lines {
            let d = l.distance_from(base)?;
            if d == 0 || d > u64::from(width) {
                return None;
            }
            bits |= 1 << (d - 1);
        }
        Some(CoalesceMask { bits, width })
    }

    /// The raw bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Window width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of extra lines selected.
    pub fn extra_lines(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Iterates the extra lines (excluding the base itself).
    pub fn decode(&self, base: Line) -> impl Iterator<Item = Line> + '_ {
        let bits = self.bits;
        (0..u64::from(self.width)).filter_map(move |i| {
            if bits & (1 << i) != 0 {
                Some(base.offset(i + 1))
            } else {
                None
            }
        })
    }

    /// Encoded operand size in bytes.
    pub fn operand_bytes(&self) -> u32 {
        u32::from(self.width).div_ceil(8)
    }
}

impl fmt::Display for CoalesceMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mask[{}b]={:#b}", self.width, self.bits)
    }
}

/// One injected code-prefetch instruction (§III / §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchOp {
    /// `prefetch addr` — unconditional single line (the AsmDB baseline form).
    Plain {
        /// Line to prefetch.
        target: Line,
    },
    /// `Cprefetch addr, ctx` — fires only when `ctx` matches the runtime hash.
    Cond {
        /// Line to prefetch.
        target: Line,
        /// Context under which the prefetch fires.
        ctx: ContextHash,
    },
    /// `Lprefetch addr, bitvec` — base line plus coalesced extra lines.
    Coalesced {
        /// Base line (always prefetched).
        base: Line,
        /// Extra lines, encoded relative to `base`.
        mask: CoalesceMask,
    },
    /// `CLprefetch addr, ctx, bitvec` — conditional and coalesced.
    CondCoalesced {
        /// Base line (prefetched when `ctx` matches).
        base: Line,
        /// Extra lines, encoded relative to `base`.
        mask: CoalesceMask,
        /// Context under which the prefetch fires.
        ctx: ContextHash,
    },
}

impl PrefetchOp {
    /// The instruction mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            PrefetchOp::Plain { .. } => "prefetch",
            PrefetchOp::Cond { .. } => "Cprefetch",
            PrefetchOp::Coalesced { .. } => "Lprefetch",
            PrefetchOp::CondCoalesced { .. } => "CLprefetch",
        }
    }

    /// Encoded instruction size in bytes — what injection adds to the text
    /// segment (static code footprint).
    pub fn encoded_bytes(&self) -> u32 {
        match self {
            PrefetchOp::Plain { .. } => BASE_PREFETCH_BYTES,
            PrefetchOp::Cond { ctx, .. } => BASE_PREFETCH_BYTES + ctx.operand_bytes(),
            PrefetchOp::Coalesced { mask, .. } => BASE_PREFETCH_BYTES + mask.operand_bytes(),
            PrefetchOp::CondCoalesced { mask, ctx, .. } => {
                BASE_PREFETCH_BYTES + mask.operand_bytes() + ctx.operand_bytes()
            }
        }
    }

    /// The condition, if any.
    pub fn condition(&self) -> Option<ContextHash> {
        match self {
            PrefetchOp::Cond { ctx, .. } | PrefetchOp::CondCoalesced { ctx, .. } => Some(*ctx),
            _ => None,
        }
    }

    /// The base/primary target line.
    pub fn base_line(&self) -> Line {
        match self {
            PrefetchOp::Plain { target } | PrefetchOp::Cond { target, .. } => *target,
            PrefetchOp::Coalesced { base, .. } | PrefetchOp::CondCoalesced { base, .. } => *base,
        }
    }

    /// All lines this op prefetches when it fires (base first).
    pub fn target_lines(&self) -> Vec<Line> {
        match self {
            PrefetchOp::Plain { target } | PrefetchOp::Cond { target, .. } => vec![*target],
            PrefetchOp::Coalesced { base, mask } | PrefetchOp::CondCoalesced { base, mask, .. } => {
                let mut v = Vec::with_capacity(1 + mask.extra_lines() as usize);
                v.push(*base);
                v.extend(mask.decode(*base));
                v
            }
        }
    }

    /// Whether the op fires under `runtime_bits` (unconditional ops always fire).
    pub fn fires(&self, runtime_bits: u64) -> bool {
        match self.condition() {
            Some(ctx) => ctx.matches(runtime_bits),
            None => true,
        }
    }
}

impl fmt::Display for PrefetchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefetchOp::Plain { target } => write!(f, "prefetch {target}"),
            PrefetchOp::Cond { target, ctx } => write!(f, "Cprefetch {target}, {ctx}"),
            PrefetchOp::Coalesced { base, mask } => write!(f, "Lprefetch {base}, {mask}"),
            PrefetchOp::CondCoalesced { base, mask, ctx } => {
                write!(f, "CLprefetch {base}, {ctx}, {mask}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::HashConfig;
    use ispy_trace::Addr;

    fn ctx16() -> ContextHash {
        HashConfig::default().context_hash([Addr::new(0x400000), Addr::new(0x400100)])
    }

    #[test]
    fn paper_encoding_sizes() {
        // §III-B: prefetcht* is 7 bytes; Lprefetch with an 8-bit mask is 8.
        let l =
            PrefetchOp::Coalesced { base: Line::new(1), mask: CoalesceMask::from_bits(0b101, 8) };
        assert_eq!(l.encoded_bytes(), 8);
        let p = PrefetchOp::Plain { target: Line::new(1) };
        assert_eq!(p.encoded_bytes(), 7);
        // 16-bit context hash makes Cprefetch 9 bytes and CLprefetch 10.
        let c = PrefetchOp::Cond { target: Line::new(1), ctx: ctx16() };
        assert_eq!(c.encoded_bytes(), 9);
        let cl = PrefetchOp::CondCoalesced {
            base: Line::new(1),
            mask: CoalesceMask::from_bits(0b1, 8),
            ctx: ctx16(),
        };
        assert_eq!(cl.encoded_bytes(), 10);
    }

    #[test]
    fn mask_roundtrip() {
        let base = Line::new(100);
        let lines = [Line::new(101), Line::new(104), Line::new(108)];
        let mask = CoalesceMask::from_lines(base, lines, 8).unwrap();
        let decoded: Vec<_> = mask.decode(base).collect();
        assert_eq!(decoded, lines);
        assert_eq!(mask.extra_lines(), 3);
    }

    #[test]
    fn mask_rejects_out_of_window() {
        let base = Line::new(100);
        assert!(CoalesceMask::from_lines(base, [Line::new(109)], 8).is_none());
        assert!(CoalesceMask::from_lines(base, [Line::new(100)], 8).is_none());
        assert!(CoalesceMask::from_lines(base, [Line::new(99)], 8).is_none());
        assert!(CoalesceMask::from_lines(base, [Line::new(108)], 8).is_some());
    }

    #[test]
    fn target_lines_include_base_first() {
        let op =
            PrefetchOp::Coalesced { base: Line::new(10), mask: CoalesceMask::from_bits(0b11, 8) };
        assert_eq!(op.target_lines(), vec![Line::new(10), Line::new(11), Line::new(12)]);
    }

    #[test]
    fn conditional_ops_respect_runtime_hash() {
        let ctx = ContextHash::from_bits(0b110, 16);
        let op = PrefetchOp::Cond { target: Line::new(5), ctx };
        assert!(op.fires(0b111));
        assert!(!op.fires(0b100));
        let plain = PrefetchOp::Plain { target: Line::new(5) };
        assert!(plain.fires(0));
    }

    #[test]
    fn mnemonics() {
        assert_eq!(PrefetchOp::Plain { target: Line::new(0) }.mnemonic(), "prefetch");
        assert_eq!(PrefetchOp::Cond { target: Line::new(0), ctx: ctx16() }.mnemonic(), "Cprefetch");
    }

    #[test]
    fn display_is_nonempty() {
        let op = PrefetchOp::CondCoalesced {
            base: Line::new(2),
            mask: CoalesceMask::from_bits(0b10010, 8),
            ctx: ctx16(),
        };
        assert!(op.to_string().starts_with("CLprefetch"));
    }

    #[test]
    fn wide_mask_supports_64_lines() {
        let base = Line::new(0);
        let far = Line::new(64);
        let m = CoalesceMask::from_lines(base, [far], 64).unwrap();
        assert_eq!(m.decode(base).collect::<Vec<_>>(), vec![far]);
        assert_eq!(m.operand_bytes(), 8);
    }
}
