//! Context hashes: compressed representations of sets of basic blocks.
//!
//! A miss context is a set of predictor basic blocks. Both the offline
//! planner (encoding a `Cprefetch`'s immediate operand) and the simulated
//! hardware (folding LBR entries into the counting Bloom filter) map a block
//! address to a small set-bit signature; the prefetch fires iff the operand's
//! bits are a **subset** of the runtime hash's bits (§III-A).

use crate::hash::{fnv1_addr, murmur3_addr};
use ispy_trace::Addr;
use std::fmt;

/// Configuration of the context-hash scheme.
///
/// `bits` is the hash width (the paper settles on 16 after the Fig. 21
/// sweep); `k` is the number of hash functions per block (FNV-1 and
/// MurmurHash3 give `k = 2`).
///
/// # Examples
///
/// ```
/// use ispy_isa::HashConfig;
/// use ispy_trace::Addr;
///
/// let cfg = HashConfig::default();
/// let sig = cfg.block_signature(Addr::new(0x401000));
/// assert!(sig.count_ones() <= 2); // k = 2 bits per block
/// assert!(sig < (1 << 16));       // 16-bit hash
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashConfig {
    bits: u8,
    k: u8,
}

impl Default for HashConfig {
    /// The paper's design point: 16-bit context hash, two hash functions.
    fn default() -> Self {
        HashConfig { bits: 16, k: 2 }
    }
}

impl HashConfig {
    /// Creates a configuration with `bits` hash bits and `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 64` and `1 <= k <= 2`.
    pub fn new(bits: u8, k: u8) -> Self {
        assert!((1..=64).contains(&bits), "hash width must be 1..=64 bits");
        assert!((1..=2).contains(&k), "supported k is 1 (FNV) or 2 (FNV+Murmur)");
        HashConfig { bits, k }
    }

    /// Hash width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of hash functions.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// Bytes needed to encode a context hash operand of this width.
    pub fn operand_bytes(&self) -> u32 {
        u32::from(self.bits).div_ceil(8)
    }

    /// Bit positions (one per hash function) for a block address.
    #[inline]
    pub fn bit_positions(&self, block_start: Addr) -> [u8; 2] {
        let a = block_start.raw();
        let bits = u64::from(self.bits);
        // The simulator folds hashes on every LBR push; design-point widths
        // (16, 32, 64) are powers of two, where the modulo is a mask.
        if bits.is_power_of_two() {
            let mask = bits - 1;
            [(fnv1_addr(a) & mask) as u8, (u64::from(murmur3_addr(a)) & mask) as u8]
        } else {
            [(fnv1_addr(a) % bits) as u8, (u64::from(murmur3_addr(a)) % bits) as u8]
        }
    }

    /// The set-bit signature of one block under this configuration.
    pub fn block_signature(&self, block_start: Addr) -> u64 {
        let [b0, b1] = self.bit_positions(block_start);
        let mut sig = 1u64 << b0;
        if self.k == 2 {
            sig |= 1u64 << b1;
        }
        sig
    }

    /// Builds a [`ContextHash`] from the blocks of a context.
    pub fn context_hash<I>(&self, blocks: I) -> ContextHash
    where
        I: IntoIterator<Item = Addr>,
    {
        let mut bits = 0u64;
        for b in blocks {
            bits |= self.block_signature(b);
        }
        ContextHash { bits, width: self.bits }
    }
}

/// The immediate operand of a `Cprefetch`/`CLprefetch`: the OR of the
/// signatures of the context's predictor blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ContextHash {
    bits: u64,
    width: u8,
}

impl ContextHash {
    /// Creates a context hash from raw bits (masked to `width`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 64`.
    pub fn from_bits(bits: u64, width: u8) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        ContextHash { bits: bits & mask, width }
    }

    /// The raw set bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Hash width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Whether this context's bits are a subset of `runtime_bits` — the
    /// hardware condition under which the prefetch fires.
    pub fn matches(&self, runtime_bits: u64) -> bool {
        self.bits & !runtime_bits == 0
    }

    /// Encoded operand size in bytes.
    pub fn operand_bytes(&self) -> u32 {
        u32::from(self.width).div_ceil(8)
    }
}

impl fmt::Display for ContextHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx[{}b]={:#x}", self.width, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §III-A: hashes of B and E are 0x2 and 0x10; the context hash is
        // 0x12 and matches any runtime hash with bits 1 and 4 set.
        let ctx = ContextHash::from_bits(0x12, 16);
        assert!(ctx.matches(0x12));
        assert!(ctx.matches(0xFF));
        assert!(!ctx.matches(0x10)); // B absent
        assert!(!ctx.matches(0x02)); // E absent
        assert!(!ctx.matches(0x00));
    }

    #[test]
    fn signature_respects_width() {
        for bits in [4u8, 8, 16, 32, 64] {
            let cfg = HashConfig::new(bits, 2);
            for a in [0u64, 0x400000, 0xdeadbeef] {
                let sig = cfg.block_signature(Addr::new(a));
                if bits < 64 {
                    assert!(sig < (1u64 << bits));
                }
                assert!(sig.count_ones() >= 1 && sig.count_ones() <= 2);
            }
        }
    }

    #[test]
    fn k1_uses_single_bit() {
        let cfg = HashConfig::new(16, 1);
        for a in [0x400000u64, 0x400040, 0x400080] {
            assert_eq!(cfg.block_signature(Addr::new(a)).count_ones(), 1);
        }
    }

    #[test]
    fn context_hash_is_or_of_signatures() {
        let cfg = HashConfig::default();
        let a = Addr::new(0x400000);
        let b = Addr::new(0x40F000);
        let ab = cfg.context_hash([a, b]);
        assert_eq!(ab.bits(), cfg.block_signature(a) | cfg.block_signature(b));
    }

    #[test]
    fn empty_context_matches_everything() {
        let cfg = HashConfig::default();
        let empty = cfg.context_hash([]);
        assert!(empty.matches(0));
    }

    #[test]
    fn operand_bytes_round_up() {
        assert_eq!(HashConfig::new(16, 2).operand_bytes(), 2);
        assert_eq!(HashConfig::new(12, 2).operand_bytes(), 2);
        assert_eq!(HashConfig::new(8, 2).operand_bytes(), 1);
        assert_eq!(HashConfig::new(64, 2).operand_bytes(), 8);
        assert_eq!(HashConfig::new(1, 1).operand_bytes(), 1);
    }

    #[test]
    fn from_bits_masks_to_width() {
        let c = ContextHash::from_bits(u64::MAX, 8);
        assert_eq!(c.bits(), 0xFF);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        let _ = ContextHash::from_bits(0, 0);
    }

    #[test]
    fn wider_hash_reduces_collisions() {
        // Statistical sanity check behind Fig. 21: distinct blocks collide
        // less often under a wider hash.
        let narrow = HashConfig::new(4, 2);
        let wide = HashConfig::new(32, 2);
        let addrs: Vec<Addr> = (0..200).map(|i| Addr::new(0x400000 + i * 48)).collect();
        let collisions = |cfg: &HashConfig| {
            let mut n = 0;
            for i in 0..addrs.len() {
                for j in i + 1..addrs.len() {
                    if cfg.block_signature(addrs[i]) == cfg.block_signature(addrs[j]) {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(collisions(&wide) < collisions(&narrow));
    }
}
