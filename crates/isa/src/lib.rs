//! The I-SPY code-prefetch instruction family.
//!
//! The paper (§III) proposes extending the ISA with a family of light-weight
//! *code* prefetch instructions, mirroring existing data-prefetch
//! instructions (`prefetcht*` on x86, `pli` on ARM):
//!
//! | instruction  | operands            | semantics |
//! |--------------|---------------------|-----------|
//! | `prefetch`   | `addr`              | prefetch one I-line (AsmDB-style) |
//! | `Cprefetch`  | `addr, ctx`         | prefetch only if the context hash matches the LBR-derived runtime hash |
//! | `Lprefetch`  | `addr, bitvec`      | prefetch `addr` plus the lines selected by the bit-vector |
//! | `CLprefetch` | `addr, ctx, bitvec` | conditional **and** coalesced |
//!
//! This crate defines those instructions ([`PrefetchOp`]), their encodings
//! and byte sizes (for static-footprint accounting), the context-hash
//! machinery ([`ContextHash`], [`HashConfig`], FNV-1 / MurmurHash3), and the
//! [`InjectionMap`] a planner hands to the simulator — the moral equivalent
//! of the rewritten binary the paper deploys.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod hash;
pub mod injection;
pub mod ops;

pub use context::{ContextHash, HashConfig};
pub use injection::{CompiledInjections, CompiledOp, InjectionMap, ProvenanceId};
pub use ops::{CoalesceMask, PrefetchOp};
