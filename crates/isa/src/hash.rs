//! Hash functions used to compress basic-block addresses into context hashes.
//!
//! The paper compresses the basic-block addresses that make up a miss context
//! with FNV-1 and MurmurHash3 (§III-A). These are the reference
//! implementations; the same functions run "in hardware" (the simulated LBR
//! Bloom filter) and in the offline planner, so both sides agree bit-for-bit.

/// FNV-1 64-bit hash of `data`.
///
/// # Examples
///
/// ```
/// use ispy_isa::hash::fnv1_64;
///
/// // Well-known FNV-1 vector: the empty input hashes to the offset basis.
/// assert_eq!(fnv1_64(&[]), 0xcbf29ce484222325);
/// ```
pub fn fnv1_64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in data {
        h = h.wrapping_mul(PRIME);
        h ^= u64::from(b);
    }
    h
}

/// MurmurHash3 (x86_32 variant) of `data` with `seed`.
///
/// # Examples
///
/// ```
/// use ispy_isa::hash::murmur3_32;
///
/// // Published test vector.
/// assert_eq!(murmur3_32(b"", 0), 0);
/// assert_eq!(murmur3_32(b"", 1), 0x514E28B7);
/// ```
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e2d51;
    const C2: u32 = 0x1b873593;
    let mut h = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xe6546b64);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut k = 0u32;
        for (i, &b) in rem.iter().enumerate() {
            k |= u32::from(b) << (8 * i);
        }
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
    }
    h ^= data.len() as u32;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85ebca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2ae35);
    h ^= h >> 16;
    h
}

/// FNV-1 of a little-endian `u64` — the form used for block addresses.
pub fn fnv1_addr(addr: u64) -> u64 {
    fnv1_64(&addr.to_le_bytes())
}

/// MurmurHash3 of a little-endian `u64` — the form used for block addresses.
pub fn murmur3_addr(addr: u64) -> u32 {
    murmur3_32(&addr.to_le_bytes(), 0x1_5b7_u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1_known_vectors() {
        // From the FNV reference: fnv1_64("a") = 0xaf63bd4c8601b7be.
        assert_eq!(fnv1_64(b"a"), 0xaf63bd4c8601b7be);
        assert_eq!(fnv1_64(b"foobar"), 0x340d8765a4dda9c2);
    }

    #[test]
    fn murmur3_known_vectors() {
        assert_eq!(murmur3_32(b"test", 0), 0xba6bd213);
        assert_eq!(murmur3_32(b"Hello, world!", 0x9747b28c), 0x24884CBA);
        assert_eq!(
            murmur3_32(b"The quick brown fox jumps over the lazy dog", 0x9747b28c),
            0x2FA826CD
        );
    }

    #[test]
    fn addr_hashes_are_stable_and_distinct() {
        let a = fnv1_addr(0x40_0000);
        let b = fnv1_addr(0x40_0040);
        assert_ne!(a, b);
        assert_eq!(a, fnv1_addr(0x40_0000));
        assert_ne!(murmur3_addr(0x40_0000), murmur3_addr(0x40_0040));
    }

    #[test]
    fn murmur3_tail_handling() {
        // Lengths 1..=7 exercise the remainder path.
        for len in 1..=7usize {
            let data = vec![0xABu8; len];
            let h1 = murmur3_32(&data, 7);
            let h2 = murmur3_32(&data, 7);
            assert_eq!(h1, h2);
            if len > 1 {
                let shorter = vec![0xABu8; len - 1];
                assert_ne!(h1, murmur3_32(&shorter, 7));
            }
        }
    }
}
