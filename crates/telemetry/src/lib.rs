//! Observability for the I-SPY reproduction: phase-scoped spans, named
//! counters, and a hand-rolled JSON export.
//!
//! The build environment is fully offline (no `tracing`, no `metrics`
//! facade), so this crate is a minimal, dependency-free stand-in following
//! the `ispy-parallel` / criterion-shim precedent. It provides exactly what
//! the pipeline needs:
//!
//! * **Spans** ([`Telemetry::span`]) — monotonic wall-clock timers scoped to
//!   a pipeline phase (`"core.plan"`, `"profile.observe_replay"`, …). Spans
//!   nest freely (each guard is independent) and are thread-safe, so they
//!   compose with `ispy-parallel` fan-outs: concurrent guards for the same
//!   name accumulate into one entry.
//! * **Counters** ([`Telemetry::add`]) — named monotonic `u64` counters for
//!   per-phase work accounting (window candidates examined, context subsets
//!   evaluated, coalescing merges, …).
//! * **Export** ([`Telemetry::to_json`]) — a `serde`-free JSON rendering in
//!   two modes: [`TimingMode::Full`] includes wall times,
//!   [`TimingMode::Deterministic`] omits them so the output is byte-identical
//!   across thread counts and machines (the harness's determinism tests
//!   compare this form).
//!
//! Registries are explicit values; a process-wide default ([`global`]) exists
//! so deep library code (the planner's window search, the profiler) can
//! record without threading a handle through every signature. The `repro`
//! binary swaps in a fresh registry per figure ([`swap_global`]) and harvests
//! it afterwards.
//!
//! # Examples
//!
//! ```
//! use ispy_telemetry::{Telemetry, TimingMode};
//!
//! let tele = Telemetry::new();
//! {
//!     let _phase = tele.span("plan");
//!     tele.add("plan.lines", 3);
//!     let _inner = tele.span("plan.window"); // spans nest
//! }
//! assert_eq!(tele.counter("plan.lines"), 3);
//! assert_eq!(tele.span_count("plan.window"), 1);
//! assert!(tele.to_json(TimingMode::Deterministic).contains("\"plan.lines\": 3"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Accumulated statistics for one span name.
///
/// # Examples
///
/// ```
/// use ispy_telemetry::Telemetry;
///
/// let tele = Telemetry::new();
/// drop(tele.span("phase"));
/// drop(tele.span("phase"));
/// let stat = tele.spans()["phase"];
/// assert_eq!(stat.count, 2);
/// assert!(stat.total_ns >= 1); // monotonic clocks can tick coarsely, never backwards
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of completed spans under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub total_ns: u128,
}

impl SpanStat {
    /// Total wall time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// How much of the registry [`Telemetry::to_json`] renders.
///
/// # Examples
///
/// ```
/// use ispy_telemetry::{Telemetry, TimingMode};
///
/// let tele = Telemetry::new();
/// drop(tele.span("p"));
/// assert!(tele.to_json(TimingMode::Full).contains("total_ms"));
/// assert!(!tele.to_json(TimingMode::Deterministic).contains("total_ms"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMode {
    /// Counters, span counts, and span wall times.
    Full,
    /// Counters and span counts only — byte-identical output regardless of
    /// thread count or machine speed.
    Deterministic,
}

/// A thread-safe registry of named counters and phase spans.
///
/// Cheap to share (`Arc<Telemetry>`); all mutation goes through interior
/// mutability, so `&Telemetry` suffices everywhere.
///
/// # Examples
///
/// ```
/// use ispy_telemetry::Telemetry;
///
/// let tele = Telemetry::new();
/// tele.add("widgets", 2);
/// tele.incr("widgets");
/// assert_eq!(tele.counter("widgets"), 3);
/// assert_eq!(tele.counter("absent"), 0);
/// ```
#[derive(Debug, Default)]
pub struct Telemetry {
    counters: Mutex<BTreeMap<String, u64>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Telemetry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name` (creating it at zero).
    pub fn add(&self, name: &str, n: u64) {
        let mut counters = self.counters.lock().expect("counter lock");
        match counters.get_mut(name) {
            Some(v) => *v += n,
            None => {
                counters.insert(name.to_string(), n);
            }
        }
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// The current value of counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().expect("counter lock").get(name).copied().unwrap_or(0)
    }

    /// Starts a span; the returned guard records its wall time under `name`
    /// when dropped. Guards may nest and may live on different threads.
    pub fn span<'a>(&'a self, name: &str) -> SpanGuard<'a> {
        SpanGuard { telemetry: self, name: name.to_string(), start: Instant::now() }
    }

    /// Number of completed spans recorded under `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.lock().expect("span lock").get(name).map_or(0, |s| s.count)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters.lock().expect("counter lock").clone()
    }

    /// Snapshot of all span statistics, sorted by name.
    pub fn spans(&self) -> BTreeMap<String, SpanStat> {
        self.spans.lock().expect("span lock").clone()
    }

    /// Forgets every counter and span.
    pub fn clear(&self) {
        self.counters.lock().expect("counter lock").clear();
        self.spans.lock().expect("span lock").clear();
    }

    /// Renders the registry as pretty JSON:
    /// `{"counters": {..}, "spans": {"name": {"count": n[, "total_ms": x]}}}`.
    ///
    /// [`TimingMode::Deterministic`] omits `total_ms` so the bytes depend
    /// only on the work performed, not on how fast or how parallel it ran.
    pub fn to_json(&self, mode: TimingMode) -> String {
        let counters = self.counters();
        let spans = self.spans();
        let mut out = String::from("{\n  \"counters\": {");
        render_object(&mut out, 2, counters.iter().map(|(k, v)| (k.as_str(), v.to_string())));
        out.push_str(",\n  \"spans\": {");
        render_object(
            &mut out,
            2,
            spans.iter().map(|(k, s)| {
                let body = match mode {
                    TimingMode::Full => {
                        format!("{{ \"count\": {}, \"total_ms\": {:.3} }}", s.count, s.total_ms())
                    }
                    TimingMode::Deterministic => format!("{{ \"count\": {} }}", s.count),
                };
                (k.as_str(), body)
            }),
        );
        out.push_str("\n}");
        out
    }

    fn record_span(&self, name: &str, elapsed_ns: u128) {
        let mut spans = self.spans.lock().expect("span lock");
        let stat = spans.entry(name.to_string()).or_default();
        stat.count += 1;
        // Coarse clocks can report 0 ns for very short spans; count at least
        // one so "this phase ran" is visible in the totals.
        stat.total_ns += elapsed_ns.max(1);
    }
}

/// Appends `"key": value` pairs as the body of an already-opened JSON
/// object, closing it. Values arrive pre-rendered.
fn render_object<'a>(
    out: &mut String,
    indent: usize,
    items: impl Iterator<Item = (&'a str, String)>,
) {
    let inner = "  ".repeat(indent);
    let outer = "  ".repeat(indent - 1);
    let mut any = false;
    for (i, (key, value)) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&inner);
        out.push('"');
        out.push_str(&escape(key));
        out.push_str("\": ");
        out.push_str(&value);
        any = true;
    }
    if any {
        out.push('\n');
        out.push_str(&outer);
    }
    out.push('}');
}

/// Escapes a string for use inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Records elapsed wall time into its [`Telemetry`] on drop.
///
/// # Examples
///
/// ```
/// use ispy_telemetry::Telemetry;
///
/// let tele = Telemetry::new();
/// {
///     let _guard = tele.span("work");
///     // ... the timed phase ...
/// } // guard drops here, recording the span
/// assert_eq!(tele.span_count("work"), 1);
/// ```
#[derive(Debug)]
pub struct SpanGuard<'a> {
    telemetry: &'a Telemetry,
    name: String,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.telemetry.record_span(&self.name, self.start.elapsed().as_nanos());
    }
}

/// The process-wide registry slot behind [`global`] / [`swap_global`].
static GLOBAL: OnceLock<Mutex<Arc<Telemetry>>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Arc<Telemetry>> {
    GLOBAL.get_or_init(|| Mutex::new(Arc::new(Telemetry::new())))
}

/// The process-wide default registry.
///
/// Library code too deep to take a `&Telemetry` parameter (the planner's
/// window search, the profiler's replay) records here; the `repro` binary
/// swaps in a fresh registry per figure to attribute work per experiment.
///
/// # Examples
///
/// ```
/// ispy_telemetry::global().incr("doc.example");
/// assert!(ispy_telemetry::global().counter("doc.example") >= 1);
/// ```
pub fn global() -> Arc<Telemetry> {
    Arc::clone(&global_slot().lock().expect("global telemetry lock"))
}

/// Installs `tele` as the process-wide registry, returning the previous one.
///
/// In-flight span guards keep recording into the registry they started with
/// (they hold their own handle), so swapping is always safe.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ispy_telemetry::{swap_global, Telemetry};
///
/// let fresh = Arc::new(Telemetry::new());
/// let previous = swap_global(Arc::clone(&fresh));
/// fresh.incr("scoped.work");
/// assert_eq!(ispy_telemetry::global().counter("scoped.work"), 1);
/// swap_global(previous); // restore
/// ```
pub fn swap_global(tele: Arc<Telemetry>) -> Arc<Telemetry> {
    std::mem::replace(&mut *global_slot().lock().expect("global telemetry lock"), tele)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.add("a", 5);
        t.incr("a");
        t.add("b", 0);
        assert_eq!(t.counter("a"), 6);
        assert_eq!(t.counter("b"), 0);
        assert_eq!(t.counters().len(), 2);
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
            let _inner2 = t.span("inner");
        }
        assert_eq!(t.span_count("outer"), 1);
        assert_eq!(t.span_count("inner"), 2);
        assert!(t.spans()["inner"].total_ns >= 2);
    }

    #[test]
    fn spans_are_thread_safe() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _g = t.span("shared");
                        t.incr("shared.count");
                    }
                });
            }
        });
        assert_eq!(t.span_count("shared"), 400);
        assert_eq!(t.counter("shared.count"), 400);
    }

    #[test]
    fn deterministic_json_has_no_timings_and_is_sorted() {
        let t = Telemetry::new();
        t.add("z.last", 1);
        t.add("a.first", 2);
        drop(t.span("phase"));
        let j = t.to_json(TimingMode::Deterministic);
        assert!(!j.contains("total_ms"));
        assert!(j.contains("\"phase\": { \"count\": 1 }"));
        let a = j.find("a.first").unwrap();
        let z = j.find("z.last").unwrap();
        assert!(a < z, "keys must render in sorted order");
        // Identical work renders identical bytes.
        let t2 = Telemetry::new();
        t2.add("a.first", 2);
        t2.add("z.last", 1);
        drop(t2.span("phase"));
        assert_eq!(j, t2.to_json(TimingMode::Deterministic));
    }

    #[test]
    fn full_json_includes_wall_time() {
        let t = Telemetry::new();
        drop(t.span("p"));
        let j = t.to_json(TimingMode::Full);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("total_ms"));
    }

    #[test]
    fn empty_registry_renders_empty_objects() {
        let t = Telemetry::new();
        assert_eq!(
            t.to_json(TimingMode::Deterministic),
            "{\n  \"counters\": {},\n  \"spans\": {}\n}"
        );
    }

    #[test]
    fn json_escapes_names() {
        let t = Telemetry::new();
        t.add("weird\"name", 1);
        assert!(t.to_json(TimingMode::Deterministic).contains("weird\\\"name"));
    }

    #[test]
    fn clear_resets() {
        let t = Telemetry::new();
        t.incr("x");
        drop(t.span("y"));
        t.clear();
        assert_eq!(t.counter("x"), 0);
        assert_eq!(t.span_count("y"), 0);
    }

    #[test]
    fn swap_global_roundtrip() {
        let fresh = Arc::new(Telemetry::new());
        let prev = swap_global(Arc::clone(&fresh));
        global().incr("swap.test");
        assert_eq!(fresh.counter("swap.test"), 1);
        let back = swap_global(prev);
        assert!(Arc::ptr_eq(&back, &fresh));
    }
}
