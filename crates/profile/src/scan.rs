//! Joint context statistics: exact conditional probabilities over a trace.
//!
//! Context discovery (§III-A) needs `P(miss at line m | predictor blocks
//! present in the LBR when the injection site executes)`. The paper
//! estimates this from sampled profiles; since the reproduction has the full
//! recorded trace, it computes the statistic *exactly* in one linear pass:
//! for every occurrence of an injection site, record which candidate
//! predictor blocks sit in the rolling 32-block window (a presence mask) and
//! whether a sampled miss of the target line follows within a horizon.
//!
//! Subset probabilities are recovered by superset aggregation: a candidate
//! subset `S` is "present" at an occurrence whose mask is `M` iff `S ⊆ M`,
//! so `count(S) = Σ_{M ⊇ S} count(M)`.

use ispy_trace::{BlockId, Trace};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Maximum number of candidate predictor blocks per query (masks are `u16`
/// indices into dense arrays, so 8 keeps them tiny).
pub const MAX_CANDIDATES: usize = 8;

/// One question: at `site`, over candidate predictor blocks, how often does
/// one of `target_positions` (ascending trace indices — e.g. the sampled
/// misses of a line, or the executions of a block) follow within
/// `horizon_blocks`?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointQuery {
    /// The candidate injection site.
    pub site: BlockId,
    /// Ascending trace positions of the targeted event.
    pub target_positions: Vec<u32>,
    /// Candidate predictor blocks (≤ [`MAX_CANDIDATES`]).
    pub candidates: Vec<BlockId>,
    /// Look-ahead horizon in block events.
    pub horizon_blocks: u32,
}

impl JointQuery {
    /// First target position at or after `idx`, if any.
    fn next_target_at_or_after(&self, idx: u32) -> Option<u32> {
        let i = self.target_positions.partition_point(|&p| p < idx);
        self.target_positions.get(i).copied()
    }
}

/// Dense per-mask counts answering a [`JointQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointCounts {
    /// `occurrences[mask]`: site executions whose window presence mask was
    /// exactly `mask`.
    pub occurrences: Vec<u64>,
    /// `hits[mask]`: of those, how many were followed by a miss of the
    /// target line within the horizon.
    pub hits: Vec<u64>,
}

impl JointCounts {
    fn new(n_candidates: usize) -> Self {
        let size = 1usize << n_candidates;
        JointCounts { occurrences: vec![0; size], hits: vec![0; size] }
    }

    /// Total site executions observed.
    pub fn total_occurrences(&self) -> u64 {
        self.occurrences.iter().sum()
    }

    /// Total site executions followed by the miss.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Occurrences whose mask is a superset of `subset` — i.e., executions
    /// where every block of `subset` was present.
    pub fn occurrences_with(&self, subset: u16) -> u64 {
        self.superset_sum(&self.occurrences, subset)
    }

    /// Hits whose mask is a superset of `subset`.
    pub fn hits_with(&self, subset: u16) -> u64 {
        self.superset_sum(&self.hits, subset)
    }

    /// `P(miss | subset present at site)`, or `None` with no support.
    pub fn conditional_probability(&self, subset: u16) -> Option<f64> {
        let occ = self.occurrences_with(subset);
        if occ == 0 {
            None
        } else {
            Some(self.hits_with(subset) as f64 / occ as f64)
        }
    }

    fn superset_sum(&self, arr: &[u64], subset: u16) -> u64 {
        let subset = subset as usize;
        arr.iter().enumerate().filter(|&(mask, _)| mask & subset == subset).map(|(_, &c)| c).sum()
    }
}

/// Answers all `queries` in one linear pass over `trace`.
///
/// Target positions typically come from the profiling pass (sampled miss
/// positions), so "followed by the target" means a *sampled* miss —
/// consistent with what the planner optimizes for. Passing a block's
/// execution positions instead yields path-based reach/fan-out statistics.
///
/// # Panics
///
/// Panics if a query has more than [`MAX_CANDIDATES`] candidates.
pub fn scan_joint(trace: &Trace, lbr_depth: usize, queries: &[JointQuery]) -> Vec<JointCounts> {
    for q in queries {
        assert!(
            q.candidates.len() <= MAX_CANDIDATES,
            "at most {MAX_CANDIDATES} candidates per query"
        );
    }
    let mut results: Vec<JointCounts> =
        queries.iter().map(|q| JointCounts::new(q.candidates.len())).collect();

    // Group queries by site for O(1) dispatch per trace event.
    let mut by_site: HashMap<BlockId, Vec<usize>> = HashMap::new();
    for (i, q) in queries.iter().enumerate() {
        by_site.entry(q.site).or_default().push(i);
    }

    // Rolling presence window with multiplicity counts.
    let mut window: VecDeque<BlockId> = VecDeque::with_capacity(lbr_depth + 1);
    let mut present: HashMap<BlockId, u32> = HashMap::new();

    for (idx, block) in trace.iter().enumerate() {
        window.push_back(block);
        *present.entry(block).or_insert(0) += 1;
        if window.len() > lbr_depth {
            let old = window.pop_front().expect("non-empty");
            if let Some(c) = present.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    present.remove(&old);
                }
            }
        }

        let Some(query_ids) = by_site.get(&block) else { continue };
        for &qi in query_ids {
            let q = &queries[qi];
            let mut mask = 0u16;
            for (ci, cand) in q.candidates.iter().enumerate() {
                if present.contains_key(cand) {
                    mask |= 1 << ci;
                }
            }
            results[qi].occurrences[mask as usize] += 1;
            let hit = q
                .next_target_at_or_after(idx as u32 + 1)
                .is_some_and(|pos| pos - idx as u32 <= q.horizon_blocks);
            if hit {
                results[qi].hits[mask as usize] += 1;
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BlockId {
        BlockId(i)
    }

    /// Trace: [1, 2, 9, 3, 9, 1, 9] with site 9; the target (a miss of some
    /// line) occurs at positions 3 and 7.
    fn setup() -> (Trace, Vec<u32>) {
        let trace = Trace::new("t", vec![b(1), b(2), b(9), b(3), b(9), b(1), b(9)]);
        (trace, vec![3, 7])
    }

    #[test]
    fn masks_and_hits() {
        let (trace, pos) = setup();
        let q = JointQuery {
            site: b(9),
            target_positions: pos,
            candidates: vec![b(1), b(2)],
            horizon_blocks: 2,
        };
        let res = &scan_joint(&trace, 3, &[q])[0];
        // Site executes at idx 2 (window [1,2,9]: both present -> mask 0b11,
        // miss at 3 within horizon -> hit), idx 4 (window [9,3,9]: neither ->
        // mask 0, next miss at 7, distance 3 > 2 -> no hit), idx 6 (window
        // [9,1,9]: b1 present -> mask 0b01, miss at 7 within 1 -> hit).
        assert_eq!(res.total_occurrences(), 3);
        assert_eq!(res.occurrences[0b11], 1);
        assert_eq!(res.occurrences[0b00], 1);
        assert_eq!(res.occurrences[0b01], 1);
        assert_eq!(res.hits[0b11], 1);
        assert_eq!(res.hits[0b00], 0);
        assert_eq!(res.hits[0b01], 1);
    }

    #[test]
    fn superset_aggregation() {
        let (trace, pos) = setup();
        let q = JointQuery {
            site: b(9),
            target_positions: pos,
            candidates: vec![b(1), b(2)],
            horizon_blocks: 2,
        };
        let res = &scan_joint(&trace, 3, &[q])[0];
        // Subset {b1} = bit 0: occurrences with b1 present = masks 01 and 11.
        assert_eq!(res.occurrences_with(0b01), 2);
        assert_eq!(res.hits_with(0b01), 2);
        assert_eq!(res.conditional_probability(0b01), Some(1.0));
        // Empty subset = all occurrences.
        assert_eq!(res.occurrences_with(0), 3);
        let p_uncond = res.conditional_probability(0).unwrap();
        assert!((p_uncond - 2.0 / 3.0).abs() < 1e-12);
        // Conditioning on b1 beats unconditional: the Bayes step the paper
        // describes in Fig. 6.
        assert!(res.conditional_probability(0b01).unwrap() > p_uncond);
    }

    #[test]
    fn window_depth_limits_presence() {
        let trace = Trace::new("t", vec![b(1), b(2), b(3), b(4), b(9)]);
        let q = JointQuery {
            site: b(9),
            target_positions: vec![],
            candidates: vec![b(1)],
            horizon_blocks: 4,
        };
        // Depth 3: window at site = [3,4,9]; b1 out.
        let res = &scan_joint(&trace, 3, std::slice::from_ref(&q))[0];
        assert_eq!(res.occurrences[0b0], 1);
        // Depth 5: b1 still inside.
        let res = &scan_joint(&trace, 5, &[q])[0];
        assert_eq!(res.occurrences[0b1], 1);
    }

    #[test]
    fn no_support_returns_none() {
        let (trace, pos) = setup();
        let q = JointQuery {
            site: b(42), // never executes
            target_positions: pos,
            candidates: vec![b(1)],
            horizon_blocks: 2,
        };
        let res = &scan_joint(&trace, 4, &[q])[0];
        assert_eq!(res.total_occurrences(), 0);
        assert_eq!(res.conditional_probability(0), None);
    }

    #[test]
    fn multiple_queries_share_the_pass() {
        let (trace, pos) = setup();
        let qs = vec![
            JointQuery {
                site: b(9),
                target_positions: pos.clone(),
                candidates: vec![b(1)],
                horizon_blocks: 2,
            },
            JointQuery { site: b(2), target_positions: pos, candidates: vec![], horizon_blocks: 2 },
        ];
        let res = scan_joint(&trace, 4, &qs);
        assert_eq!(res.len(), 2);
        assert_eq!(res[1].total_occurrences(), 1);
        assert_eq!(res[1].occurrences.len(), 1); // empty candidate set -> one mask
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_candidates_panics() {
        let (trace, pos) = setup();
        let q = JointQuery {
            site: b(9),
            target_positions: pos,
            candidates: (0..9).map(b).collect(),
            horizon_blocks: 2,
        };
        let _ = scan_joint(&trace, 4, &[q]);
    }
}
