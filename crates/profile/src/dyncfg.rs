//! The weighted dynamic control-flow graph (paper Fig. 2).

use ispy_trace::BlockId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A dynamic CFG: blocks weighted by execution count, edges weighted by
/// taken-branch count, and per-block average cycle costs.
///
/// Built from an LBR-style profiling pass; every quantity is *dynamic*
/// (observed), not static.
#[derive(Debug, Clone, Default)]
pub struct DynCfg {
    exec: Vec<u64>,
    avg_cycles: Vec<f64>,
    succs: Vec<Vec<(BlockId, u64)>>,
    preds: Vec<Vec<(BlockId, u64)>>,
}

impl DynCfg {
    /// Assembles a CFG from per-block execution counts, edge counts, and
    /// average per-execution cycle costs.
    ///
    /// # Panics
    ///
    /// Panics if `exec` and `avg_cycles` lengths disagree or an edge names a
    /// block out of range.
    pub fn new(exec: Vec<u64>, avg_cycles: Vec<f64>, edges: &HashMap<(u32, u32), u64>) -> Self {
        assert_eq!(exec.len(), avg_cycles.len(), "parallel arrays");
        let n = exec.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (&(from, to), &w) in edges {
            assert!((from as usize) < n && (to as usize) < n, "edge out of range");
            succs[from as usize].push((BlockId(to), w));
            preds[to as usize].push((BlockId(from), w));
        }
        for adj in succs.iter_mut().chain(preds.iter_mut()) {
            adj.sort_by_key(|&(b, w)| (std::cmp::Reverse(w), b));
        }
        DynCfg { exec, avg_cycles, succs, preds }
    }

    /// Number of blocks the CFG covers.
    pub fn num_blocks(&self) -> usize {
        self.exec.len()
    }

    /// Dynamic execution count of `b`.
    pub fn exec_count(&self, b: BlockId) -> u64 {
        self.exec[b.index()]
    }

    /// Average cycles one execution of `b` costs (from the profile's cycle
    /// deltas — the paper's replacement for AsmDB's global IPC estimate).
    pub fn avg_cycles(&self, b: BlockId) -> f64 {
        self.avg_cycles[b.index()]
    }

    /// Observed successors of `b` with taken counts, heaviest first.
    pub fn succs(&self, b: BlockId) -> &[(BlockId, u64)] {
        &self.succs[b.index()]
    }

    /// Observed predecessors of `b` with taken counts, heaviest first.
    pub fn preds(&self, b: BlockId) -> &[(BlockId, u64)] {
        &self.preds[b.index()]
    }

    /// Probability of taking the edge `from -> to` given `from` executed.
    pub fn edge_prob(&self, from: BlockId, to: BlockId) -> f64 {
        let total: u64 = self.succs[from.index()].iter().map(|&(_, w)| w).sum();
        if total == 0 {
            return 0.0;
        }
        let w = self.succs[from.index()].iter().find(|&&(b, _)| b == to).map_or(0, |&(_, w)| w);
        w as f64 / total as f64
    }

    /// Blocks that were executed at least once.
    pub fn live_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.exec.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, _)| BlockId(i as u32))
    }

    /// Renders the subgraph around `center` (its predecessors up to `depth`)
    /// in Graphviz dot format — used by the Fig. 2 walkthrough.
    pub fn to_dot(&self, center: BlockId, depth: usize) -> String {
        let mut nodes = vec![center];
        let mut frontier = vec![center];
        for _ in 0..depth {
            let mut next = Vec::new();
            for &b in &frontier {
                for &(p, _) in self.preds(b) {
                    if !nodes.contains(&p) {
                        nodes.push(p);
                        next.push(p);
                    }
                }
            }
            frontier = next;
        }
        let mut out = String::from("digraph dyncfg {\n");
        for &n in &nodes {
            let _ = writeln!(out, "  {} [label=\"{} x{}\"];", n.0, n, self.exec_count(n));
        }
        for &n in &nodes {
            for &(p, w) in self.preds(n) {
                if nodes.contains(&p) {
                    let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", p.0, n.0, w);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> DynCfg {
        // 0 -> 1 (30), 0 -> 2 (10), 1 -> 3 (30), 2 -> 3 (10)
        let mut edges = HashMap::new();
        edges.insert((0, 1), 30);
        edges.insert((0, 2), 10);
        edges.insert((1, 3), 30);
        edges.insert((2, 3), 10);
        DynCfg::new(vec![40, 30, 10, 40], vec![4.0, 5.0, 6.0, 7.0], &edges)
    }

    #[test]
    fn adjacency_and_counts() {
        let g = simple();
        assert_eq!(g.exec_count(BlockId(0)), 40);
        assert_eq!(g.succs(BlockId(0)).len(), 2);
        assert_eq!(g.preds(BlockId(3)).len(), 2);
        // Heaviest-first ordering.
        assert_eq!(g.succs(BlockId(0))[0], (BlockId(1), 30));
        assert_eq!(g.preds(BlockId(3))[0], (BlockId(1), 30));
    }

    #[test]
    fn edge_probabilities() {
        let g = simple();
        assert!((g.edge_prob(BlockId(0), BlockId(1)) - 0.75).abs() < 1e-12);
        assert!((g.edge_prob(BlockId(0), BlockId(2)) - 0.25).abs() < 1e-12);
        assert_eq!(g.edge_prob(BlockId(0), BlockId(3)), 0.0);
        assert_eq!(g.edge_prob(BlockId(3), BlockId(0)), 0.0);
    }

    #[test]
    fn live_blocks_skips_unexecuted() {
        let g = DynCfg::new(vec![1, 0, 2], vec![1.0; 3], &HashMap::new());
        let live: Vec<_> = g.live_blocks().map(|b| b.0).collect();
        assert_eq!(live, vec![0, 2]);
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = simple();
        let dot = g.to_dot(BlockId(3), 2);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("1 -> 3"));
        assert!(dot.contains("0 -> 1"));
    }

    #[test]
    #[should_panic(expected = "edge out of range")]
    fn bad_edge_panics() {
        let mut edges = HashMap::new();
        edges.insert((0, 9), 1);
        let _ = DynCfg::new(vec![1, 1], vec![1.0, 1.0], &edges);
    }
}
