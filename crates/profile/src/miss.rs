//! Per-missing-line statistics (the PEBS side of the profile).

use ispy_trace::{BlockId, Line};
use std::collections::HashMap;

/// Everything the profiler learned about one missing I-cache line.
#[derive(Debug, Clone, Default)]
pub struct LineMissStats {
    /// Sampled miss count.
    pub count: u64,
    /// Blocks that were executing when the line missed, with counts.
    /// (A line can miss from several blocks when blocks share a line.)
    pub at_blocks: HashMap<BlockId, u64>,
    /// For each block, how many sampled misses had it in the 32-deep
    /// history window — the raw material for predictor-block mining.
    pub history_presence: HashMap<BlockId, u64>,
    /// Trace positions (block indices) of the sampled misses, ascending.
    pub positions: Vec<u32>,
}

impl LineMissStats {
    /// The block that most often triggers this miss.
    pub fn dominant_block(&self) -> Option<BlockId> {
        self.at_blocks.iter().max_by_key(|&(b, &c)| (c, std::cmp::Reverse(b.0))).map(|(&b, _)| b)
    }

    /// History blocks ranked by presence frequency (descending), excluding
    /// any block in `exclude`.
    pub fn ranked_predictors(&self, exclude: &[BlockId]) -> Vec<(BlockId, u64)> {
        let mut v: Vec<(BlockId, u64)> = self
            .history_presence
            .iter()
            .filter(|(b, _)| !exclude.contains(b))
            .map(|(&b, &c)| (b, c))
            .collect();
        v.sort_by_key(|&(b, c)| (std::cmp::Reverse(c), b));
        v
    }

    /// First sampled miss at or after trace position `idx`, if any.
    pub fn next_miss_at_or_after(&self, idx: u32) -> Option<u32> {
        let i = self.positions.partition_point(|&p| p < idx);
        self.positions.get(i).copied()
    }
}

/// All missing lines observed by a profiling pass.
#[derive(Debug, Clone, Default)]
pub struct MissProfile {
    by_line: HashMap<u64, LineMissStats>,
    total: u64,
}

impl MissProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sampled miss of `line` at `block`, trace position `idx`,
    /// with the 32-deep history window `history`.
    pub fn record(&mut self, line: Line, block: BlockId, idx: u32, history: &[BlockId]) {
        let stats = self.by_line.entry(line.raw()).or_default();
        stats.count += 1;
        *stats.at_blocks.entry(block).or_insert(0) += 1;
        // Presence, not multiplicity: each distinct block counts once per
        // sample (the Bloom filter tests presence only).
        let mut seen = Vec::with_capacity(history.len());
        for &h in history {
            if !seen.contains(&h) {
                seen.push(h);
                *stats.history_presence.entry(h).or_insert(0) += 1;
            }
        }
        stats.positions.push(idx);
        self.total += 1;
    }

    /// Installs fully-formed stats for `line`, replacing any existing entry
    /// — the artifact decoder's entry point for exact reconstruction (the
    /// incremental [`MissProfile::record`] path cannot rebuild presorted
    /// stats verbatim).
    pub(crate) fn insert_line(&mut self, line: Line, stats: LineMissStats) {
        self.total += stats.count;
        if let Some(old) = self.by_line.insert(line.raw(), stats) {
            self.total -= old.count;
        }
    }

    /// Stats for `line`, if it ever missed.
    pub fn line(&self, line: Line) -> Option<&LineMissStats> {
        self.by_line.get(&line.raw())
    }

    /// Total sampled misses.
    pub fn total_misses(&self) -> u64 {
        self.total
    }

    /// Number of distinct missing lines.
    pub fn num_lines(&self) -> usize {
        self.by_line.len()
    }

    /// Missing lines ordered by miss count, heaviest first.
    pub fn lines_by_count(&self) -> Vec<(Line, &LineMissStats)> {
        let mut v: Vec<(Line, &LineMissStats)> =
            self.by_line.iter().map(|(&raw, s)| (Line::new(raw), s)).collect();
        v.sort_by_key(|&(l, s)| (std::cmp::Reverse(s.count), l));
        v
    }

    /// Iterates all `(line, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Line, &LineMissStats)> {
        self.by_line.iter().map(|(&raw, s)| (Line::new(raw), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BlockId {
        BlockId(i)
    }

    #[test]
    fn record_accumulates() {
        let mut mp = MissProfile::new();
        let l = Line::new(100);
        mp.record(l, b(5), 10, &[b(1), b(2), b(1)]);
        mp.record(l, b(5), 20, &[b(2), b(3)]);
        let s = mp.line(l).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.at_blocks[&b(5)], 2);
        // b(1) appeared twice in one sample -> presence counted once.
        assert_eq!(s.history_presence[&b(1)], 1);
        assert_eq!(s.history_presence[&b(2)], 2);
        assert_eq!(s.positions, vec![10, 20]);
        assert_eq!(mp.total_misses(), 2);
        assert_eq!(mp.num_lines(), 1);
    }

    #[test]
    fn dominant_block() {
        let mut mp = MissProfile::new();
        let l = Line::new(7);
        mp.record(l, b(1), 0, &[]);
        mp.record(l, b(2), 1, &[]);
        mp.record(l, b(2), 2, &[]);
        assert_eq!(mp.line(l).unwrap().dominant_block(), Some(b(2)));
    }

    #[test]
    fn ranked_predictors_order_and_exclusion() {
        let mut mp = MissProfile::new();
        let l = Line::new(7);
        mp.record(l, b(9), 0, &[b(1), b(2)]);
        mp.record(l, b(9), 1, &[b(2)]);
        mp.record(l, b(9), 2, &[b(2), b(3)]);
        let s = mp.line(l).unwrap();
        let ranked = s.ranked_predictors(&[]);
        assert_eq!(ranked[0], (b(2), 3));
        let without = s.ranked_predictors(&[b(2)]);
        assert!(without.iter().all(|&(blk, _)| blk != b(2)));
    }

    #[test]
    fn next_miss_lookup() {
        let mut mp = MissProfile::new();
        let l = Line::new(1);
        for idx in [5u32, 10, 20] {
            mp.record(l, b(0), idx, &[]);
        }
        let s = mp.line(l).unwrap();
        assert_eq!(s.next_miss_at_or_after(0), Some(5));
        assert_eq!(s.next_miss_at_or_after(5), Some(5));
        assert_eq!(s.next_miss_at_or_after(6), Some(10));
        assert_eq!(s.next_miss_at_or_after(21), None);
    }

    #[test]
    fn lines_by_count_sorted() {
        let mut mp = MissProfile::new();
        mp.record(Line::new(1), b(0), 0, &[]);
        mp.record(Line::new(2), b(0), 1, &[]);
        mp.record(Line::new(2), b(0), 2, &[]);
        let order: Vec<u64> = mp.lines_by_count().iter().map(|(l, _)| l.raw()).collect();
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn missing_line_lookup_is_none() {
        let mp = MissProfile::new();
        assert!(mp.line(Line::new(42)).is_none());
        assert_eq!(mp.total_misses(), 0);
    }
}
