//! The `.iprof` artifact codec: a durable miss-annotated profile.
//!
//! Serializes a [`Profile`] — the dynamic CFG (execution counts, average
//! cycle costs, weighted edges) plus the per-line miss statistics — so the
//! offline analysis can run on a different machine, or later, than the
//! profiling pass, exactly as the paper's deployment model assumes.
//!
//! Exactness matters more than compactness here: the planner's decisions
//! are functions of these numbers, so `f64`s travel as raw bit patterns and
//! every map is written in sorted order. A reloaded profile is
//! indistinguishable from the in-memory original — plans built from it are
//! equal, and replays of those plans byte-identical.
//!
//! # Examples
//!
//! ```
//! use ispy_profile::{artifact, profile, SampleRate};
//! use ispy_sim::SimConfig;
//! use ispy_trace::apps;
//!
//! let model = apps::drupal().scaled_down(60);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 5_000);
//! let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
//! let bytes = artifact::profile_to_bytes(program.name(), &prof);
//! let (label, prof2) = artifact::profile_from_bytes(&bytes).unwrap();
//! assert_eq!(label, "drupal");
//! assert_eq!(prof2.misses.total_misses(), prof.misses.total_misses());
//! ```

use crate::collect::Profile;
use crate::dyncfg::DynCfg;
use crate::miss::{LineMissStats, MissProfile};
use ispy_artifact::{ArtifactError, ArtifactKind, ArtifactReader, ArtifactWriter};
use ispy_trace::{BlockId, Line};
use std::collections::HashMap;
use std::path::Path;

/// Label, trace length, LBR depth, block count.
const SEC_META: u32 = 1;
/// Per-block execution counts.
const SEC_CFG_EXEC: u32 = 2;
/// Per-block average cycle costs (exact `f64` bits).
const SEC_CFG_CYCLES: u32 = 3;
/// Weighted dynamic edges, sorted by (from, to).
const SEC_CFG_EDGES: u32 = 4;
/// Per-line miss statistics, sorted by line address.
const SEC_MISSES: u32 = 5;

/// Serializes a profile to artifact bytes under an app `label`.
pub fn profile_to_bytes(label: &str, profile: &Profile) -> Vec<u8> {
    let n = profile.cfg.num_blocks();
    let mut w = ArtifactWriter::new(ArtifactKind::Profile);

    let mut meta = w.section(SEC_META);
    meta.put_str(label);
    meta.put_varint(profile.trace_len as u64);
    meta.put_varint(profile.lbr_depth as u64);
    meta.put_varint(n as u64);
    w.finish_section(meta);

    let mut exec = w.section(SEC_CFG_EXEC);
    for i in 0..n {
        exec.put_varint(profile.cfg.exec_count(BlockId(i as u32)));
    }
    w.finish_section(exec);

    let mut cycles = w.section(SEC_CFG_CYCLES);
    for i in 0..n {
        cycles.put_f64(profile.cfg.avg_cycles(BlockId(i as u32)));
    }
    w.finish_section(cycles);

    let mut all_edges: Vec<(u32, u32, u64)> = Vec::new();
    for i in 0..n {
        for &(to, weight) in profile.cfg.succs(BlockId(i as u32)) {
            all_edges.push((i as u32, to.0, weight));
        }
    }
    all_edges.sort_unstable();
    let mut edges = w.section(SEC_CFG_EDGES);
    edges.put_varint(all_edges.len() as u64);
    for (from, to, weight) in all_edges {
        edges.put_delta(u64::from(from));
        edges.put_varint(u64::from(to));
        edges.put_varint(weight);
    }
    w.finish_section(edges);

    let mut by_line: Vec<(u64, &LineMissStats)> =
        profile.misses.iter().map(|(l, s)| (l.raw(), s)).collect();
    by_line.sort_unstable_by_key(|&(raw, _)| raw);
    let mut misses = w.section(SEC_MISSES);
    misses.put_varint(by_line.len() as u64);
    for (raw, stats) in by_line {
        misses.put_delta(raw);
        misses.put_varint(stats.count);
        let mut sorted: Vec<(u32, u64)> = stats.at_blocks.iter().map(|(&b, &c)| (b.0, c)).collect();
        sorted.sort_unstable();
        misses.put_varint(sorted.len() as u64);
        for (b, c) in sorted {
            misses.put_varint(u64::from(b));
            misses.put_varint(c);
        }
        let mut sorted: Vec<(u32, u64)> =
            stats.history_presence.iter().map(|(&b, &c)| (b.0, c)).collect();
        sorted.sort_unstable();
        misses.put_varint(sorted.len() as u64);
        for (b, c) in sorted {
            misses.put_varint(u64::from(b));
            misses.put_varint(c);
        }
        misses.put_varint(stats.positions.len() as u64);
        let mut prev = 0u32;
        for &p in &stats.positions {
            misses.put_varint(u64::from(p - prev));
            prev = p;
        }
    }
    w.finish_section(misses);

    w.to_bytes()
}

/// Writes a profile to `path` (conventionally `*.iprof`).
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure.
pub fn write_profile(label: &str, profile: &Profile, path: &Path) -> Result<(), ArtifactError> {
    std::fs::create_dir_all(path.parent().unwrap_or_else(|| Path::new(".")))
        .map_err(|e| ArtifactError::io(path, e))?;
    std::fs::write(path, profile_to_bytes(label, profile)).map_err(|e| ArtifactError::io(path, e))
}

/// Checked narrowing with a typed error instead of a panicking cast.
fn narrow<T: TryFrom<u64>>(v: u64, what: &'static str) -> Result<T, ArtifactError> {
    T::try_from(v).map_err(|_| ArtifactError::malformed(what, format!("value {v} out of range")))
}

/// Decodes `(label, profile)` from artifact bytes.
///
/// # Errors
///
/// Typed [`ArtifactError`] on any container- or payload-level defect; block
/// ids and edge endpoints are range-checked before the (panicking)
/// [`DynCfg`] constructor runs.
pub fn profile_from_bytes(bytes: &[u8]) -> Result<(String, Profile), ArtifactError> {
    let r = ArtifactReader::from_bytes(bytes, ArtifactKind::Profile)?;

    let mut meta = r.require_section(SEC_META)?;
    let label = meta.take_str()?;
    let trace_len: usize = narrow(meta.take_varint()?, "trace length")?;
    let lbr_depth: usize = narrow(meta.take_varint()?, "lbr depth")?;
    let num_blocks: usize = narrow(meta.take_varint()?, "block count")?;
    meta.finish()?;

    let mut exec_sec = r.require_section(SEC_CFG_EXEC)?;
    let mut exec = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        exec.push(exec_sec.take_varint()?);
    }
    exec_sec.finish()?;

    let mut cycles_sec = r.require_section(SEC_CFG_CYCLES)?;
    let mut avg_cycles = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        avg_cycles.push(cycles_sec.take_f64()?);
    }
    cycles_sec.finish()?;

    let in_range = |raw: u64, what: &'static str| -> Result<u32, ArtifactError> {
        if (raw as usize) < num_blocks {
            Ok(raw as u32)
        } else {
            Err(ArtifactError::malformed(what, format!("block id {raw} out of range")))
        }
    };

    let mut edges_sec = r.require_section(SEC_CFG_EDGES)?;
    let n_edges: usize = narrow(edges_sec.take_varint()?, "edge count")?;
    let mut edges: HashMap<(u32, u32), u64> = HashMap::with_capacity(n_edges.min(1 << 22));
    for _ in 0..n_edges {
        let from = in_range(edges_sec.take_delta()?, "edge source")?;
        let to = in_range(edges_sec.take_varint()?, "edge target")?;
        let weight = edges_sec.take_varint()?;
        if edges.insert((from, to), weight).is_some() {
            return Err(ArtifactError::malformed("edge", format!("duplicate edge {from}->{to}")));
        }
    }
    edges_sec.finish()?;

    let mut misses_sec = r.require_section(SEC_MISSES)?;
    let n_lines: usize = narrow(misses_sec.take_varint()?, "miss line count")?;
    let mut misses = MissProfile::new();
    let mut prev_line = 0u64;
    for _ in 0..n_lines {
        let raw = misses_sec.take_delta()?;
        if raw < prev_line {
            return Err(ArtifactError::malformed("miss line", "lines not sorted"));
        }
        prev_line = raw + 1;
        let count = misses_sec.take_varint()?;
        let mut stats = LineMissStats { count, ..Default::default() };
        let n_at: usize = narrow(misses_sec.take_varint()?, "at-block count")?;
        for _ in 0..n_at {
            let b = in_range(misses_sec.take_varint()?, "at-block id")?;
            stats.at_blocks.insert(BlockId(b), misses_sec.take_varint()?);
        }
        let n_hist: usize = narrow(misses_sec.take_varint()?, "history-block count")?;
        for _ in 0..n_hist {
            let b = in_range(misses_sec.take_varint()?, "history-block id")?;
            stats.history_presence.insert(BlockId(b), misses_sec.take_varint()?);
        }
        let n_pos: usize = narrow(misses_sec.take_varint()?, "position count")?;
        if n_pos as u64 != count {
            return Err(ArtifactError::malformed("miss positions", "count/positions mismatch"));
        }
        let mut prev = 0u64;
        stats.positions.reserve(n_pos.min(1 << 24));
        for _ in 0..n_pos {
            let p = prev + misses_sec.take_varint()?;
            stats.positions.push(narrow(p, "miss position")?);
            prev = p;
        }
        misses.insert_line(Line::new(raw), stats);
    }
    misses_sec.finish()?;

    let profile =
        Profile { cfg: DynCfg::new(exec, avg_cycles, &edges), misses, trace_len, lbr_depth };
    Ok((label, profile))
}

/// Reads `(label, profile)` from `path`.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure, otherwise as
/// [`profile_from_bytes`].
pub fn read_profile(path: &Path) -> Result<(String, Profile), ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::io(path, e))?;
    profile_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{profile, SampleRate};
    use ispy_sim::SimConfig;
    use ispy_trace::apps;

    fn sample() -> (String, Profile) {
        let model = apps::finagle_http().scaled_down(50);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 8_000);
        let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        (program.name().to_string(), prof)
    }

    #[test]
    fn round_trip_preserves_cfg_and_misses_exactly() {
        let (name, prof) = sample();
        let bytes = profile_to_bytes(&name, &prof);
        let (label, p2) = profile_from_bytes(&bytes).unwrap();
        assert_eq!(label, name);
        assert_eq!(p2.trace_len, prof.trace_len);
        assert_eq!(p2.lbr_depth, prof.lbr_depth);
        assert_eq!(p2.cfg.num_blocks(), prof.cfg.num_blocks());
        for i in 0..prof.cfg.num_blocks() {
            let b = BlockId(i as u32);
            assert_eq!(p2.cfg.exec_count(b), prof.cfg.exec_count(b));
            assert_eq!(p2.cfg.avg_cycles(b).to_bits(), prof.cfg.avg_cycles(b).to_bits());
            assert_eq!(p2.cfg.succs(b), prof.cfg.succs(b));
            assert_eq!(p2.cfg.preds(b), prof.cfg.preds(b));
        }
        assert_eq!(p2.misses.total_misses(), prof.misses.total_misses());
        assert_eq!(p2.misses.num_lines(), prof.misses.num_lines());
        for (line, stats) in prof.misses.iter() {
            let s2 = p2.misses.line(line).expect("line survived the round trip");
            assert_eq!(s2.count, stats.count);
            assert_eq!(s2.at_blocks, stats.at_blocks);
            assert_eq!(s2.history_presence, stats.history_presence);
            assert_eq!(s2.positions, stats.positions);
        }
    }

    #[test]
    fn reencoding_is_byte_identical() {
        let (name, prof) = sample();
        let bytes = profile_to_bytes(&name, &prof);
        let (label, p2) = profile_from_bytes(&bytes).unwrap();
        assert_eq!(profile_to_bytes(&label, &p2), bytes);
    }

    #[test]
    fn out_of_range_edge_is_malformed_not_panic() {
        let (name, prof) = sample();
        let mut bytes = profile_to_bytes(&name, &prof);
        // Shrink the declared block count so every edge/id check trips.
        // Find META (section 1) and patch its block-count varint is fiddly;
        // instead rebuild with a lying META via the public API surface:
        // corrupting any byte is caught by CRC, so construct a tiny profile
        // whose edges reference out-of-range blocks directly.
        bytes.clear();
        let mut edges = HashMap::new();
        edges.insert((0u32, 1u32), 5u64);
        let small = Profile {
            cfg: DynCfg::new(vec![1, 1], vec![1.0, 1.0], &edges),
            misses: MissProfile::new(),
            trace_len: 2,
            lbr_depth: 32,
        };
        let good = profile_to_bytes("small", &small);
        // Decode, then re-encode a hostile variant by writing sections with
        // a block count of 1 but an edge to block 1.
        let r = ArtifactReader::from_bytes(&good, ArtifactKind::Profile).unwrap();
        drop(r);
        let mut w = ArtifactWriter::new(ArtifactKind::Profile);
        let mut meta = w.section(SEC_META);
        meta.put_str("small");
        meta.put_varint(2);
        meta.put_varint(32);
        meta.put_varint(1); // one block...
        w.finish_section(meta);
        let mut exec = w.section(SEC_CFG_EXEC);
        exec.put_varint(1);
        w.finish_section(exec);
        let mut cycles = w.section(SEC_CFG_CYCLES);
        cycles.put_f64(1.0);
        w.finish_section(cycles);
        let mut e = w.section(SEC_CFG_EDGES);
        e.put_varint(1);
        e.put_delta(0);
        e.put_varint(1); // ...but an edge to block 1.
        e.put_varint(5);
        w.finish_section(e);
        let mut m = w.section(SEC_MISSES);
        m.put_varint(0);
        w.finish_section(m);
        assert!(matches!(
            profile_from_bytes(&w.to_bytes()),
            Err(ArtifactError::Malformed { context: "edge target", .. })
        ));
    }

    #[test]
    fn missing_section_is_typed() {
        let w = ArtifactWriter::new(ArtifactKind::Profile);
        assert!(matches!(
            profile_from_bytes(&w.to_bytes()),
            Err(ArtifactError::MissingSection { id: SEC_META })
        ));
    }
}
