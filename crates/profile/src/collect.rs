//! The profiling pass: replay under observation, splice LBR + PEBS views.

use crate::dyncfg::DynCfg;
use crate::miss::MissProfile;
use ispy_sim::{run, RunOptions, SimConfig, SimObserver};
use ispy_trace::{BlockId, Line, Program, Trace};
use std::collections::{HashMap, VecDeque};

/// PEBS-style sampling rate: record every `n`-th miss.
///
/// # Examples
///
/// ```
/// use ispy_profile::SampleRate;
///
/// assert_eq!(SampleRate::EXACT.period(), 1);
/// assert_eq!(SampleRate::every(100).period(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleRate(u32);

impl SampleRate {
    /// Record every miss (exact profile).
    pub const EXACT: SampleRate = SampleRate(1);

    /// Record every `n`-th miss.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn every(n: u32) -> Self {
        assert!(n > 0, "sampling period must be positive");
        SampleRate(n)
    }

    /// The sampling period.
    pub fn period(&self) -> u32 {
        self.0
    }
}

impl Default for SampleRate {
    fn default() -> Self {
        SampleRate::EXACT
    }
}

/// The output of a profiling pass: the paper's miss-annotated dynamic CFG.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The weighted dynamic CFG with per-block cycle costs.
    pub cfg: DynCfg,
    /// Per-line miss statistics.
    pub misses: MissProfile,
    /// Length of the profiled trace in block events.
    pub trace_len: usize,
    /// LBR depth used for history snapshots.
    pub lbr_depth: usize,
}

/// The observer that does the work.
struct Collector {
    lbr_depth: usize,
    sample_period: u32,
    sample_tick: u32,
    window: VecDeque<BlockId>,
    window_vec: Vec<BlockId>,
    exec: Vec<u64>,
    cycles_sum: Vec<u64>,
    edges: HashMap<(u32, u32), u64>,
    misses: MissProfile,
    prev: Option<(BlockId, u64)>,
    last_cycle: u64,
}

impl Collector {
    fn new(num_blocks: usize, lbr_depth: usize, rate: SampleRate) -> Self {
        Collector {
            lbr_depth,
            sample_period: rate.period(),
            sample_tick: 0,
            window: VecDeque::with_capacity(lbr_depth + 1),
            window_vec: Vec::with_capacity(lbr_depth),
            exec: vec![0; num_blocks],
            cycles_sum: vec![0; num_blocks],
            edges: HashMap::new(),
            misses: MissProfile::new(),
            prev: None,
            last_cycle: 0,
        }
    }
}

impl SimObserver for Collector {
    fn block_entered(&mut self, _idx: usize, block: BlockId, cycle: u64) {
        self.exec[block.index()] += 1;
        if let Some((prev, prev_cycle)) = self.prev {
            *self.edges.entry((prev.0, block.0)).or_insert(0) += 1;
            // The cycles "charged" to the previous block: delta between
            // consecutive block entries, like LBR cycle counts.
            self.cycles_sum[prev.index()] += cycle - prev_cycle;
        }
        self.prev = Some((block, cycle));
        self.last_cycle = cycle;
        self.window.push_back(block);
        if self.window.len() > self.lbr_depth {
            self.window.pop_front();
        }
    }

    fn icache_miss(&mut self, idx: usize, block: BlockId, line: Line, _cycle: u64) {
        self.sample_tick += 1;
        if self.sample_tick < self.sample_period {
            return;
        }
        self.sample_tick = 0;
        self.window_vec.clear();
        self.window_vec.extend(self.window.iter().copied());
        self.misses.record(line, block, idx as u32, &self.window_vec);
    }
}

/// Runs the profiling replay and assembles the [`Profile`].
///
/// The replay uses the *baseline* machine (no injections, no prefetcher):
/// profiles are collected on the unmodified binary, exactly as in the
/// paper's usage model.
///
/// # Examples
///
/// ```
/// use ispy_profile::{profile, SampleRate};
/// use ispy_sim::SimConfig;
/// use ispy_trace::apps;
///
/// let model = apps::verilator().scaled_down(40);
/// let program = model.generate();
/// let trace = program.record_trace(model.default_input(), 10_000);
/// let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
/// assert_eq!(prof.trace_len, 10_000);
/// ```
pub fn profile(program: &Program, trace: &Trace, sim_cfg: &SimConfig, rate: SampleRate) -> Profile {
    let tele = ispy_telemetry::global();
    let _profile_span = tele.span("profile.collect");
    let mut collector = Collector::new(program.num_blocks(), sim_cfg.lbr_depth, rate);
    {
        let _span = tele.span("profile.observe_replay");
        run(
            program,
            trace,
            sim_cfg,
            RunOptions { observer: Some(&mut collector), ..Default::default() },
        );
    }

    // Second pass under an ideal I-cache for the per-block *cycle* costs.
    //
    // Prefetch distances must be measured in the cycles the program takes
    // once its instruction misses are covered — the front-end stalls the
    // prefetches will remove must not count toward the distance, or every
    // window estimate is inflated by exactly the stalls being eliminated
    // (sites end up too close and prefetches arrive late). This mirrors the
    // paper's use of LBR cycle counts from production machines, where the
    // profiled binary already runs with prefetching largely effective.
    let mut cycles_collector =
        Collector::new(program.num_blocks(), sim_cfg.lbr_depth, SampleRate::EXACT);
    let ideal_cfg = SimConfig { ideal_icache: true, ..sim_cfg.clone() };
    let ideal_result = {
        let _span = tele.span("profile.ideal_replay");
        run(
            program,
            trace,
            &ideal_cfg,
            RunOptions { observer: Some(&mut cycles_collector), ..Default::default() },
        )
    };
    // Close the last block's cycle interval with the final cycle count.
    if let Some((last, entered)) = cycles_collector.prev {
        cycles_collector.cycles_sum[last.index()] += ideal_result.cycles.saturating_sub(entered);
    }
    let avg_cycles: Vec<f64> = cycles_collector
        .exec
        .iter()
        .zip(&cycles_collector.cycles_sum)
        .map(|(&n, &sum)| if n == 0 { 0.0 } else { sum as f64 / n as f64 })
        .collect();

    // Miss-attribution and CFG-size accounting for the observability layer.
    tele.add("profile.runs", 1);
    tele.add("profile.misses_recorded", collector.misses.total_misses());
    tele.add("profile.lines_missing", collector.misses.iter().count() as u64);
    tele.add("profile.cfg_edges", collector.edges.len() as u64);

    let _cfg_span = tele.span("profile.cfg_build");
    Profile {
        cfg: DynCfg::new(collector.exec, avg_cycles, &collector.edges),
        misses: collector.misses,
        trace_len: trace.len(),
        lbr_depth: sim_cfg.lbr_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::apps;

    fn prof() -> (Program, Trace, Profile) {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 30_000);
        let p = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        (program, trace, p)
    }

    use ispy_trace::Program;

    #[test]
    fn exec_counts_match_trace() {
        let (program, trace, p) = prof();
        let counts = trace.exec_counts(program.num_blocks());
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(p.cfg.exec_count(BlockId(i as u32)), c);
        }
    }

    #[test]
    fn edges_sum_to_events_minus_one() {
        let (_, trace, p) = prof();
        let edge_total: u64 = (0..p.cfg.num_blocks())
            .map(|i| p.cfg.succs(BlockId(i as u32)).iter().map(|&(_, w)| w).sum::<u64>())
            .sum();
        assert_eq!(edge_total, trace.len() as u64 - 1);
    }

    #[test]
    fn misses_match_simulator() {
        let (program, trace, p) = prof();
        let r = run(&program, &trace, &SimConfig::default(), RunOptions::default());
        assert_eq!(p.misses.total_misses(), r.i_misses);
    }

    #[test]
    fn sampling_reduces_recorded_misses() {
        let model = apps::cassandra().scaled_down(30);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 20_000);
        let exact = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        let sampled = profile(&program, &trace, &SimConfig::default(), SampleRate::every(10));
        assert!(sampled.misses.total_misses() <= exact.misses.total_misses() / 9);
        assert!(sampled.misses.total_misses() > 0);
    }

    #[test]
    fn avg_cycles_are_positive_for_live_blocks() {
        let (_, _, p) = prof();
        let mut live = 0;
        for b in p.cfg.live_blocks() {
            live += 1;
            assert!(p.cfg.avg_cycles(b) >= 0.0, "avg cycles must be non-negative for {b}");
        }
        assert!(live > 100);
        // At least some blocks have a measurable cost.
        let any_positive = p.cfg.live_blocks().any(|b| p.cfg.avg_cycles(b) > 0.5);
        assert!(any_positive);
    }

    #[test]
    fn history_windows_are_bounded_by_lbr_depth() {
        let (_, _, p) = prof();
        for (_, stats) in p.misses.iter() {
            // Presence counts cannot exceed the sample count.
            for &c in stats.history_presence.values() {
                assert!(c <= stats.count);
            }
        }
    }
}
