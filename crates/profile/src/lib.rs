//! Profiling: miss-annotated dynamic control-flow graphs.
//!
//! The paper's online phase (§IV step 1) samples an application in
//! production with Intel LBR (last 32 branches, with cycle counts) and PEBS
//! (`frontend_retired.l1i_miss`), then splices the two into a dynamic CFG
//! annotated with I-cache misses. This crate reproduces that pipeline
//! against the simulator: a profiling replay observes every block entry and
//! every L1I miss, recording
//!
//! * per-block execution counts and average cycle costs (the LBR cycle
//!   field the paper uses instead of AsmDB's global IPC estimate),
//! * dynamic edges (branch source → target),
//! * per-missing-line statistics: where the miss occurs, how often, and
//!   which blocks were in the 32-deep history before it (the PEBS+LBR
//!   snapshot), and
//! * exact miss positions, which the offline analysis uses to evaluate
//!   candidate contexts' conditional probabilities over the full trace.
//!
//! A [`SampleRate`] knob emulates PEBS sampling; the default records every
//! miss (an exact profile — strictly more information than the paper had,
//! with sampling available for the ablation study).
//!
//! # Examples
//!
//! ```
//! use ispy_profile::{profile, SampleRate};
//! use ispy_sim::SimConfig;
//! use ispy_trace::apps;
//!
//! let model = apps::drupal().scaled_down(40);
//! let program = model.generate();
//! let trace = program.record_trace(model.default_input(), 20_000);
//! let prof = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
//! assert!(prof.misses.total_misses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod collect;
pub mod dyncfg;
pub mod miss;
pub mod scan;

pub use collect::{profile, Profile, SampleRate};
pub use dyncfg::DynCfg;
pub use miss::{LineMissStats, MissProfile};
pub use scan::{scan_joint, JointCounts, JointQuery};
