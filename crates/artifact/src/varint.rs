//! LEB128 varints and zigzag signed encoding.
//!
//! Unsigned values are encoded as little-endian base-128 (7 value bits per
//! byte, high bit = continuation). Signed values are zigzag-mapped first
//! (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) so small magnitudes of either sign
//! stay short — the encoding delta-compressed streams (trace events, sorted
//! address tables) rely on.

use crate::error::ArtifactError;

/// Appends `v` to `out` as a LEB128 varint (1–10 bytes).
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` to `out` zigzag-mapped then LEB128-encoded.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, zigzag(v));
}

/// The zigzag mapping: interleaves negative and non-negative values.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// The inverse zigzag mapping.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads a LEB128 varint from the front of `input`, returning the value and
/// the number of bytes consumed.
///
/// # Errors
///
/// [`ArtifactError::Truncated`] if `input` ends mid-varint;
/// [`ArtifactError::Malformed`] if the encoding exceeds 10 bytes or
/// overflows 64 bits.
pub fn take_u64(input: &[u8]) -> Result<(u64, usize), ArtifactError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i == 9 && byte > 1 {
            return Err(ArtifactError::malformed("varint", "overflows 64 bits"));
        }
        value |= u64::from(byte & 0x7F) << (7 * i as u32);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        if i + 1 == 10 {
            return Err(ArtifactError::malformed("varint", "longer than 10 bytes"));
        }
    }
    Err(ArtifactError::Truncated { context: "varint" })
}

/// Reads a zigzag varint from the front of `input`.
///
/// # Errors
///
/// Same conditions as [`take_u64`].
pub fn take_i64(input: &[u8]) -> Result<(i64, usize), ArtifactError> {
    let (raw, n) = take_u64(input)?;
    Ok((unzigzag(raw), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream for seeded property tests.
    pub(crate) struct Rng(u64);

    impl Rng {
        pub(crate) fn new(seed: u64) -> Self {
            Rng(seed.max(1))
        }

        pub(crate) fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let (back, n) = take_u64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
    }

    #[test]
    fn seeded_random_round_trips() {
        // Property: encode(decode) is identity over a mixed-magnitude stream.
        let mut rng = Rng::new(0x15B9_0001);
        let mut values_u = Vec::new();
        let mut values_i = Vec::new();
        for _ in 0..4096 {
            let r = rng.next();
            // Mix magnitudes: mask to a random bit width.
            let width = rng.next() % 65;
            let v = if width == 0 { 0 } else { r >> (64 - width) };
            values_u.push(v);
            values_i.push(v as i64);
        }
        let mut buf = Vec::new();
        for &v in &values_u {
            put_u64(&mut buf, v);
        }
        for &v in &values_i {
            put_i64(&mut buf, v);
        }
        let mut off = 0;
        for &v in &values_u {
            let (back, n) = take_u64(&buf[off..]).unwrap();
            assert_eq!(back, v);
            off += n;
        }
        for &v in &values_i {
            let (back, n) = take_i64(&buf[off..]).unwrap();
            assert_eq!(back, v);
            off += n;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(matches!(take_u64(&buf[..cut]), Err(ArtifactError::Truncated { .. })));
        }
    }

    #[test]
    fn overlong_and_overflowing_encodings_rejected() {
        // 10 continuation bytes: longer than any valid u64 varint.
        let overlong = [0x80u8; 10];
        assert!(matches!(take_u64(&overlong), Err(ArtifactError::Malformed { .. })));
        // 10th byte contributes bits above 2^64.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert!(matches!(take_u64(&overflow), Err(ArtifactError::Malformed { .. })));
        // Maximum valid: u64::MAX ends with 0x01 in the 10th byte.
        let max = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert_eq!(take_u64(&max).unwrap().0, u64::MAX);
    }
}
