//! Incremental container IO: the same on-disk format as
//! [`container`](crate::container), produced and consumed without ever
//! holding the whole artifact in memory.
//!
//! [`ArtifactWriter`](crate::ArtifactWriter) /
//! [`ArtifactReader`](crate::ArtifactReader) buffer the entire file, which
//! caps artifact size by host RAM. The streaming pair here lifts that cap:
//!
//! * [`StreamWriter`] frames sections straight to any `Write + Seek` sink.
//!   Only one section is in memory at a time (the section count is unknown
//!   until the end, so `finish` seeks back and patches the header — that is
//!   the single place `Seek` is needed).
//! * [`StreamReader`] walks sections off any `Read` source in file order,
//!   handing payload bytes out in caller-sized chunks while folding them
//!   into an incremental CRC that is verified at the section boundary.
//!
//! Both ends speak the exact format of the buffered pair: a file written by
//! [`StreamWriter`] parses under the strict [`ArtifactReader`] and vice
//! versa (the unit tests pin this both ways).
//!
//! **Validation timing differs from the buffered reader.** `ArtifactReader`
//! validates the whole file up front; `StreamReader` can only validate what
//! it has seen, so corruption and truncation surface as typed errors *during
//! iteration* — a section's checksum mismatch is reported when its last
//! payload byte has been read, and a missing tail is reported by
//! [`StreamReader::finish`]. Callers must therefore treat any decoded data
//! as provisional until the section (or the whole stream) has been verified.
//!
//! [`ArtifactReader`]: crate::ArtifactReader

use std::io::{Read, Seek, SeekFrom, Write};

use crate::container::{encode_header, parse_header, ArtifactKind, HEADER_LEN, MAX_SECTION_LEN};
use crate::crc::Crc32;
use crate::error::ArtifactError;
use crate::section::SectionWriter;

/// Wraps an IO failure on a seekable/readable stream that has no path.
fn io_stream(err: std::io::Error) -> ArtifactError {
    ArtifactError::Io { path: "<stream>".to_string(), message: err.to_string() }
}

/// `read_exact` that maps a clean EOF to [`ArtifactError::Truncated`] with
/// the given context and any other IO failure to [`ArtifactError::Io`].
fn read_exact_ctx<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), ArtifactError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ArtifactError::Truncated { context }
        } else {
            io_stream(e)
        }
    })
}

/// Writes an artifact section by section to a seekable sink.
///
/// The header is written immediately with a section count of zero, so a
/// writer that crashes mid-stream leaves a file the strict reader rejects
/// (`TrailingBytes`) rather than silently truncated data. [`finish`]
/// seeks back and patches the true count in; only then is the file valid.
///
/// [`finish`]: StreamWriter::finish
///
/// # Examples
///
/// ```
/// use std::io::Cursor;
/// use ispy_artifact::{ArtifactKind, ArtifactReader, SectionWriter};
/// use ispy_artifact::stream::StreamWriter;
///
/// let mut w = StreamWriter::new(Cursor::new(Vec::new()), ArtifactKind::Trace).unwrap();
/// let mut s = SectionWriter::new(7);
/// s.put_varint(42);
/// w.write_section(s).unwrap();
/// let bytes = w.finish().unwrap().into_inner();
///
/// // The strict buffered reader accepts the streamed file.
/// let r = ArtifactReader::from_bytes(&bytes, ArtifactKind::Trace).unwrap();
/// assert_eq!(r.section(7).unwrap().take_varint().unwrap(), 42);
/// ```
#[derive(Debug)]
pub struct StreamWriter<W: Write + Seek> {
    sink: W,
    kind: ArtifactKind,
    count: u32,
    seen: Vec<u32>,
}

impl<W: Write + Seek> StreamWriter<W> {
    /// Starts a streamed artifact of the given kind, writing the provisional
    /// header (section count zero) at the sink's current position.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if the sink rejects the header write.
    pub fn new(mut sink: W, kind: ArtifactKind) -> Result<Self, ArtifactError> {
        sink.write_all(&encode_header(kind, 0)).map_err(io_stream)?;
        Ok(StreamWriter { sink, kind, count: 0, seen: Vec::new() })
    }

    /// The artifact kind being written.
    pub fn kind(&self) -> ArtifactKind {
        self.kind
    }

    /// Sections written so far.
    pub fn sections_written(&self) -> u32 {
        self.count
    }

    /// Frames a finished section straight to the sink. Section ids must be
    /// unique per artifact; writing a duplicate is a programming error and
    /// panics (mirroring [`ArtifactWriter::finish_section`]).
    ///
    /// [`ArtifactWriter::finish_section`]: crate::ArtifactWriter::finish_section
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if the sink rejects the write.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate section id or a payload larger than the
    /// reader's allocation cap.
    pub fn write_section(&mut self, section: SectionWriter) -> Result<(), ArtifactError> {
        let (id, payload) = section.into_parts();
        assert!(!self.seen.contains(&id), "section {id} written twice");
        assert!(
            payload.len() as u64 <= MAX_SECTION_LEN,
            "section {id} payload exceeds the decoder cap"
        );
        self.seen.push(id);
        let id_bytes = id.to_le_bytes();
        let len_bytes = (payload.len() as u64).to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&id_bytes);
        crc.update(&len_bytes);
        crc.update(&payload);
        self.sink.write_all(&id_bytes).map_err(io_stream)?;
        self.sink.write_all(&len_bytes).map_err(io_stream)?;
        self.sink.write_all(&payload).map_err(io_stream)?;
        self.sink.write_all(&crc.finish().to_le_bytes()).map_err(io_stream)?;
        self.count += 1;
        Ok(())
    }

    /// Seeks back to patch the true section count into the header, flushes,
    /// and returns the sink. The artifact is only valid after this.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if seeking, the header rewrite, or the flush
    /// fails.
    pub fn finish(mut self) -> Result<W, ArtifactError> {
        self.sink.seek(SeekFrom::Start(0)).map_err(io_stream)?;
        self.sink.write_all(&encode_header(self.kind, self.count)).map_err(io_stream)?;
        self.sink.flush().map_err(io_stream)?;
        Ok(self.sink)
    }
}

impl StreamWriter<std::io::BufWriter<std::fs::File>> {
    /// Opens a buffered streamed-artifact writer on `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on any filesystem failure.
    pub fn create(path: &std::path::Path, kind: ArtifactKind) -> Result<Self, ArtifactError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| ArtifactError::io(path, e))?;
            }
        }
        let file = std::fs::File::create(path).map_err(|e| ArtifactError::io(path, e))?;
        StreamWriter::new(std::io::BufWriter::new(file), kind)
    }
}

/// The section currently being streamed out of a [`StreamReader`].
#[derive(Debug)]
struct CurrentSection {
    id: u32,
    remaining: u64,
    crc: Crc32,
}

/// Reads an artifact section by section off any byte stream.
///
/// The header is validated up front (same checks as the buffered reader);
/// sections are then walked in file order with [`next_section`] /
/// [`read_chunk`]. Each section's CRC is verified when its last payload byte
/// is consumed, and [`finish`] drains + verifies everything left, so a
/// caller that runs the reader to completion gets exactly the integrity
/// guarantees of [`ArtifactReader`](crate::ArtifactReader) — just delivered
/// incrementally.
///
/// [`next_section`]: StreamReader::next_section
/// [`read_chunk`]: StreamReader::read_chunk
/// [`finish`]: StreamReader::finish
///
/// # Examples
///
/// ```
/// use ispy_artifact::{ArtifactKind, ArtifactWriter};
/// use ispy_artifact::stream::StreamReader;
///
/// let mut w = ArtifactWriter::new(ArtifactKind::Plan);
/// let mut s = w.section(3);
/// s.put_str("hello");
/// w.finish_section(s);
/// let bytes = w.to_bytes();
///
/// let mut r = StreamReader::new(bytes.as_slice(), ArtifactKind::Plan).unwrap();
/// let (id, len) = r.next_section().unwrap().unwrap();
/// assert_eq!(id, 3);
/// let payload = r.take_payload().unwrap();
/// assert_eq!(payload.len() as u64, len);
/// assert_eq!(r.next_section().unwrap(), None);
/// r.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct StreamReader<R: Read> {
    source: R,
    kind: ArtifactKind,
    declared: u32,
    consumed: u32,
    seen: Vec<u32>,
    current: Option<CurrentSection>,
}

impl<R: Read> StreamReader<R> {
    /// Reads and validates the 20-byte header, checking the artifact is of
    /// `expected` kind.
    ///
    /// # Errors
    ///
    /// The same header-level conditions as
    /// [`ArtifactReader::from_bytes`](crate::ArtifactReader::from_bytes):
    /// bad magic, future version, wrong/unknown kind, header checksum,
    /// truncation — plus [`ArtifactError::Io`] on read failure.
    pub fn new(mut source: R, expected: ArtifactKind) -> Result<Self, ArtifactError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact_ctx(&mut source, &mut header, "header")?;
        let declared = parse_header(&header, expected)?;
        Ok(StreamReader {
            source,
            kind: expected,
            declared,
            consumed: 0,
            seen: Vec::new(),
            current: None,
        })
    }

    /// The artifact's kind.
    pub fn kind(&self) -> ArtifactKind {
        self.kind
    }

    /// Sections the header declares.
    pub fn sections_declared(&self) -> u32 {
        self.declared
    }

    /// Advances to the next section, returning its `(id, payload length)`,
    /// or `None` once all declared sections are consumed and the stream ends
    /// cleanly. Any unread payload of the previous section is drained and
    /// CRC-verified first, so skipping a section never skips its integrity
    /// check.
    ///
    /// # Errors
    ///
    /// Truncation, oversized/duplicate sections, checksum mismatches while
    /// draining, trailing bytes after the last section, or
    /// [`ArtifactError::Io`].
    pub fn next_section(&mut self) -> Result<Option<(u32, u64)>, ArtifactError> {
        while self.current.is_some() {
            let mut scratch = [0u8; 8192];
            self.read_chunk(&mut scratch)?;
        }
        if self.consumed == self.declared {
            return if self.at_eof()? { Ok(None) } else { Err(ArtifactError::TrailingBytes) };
        }
        let mut frame = [0u8; 12];
        read_exact_ctx(&mut self.source, &mut frame, "section frame")?;
        let id = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let mut len_raw = [0u8; 8];
        len_raw.copy_from_slice(&frame[4..12]);
        let len = u64::from_le_bytes(len_raw);
        if len > MAX_SECTION_LEN {
            return Err(ArtifactError::SectionTooLarge { id, len });
        }
        if self.seen.contains(&id) {
            return Err(ArtifactError::DuplicateSection { id });
        }
        self.seen.push(id);
        let mut crc = Crc32::new();
        crc.update(&frame);
        self.current = Some(CurrentSection { id, remaining: len, crc });
        if len == 0 {
            self.verify_trailer()?;
        }
        Ok(Some((id, len)))
    }

    /// Reads up to `buf.len()` payload bytes of the current section,
    /// returning how many were read — `0` once the section is exhausted (or
    /// none is open). The section's CRC is checked automatically as its last
    /// byte is delivered, so by the time the caller sees the final chunk the
    /// payload is verified.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] if the stream ends mid-payload,
    /// [`ArtifactError::SectionChecksum`] on CRC mismatch at the section
    /// boundary, or [`ArtifactError::Io`].
    pub fn read_chunk(&mut self, buf: &mut [u8]) -> Result<usize, ArtifactError> {
        let Some(cur) = self.current.as_mut() else { return Ok(0) };
        let take = buf.len().min(usize::try_from(cur.remaining).unwrap_or(usize::MAX));
        if take == 0 {
            return Ok(0);
        }
        read_exact_ctx(&mut self.source, &mut buf[..take], "section payload")?;
        cur.crc.update(&buf[..take]);
        cur.remaining -= take as u64;
        if cur.remaining == 0 {
            self.verify_trailer()?;
        }
        Ok(take)
    }

    /// Buffers the remainder of the current section's payload and verifies
    /// its CRC. Allocation is bounded by the framing cap (the length field
    /// was range-checked in [`next_section`](StreamReader::next_section)).
    ///
    /// # Errors
    ///
    /// The same conditions as [`read_chunk`](StreamReader::read_chunk).
    pub fn take_payload(&mut self) -> Result<Vec<u8>, ArtifactError> {
        let remaining = self.current.as_ref().map_or(0, |c| c.remaining);
        let mut buf = vec![0u8; remaining as usize];
        let mut filled = 0;
        while filled < buf.len() {
            filled += self.read_chunk(&mut buf[filled..])?;
        }
        Ok(buf)
    }

    /// Drains and verifies every remaining section, then checks the stream
    /// ends exactly at the last declared section. Returns the source.
    ///
    /// # Errors
    ///
    /// Any integrity failure in the unread tail: truncation, checksum
    /// mismatch, duplicate/oversized sections, trailing bytes, or
    /// [`ArtifactError::Io`].
    pub fn finish(mut self) -> Result<R, ArtifactError> {
        while self.next_section()?.is_some() {}
        Ok(self.source)
    }

    /// Reads the current section's trailing CRC and compares it against the
    /// running checksum, closing the section.
    fn verify_trailer(&mut self) -> Result<(), ArtifactError> {
        let cur = self.current.take().expect("no open section");
        let mut stored = [0u8; 4];
        read_exact_ctx(&mut self.source, &mut stored, "section checksum")?;
        if u32::from_le_bytes(stored) != cur.crc.finish() {
            return Err(ArtifactError::SectionChecksum { id: cur.id });
        }
        self.consumed += 1;
        Ok(())
    }

    /// Probes whether the source is exhausted (consuming at most one byte,
    /// and only when it is not).
    fn at_eof(&mut self) -> Result<bool, ArtifactError> {
        let mut byte = [0u8; 1];
        loop {
            match self.source.read(&mut byte) {
                Ok(0) => return Ok(true),
                Ok(_) => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_stream(e)),
            }
        }
    }
}

impl StreamReader<std::io::BufReader<std::fs::File>> {
    /// Opens a buffered streamed-artifact reader on `path`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure, otherwise the same
    /// conditions as [`StreamReader::new`].
    pub fn open(path: &std::path::Path, expected: ArtifactKind) -> Result<Self, ArtifactError> {
        let file = std::fs::File::open(path).map_err(|e| ArtifactError::io(path, e))?;
        StreamReader::new(std::io::BufReader::new(file), expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{ArtifactReader, ArtifactWriter};
    use std::io::Cursor;

    fn streamed_sample() -> Vec<u8> {
        let mut w = StreamWriter::new(Cursor::new(Vec::new()), ArtifactKind::Trace).unwrap();
        let mut meta = SectionWriter::new(1);
        meta.put_str("cassandra");
        meta.put_varint(99);
        w.write_section(meta).unwrap();
        let mut blocks = SectionWriter::new(2);
        for i in 0..1000u64 {
            blocks.put_delta(i * 7);
        }
        w.write_section(blocks).unwrap();
        w.write_section(SectionWriter::new(3)).unwrap(); // empty section
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn streamed_file_parses_under_the_strict_buffered_reader() {
        let bytes = streamed_sample();
        let r = ArtifactReader::from_bytes(&bytes, ArtifactKind::Trace).unwrap();
        assert_eq!(r.section_ids().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut meta = r.require_section(1).unwrap();
        assert_eq!(meta.take_str().unwrap(), "cassandra");
        assert_eq!(meta.take_varint().unwrap(), 99);
        meta.finish().unwrap();
    }

    #[test]
    fn streamed_bytes_match_buffered_writer_exactly() {
        let fill = |id: u32| {
            let mut s = SectionWriter::new(id);
            s.put_str("x");
            s.put_varint(u64::from(id) * 1000);
            s
        };
        let mut bw = ArtifactWriter::new(ArtifactKind::Profile);
        let mut sw = StreamWriter::new(Cursor::new(Vec::new()), ArtifactKind::Profile).unwrap();
        for id in 1u32..=3 {
            bw.finish_section(fill(id));
            sw.write_section(fill(id)).unwrap();
        }
        assert_eq!(sw.finish().unwrap().into_inner(), bw.to_bytes());
    }

    #[test]
    fn buffered_file_streams_back_chunk_by_chunk() {
        let mut w = ArtifactWriter::new(ArtifactKind::Plan);
        let mut s = w.section(9);
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for &b in &payload {
            s.put_u8(b);
        }
        w.finish_section(s);
        let bytes = w.to_bytes();

        for chunk in [1usize, 7, 4096, 1 << 20] {
            let mut r = StreamReader::new(bytes.as_slice(), ArtifactKind::Plan).unwrap();
            let (id, len) = r.next_section().unwrap().unwrap();
            assert_eq!((id, len), (9, payload.len() as u64));
            let mut got = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                let n = r.read_chunk(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(got, payload, "chunk size {chunk}");
            assert_eq!(r.next_section().unwrap(), None);
            r.finish().unwrap();
        }
    }

    #[test]
    fn skipping_a_section_still_verifies_it() {
        let mut bytes = streamed_sample();
        // Corrupt a byte deep inside section 2's payload (the file ends with
        // section 2's CRC, then the 16-byte empty section 3), then skip it.
        let sec2_payload_byte = bytes.len() - 16 - 4 - 200;
        bytes[sec2_payload_byte] ^= 0x40;
        let mut r = StreamReader::new(bytes.as_slice(), ArtifactKind::Trace).unwrap();
        assert_eq!(r.next_section().unwrap().unwrap().0, 1);
        assert_eq!(r.next_section().unwrap().unwrap().0, 2);
        // Skip section 2 entirely: the drain inside next_section must still
        // catch the corruption.
        assert_eq!(r.next_section().unwrap_err(), ArtifactError::SectionChecksum { id: 2 });
    }

    #[test]
    fn finish_drains_and_verifies_the_tail() {
        let bytes = streamed_sample();
        let r = StreamReader::new(bytes.as_slice(), ArtifactKind::Trace).unwrap();
        // Never touched a section: finish still walks and verifies all three.
        r.finish().unwrap();

        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 3);
        let r = StreamReader::new(truncated.as_slice(), ArtifactKind::Trace).unwrap();
        assert!(matches!(r.finish().unwrap_err(), ArtifactError::Truncated { .. }));

        let mut trailing = bytes;
        trailing.push(0);
        let r = StreamReader::new(trailing.as_slice(), ArtifactKind::Trace).unwrap();
        assert_eq!(r.finish().unwrap_err(), ArtifactError::TrailingBytes);
    }

    #[test]
    fn every_truncation_point_errors_eventually() {
        let bytes = streamed_sample();
        for cut in 0..bytes.len() {
            let result = StreamReader::new(&bytes[..cut], ArtifactKind::Trace)
                .and_then(|r| r.finish().map(|_| ()));
            assert!(result.is_err(), "prefix of {cut} bytes streamed successfully");
        }
    }

    #[test]
    fn every_single_bit_flip_errors_eventually() {
        let bytes = streamed_sample();
        for byte_idx in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte_idx] ^= 1 << bit;
                let result = StreamReader::new(corrupt.as_slice(), ArtifactKind::Trace)
                    .and_then(|r| r.finish().map(|_| ()));
                assert!(
                    result.is_err(),
                    "bit {bit} of byte {byte_idx} flipped but the stream verified"
                );
            }
        }
    }

    #[test]
    fn header_level_rejections_match_the_buffered_reader() {
        let bytes = streamed_sample();
        assert_eq!(
            StreamReader::new(bytes.as_slice(), ArtifactKind::Profile).unwrap_err(),
            ArtifactError::WrongKind {
                expected: ArtifactKind::Profile.raw(),
                found: ArtifactKind::Trace.raw()
            }
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            StreamReader::new(bad.as_slice(), ArtifactKind::Trace).unwrap_err(),
            ArtifactError::BadMagic
        );
        assert_eq!(
            StreamReader::new(&bytes[..10], ArtifactKind::Trace).unwrap_err(),
            ArtifactError::Truncated { context: "header" }
        );
    }

    #[test]
    fn duplicate_section_id_is_rejected_mid_stream() {
        // Hand-splice a duplicate frame, as the container tests do.
        let mut w = StreamWriter::new(Cursor::new(Vec::new()), ArtifactKind::Trace).unwrap();
        let mut s = SectionWriter::new(5);
        s.put_varint(7);
        w.write_section(s).unwrap();
        let mut bytes = w.finish().unwrap().into_inner();
        let frame = bytes[HEADER_LEN..].to_vec();
        bytes.extend_from_slice(&frame);
        bytes[..HEADER_LEN].copy_from_slice(&encode_header(ArtifactKind::Trace, 2));
        let mut r = StreamReader::new(bytes.as_slice(), ArtifactKind::Trace).unwrap();
        assert_eq!(r.next_section().unwrap().unwrap().0, 5);
        assert_eq!(r.next_section().unwrap_err(), ArtifactError::DuplicateSection { id: 5 });
    }

    #[test]
    fn unfinished_writer_output_is_rejected() {
        // Simulate a crash: sections written but `finish` never called, so
        // the header still claims zero sections.
        let mut w = StreamWriter::new(Cursor::new(Vec::new()), ArtifactKind::Trace).unwrap();
        let mut s = SectionWriter::new(1);
        s.put_varint(1);
        w.write_section(s).unwrap();
        let bytes = w.sink.into_inner();
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Trace).unwrap_err(),
            ArtifactError::TrailingBytes
        );
        let r = StreamReader::new(bytes.as_slice(), ArtifactKind::Trace).unwrap();
        assert_eq!(r.finish().unwrap_err(), ArtifactError::TrailingBytes);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("ispy-stream-test-{}", std::process::id()));
        let path = dir.join("nested").join("sample.itrace");
        let mut w = StreamWriter::create(&path, ArtifactKind::Trace).unwrap();
        let mut s = SectionWriter::new(1);
        s.put_str("roundtrip");
        w.write_section(s).unwrap();
        w.finish().unwrap();
        let mut r = StreamReader::open(&path, ArtifactKind::Trace).unwrap();
        assert_eq!(r.next_section().unwrap().unwrap().0, 1);
        let payload = r.take_payload().unwrap();
        let mut sr = crate::section::SectionReader::new(1, &payload);
        assert_eq!(sr.take_str().unwrap(), "roundtrip");
        sr.finish().unwrap();
        r.finish().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(
            StreamReader::open(&path, ArtifactKind::Trace),
            Err(ArtifactError::Io { .. })
        ));
    }
}
