//! Section payload builders and strict cursors.

use crate::error::ArtifactError;
use crate::varint;

/// Builds one section's payload.
///
/// # Examples
///
/// ```
/// use ispy_artifact::SectionWriter;
///
/// let mut s = SectionWriter::new(1);
/// s.put_varint(300);
/// s.put_str("wordpress");
/// assert_eq!(s.id(), 1);
/// assert!(s.len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SectionWriter {
    id: u32,
    buf: Vec<u8>,
    last_delta_base: u64,
}

impl SectionWriter {
    /// Starts an empty payload for section `id`.
    pub fn new(id: u32) -> Self {
        SectionWriter { id, buf: Vec::new(), last_delta_base: 0 }
    }

    /// The section id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning `(id, payload)`.
    pub fn into_parts(self) -> (u32, Vec<u8>) {
        (self.id, self.buf)
    }

    /// Appends an unsigned varint.
    pub fn put_varint(&mut self, v: u64) {
        varint::put_u64(&mut self.buf, v);
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn put_signed(&mut self, v: i64) {
        varint::put_i64(&mut self.buf, v);
    }

    /// Appends `v` delta-encoded against the previous value in this
    /// section's delta stream (zigzag, so non-monotonic streams stay legal).
    /// The stream starts at 0; [`SectionWriter::reset_delta`] restarts it.
    pub fn put_delta(&mut self, v: u64) {
        let delta = v.wrapping_sub(self.last_delta_base) as i64;
        varint::put_i64(&mut self.buf, delta);
        self.last_delta_base = v;
    }

    /// Restarts the delta stream at 0 (use between independent sequences).
    pub fn reset_delta(&mut self) {
        self.last_delta_base = 0;
    }

    /// Appends a single raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern (8 bytes LE).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends `Some(v)` as `1` + the value's bits, `None` as `0`.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_f64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends `Some(v)` as `v + 1`, `None` as `0` (biased option varint).
    pub fn put_opt_varint(&mut self, v: Option<u64>) {
        match v {
            Some(v) => self.put_varint(v.saturating_add(1)),
            None => self.put_varint(0),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A strict cursor over one section's payload.
///
/// Every `take_*` either returns the decoded value or a typed error; nothing
/// panics on corrupt input. [`SectionReader::finish`] asserts the payload
/// was consumed exactly.
#[derive(Debug, Clone)]
pub struct SectionReader<'a> {
    id: u32,
    buf: &'a [u8],
    pos: usize,
    last_delta_base: u64,
}

impl<'a> SectionReader<'a> {
    /// Wraps a section payload.
    pub fn new(id: u32, buf: &'a [u8]) -> Self {
        SectionReader { id, buf, pos: 0, last_delta_base: 0 }
    }

    /// The section id this cursor reads.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads an unsigned varint.
    ///
    /// # Errors
    ///
    /// Typed [`ArtifactError`] on truncation or overlong encoding.
    pub fn take_varint(&mut self) -> Result<u64, ArtifactError> {
        let (v, n) = varint::take_u64(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// Typed [`ArtifactError`] on truncation or overlong encoding.
    pub fn take_signed(&mut self) -> Result<i64, ArtifactError> {
        let (v, n) = varint::take_i64(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads the next value of this section's delta stream (see
    /// [`SectionWriter::put_delta`]).
    ///
    /// # Errors
    ///
    /// Typed [`ArtifactError`] on truncation or overlong encoding.
    pub fn take_delta(&mut self) -> Result<u64, ArtifactError> {
        let d = self.take_signed()?;
        let v = self.last_delta_base.wrapping_add(d as u64);
        self.last_delta_base = v;
        Ok(v)
    }

    /// Restarts the delta stream at 0 (must mirror the writer).
    pub fn reset_delta(&mut self) {
        self.last_delta_base = 0;
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] at end of payload.
    pub fn take_u8(&mut self) -> Result<u8, ArtifactError> {
        let b =
            self.buf.get(self.pos).copied().ok_or(ArtifactError::Truncated { context: "byte" })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an `f64` from its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> Result<f64, ArtifactError> {
        if self.remaining() < 8 {
            return Err(ArtifactError::Truncated { context: "f64" });
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Reads an optional `f64` written by [`SectionWriter::put_opt_f64`].
    ///
    /// # Errors
    ///
    /// Truncation, or [`ArtifactError::Malformed`] on a tag other than 0/1.
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>, ArtifactError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_f64()?)),
            t => Err(ArtifactError::malformed("option tag", format!("unexpected tag {t}"))),
        }
    }

    /// Reads an optional varint written by [`SectionWriter::put_opt_varint`].
    ///
    /// # Errors
    ///
    /// Typed [`ArtifactError`] on truncation or overlong encoding.
    pub fn take_opt_varint(&mut self) -> Result<Option<u64>, ArtifactError> {
        Ok(self.take_varint()?.checked_sub(1))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Truncation, or [`ArtifactError::Malformed`] on invalid UTF-8 or an
    /// implausible length.
    pub fn take_str(&mut self) -> Result<String, ArtifactError> {
        let len = self.take_varint()?;
        if len > self.remaining() as u64 {
            return Err(ArtifactError::Truncated { context: "string" });
        }
        let bytes = &self.buf[self.pos..self.pos + len as usize];
        self.pos += len as usize;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ArtifactError::malformed("string", e.to_string()))
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] if bytes remain — a decoder that stops
    /// early has misparsed the section.
    pub fn finish(self) -> Result<(), ArtifactError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ArtifactError::malformed(
                "section",
                format!("{} unconsumed bytes in section {}", self.buf.len() - self.pos, self.id),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = SectionWriter::new(9);
        w.put_varint(42);
        w.put_signed(-7);
        w.put_delta(100);
        w.put_delta(90); // non-monotonic deltas are legal
        w.put_u8(0xAB);
        w.put_f64(-0.0);
        w.put_opt_f64(Some(f64::MAX));
        w.put_opt_f64(None);
        w.put_opt_varint(Some(0));
        w.put_opt_varint(None);
        w.put_str("héllo");
        let (id, buf) = w.into_parts();
        let mut r = SectionReader::new(id, &buf);
        assert_eq!(r.take_varint().unwrap(), 42);
        assert_eq!(r.take_signed().unwrap(), -7);
        assert_eq!(r.take_delta().unwrap(), 100);
        assert_eq!(r.take_delta().unwrap(), 90);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_opt_f64().unwrap(), Some(f64::MAX));
        assert_eq!(r.take_opt_f64().unwrap(), None);
        assert_eq!(r.take_opt_varint().unwrap(), Some(0));
        assert_eq!(r.take_opt_varint().unwrap(), None);
        assert_eq!(r.take_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn finish_rejects_unconsumed_bytes() {
        let mut w = SectionWriter::new(1);
        w.put_varint(1);
        w.put_varint(2);
        let (id, buf) = w.into_parts();
        let mut r = SectionReader::new(id, &buf);
        let _ = r.take_varint().unwrap();
        assert!(matches!(r.finish(), Err(ArtifactError::Malformed { .. })));
    }

    #[test]
    fn string_length_beyond_payload_is_truncation() {
        let mut w = SectionWriter::new(1);
        w.put_varint(1_000_000); // length prefix with no bytes behind it
        let (id, buf) = w.into_parts();
        let mut r = SectionReader::new(id, &buf);
        assert!(matches!(r.take_str(), Err(ArtifactError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = SectionWriter::new(1);
        w.put_varint(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let (id, buf) = w.into_parts();
        let mut r = SectionReader::new(id, &buf);
        assert!(matches!(r.take_str(), Err(ArtifactError::Malformed { .. })));
    }

    #[test]
    fn empty_payload_truncations() {
        let mut r = SectionReader::new(0, &[]);
        assert!(r.take_u8().is_err());
        let mut r = SectionReader::new(0, &[]);
        assert!(r.take_f64().is_err());
        let mut r = SectionReader::new(0, &[]);
        assert!(r.take_varint().is_err());
        SectionReader::new(0, &[]).finish().unwrap();
    }

    #[test]
    fn delta_reset_mirrors_writer() {
        let mut w = SectionWriter::new(3);
        w.put_delta(10);
        w.reset_delta();
        w.put_delta(5);
        let (id, buf) = w.into_parts();
        let mut r = SectionReader::new(id, &buf);
        assert_eq!(r.take_delta().unwrap(), 10);
        r.reset_delta();
        assert_eq!(r.take_delta().unwrap(), 5);
    }
}
