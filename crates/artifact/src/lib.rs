//! Durable binary artifacts: the interchange layer of the I-SPY pipeline.
//!
//! The paper's whole premise is an *offline* pipeline — profile in
//! production, analyze offline, inject at link time — which implies profile
//! and plan artifacts shipped between machines and runs. This crate is the
//! container format those artifacts share:
//!
//! * a fixed 20-byte header (magic, format version, artifact kind, section
//!   count, header CRC),
//! * a sequence of **sections**, each `(id, length, payload, CRC-32)`, and
//! * payloads built from LEB128 varints, zigzag deltas, and raw IEEE-754
//!   bit patterns — so every `f64` round-trips exactly and integer streams
//!   (trace events, address tables) stay compact.
//!
//! Three artifact kinds ride on the container (their codecs live next to
//! the types they serialize): recorded block traces (`.itrace`, in
//! `ispy-trace`), miss-annotated profiles (`.iprof`, in `ispy-profile`),
//! and injection plans with provenance (`.iplan`, in `ispy-core`).
//!
//! Decoding is **strict**: truncated input, checksum mismatches, unknown
//! magic, future versions, duplicate sections, and malformed payloads all
//! surface as typed [`ArtifactError`]s — never panics. See
//! `docs/ARTIFACTS.md` in the repository root for the format specification.
//!
//! # Examples
//!
//! ```
//! use ispy_artifact::{ArtifactKind, ArtifactReader, ArtifactWriter};
//!
//! let mut w = ArtifactWriter::new(ArtifactKind::Trace);
//! let mut s = w.section(7);
//! s.put_varint(1_000_000);
//! s.put_f64(2.5);
//! w.finish_section(s);
//! let bytes = w.to_bytes();
//!
//! let r = ArtifactReader::from_bytes(&bytes, ArtifactKind::Trace).unwrap();
//! let mut s = r.section(7).unwrap();
//! assert_eq!(s.take_varint().unwrap(), 1_000_000);
//! assert_eq!(s.take_f64().unwrap(), 2.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod container;
pub mod crc;
pub mod error;
pub mod section;
pub mod stream;
pub mod varint;

pub use container::{ArtifactKind, ArtifactReader, ArtifactWriter, FORMAT_VERSION, MAGIC};
pub use error::ArtifactError;
pub use section::{SectionReader, SectionWriter};
pub use stream::{StreamReader, StreamWriter};
