//! Typed decode/IO errors. Corrupt input is an `Err`, never a panic.

use std::fmt;

/// Everything that can go wrong reading or writing an artifact.
///
/// The decoder is strict: any structural problem in the input maps to one of
/// these variants. The error is `Clone + PartialEq` so corruption tests can
/// assert on the exact failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file does not start with the artifact magic.
    BadMagic,
    /// The header declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this build supports.
        supported: u16,
    },
    /// The header's kind field is not a known artifact kind.
    UnknownKind {
        /// Raw kind value found.
        found: u16,
    },
    /// The artifact is of a different kind than the caller asked for.
    WrongKind {
        /// Kind the caller expected (raw value).
        expected: u16,
        /// Kind the header declares (raw value).
        found: u16,
    },
    /// Input ended before the declared structure was complete.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// The header checksum does not match the header bytes.
    HeaderChecksum,
    /// A section's payload checksum does not match its payload bytes.
    SectionChecksum {
        /// Id of the corrupt section.
        id: u32,
    },
    /// The same section id appears twice.
    DuplicateSection {
        /// The repeated id.
        id: u32,
    },
    /// A section required by the codec is absent.
    MissingSection {
        /// The missing id.
        id: u32,
    },
    /// A section declares a payload longer than the decoder will allocate.
    SectionTooLarge {
        /// Id of the oversized section.
        id: u32,
        /// Declared payload length.
        len: u64,
    },
    /// Bytes remain after the last declared section.
    TrailingBytes,
    /// A payload violated its codec (bad varint, bad tag, out-of-range id,
    /// invariant failure after reconstruction, …).
    Malformed {
        /// What the decoder was parsing.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
}

impl ArtifactError {
    /// Convenience constructor for [`ArtifactError::Malformed`].
    pub fn malformed(context: &'static str, detail: impl Into<String>) -> Self {
        ArtifactError::Malformed { context, detail: detail.into() }
    }

    /// Wraps an IO error with the path it happened on.
    pub fn io(path: &std::path::Path, err: std::io::Error) -> Self {
        ArtifactError::Io { path: path.display().to_string(), message: err.to_string() }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not an I-SPY artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "artifact format version {found} is newer than supported {supported}")
            }
            ArtifactError::UnknownKind { found } => write!(f, "unknown artifact kind {found}"),
            ArtifactError::WrongKind { expected, found } => {
                write!(f, "expected artifact kind {expected}, found {found}")
            }
            ArtifactError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            ArtifactError::HeaderChecksum => write!(f, "artifact header checksum mismatch"),
            ArtifactError::SectionChecksum { id } => {
                write!(f, "section {id} payload checksum mismatch")
            }
            ArtifactError::DuplicateSection { id } => write!(f, "section {id} appears twice"),
            ArtifactError::MissingSection { id } => write!(f, "required section {id} is missing"),
            ArtifactError::SectionTooLarge { id, len } => {
                write!(f, "section {id} declares an implausible {len}-byte payload")
            }
            ArtifactError::TrailingBytes => {
                write!(f, "trailing bytes after the last declared section")
            }
            ArtifactError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            ArtifactError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<ArtifactError> = vec![
            ArtifactError::BadMagic,
            ArtifactError::UnsupportedVersion { found: 9, supported: 1 },
            ArtifactError::UnknownKind { found: 77 },
            ArtifactError::WrongKind { expected: 1, found: 2 },
            ArtifactError::Truncated { context: "header" },
            ArtifactError::HeaderChecksum,
            ArtifactError::SectionChecksum { id: 3 },
            ArtifactError::DuplicateSection { id: 3 },
            ArtifactError::MissingSection { id: 4 },
            ArtifactError::SectionTooLarge { id: 1, len: u64::MAX },
            ArtifactError::TrailingBytes,
            ArtifactError::malformed("trace", "block id out of range"),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
