//! CRC-32 (ISO-HDLC / zlib polynomial), table-driven.

/// The reflected CRC-32 polynomial used by zlib, PNG, and gzip.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — the
/// standard zlib convention, so values can be cross-checked with any external
/// tool).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC-32 over a byte stream, bit-identical to [`crc32`] of the
/// concatenated input — the streaming reader/writer checksum section frames
/// chunk by chunk without ever holding the payload in memory.
///
/// # Examples
///
/// ```
/// use ispy_artifact::crc::{crc32, Crc32};
///
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: u32::MAX }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far (the hasher stays usable).
    pub fn finish(&self) -> u32 {
        self.state ^ u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
