//! CRC-32 (ISO-HDLC / zlib polynomial), table-driven.

/// The reflected CRC-32 polynomial used by zlib, PNG, and gzip.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — the
/// standard zlib convention, so values can be cross-checked with any external
/// tool).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
