//! The sectioned container: header, framing, checksums, strict parse.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "ISPYART\0"
//! 8       2     format version
//! 10      2     artifact kind
//! 12      4     section count
//! 16      4     CRC-32 of bytes 0..16
//! 20      ...   sections
//! ```
//!
//! Each section is `(u32 id, u64 payload length, payload bytes, u32 CRC-32)`
//! where the CRC covers the id and length fields *and* the payload, so a bit
//! flip anywhere in the file — header, framing, payload, or a checksum
//! itself — is guaranteed to surface as a typed error.

use std::path::Path;

use crate::crc::crc32;
use crate::error::ArtifactError;
use crate::section::{SectionReader, SectionWriter};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"ISPYART\0";

/// The newest container format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header length in bytes.
pub(crate) const HEADER_LEN: usize = 20;

/// Per-section framing overhead: id (4) + length (8) + CRC (4).
const SECTION_OVERHEAD: usize = 16;

/// Refuse to allocate payloads beyond this — a corrupt length field must not
/// become an OOM.
pub(crate) const MAX_SECTION_LEN: u64 = 1 << 30;

/// Serializes the fixed 20-byte header (magic, version, kind, section count,
/// header CRC). Shared by the buffered and streaming writers so both produce
/// bit-identical headers.
pub(crate) fn encode_header(kind: ArtifactKind, section_count: u32) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..8].copy_from_slice(&MAGIC);
    out[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[10..12].copy_from_slice(&kind.raw().to_le_bytes());
    out[12..16].copy_from_slice(&section_count.to_le_bytes());
    let header_crc = crc32(&out[..16]);
    out[16..20].copy_from_slice(&header_crc.to_le_bytes());
    out
}

/// Validates a 20-byte header against `expected` and returns the declared
/// section count. Shared by the buffered and streaming readers so both
/// enforce identical checks.
pub(crate) fn parse_header(
    header: &[u8; HEADER_LEN],
    expected: ArtifactKind,
) -> Result<u32, ArtifactError> {
    if header[..8] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u16::from_le_bytes([header[8], header[9]]);
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let raw_kind = u16::from_le_bytes([header[10], header[11]]);
    let kind =
        ArtifactKind::from_raw(raw_kind).ok_or(ArtifactError::UnknownKind { found: raw_kind })?;
    let count = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    let stored_header_crc = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
    if crc32(&header[..16]) != stored_header_crc {
        return Err(ArtifactError::HeaderChecksum);
    }
    if kind != expected {
        return Err(ArtifactError::WrongKind { expected: expected.raw(), found: kind.raw() });
    }
    Ok(count)
}

/// What an artifact stores, written into the header and checked on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A recorded program + block trace (`.itrace`).
    Trace = 1,
    /// A miss-annotated profile (`.iprof`).
    Profile = 2,
    /// An injection plan with provenance (`.iplan`).
    Plan = 3,
}

impl ArtifactKind {
    /// The on-disk kind value.
    pub fn raw(self) -> u16 {
        self as u16
    }

    /// Decodes a raw kind value.
    pub fn from_raw(raw: u16) -> Option<Self> {
        match raw {
            1 => Some(ArtifactKind::Trace),
            2 => Some(ArtifactKind::Profile),
            3 => Some(ArtifactKind::Plan),
            _ => None,
        }
    }

    /// The conventional file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            ArtifactKind::Trace => "itrace",
            ArtifactKind::Profile => "iprof",
            ArtifactKind::Plan => "iplan",
        }
    }
}

/// Assembles an artifact: open sections with [`ArtifactWriter::section`],
/// fill them, attach with [`ArtifactWriter::finish_section`], then serialize.
#[derive(Debug, Clone)]
pub struct ArtifactWriter {
    kind: ArtifactKind,
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// Starts an empty artifact of the given kind.
    pub fn new(kind: ArtifactKind) -> Self {
        ArtifactWriter { kind, sections: Vec::new() }
    }

    /// Opens a payload builder for section `id`.
    pub fn section(&self, id: u32) -> SectionWriter {
        SectionWriter::new(id)
    }

    /// Attaches a finished section. Section ids must be unique per artifact;
    /// attaching a duplicate is a programming error and panics.
    pub fn finish_section(&mut self, section: SectionWriter) {
        let (id, payload) = section.into_parts();
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "section {id} attached twice"
        );
        self.sections.push((id, payload));
    }

    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body_len: usize =
            self.sections.iter().map(|(_, p)| p.len() + SECTION_OVERHEAD).sum::<usize>();
        let mut out = Vec::with_capacity(HEADER_LEN + body_len);
        out.extend_from_slice(&encode_header(self.kind, self.sections.len() as u32));
        for (id, payload) in &self.sections {
            let frame_start = out.len();
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            let section_crc = crc32(&out[frame_start..]);
            out.extend_from_slice(&section_crc.to_le_bytes());
        }
        out
    }

    /// Serializes and writes the artifact to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on any filesystem failure.
    pub fn write_to(&self, path: &Path) -> Result<(), ArtifactError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| ArtifactError::io(path, e))?;
            }
        }
        std::fs::write(path, self.to_bytes()).map_err(|e| ArtifactError::io(path, e))
    }
}

/// A fully validated artifact: header checked, every section checksummed.
///
/// Construction performs the whole structural validation up front, so
/// [`ArtifactReader::section`] cannot fail on corruption — only payload-level
/// codec errors remain for the caller.
#[derive(Debug, Clone)]
pub struct ArtifactReader {
    kind: ArtifactKind,
    data: Vec<u8>,
    sections: Vec<(u32, std::ops::Range<usize>)>,
}

impl ArtifactReader {
    /// Parses and validates an artifact, checking it is of `expected` kind.
    ///
    /// # Errors
    ///
    /// Every structural defect maps to a typed [`ArtifactError`]: bad magic,
    /// future version, wrong/unknown kind, checksum mismatches, truncation,
    /// duplicate sections, oversized sections, trailing bytes.
    pub fn from_bytes(bytes: &[u8], expected: ArtifactKind) -> Result<Self, ArtifactError> {
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated { context: "header" });
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        let count = parse_header(&header, expected)?;
        let kind = expected;

        let mut sections: Vec<(u32, std::ops::Range<usize>)> = Vec::with_capacity(count as usize);
        let mut pos = HEADER_LEN;
        for _ in 0..count {
            if bytes.len() - pos < 12 {
                return Err(ArtifactError::Truncated { context: "section frame" });
            }
            let id =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            let mut len_raw = [0u8; 8];
            len_raw.copy_from_slice(&bytes[pos + 4..pos + 12]);
            let len = u64::from_le_bytes(len_raw);
            if len > MAX_SECTION_LEN {
                return Err(ArtifactError::SectionTooLarge { id, len });
            }
            let len = len as usize;
            if bytes.len() - pos < 12 + len + 4 {
                return Err(ArtifactError::Truncated { context: "section payload" });
            }
            let payload_start = pos + 12;
            let payload_end = payload_start + len;
            let stored_crc = u32::from_le_bytes([
                bytes[payload_end],
                bytes[payload_end + 1],
                bytes[payload_end + 2],
                bytes[payload_end + 3],
            ]);
            if crc32(&bytes[pos..payload_end]) != stored_crc {
                return Err(ArtifactError::SectionChecksum { id });
            }
            if sections.iter().any(|(existing, _)| *existing == id) {
                return Err(ArtifactError::DuplicateSection { id });
            }
            sections.push((id, payload_start..payload_end));
            pos = payload_end + 4;
        }
        if pos != bytes.len() {
            return Err(ArtifactError::TrailingBytes);
        }
        Ok(ArtifactReader { kind, data: bytes.to_vec(), sections })
    }

    /// Reads and validates an artifact file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure, otherwise the same
    /// conditions as [`ArtifactReader::from_bytes`].
    pub fn read_from(path: &Path, expected: ArtifactKind) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path).map_err(|e| ArtifactError::io(path, e))?;
        Self::from_bytes(&bytes, expected)
    }

    /// The artifact's kind.
    pub fn kind(&self) -> ArtifactKind {
        self.kind
    }

    /// Ids of all sections, in file order.
    pub fn section_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.sections.iter().map(|(id, _)| *id)
    }

    /// Opens a cursor over section `id`, if present.
    pub fn section(&self, id: u32) -> Option<SectionReader<'_>> {
        self.sections
            .iter()
            .find(|(existing, _)| *existing == id)
            .map(|(_, range)| SectionReader::new(id, &self.data[range.clone()]))
    }

    /// Opens a cursor over section `id`, erroring if absent.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::MissingSection`] when the artifact lacks the section.
    pub fn require_section(&self, id: u32) -> Result<SectionReader<'_>, ArtifactError> {
        self.section(id).ok_or(ArtifactError::MissingSection { id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact() -> Vec<u8> {
        let mut w = ArtifactWriter::new(ArtifactKind::Profile);
        let mut meta = w.section(1);
        meta.put_str("wordpress");
        meta.put_varint(123_456);
        w.finish_section(meta);
        let mut stats = w.section(2);
        for (i, v) in [1.5f64, -0.0, f64::INFINITY].iter().enumerate() {
            stats.put_delta(i as u64 * 1000);
            stats.put_f64(*v);
        }
        w.finish_section(stats);
        w.to_bytes()
    }

    #[test]
    fn multi_section_round_trip() {
        let bytes = sample_artifact();
        let r = ArtifactReader::from_bytes(&bytes, ArtifactKind::Profile).unwrap();
        assert_eq!(r.kind(), ArtifactKind::Profile);
        assert_eq!(r.section_ids().collect::<Vec<_>>(), vec![1, 2]);
        let mut meta = r.require_section(1).unwrap();
        assert_eq!(meta.take_str().unwrap(), "wordpress");
        assert_eq!(meta.take_varint().unwrap(), 123_456);
        meta.finish().unwrap();
        let mut stats = r.section(2).unwrap();
        for (i, v) in [1.5f64, -0.0, f64::INFINITY].iter().enumerate() {
            assert_eq!(stats.take_delta().unwrap(), i as u64 * 1000);
            assert_eq!(stats.take_f64().unwrap().to_bits(), v.to_bits());
        }
        stats.finish().unwrap();
        assert!(r.section(9).is_none());
        assert_eq!(r.require_section(9).unwrap_err(), ArtifactError::MissingSection { id: 9 });
    }

    #[test]
    fn empty_artifact_round_trips() {
        let bytes = ArtifactWriter::new(ArtifactKind::Plan).to_bytes();
        let r = ArtifactReader::from_bytes(&bytes, ArtifactKind::Plan).unwrap();
        assert_eq!(r.section_ids().count(), 0);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let bytes = sample_artifact();
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Trace).unwrap_err(),
            ArtifactError::WrongKind {
                expected: ArtifactKind::Trace.raw(),
                found: ArtifactKind::Profile.raw()
            }
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_artifact();
        bytes[0] = b'X';
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Profile).unwrap_err(),
            ArtifactError::BadMagic
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_artifact();
        bytes[8] = 0xFF;
        bytes[9] = 0x7F;
        // Re-seal the header so the version check (not the CRC) fires.
        let crc = crate::crc::crc32(&bytes[..16]).to_le_bytes();
        bytes[16..20].copy_from_slice(&crc);
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Profile).unwrap_err(),
            ArtifactError::UnsupportedVersion { found: 0x7FFF, supported: FORMAT_VERSION }
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut bytes = sample_artifact();
        bytes[10] = 42;
        bytes[11] = 0;
        let crc = crate::crc::crc32(&bytes[..16]).to_le_bytes();
        bytes[16..20].copy_from_slice(&crc);
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Profile).unwrap_err(),
            ArtifactError::UnknownKind { found: 42 }
        );
    }

    #[test]
    fn oversized_section_length_is_rejected_without_allocating() {
        let mut bytes = sample_artifact();
        // Corrupt section 1's length field to an absurd value.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Profile).unwrap_err(),
            ArtifactError::SectionTooLarge { id: 1, len: u64::MAX }
        );
    }

    #[test]
    fn duplicate_section_is_rejected() {
        // Hand-build a file with section 5 twice: serialize one section, then
        // splice a copy of its frame and patch the header count.
        let mut w = ArtifactWriter::new(ArtifactKind::Trace);
        let mut s = w.section(5);
        s.put_varint(7);
        w.finish_section(s);
        let mut bytes = w.to_bytes();
        let frame = bytes[HEADER_LEN..].to_vec();
        bytes.extend_from_slice(&frame);
        bytes[12..16].copy_from_slice(&2u32.to_le_bytes());
        let crc = crate::crc::crc32(&bytes[..16]).to_le_bytes();
        bytes[16..20].copy_from_slice(&crc);
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Trace).unwrap_err(),
            ArtifactError::DuplicateSection { id: 5 }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_artifact();
        bytes.push(0);
        assert_eq!(
            ArtifactReader::from_bytes(&bytes, ArtifactKind::Profile).unwrap_err(),
            ArtifactError::TrailingBytes
        );
    }

    #[test]
    fn every_truncation_point_errors() {
        let bytes = sample_artifact();
        for cut in 0..bytes.len() {
            let result = ArtifactReader::from_bytes(&bytes[..cut], ArtifactKind::Profile);
            assert!(result.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn every_single_bit_flip_errors() {
        // The header CRC covers bytes 0..16 and each section CRC covers its
        // frame (id + length + payload), so *no* single-bit corruption can
        // decode cleanly — flipping a checksum byte breaks the checksum too.
        let bytes = sample_artifact();
        for byte_idx in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte_idx] ^= 1 << bit;
                let result = ArtifactReader::from_bytes(&corrupt, ArtifactKind::Profile);
                assert!(
                    result.is_err(),
                    "bit {bit} of byte {byte_idx} flipped but the artifact still decoded"
                );
            }
        }
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join(format!("ispy-artifact-test-{}", std::process::id()));
        let path = dir.join("nested").join("sample.iprof");
        let mut w = ArtifactWriter::new(ArtifactKind::Profile);
        let mut s = w.section(1);
        s.put_str("roundtrip");
        w.finish_section(s);
        w.write_to(&path).unwrap();
        let r = ArtifactReader::read_from(&path, ArtifactKind::Profile).unwrap();
        assert_eq!(r.require_section(1).unwrap().take_str().unwrap(), "roundtrip");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(
            ArtifactReader::read_from(&path, ArtifactKind::Profile),
            Err(ArtifactError::Io { .. })
        ));
    }
}
