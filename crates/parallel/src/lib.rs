//! Deterministic parallel fan-out for the experiment harness.
//!
//! This is a minimal, dependency-free stand-in for the slice of rayon the
//! harness needs (`par_iter().map().collect()` over a coarse-grained work
//! grid). The build environment is fully offline, so rayon itself cannot be
//! vendored; the API below mirrors the shape the figure drivers would use
//! with rayon, and could be swapped for it one-for-one when a registry is
//! available.
//!
//! Two properties matter more than raw scheduling cleverness here:
//!
//! 1. **Determinism** — results are collected by item index, so the output
//!    of [`par_collect`]/[`par_map`] is byte-identical regardless of the
//!    thread count (including 1). The harness's serial-vs-parallel equality
//!    tests rely on this.
//! 2. **Coarse tasks** — each work item is an entire plan+simulate cell
//!    (hundreds of milliseconds to seconds), so a shared atomic cursor is a
//!    perfectly good scheduler and per-slot locking is negligible overhead.
//!
//! The pool size is a process-wide setting ([`set_threads`]) so the `repro`
//! CLI's `--jobs N` flag can bound every fan-out in one place; nested
//! [`par_collect`] calls run their inner grid serially to keep the thread
//! count bounded by that setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread budget. 0 = "not set" → all available cores.
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker threads so nested fan-outs degrade to serial
    /// execution instead of oversubscribing the pool.
    static IN_WORKER: AtomicBool = const { AtomicBool::new(false) };
}

/// Sets the process-wide thread budget for all subsequent fan-outs.
///
/// `0` restores the default (all available cores). Safe to call at any
/// time; in-flight fan-outs keep the budget they started with.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The current thread budget: the value of the last [`set_threads`] call,
/// or the number of available cores (≥ 1) when unset.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Runs `f(0..n)` across the thread pool and returns the results in index
/// order. Deterministic: the output is identical for any thread count.
///
/// Panics in `f` propagate to the caller (after all workers finish).
///
/// # Examples
///
/// ```
/// let squares = ispy_parallel::par_collect(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_collect_with(threads(), n, f)
}

/// [`par_collect`] with an explicit worker count instead of the process-wide
/// budget. The simulator's time-sliced shard replay uses this so a caller's
/// `ShardConfig::shards` choice maps to exactly that many workers (bounded
/// by the item count) without disturbing the global `--jobs` setting.
///
/// Output is identical for any `max_workers` value — results are collected
/// by item index, like every fan-out in this crate.
///
/// # Examples
///
/// ```
/// let squares = ispy_parallel::par_collect_bounded(2, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub fn par_collect_bounded<R, F>(max_workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_collect_with(max_workers.max(1), n, f)
}

fn par_collect_with<R, F>(workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.min(n);
    let nested = IN_WORKER.with(|w| w.load(Ordering::Relaxed));
    if workers <= 1 || nested {
        return (0..n).map(f).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.store(true, Ordering::Relaxed));
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(i);
                        *slots[i].lock().expect("slot lock") = Some(r);
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload resurfaces verbatim
        // (scope's implicit join would replace it with a generic message).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("every index was produced"))
        .collect()
}

/// Parallel map over a slice, preserving order (the moral equivalent of
/// rayon's `items.par_iter().map(f).collect()`).
///
/// # Examples
///
/// ```
/// let doubled = ispy_parallel::par_map(&[1, 2, 3], |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_collect(items.len(), |i| f(&items[i]))
}

/// Parallel map that consumes a `Vec`, preserving order (the moral
/// equivalent of `items.into_par_iter().map(f).collect()`).
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    par_collect(slots.len(), |i| {
        let item = slots[i].lock().expect("item lock").take().expect("taken once");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_in_order() {
        let v = par_collect(100, |i| i + 1);
        assert_eq!(v, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_collect(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_collect(1, |i| i), vec![0]);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        assert_eq!(par_map(&items, |&x| x * 3), (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_vec_consumes() {
        let items: Vec<String> = (0..20).map(|i| i.to_string()).collect();
        let lens = par_map_vec(items, |s| s.len());
        assert_eq!(lens.len(), 20);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[10], 2);
    }

    #[test]
    fn thread_budget_is_respected_and_restorable() {
        set_threads(1);
        assert_eq!(threads(), 1);
        let v = par_collect(10, |i| i);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
        set_threads(3);
        assert_eq!(threads(), 3);
        let v = par_collect(10, |i| i);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn nested_fanout_is_serial_but_correct() {
        set_threads(4);
        let v = par_collect(4, |i| par_collect(4, move |j| i * 4 + j));
        let flat: Vec<usize> = v.into_iter().flatten().collect();
        assert_eq!(flat, (0..16).collect::<Vec<_>>());
        set_threads(0);
    }

    #[test]
    fn bounded_matches_unbounded() {
        let a = par_collect(37, |i| i * 7);
        for workers in [1, 2, 4, 8, 64] {
            assert_eq!(par_collect_bounded(workers, 37, |i| i * 7), a);
        }
        // A zero request degrades to one worker rather than deadlocking.
        assert_eq!(par_collect_bounded(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        set_threads(2);
        let _ = par_collect(4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
