//! Deterministic engine workloads shared by the engine benchmark and the
//! engine golden test.
//!
//! Both consumers need the same thing: a reproducible injection plan that
//! exercises every engine path (plain, conditional, coalesced, and
//! conditional-coalesced ops; firings, suppressions, useful/late/evicted
//! lines) without depending on the planner, so the numbers pin the *engine*
//! alone. The plan is derived from a miss-recording profiling replay, the
//! same construction the engine's own unit tests use.

use ispy_isa::{CoalesceMask, InjectionMap, PrefetchOp, ProvenanceId};
use ispy_sim::{run, RunOptions, SimConfig, SimObserver};
use ispy_trace::{BlockId, Line, Program, Trace};
use std::collections::HashSet;

/// Records `(trace index, missing line)` events during a profiling replay.
struct MissRecorder {
    events: Vec<(usize, Line)>,
}

impl SimObserver for MissRecorder {
    fn icache_miss(&mut self, idx: usize, _b: BlockId, line: Line, _c: u64) {
        self.events.push((idx, line));
    }
}

/// Builds a deterministic miss-derived injection plan for `trace`.
///
/// Every observed miss is planned 8 dynamic blocks ahead of its use, cycling
/// through the four prefetch-op kinds so conditional checks (both firing and
/// suppressed), coalesced decodes, and provenance attribution all run.
/// Conditions hash the *missing* block's address: in loops that block is
/// often still in the LBR from a previous iteration, so conditional ops see
/// a realistic mix of firings and suppressions.
pub fn miss_derived_plan(program: &Program, trace: &Trace, cfg: &SimConfig) -> InjectionMap {
    let mut rec = MissRecorder { events: Vec::new() };
    run(program, trace, cfg, RunOptions { observer: Some(&mut rec), ..Default::default() });

    let mut map = InjectionMap::new();
    let mut seen = HashSet::new();
    let mut next_id = 0u32;
    for (n, &(idx, line)) in rec.events.iter().enumerate() {
        if idx < 8 {
            continue;
        }
        let site = trace.blocks()[idx - 8];
        if !seen.insert((site, line)) {
            continue;
        }
        let miss_block = trace.blocks()[idx];
        let ctx = cfg.hash.context_hash([program.block(miss_block).start()]);
        let op = match n % 4 {
            0 => PrefetchOp::Plain { target: line },
            1 => PrefetchOp::Cond { target: line, ctx },
            2 => PrefetchOp::Coalesced { base: line, mask: CoalesceMask::from_bits(0b101, 8) },
            _ => PrefetchOp::CondCoalesced {
                base: line,
                mask: CoalesceMask::from_bits(0b11, 8),
                ctx,
            },
        };
        map.push_traced(site, op, ProvenanceId(next_id));
        next_id += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::apps;

    #[test]
    fn plan_is_deterministic_and_mixed() {
        let model = apps::cassandra().scaled_down(20);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 20_000);
        let cfg = SimConfig::default();
        let a = miss_derived_plan(&program, &trace, &cfg);
        let b = miss_derived_plan(&program, &trace, &cfg);
        assert_eq!(a, b);
        assert!(a.num_ops() > 0);
        let hist = a.op_histogram();
        assert!(hist.len() >= 3, "plan should mix op kinds: {hist:?}");
    }

    #[test]
    fn plan_exercises_fire_and_suppress_paths() {
        let model = apps::cassandra().scaled_down(20);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), 20_000);
        let cfg = SimConfig::default();
        let plan = miss_derived_plan(&program, &trace, &cfg);
        let r = run(
            &program,
            &trace,
            &cfg,
            RunOptions { injections: Some(&plan), ..Default::default() },
        );
        assert!(r.pf_ops_fired > 0);
        assert!(r.pf_ops_suppressed > 0, "conditions must sometimes suppress");
        assert!(r.pf_useful > 0);
    }
}
