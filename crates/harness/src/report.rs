//! Plain-text tables (one per paper figure) with JSON export.

use serde::Serialize;
use std::fmt;

/// A rendered experiment result: the rows/series a paper figure reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table {
    /// Experiment id, e.g. `"fig10"`.
    pub id: String,
    /// Human title quoting what the paper showed.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-reported values, deviations, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are serializable")
    }

    /// Looks up a cell as `f64` (for tests over rendered output).
    pub fn cell_f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row)?.get(col)?.trim_end_matches(['%', 'x']).trim().parse().ok()
    }
}

/// Formats a ratio as a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a speedup cell.
pub fn speedup(x: f64) -> String {
    format!("{x:.3}x")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "  {cell:<w$}", w = widths[i])?;
                } else {
                    write!(f, "  {cell:>w$}", w = widths[i])?;
                }
            }
            writeln!(f)
        };
        render(&self.headers, f)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            render(row, f)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig0", "demo", &["app", "speedup"]);
        t.row(vec!["cassandra".into(), speedup(1.25)]);
        t.note("paper: something");
        t
    }

    #[test]
    fn renders_all_parts() {
        let s = sample().to_string();
        assert!(s.contains("fig0"));
        assert!(s.contains("cassandra"));
        assert!(s.contains("1.250x"));
        assert!(s.contains("note: paper"));
    }

    #[test]
    fn json_roundtrips_fields() {
        let j = sample().to_json();
        assert!(j.contains("\"id\": \"fig0\""));
        assert!(j.contains("1.250x"));
    }

    #[test]
    fn cell_parsing() {
        let t = sample();
        assert_eq!(t.cell_f64(0, 1), Some(1.25));
        assert_eq!(t.cell_f64(5, 0), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = sample();
        t.row(vec!["too-short".into()]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.505), "50.5%");
    }
}
