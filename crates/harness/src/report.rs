//! Plain-text tables (one per paper figure) with JSON export.

use std::fmt;

/// A rendered experiment result: the rows/series a paper figure reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment id, e.g. `"fig10"`.
    pub id: String,
    /// Human title quoting what the paper showed.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-reported values, deviations, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Serializes to pretty JSON (2-space indent, `serde_json`-compatible
    /// layout — the external dependency was dropped for offline builds).
    pub fn to_json(&self) -> String {
        self.to_json_with_runtime(None)
    }

    /// Like [`Table::to_json`], optionally recording the figure's measured
    /// wall time as a trailing `"runtime_secs"` key (used by `repro --json`).
    /// Wall time lives only in the export, never in the `Table` itself, so
    /// table equality (the serial-vs-parallel determinism guarantee) stays
    /// timing-independent.
    pub fn to_json_with_runtime(&self, runtime_secs: Option<f64>) -> String {
        let mut out = String::from("{\n");
        json_kv(&mut out, "id", &json_string(&self.id), false);
        json_kv(&mut out, "title", &json_string(&self.title), false);
        json_kv(&mut out, "headers", &json_str_array(&self.headers, 1), false);
        let rows: Vec<String> = self.rows.iter().map(|r| json_str_array(r, 2)).collect();
        json_kv(&mut out, "rows", &json_raw_array(&rows, 1), false);
        let last = runtime_secs.is_none();
        json_kv(&mut out, "notes", &json_str_array(&self.notes, 1), last);
        if let Some(secs) = runtime_secs {
            json_kv(&mut out, "runtime_secs", &format!("{secs:.3}"), true);
        }
        out.push('}');
        out
    }

    /// Looks up a cell as `f64` (for tests over rendered output).
    pub fn cell_f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row)?.get(col)?.trim_end_matches(['%', 'x']).trim().parse().ok()
    }
}

/// Escapes and quotes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Appends one `"key": value` line at top-level indent.
fn json_kv(out: &mut String, key: &str, value: &str, last: bool) {
    out.push_str("  \"");
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(value);
    if !last {
        out.push(',');
    }
    out.push('\n');
}

/// Renders an array of strings with `serde_json`-style pretty indentation;
/// `level` is the nesting depth of the array's own line.
fn json_str_array(items: &[String], level: usize) -> String {
    let rendered: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    json_raw_array(&rendered, level)
}

/// Renders an array whose items are already-rendered JSON values.
fn json_raw_array(items: &[String], level: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let inner = "  ".repeat(level + 1);
    let outer = "  ".repeat(level);
    let mut out = String::from("[\n");
    for (i, item) in items.iter().enumerate() {
        out.push_str(&inner);
        out.push_str(item);
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&outer);
    out.push(']');
    out
}

/// Formats a ratio as a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a speedup cell.
pub fn speedup(x: f64) -> String {
    format!("{x:.3}x")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "  {cell:<w$}", w = widths[i])?;
                } else {
                    write!(f, "  {cell:>w$}", w = widths[i])?;
                }
            }
            writeln!(f)
        };
        render(&self.headers, f)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            render(row, f)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig0", "demo", &["app", "speedup"]);
        t.row(vec!["cassandra".into(), speedup(1.25)]);
        t.note("paper: something");
        t
    }

    #[test]
    fn renders_all_parts() {
        let s = sample().to_string();
        assert!(s.contains("fig0"));
        assert!(s.contains("cassandra"));
        assert!(s.contains("1.250x"));
        assert!(s.contains("note: paper"));
    }

    #[test]
    fn json_roundtrips_fields() {
        let j = sample().to_json();
        assert!(j.contains("\"id\": \"fig0\""));
        assert!(j.contains("1.250x"));
    }

    #[test]
    fn cell_parsing() {
        let t = sample();
        assert_eq!(t.cell_f64(0, 1), Some(1.25));
        assert_eq!(t.cell_f64(5, 0), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = sample();
        t.row(vec!["too-short".into()]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.505), "50.5%");
    }

    #[test]
    fn json_layout_matches_serde_pretty() {
        let j = sample().to_json();
        let expected = "{\n  \"id\": \"fig0\",\n  \"title\": \"demo\",\n  \"headers\": [\n    \"app\",\n    \"speedup\"\n  ],\n  \"rows\": [\n    [\n      \"cassandra\",\n      \"1.250x\"\n    ]\n  ],\n  \"notes\": [\n    \"paper: something\"\n  ]\n}";
        assert_eq!(j, expected);
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut t = Table::new("x", "quote \" backslash \\ newline \n", &["h"]);
        t.row(vec!["tab\there".into()]);
        let j = t.to_json();
        assert!(j.contains("quote \\\" backslash \\\\ newline \\n"));
        assert!(j.contains("tab\\there"));
    }

    #[test]
    fn json_runtime_is_export_only() {
        let t = sample();
        let j = t.to_json_with_runtime(Some(1.5));
        assert!(j.ends_with("\"runtime_secs\": 1.500\n}"));
        // The runtime never feeds back into the table (determinism).
        assert_eq!(t.to_json(), sample().to_json());
    }

    #[test]
    fn empty_arrays_render_inline() {
        let t = Table::new("e", "empty", &["h"]);
        let j = t.to_json();
        assert!(j.contains("\"rows\": [],"));
        assert!(j.contains("\"notes\": []"));
    }
}
