//! Peak-resident-set measurement via `/proc`, dependency-free.
//!
//! The streaming engine's whole point is bounded memory, so the bench
//! reports peak RSS next to blocks/sec. Linux exposes exactly the two
//! hooks needed and nothing else is required:
//!
//! * `VmHWM` in `/proc/self/status` — the process's resident-set
//!   high-water mark, in kibibytes;
//! * writing `5` to `/proc/self/clear_refs` — resets that high-water mark
//!   to the *current* RSS, so a measurement window can start fresh.
//!
//! Both are best-effort: on non-Linux hosts (or a locked-down `/proc`)
//! [`peak_rss_bytes`] returns `None` and [`reset_peak_rss`] is a no-op, and
//! callers print `-` instead of a number. Measurements are process-wide:
//! a reading covers everything live in the process, not just the code
//! under test — reset immediately before the region of interest and keep
//! the region free of unrelated allocation.

/// The process's peak resident set in bytes since start (or since the last
/// [`reset_peak_rss`]), if the platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Resets the peak-RSS high-water mark to the current resident set.
/// Returns `false` (and changes nothing) where unsupported.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Extracts `VmHWM` from `/proc/self/status` text. The kernel prints the
/// value in kB (kibibytes) with a unit suffix: `VmHWM:      1234 kB`.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 =
        line.trim_start_matches("VmHWM:").trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kib * 1024)
}

/// Formats a byte count for human output: `-` when unknown, otherwise the
/// largest binary unit that keeps three significant digits.
pub fn format_bytes(bytes: Option<u64>) -> String {
    let Some(b) = bytes else {
        return "-".to_string();
    };
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{} KiB", b >> 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kernel_status_format() {
        let status = "Name:\trepro\nVmPeak:\t  123456 kB\nVmHWM:\t   98304 kB\nVmRSS:\t 4 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(98_304 * 1024));
        assert_eq!(parse_vm_hwm("Name:\trepro\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn formats_bytes_at_every_magnitude() {
        assert_eq!(format_bytes(None), "-");
        assert_eq!(format_bytes(Some(512 * 1024)), "512 KiB");
        assert_eq!(format_bytes(Some(3 * 1024 * 1024 + 512 * 1024)), "3.5 MiB");
        assert_eq!(format_bytes(Some(2 * 1024 * 1024 * 1024)), "2.00 GiB");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_reading_is_sane() {
        let peak = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(peak > 1024 * 1024, "a test process surely holds >1 MiB, got {peak}");
        reset_peak_rss();
        let after = peak_rss_bytes().expect("still readable after reset");
        assert!(after <= peak, "reset cannot raise the high-water mark");
    }
}
