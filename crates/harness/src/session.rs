//! Prepared applications and cached per-app comparison runs.

use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
use ispy_core::planner::Plan;
use ispy_core::{IspyConfig, Planner};
use ispy_profile::{profile, Profile, SampleRate};
use ispy_sim::{run, RunOptions, SimConfig, SimResult};
use ispy_trace::{apps, AppModel, InputSpec, Program, Trace};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// How big the experiments are.
///
/// `full` matches the paper-scale defaults (entire app models, 1 M block
/// events ≈ 10⁷ instructions of steady state). `quick` shrinks the
/// footprints and traces for CI-speed runs; shapes are preserved, absolute
/// numbers get noisier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Divisor applied to each app's function count.
    pub shrink: u32,
    /// Trace length in block events.
    pub events: usize,
}

impl Scale {
    /// Paper-scale runs (~seconds per app per configuration).
    pub fn full() -> Self {
        Scale { shrink: 1, events: 1_000_000 }
    }

    /// Reduced scale for quick runs.
    pub fn quick() -> Self {
        Scale { shrink: 4, events: 250_000 }
    }

    /// Tiny scale for unit/integration tests.
    pub fn test() -> Self {
        Scale { shrink: 20, events: 50_000 }
    }
}

/// One prepared application: model, program ("binary"), recorded trace of
/// the profiled input, and its profile.
#[derive(Debug)]
pub struct AppContext {
    /// The application model.
    pub model: AppModel,
    /// The generated program.
    pub program: Program,
    /// Steady-state trace of the profiled (default) input.
    pub trace: Trace,
    /// Miss-annotated dynamic CFG.
    pub profile: Profile,
}

impl AppContext {
    /// Prepares one application at the given scale.
    pub fn prepare(model: AppModel, scale: Scale) -> Self {
        let model = model.scaled_down(scale.shrink);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), scale.events);
        let profile = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
        AppContext { model, program, trace, profile }
    }

    /// The application name.
    pub fn name(&self) -> &'static str {
        self.model.name()
    }

    /// Runs the prepared trace under `cfg` with optional injections.
    pub fn simulate(
        &self,
        cfg: &SimConfig,
        injections: Option<&ispy_isa::InjectionMap>,
    ) -> SimResult {
        run(&self.program, &self.trace, cfg, RunOptions { injections, ..Default::default() })
    }

    /// Records a trace of input variant `k` (0 = the profiled input) and
    /// runs it with optional injections — the Fig. 16 drift experiment.
    pub fn simulate_variant(
        &self,
        k: usize,
        events: usize,
        cfg: &SimConfig,
        injections: Option<&ispy_isa::InjectionMap>,
    ) -> SimResult {
        let input: InputSpec = self.model.input_variant(k);
        let trace = self.program.record_trace(input, events);
        run(&self.program, &trace, cfg, RunOptions { injections, ..Default::default() })
    }
}

/// The four-way comparison behind most of the evaluation figures.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// No prefetching.
    pub baseline: SimResult,
    /// Ideal I-cache (never misses).
    pub ideal: SimResult,
    /// AsmDB result.
    pub asmdb: SimResult,
    /// AsmDB plan.
    pub asmdb_plan: Plan,
    /// I-SPY result (conditional + coalescing).
    pub ispy: SimResult,
    /// I-SPY plan.
    pub ispy_plan: Plan,
}

/// A prepared set of applications plus result caches.
pub struct Session {
    scale: Scale,
    apps: Vec<AppContext>,
    comparisons: RefCell<BTreeMap<usize, Comparison>>,
}

impl Session {
    /// Prepares all nine applications at `scale`.
    pub fn new(scale: Scale) -> Self {
        Self::with_apps(scale, apps::all())
    }

    /// Prepares a chosen subset of applications (used by tests and by
    /// figures that only need some apps).
    pub fn with_apps(scale: Scale, models: Vec<AppModel>) -> Self {
        let apps = models.into_iter().map(|m| AppContext::prepare(m, scale)).collect();
        Session { scale, apps, comparisons: RefCell::new(BTreeMap::new()) }
    }

    /// The session's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The prepared applications.
    pub fn apps(&self) -> &[AppContext] {
        &self.apps
    }

    /// Finds a prepared app by name.
    pub fn app(&self, name: &str) -> Option<&AppContext> {
        self.apps.iter().find(|a| a.name() == name)
    }

    /// The four-way comparison for app `i`, computed once and cached.
    pub fn comparison(&self, i: usize) -> Comparison {
        if let Some(c) = self.comparisons.borrow().get(&i) {
            return c.clone();
        }
        let ctx = &self.apps[i];
        let scfg = SimConfig::default();
        let baseline = ctx.simulate(&scfg, None);
        let ideal = ctx.simulate(&SimConfig::ideal(), None);
        let asmdb_plan = AsmDbPlanner::new(&ctx.program, &ctx.profile, AsmDbConfig::default()).plan();
        let asmdb = ctx.simulate(&scfg, Some(&asmdb_plan.injections));
        let ispy_plan =
            Planner::new(&ctx.program, &ctx.trace, &ctx.profile, IspyConfig::default()).plan();
        let ispy = ctx.simulate(&scfg, Some(&ispy_plan.injections));
        let c = Comparison { baseline, ideal, asmdb, asmdb_plan, ispy, ispy_plan };
        self.comparisons.borrow_mut().insert(i, c.clone());
        c
    }

    /// Plans and runs an I-SPY configuration variant for app `i` (used by
    /// the ablation and sensitivity figures). Not cached.
    pub fn run_ispy_variant(&self, i: usize, cfg: IspyConfig) -> (Plan, SimResult) {
        let ctx = &self.apps[i];
        let plan = Planner::new(&ctx.program, &ctx.trace, &ctx.profile, cfg).plan();
        let result = ctx.simulate(&SimConfig::default(), Some(&plan.injections));
        (plan, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_session() -> Session {
        Session::with_apps(Scale::test(), vec![apps::cassandra()])
    }

    #[test]
    fn prepare_builds_consistent_context() {
        let s = tiny_session();
        let ctx = &s.apps()[0];
        assert_eq!(ctx.trace.len(), Scale::test().events);
        assert!(ctx.profile.misses.total_misses() > 0);
        assert_eq!(ctx.name(), "cassandra");
        assert!(s.app("cassandra").is_some());
        assert!(s.app("nope").is_none());
    }

    #[test]
    fn comparison_is_cached_and_ordered() {
        let s = tiny_session();
        let c1 = s.comparison(0);
        let c2 = s.comparison(0);
        assert_eq!(c1.baseline, c2.baseline);
        // Sanity ordering: ideal <= ispy/asmdb <= baseline (cycles).
        assert!(c1.ideal.cycles <= c1.ispy.cycles);
        assert!(c1.ispy.cycles <= c1.baseline.cycles);
        assert!(c1.asmdb.cycles <= c1.baseline.cycles);
    }

    #[test]
    fn variant_simulation_runs() {
        let s = tiny_session();
        let ctx = &s.apps()[0];
        let r = ctx.simulate_variant(1, 10_000, &SimConfig::default(), None);
        assert_eq!(r.blocks, 10_000);
    }
}
