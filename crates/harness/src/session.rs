//! Prepared applications and cached per-app comparison runs.

use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
use ispy_core::planner::Plan;
use ispy_core::{IspyConfig, Planner, PlannerBaseline};
use ispy_profile::{profile, Profile, SampleRate};
use ispy_sim::{run, OutcomeLedger, RunOptions, SimConfig, SimResult};
use ispy_trace::{apps, AppModel, InputSpec, Program, Trace};
use std::sync::{Arc, OnceLock};

/// How big the experiments are.
///
/// `full` matches the paper-scale defaults (entire app models, 1 M block
/// events ≈ 10⁷ instructions of steady state). `quick` shrinks the
/// footprints and traces for CI-speed runs; shapes are preserved, absolute
/// numbers get noisier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Divisor applied to each app's function count.
    pub shrink: u32,
    /// Trace length in block events.
    pub events: usize,
}

impl Scale {
    /// Paper-scale runs (~seconds per app per configuration).
    pub fn full() -> Self {
        Scale { shrink: 1, events: 1_000_000 }
    }

    /// Reduced scale for quick runs.
    pub fn quick() -> Self {
        Scale { shrink: 4, events: 250_000 }
    }

    /// Tiny scale for unit/integration tests.
    pub fn test() -> Self {
        Scale { shrink: 20, events: 50_000 }
    }
}

/// One prepared application: model, program ("binary"), recorded trace of
/// the profiled input, and its profile.
#[derive(Debug)]
pub struct AppContext {
    /// The application model.
    pub model: AppModel,
    /// The generated program.
    pub program: Program,
    /// Steady-state trace of the profiled (default) input.
    pub trace: Trace,
    /// Miss-annotated dynamic CFG.
    pub profile: Profile,
}

impl AppContext {
    /// Prepares one application at the given scale.
    pub fn prepare(model: AppModel, scale: Scale) -> Self {
        Self::prepare_with(model, scale, None)
    }

    /// [`AppContext::prepare`] with an optional artifact cache: the
    /// recording and profile are loaded from cached `.itrace`/`.iprof`
    /// files when present (and stored after computing otherwise). Because
    /// the codecs are exact, a cache hit is indistinguishable from a fresh
    /// preparation.
    pub fn prepare_with(
        model: AppModel,
        scale: Scale,
        cache: Option<&crate::cache::ArtifactCache>,
    ) -> Self {
        let tele = ispy_telemetry::global();
        let _span = tele.span("session.prepare");
        let model = model.scaled_down(scale.shrink);
        let name = model.name();
        let (program, trace) = match cache.and_then(|c| c.load_recording(name)) {
            Some(pair) => pair,
            None => {
                let program = model.generate();
                let trace = program.record_trace(model.default_input(), scale.events);
                if let Some(c) = cache {
                    c.store_recording(name, &program, &trace);
                }
                (program, trace)
            }
        };
        let profile = match cache.and_then(|c| c.load_profile(name)) {
            Some(profile) => profile,
            None => {
                let profile = profile(&program, &trace, &SimConfig::default(), SampleRate::EXACT);
                if let Some(c) = cache {
                    c.store_profile(name, &profile);
                }
                profile
            }
        };
        AppContext { model, program, trace, profile }
    }

    /// The application name.
    pub fn name(&self) -> &'static str {
        self.model.name()
    }

    /// Runs the prepared trace under `cfg` with optional injections.
    pub fn simulate(
        &self,
        cfg: &SimConfig,
        injections: Option<&ispy_isa::InjectionMap>,
    ) -> SimResult {
        run(&self.program, &self.trace, cfg, RunOptions { injections, ..Default::default() })
    }

    /// Runs the prepared trace under `cfg` replaying a pre-lowered plan.
    /// Sweeps that evaluate one plan under many configurations compile it
    /// once (see [`ispy_isa::InjectionMap::compile`]) and use this, skipping
    /// the per-run lowering that [`AppContext::simulate`] performs.
    pub fn simulate_compiled(
        &self,
        cfg: &SimConfig,
        compiled: &ispy_isa::CompiledInjections,
    ) -> SimResult {
        run(
            &self.program,
            &self.trace,
            cfg,
            RunOptions { compiled: Some(compiled), ..Default::default() },
        )
    }

    /// Records a trace of input variant `k` (0 = the profiled input) and
    /// runs it with optional injections — the Fig. 16 drift experiment.
    pub fn simulate_variant(
        &self,
        k: usize,
        events: usize,
        cfg: &SimConfig,
        injections: Option<&ispy_isa::InjectionMap>,
    ) -> SimResult {
        let input: InputSpec = self.model.input_variant(k);
        let trace = self.program.record_trace(input, events);
        run(&self.program, &trace, cfg, RunOptions { injections, ..Default::default() })
    }

    /// [`AppContext::simulate_variant`] with a pre-lowered plan.
    pub fn simulate_variant_compiled(
        &self,
        k: usize,
        events: usize,
        cfg: &SimConfig,
        compiled: &ispy_isa::CompiledInjections,
    ) -> SimResult {
        let input: InputSpec = self.model.input_variant(k);
        let trace = self.program.record_trace(input, events);
        run(
            &self.program,
            &trace,
            cfg,
            RunOptions { compiled: Some(compiled), ..Default::default() },
        )
    }
}

/// The four-way comparison behind most of the evaluation figures.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// No prefetching.
    pub baseline: SimResult,
    /// Ideal I-cache (never misses).
    pub ideal: SimResult,
    /// AsmDB result.
    pub asmdb: SimResult,
    /// AsmDB plan.
    pub asmdb_plan: Plan,
    /// AsmDB plan lowered once for replay; sweeps that re-simulate the plan
    /// (drift inputs, policy ablations) share this instead of re-lowering.
    pub asmdb_compiled: ispy_isa::CompiledInjections,
    /// I-SPY result (conditional + coalescing).
    pub ispy: SimResult,
    /// I-SPY plan.
    pub ispy_plan: Plan,
    /// I-SPY plan lowered once for replay (see `asmdb_compiled`).
    pub ispy_compiled: ispy_isa::CompiledInjections,
    /// Per-injection runtime outcomes for the I-SPY run, indexed by the
    /// provenance ids in [`Plan::provenance`].
    pub ispy_outcomes: OutcomeLedger,
}

/// A prepared set of applications plus result caches.
///
/// Thread-safe: figure drivers fan their (app × config-point) grids out
/// across the [`ispy_parallel`] pool, so every cache here is a per-app
/// [`OnceLock`] slot (comparisons) or an internally-locked
/// [`PlannerBaseline`] (trace-scan reuse for sensitivity sweeps). The
/// expensive four-way [`Comparison`] is computed at most once per app and
/// shared as an [`Arc`] without cloning the multi-megabyte plans.
pub struct Session {
    scale: Scale,
    apps: Vec<AppContext>,
    comparisons: Vec<OnceLock<Arc<Comparison>>>,
    baselines: Vec<PlannerBaseline>,
    cache: Option<crate::cache::ArtifactCache>,
}

impl Session {
    /// Prepares all nine applications at `scale`.
    pub fn new(scale: Scale) -> Self {
        Self::with_apps(scale, apps::all())
    }

    /// Prepares a chosen subset of applications (used by tests, by `repro
    /// --apps`, and by figures that only need some apps). Preparation
    /// (model generation + trace recording + profiling) runs one app per
    /// pool thread.
    pub fn with_apps(scale: Scale, models: Vec<AppModel>) -> Self {
        Self::build(scale, models, None)
    }

    /// [`Session::with_apps`] backed by an on-disk artifact cache:
    /// recordings, profiles, and the comparison plans are loaded from the
    /// cache when present and stored after computing otherwise. Figures
    /// rendered from a warm cache are byte-identical to a cold run.
    pub fn with_cache(
        scale: Scale,
        models: Vec<AppModel>,
        cache: crate::cache::ArtifactCache,
    ) -> Self {
        Self::build(scale, models, Some(cache))
    }

    fn build(
        scale: Scale,
        models: Vec<AppModel>,
        cache: Option<crate::cache::ArtifactCache>,
    ) -> Self {
        let apps = ispy_parallel::par_map_vec(models, |m| {
            AppContext::prepare_with(m, scale, cache.as_ref())
        });
        let n = apps.len();
        Session {
            scale,
            apps,
            comparisons: (0..n).map(|_| OnceLock::new()).collect(),
            baselines: (0..n).map(|_| PlannerBaseline::new()).collect(),
            cache,
        }
    }

    /// The session's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The prepared applications.
    pub fn apps(&self) -> &[AppContext] {
        &self.apps
    }

    /// Finds a prepared app by name.
    pub fn app(&self, name: &str) -> Option<&AppContext> {
        self.apps.iter().find(|a| a.name() == name)
    }

    /// The four-way comparison for app `i`, computed once and cached.
    ///
    /// Returns a shared handle — callers never pay for cloning the
    /// `SimResult`s or multi-megabyte `Plan`s. Concurrent first calls for
    /// the same app block on one computation (the `OnceLock` guarantee).
    pub fn comparison(&self, i: usize) -> Arc<Comparison> {
        Arc::clone(self.comparisons[i].get_or_init(|| Arc::new(self.compute_comparison(i))))
    }

    /// All apps' comparisons, computed in parallel (one app per pool
    /// thread) and returned in app order. Figures that only read cached
    /// comparisons call this once instead of serially faulting each app in.
    pub fn comparisons(&self) -> Vec<Arc<Comparison>> {
        ispy_parallel::par_collect(self.apps.len(), |i| self.comparison(i))
    }

    fn compute_comparison(&self, i: usize) -> Comparison {
        let ctx = &self.apps[i];
        let scfg = SimConfig::default();
        let baseline = ctx.simulate(&scfg, None);
        let ideal = ctx.simulate(&SimConfig::ideal(), None);
        let asmdb_plan = match self.cache.as_ref().and_then(|c| c.load_plan(ctx.name(), "asmdb")) {
            Some(plan) => plan,
            None => {
                let plan =
                    AsmDbPlanner::new(&ctx.program, &ctx.profile, AsmDbConfig::default()).plan();
                if let Some(c) = &self.cache {
                    c.store_plan(ctx.name(), "asmdb", &plan);
                }
                plan
            }
        };
        let asmdb_compiled = asmdb_plan.injections.compile(ctx.program.num_blocks());
        let asmdb = ctx.simulate_compiled(&scfg, &asmdb_compiled);
        let ispy_plan = match self.cache.as_ref().and_then(|c| c.load_plan(ctx.name(), "ispy")) {
            Some(plan) => plan,
            None => {
                let plan =
                    Planner::new(&ctx.program, &ctx.trace, &ctx.profile, IspyConfig::default())
                        .plan_with_baseline(&self.baselines[i]);
                if let Some(c) = &self.cache {
                    c.store_plan(ctx.name(), "ispy", &plan);
                }
                plan
            }
        };
        let ispy_compiled = ispy_plan.injections.compile(ctx.program.num_blocks());
        let mut ispy_outcomes = OutcomeLedger::with_capacity(ispy_plan.provenance.len());
        let ispy = run(
            &ctx.program,
            &ctx.trace,
            &scfg,
            RunOptions {
                compiled: Some(&ispy_compiled),
                outcomes: Some(&mut ispy_outcomes),
                ..Default::default()
            },
        );
        Comparison {
            baseline,
            ideal,
            asmdb,
            asmdb_plan,
            asmdb_compiled,
            ispy,
            ispy_plan,
            ispy_compiled,
            ispy_outcomes,
        }
    }

    /// Plans and runs an I-SPY configuration variant for app `i` (used by
    /// the ablation and sensitivity figures). The plan reuses the app's
    /// [`PlannerBaseline`], so a sweep's config points share one set of
    /// trace scans; the simulation itself is per-variant.
    pub fn run_ispy_variant(&self, i: usize, cfg: IspyConfig) -> (Plan, SimResult) {
        let ctx = &self.apps[i];
        let plan = Planner::new(&ctx.program, &ctx.trace, &ctx.profile, cfg)
            .plan_with_baseline(&self.baselines[i]);
        let result = ctx.simulate(&SimConfig::default(), Some(&plan.injections));
        (plan, result)
    }

    /// The planner baseline (shared trace-scan caches) for app `i`.
    pub fn planner_baseline(&self, i: usize) -> &PlannerBaseline {
        &self.baselines[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_session() -> Session {
        Session::with_apps(Scale::test(), vec![apps::cassandra()])
    }

    #[test]
    fn prepare_builds_consistent_context() {
        let s = tiny_session();
        let ctx = &s.apps()[0];
        assert_eq!(ctx.trace.len(), Scale::test().events);
        assert!(ctx.profile.misses.total_misses() > 0);
        assert_eq!(ctx.name(), "cassandra");
        assert!(s.app("cassandra").is_some());
        assert!(s.app("nope").is_none());
    }

    #[test]
    fn comparison_is_cached_and_ordered() {
        let s = tiny_session();
        let c1 = s.comparison(0);
        let c2 = s.comparison(0);
        // The cache hands out the same allocation, not a clone.
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(c1.baseline, c2.baseline);
        // Sanity ordering: ideal <= ispy/asmdb <= baseline (cycles).
        assert!(c1.ideal.cycles <= c1.ispy.cycles);
        assert!(c1.ispy.cycles <= c1.baseline.cycles);
        assert!(c1.asmdb.cycles <= c1.baseline.cycles);
    }

    #[test]
    fn variant_simulation_runs() {
        let s = tiny_session();
        let ctx = &s.apps()[0];
        let r = ctx.simulate_variant(1, 10_000, &SimConfig::default(), None);
        assert_eq!(r.blocks, 10_000);
    }

    #[test]
    fn concurrent_comparisons_fill_each_slot_once() {
        let s = Session::with_apps(Scale::test(), vec![apps::cassandra(), apps::kafka()]);
        let all: Vec<Vec<Arc<Comparison>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| s.comparisons())).collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for run in &all {
            assert_eq!(run.len(), 2);
            for (i, c) in run.iter().enumerate() {
                // Every thread observed the single cached allocation.
                assert!(Arc::ptr_eq(c, &all[0][i]));
            }
        }
    }

    #[test]
    fn compiled_plans_replay_identically_to_maps() {
        let s = tiny_session();
        let ctx = &s.apps()[0];
        let c = s.comparison(0);
        let scfg = SimConfig::default();
        // The cached comparison results were produced from the compiled
        // plans; replaying the raw maps must give byte-identical results.
        assert_eq!(ctx.simulate(&scfg, Some(&c.asmdb_plan.injections)), c.asmdb);
        assert_eq!(ctx.simulate(&scfg, Some(&c.ispy_plan.injections)), c.ispy);
        // And a drift-input replay agrees between the two forms too.
        let via_map = ctx.simulate_variant(1, 10_000, &scfg, Some(&c.ispy_plan.injections));
        let via_compiled = ctx.simulate_variant_compiled(1, 10_000, &scfg, &c.ispy_compiled);
        assert_eq!(via_map, via_compiled);
    }

    #[test]
    fn variant_planning_reuses_baseline_deterministically() {
        let s = tiny_session();
        let cfg = IspyConfig::conditional_only().with_ctx_size(2);
        let (p1, r1) = s.run_ispy_variant(0, cfg.clone());
        let (p2, r2) = s.run_ispy_variant(0, cfg);
        assert_eq!(p1.injections, p2.injections);
        assert_eq!(r1, r2);
    }
}
