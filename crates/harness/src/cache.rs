//! The on-disk artifact cache behind `repro --cache`.
//!
//! Preparing an app (model generation + trace recording + profiling) and
//! planning its injections dominate a `repro` run's wall time, yet both are
//! pure functions of `(app, scale, configs)`. This cache memoizes them as
//! artifact files — `.itrace` recordings, `.iprof` profiles, `.iplan`
//! plans — keyed by app name, scale, and a hash of every configuration
//! that influences the bytes. Because the codecs are exact, a warm-cache
//! session is byte-identical to a cold one: same plans, same `SimResult`s,
//! same rendered tables.
//!
//! Cache misses (absent, corrupt, or key-mismatched files) silently fall
//! back to recomputation — a stale cache can cost time, never correctness.
//! Corrupt files are reported to stderr and overwritten.

use crate::session::Scale;
use ispy_baselines::asmdb::AsmDbConfig;
use ispy_core::planner::Plan;
use ispy_core::IspyConfig;
use ispy_profile::Profile;
use ispy_sim::SimConfig;
use ispy_trace::{Program, Trace};
use std::path::{Path, PathBuf};

/// The default cache directory (`repro --cache` with no `=DIR`).
pub const DEFAULT_CACHE_DIR: &str = ".ispy-cache";

/// 64-bit FNV-1a over a byte string — stable across runs and platforms,
/// which is all a cache key needs (this is not a security boundary; the
/// artifact CRCs handle integrity).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A directory of memoized pipeline artifacts for one (scale, configs) key.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
    shrink: u32,
    events: usize,
    key: u64,
}

impl ArtifactCache {
    /// Opens (and creates) a cache rooted at `dir` for sessions at `scale`
    /// under the default simulator/planner configurations.
    ///
    /// The key folds in the artifact format version and the `Debug`
    /// rendering of every default config, so changing any planner knob or
    /// the format itself invalidates the whole cache rather than serving
    /// stale artifacts.
    pub fn new(dir: impl Into<PathBuf>, scale: Scale) -> Self {
        let mut key_src = format!("fmt={};", ispy_artifact::FORMAT_VERSION);
        key_src.push_str(&format!(
            "scale={}x{};sim={:?};ispy={:?};asmdb={:?}",
            scale.shrink,
            scale.events,
            SimConfig::default(),
            IspyConfig::default(),
            AsmDbConfig::default(),
        ));
        ArtifactCache {
            dir: dir.into(),
            shrink: scale.shrink,
            events: scale.events,
            key: fnv1a(key_src.as_bytes()),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn stem(&self, app: &str) -> String {
        format!("{app}-s{}-e{}-c{:016x}", self.shrink, self.events, self.key)
    }

    /// Path of `app`'s recording artifact.
    pub fn trace_path(&self, app: &str) -> PathBuf {
        self.dir.join(format!("{}.itrace", self.stem(app)))
    }

    /// Path of `app`'s profile artifact.
    pub fn profile_path(&self, app: &str) -> PathBuf {
        self.dir.join(format!("{}.iprof", self.stem(app)))
    }

    /// Path of `app`'s plan artifact for `algo` (`"ispy"` or `"asmdb"`).
    pub fn plan_path(&self, app: &str, algo: &str) -> PathBuf {
        self.dir.join(format!("{}-{algo}.iplan", self.stem(app)))
    }

    /// Reports a cache file that exists but cannot be used.
    fn complain(path: &Path, what: &str) {
        eprintln!("warning: ignoring cache file {} ({what}); recomputing", path.display());
    }

    /// Loads `app`'s recording, or `None` on any miss.
    pub fn load_recording(&self, app: &str) -> Option<(Program, Trace)> {
        let path = self.trace_path(app);
        if !path.exists() {
            return None;
        }
        match ispy_trace::artifact::read_recording(&path) {
            Ok((program, trace)) if program.name() == app && trace.len() == self.events => {
                Some((program, trace))
            }
            Ok(_) => {
                Self::complain(&path, "app/scale mismatch");
                None
            }
            Err(e) => {
                Self::complain(&path, &e.to_string());
                None
            }
        }
    }

    /// Stores `app`'s recording (best-effort; failures only warn).
    pub fn store_recording(&self, app: &str, program: &Program, trace: &Trace) {
        let path = self.trace_path(app);
        if let Err(e) = ispy_trace::artifact::write_recording(program, trace, &path) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }

    /// Loads `app`'s profile, or `None` on any miss.
    pub fn load_profile(&self, app: &str) -> Option<Profile> {
        let path = self.profile_path(app);
        if !path.exists() {
            return None;
        }
        match ispy_profile::artifact::read_profile(&path) {
            Ok((label, profile)) if label == app => Some(profile),
            Ok(_) => {
                Self::complain(&path, "app mismatch");
                None
            }
            Err(e) => {
                Self::complain(&path, &e.to_string());
                None
            }
        }
    }

    /// Stores `app`'s profile (best-effort; failures only warn).
    pub fn store_profile(&self, app: &str, profile: &Profile) {
        let path = self.profile_path(app);
        if let Err(e) = ispy_profile::artifact::write_profile(app, profile, &path) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }

    /// Loads `app`'s plan for `algo`, or `None` on any miss.
    pub fn load_plan(&self, app: &str, algo: &str) -> Option<Plan> {
        let path = self.plan_path(app, algo);
        if !path.exists() {
            return None;
        }
        match ispy_core::artifact::read_plan(&path) {
            Ok((label, plan)) if label == app => Some(plan),
            Ok(_) => {
                Self::complain(&path, "app mismatch");
                None
            }
            Err(e) => {
                Self::complain(&path, &e.to_string());
                None
            }
        }
    }

    /// Stores `app`'s plan for `algo` (best-effort; failures only warn).
    pub fn store_plan(&self, app: &str, algo: &str, plan: &Plan) {
        let path = self.plan_path(app, algo);
        if let Err(e) = ispy_core::artifact::write_plan(app, plan, &path) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispy_trace::apps;

    fn tmp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("ispy-cache-test-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        ArtifactCache::new(dir, Scale::test())
    }

    #[test]
    fn recording_round_trips_through_cache() {
        let cache = tmp_cache("rec");
        let model = apps::kafka().scaled_down(Scale::test().shrink);
        let program = model.generate();
        let trace = program.record_trace(model.default_input(), Scale::test().events);
        assert!(cache.load_recording("kafka").is_none());
        cache.store_recording("kafka", &program, &trace);
        let (p2, t2) = cache.load_recording("kafka").expect("cache hit");
        assert_eq!(p2.blocks(), program.blocks());
        assert_eq!(t2, trace);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_cache_file_is_a_miss_not_a_panic() {
        let cache = tmp_cache("corrupt");
        std::fs::create_dir_all(cache.dir()).unwrap();
        std::fs::write(cache.trace_path("kafka"), b"garbage bytes that are not an artifact")
            .unwrap();
        assert!(cache.load_recording("kafka").is_none());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn key_changes_with_scale() {
        let dir = std::env::temp_dir();
        let a = ArtifactCache::new(&dir, Scale::test());
        let b = ArtifactCache::new(&dir, Scale::quick());
        assert_ne!(a.trace_path("kafka"), b.trace_path("kafka"));
    }
}
