//! The `--metrics` export: per-app injection-outcome histograms.
//!
//! Telemetry counters and spans (from [`ispy_telemetry`]) cover *how much
//! work* each pipeline phase did; this module covers *what the injections
//! achieved*: for every app whose [`Comparison`](crate::Comparison) the
//! session computed, each planned injection is classified by its dominant
//! runtime outcome and the classes are counted into a histogram. The JSON is
//! hand-rolled like [`crate::report`] (the build environment is offline).

use crate::session::Session;
use ispy_sim::{InjectionOutcome, SimResult};
use std::fmt::Write as _;

/// Renders one run's metrics as canonical `key=value` lines under an app
/// `name` header — the textual fingerprint `repro replay` prints and the
/// record/replay golden tests compare byte-for-byte. Every raw counter is
/// included; derived `f64` metrics use Rust's shortest-round-trip
/// formatting, so equal results render to equal bytes and vice versa.
pub fn result_lines(name: &str, r: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[{name}]");
    for (key, v) in [
        ("cycles", r.cycles),
        ("instrs", r.instrs),
        ("base_instrs", r.base_instrs),
        ("blocks", r.blocks),
        ("i_accesses", r.i_accesses),
        ("i_misses", r.i_misses),
        ("i_stall_cycles", r.i_stall_cycles),
        ("d_accesses", r.d_accesses),
        ("d_misses", r.d_misses),
        ("d_stall_cycles", r.d_stall_cycles),
        ("pf_ops_executed", r.pf_ops_executed),
        ("pf_ops_fired", r.pf_ops_fired),
        ("pf_ops_suppressed", r.pf_ops_suppressed),
        ("pf_lines_issued", r.pf_lines_issued),
        ("pf_lines_resident", r.pf_lines_resident),
        ("pf_useful", r.pf_useful),
        ("pf_late", r.pf_late),
        ("pf_evicted_unused", r.pf_evicted_unused),
    ] {
        let _ = writeln!(out, "{key}={v}");
    }
    for (key, v) in [
        ("mpki", r.mpki()),
        ("ipc", r.ipc()),
        ("frontend_bound", r.frontend_bound()),
        ("accuracy", r.accuracy()),
    ] {
        let _ = writeln!(out, "{key}={v:?}");
    }
    out
}

/// Dominant-outcome classes, in the order they render.
const CLASSES: [&str; 6] =
    ["useful", "late_only", "wasted", "always_suppressed", "never_executed", "pending"];

/// Classifies one injection by what dominated its runtime behaviour.
fn classify(o: &InjectionOutcome) -> &'static str {
    if o.executed == 0 {
        "never_executed"
    } else if o.fired == 0 {
        "always_suppressed"
    } else if o.useful > 0 {
        "useful"
    } else if o.late > 0 {
        "late_only"
    } else if o.evicted_unused > 0 {
        "wasted"
    } else {
        // Fired, but no line settled (still resident or in flight at exit).
        "pending"
    }
}

/// Renders per-app injection-outcome histograms as pretty JSON:
/// `{"apps": {"<name>": {"injections": n, "totals": {...}, "histogram":
/// {...}}}}`. Apps are reported in session order; each app's comparison is
/// computed (and cached) on demand.
pub fn outcome_summary(session: &Session) -> String {
    let mut out = String::from("{\n  \"apps\": {");
    let napps = session.apps().len();
    for i in 0..napps {
        let name = session.apps()[i].name();
        let cmp = session.comparison(i);
        let ledger = &cmp.ispy_outcomes;
        let total = |f: fn(&InjectionOutcome) -> u64| ledger.total(f);
        let _ = write!(
            out,
            "\n    \"{name}\": {{\n      \"injections\": {},",
            ledger.per_injection.len()
        );
        let _ = write!(
            out,
            "\n      \"totals\": {{ \"executed\": {}, \"fired\": {}, \"suppressed\": {}, \
             \"lines_issued\": {}, \"lines_resident\": {}, \"useful\": {}, \"late\": {}, \
             \"evicted_unused\": {} }},",
            total(|o| o.executed),
            total(|o| o.fired),
            total(|o| o.suppressed),
            total(|o| o.lines_issued),
            total(|o| o.lines_resident),
            total(|o| o.useful),
            total(|o| o.late),
            total(|o| o.evicted_unused),
        );
        let _ = write!(out, "\n      \"histogram\": {{");
        for (k, class) in CLASSES.iter().enumerate() {
            let n = ledger.per_injection.iter().filter(|o| classify(o) == *class).count();
            let comma = if k + 1 < CLASSES.len() { "," } else { "" };
            let _ = write!(out, " \"{class}\": {n}{comma}");
        }
        let _ = write!(out, " }}\n    }}{}", if i + 1 < napps { "," } else { "" });
    }
    if napps > 0 {
        out.push_str("\n  ");
    }
    out.push_str("}\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Scale;
    use ispy_trace::apps;

    #[test]
    fn classification_covers_the_outcome_space() {
        let mut o = InjectionOutcome::default();
        assert_eq!(classify(&o), "never_executed");
        o.executed = 2;
        o.suppressed = 2;
        assert_eq!(classify(&o), "always_suppressed");
        o.fired = 1;
        assert_eq!(classify(&o), "pending");
        o.evicted_unused = 1;
        assert_eq!(classify(&o), "wasted");
        o.late = 1;
        assert_eq!(classify(&o), "late_only");
        o.useful = 1;
        assert_eq!(classify(&o), "useful");
    }

    #[test]
    fn summary_renders_every_app_and_class() {
        let s = Session::with_apps(Scale::test(), vec![apps::cassandra()]);
        let j = outcome_summary(&s);
        assert!(j.contains("\"cassandra\""));
        assert!(j.contains("\"injections\""));
        for class in CLASSES {
            assert!(j.contains(class), "missing class {class}");
        }
        // Histogram classes partition the injections.
        let cmp = s.comparison(0);
        let n = cmp.ispy_outcomes.per_injection.len();
        let counted: usize = CLASSES
            .iter()
            .map(|c| cmp.ispy_outcomes.per_injection.iter().filter(|o| classify(o) == *c).count())
            .sum();
        assert_eq!(counted, n);
    }
}
