//! The `repro explain` report: joins plan provenance with runtime outcomes.
//!
//! For one app, renders a markdown audit of the top-N injected prefetch
//! instructions: why the planner emitted each op (target line miss counts,
//! site window estimates, context probabilities, coalescing) and what it
//! bought at runtime (fired/suppressed/useful/late/evicted counts from the
//! [`OutcomeLedger`](ispy_sim::OutcomeLedger)). The report also checks the
//! cross-layer invariant that every executed op is accounted for:
//! `Σ per-injection (fired + suppressed) == SimResult::pf_ops_executed`.

use crate::session::Session;
use ispy_core::ProvenanceRecord;
use ispy_sim::InjectionOutcome;
use std::fmt::Write as _;

/// Renders the explain report for `app`, covering the `top_n` injections
/// with the most useful prefetched lines (ties broken by fired count, then
/// provenance id). Returns `Err` with the list of known apps when `app` is
/// not part of the session.
pub fn explain(session: &Session, app: &str, top_n: usize) -> Result<String, String> {
    let idx = session.apps().iter().position(|a| a.name() == app).ok_or_else(|| {
        let known: Vec<&str> = session.apps().iter().map(|a| a.name()).collect();
        format!("unknown app '{app}'; known apps: {}", known.join(", "))
    })?;
    let cmp = session.comparison(idx);
    let plan = &cmp.ispy_plan;
    let ledger = &cmp.ispy_outcomes;
    let r = &cmp.ispy;

    let mut out = String::new();
    let _ = writeln!(out, "# I-SPY explain — {app}\n");
    let scale = session.scale();
    let _ = writeln!(
        out,
        "Scale: shrink {} · {} block events. Plan: {} injected ops at {} sites \
         covering {} of {} hot lines.",
        scale.shrink,
        scale.events,
        plan.injections.num_ops(),
        plan.injections.num_sites(),
        plan.stats.covered_lines,
        plan.stats.target_lines,
    );
    let speedup = cmp.baseline.cycles as f64 / r.cycles.max(1) as f64;
    let _ = writeln!(
        out,
        "Run: {:.3}x speedup over no-prefetch baseline; I-cache misses {} -> {}.\n",
        speedup, cmp.baseline.i_misses, r.i_misses,
    );

    // Cross-layer accounting: every dynamic execution of an injected op must
    // land in exactly one provenance bucket as fired or suppressed.
    let attributed = ledger.total(|o| o.fired + o.suppressed);
    let _ = writeln!(out, "## Attribution invariant\n");
    let _ = writeln!(
        out,
        "- per-injection fired + suppressed = {} + {} = {}",
        ledger.total(|o| o.fired),
        ledger.total(|o| o.suppressed),
        attributed,
    );
    let _ = writeln!(out, "- simulator `pf_ops_executed` = {}", r.pf_ops_executed);
    if attributed != r.pf_ops_executed {
        let _ = writeln!(
            out,
            "- **MISMATCH: attribution lost {} op executions**",
            r.pf_ops_executed.abs_diff(attributed)
        );
    } else {
        let _ = writeln!(out, "- exact match: every execution attributed");
    }
    let u = &ledger.untracked;
    let _ = writeln!(
        out,
        "- untracked bucket (hardware prefetcher / untagged ops): {} lines issued, {} useful\n",
        u.lines_issued, u.useful,
    );

    // Rank by realized benefit.
    let mut order: Vec<usize> = (0..plan.provenance.len()).collect();
    let outcome = |i: usize| ledger.per_injection.get(i).copied().unwrap_or_default();
    order.sort_by(|&a, &b| {
        let (oa, ob) = (outcome(a), outcome(b));
        ob.useful.cmp(&oa.useful).then(ob.fired.cmp(&oa.fired)).then(a.cmp(&b))
    });
    let shown = top_n.min(order.len());
    let _ = writeln!(out, "## Top {shown} injections by useful prefetched lines\n");
    for (rank, &i) in order.iter().take(shown).enumerate() {
        let rec = &plan.provenance[i];
        let o = outcome(i);
        render_record(&mut out, rank + 1, rec, &o);
    }
    Ok(out)
}

/// Renders one injection's provenance chain and runtime outcome.
fn render_record(out: &mut String, rank: usize, rec: &ProvenanceRecord, o: &InjectionOutcome) {
    let _ = writeln!(
        out,
        "### {rank}. `{}` at block {} (provenance id {})\n",
        rec.mnemonic,
        rec.site,
        rec.id.index(),
    );
    if let Some(first) = rec.lines.first() {
        let _ = writeln!(
            out,
            "- **Why**: line {} missed {} times in the profile; the site reaches it \
             with probability {:.2} about {:.0} cycles ahead (presence {:.2}, \
             precision {:.2}).",
            first.line,
            first.miss_count,
            first.reach_prob,
            first.window_cycles,
            first.site_presence,
            first.site_precision,
        );
        if let (Some(p), Some(base)) = (first.ctx_probability, first.ctx_baseline) {
            let blocks: Vec<String> = rec.context_blocks.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(
                out,
                "- **Context**: fires only after [{}] — P(miss | context) = {:.2} vs \
                 unconditional {:.2} (support: {} site executions).",
                blocks.join(", "),
                p,
                base,
                first.ctx_support.unwrap_or(0),
            );
        } else {
            let _ =
                writeln!(out, "- **Context**: unconditional (precision already above threshold).");
        }
    }
    if rec.mask.is_some() {
        let extras: Vec<String> = rec
            .lines
            .iter()
            .skip(1)
            .map(|l| format!("{} ({} misses)", l.line, l.miss_count))
            .collect();
        let _ = writeln!(
            out,
            "- **Coalesced**: {} lines in one op — base {} plus {}.",
            rec.line_count(),
            rec.base_line,
            extras.join(", "),
        );
    }
    let _ = writeln!(
        out,
        "- **Outcome**: executed {} times — fired {}, suppressed {}; issued {} line \
         fetches ({} already resident); {} useful, {} late, {} evicted unused.",
        o.executed,
        o.fired,
        o.suppressed,
        o.lines_issued,
        o.lines_resident,
        o.useful,
        o.late,
        o.evicted_unused,
    );
    let denom = o.useful + o.late + o.evicted_unused;
    if denom > 0 {
        let _ = writeln!(
            out,
            "- **Accuracy**: predicted {:.2}, realized {:.2} (useful+late over settled lines).",
            rec.predicted_accuracy(),
            (o.useful + o.late) as f64 / denom as f64,
        );
    } else {
        let _ = writeln!(
            out,
            "- **Accuracy**: predicted {:.2}, no settled lines yet.",
            rec.predicted_accuracy()
        );
    }
    let _ = writeln!(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Scale;
    use ispy_trace::apps;

    #[test]
    fn explain_renders_and_checks_invariant() {
        let s = Session::with_apps(Scale::test(), vec![apps::cassandra()]);
        let report = explain(&s, "cassandra", 5).expect("known app");
        assert!(report.starts_with("# I-SPY explain — cassandra"));
        assert!(report.contains("exact match: every execution attributed"));
        assert!(!report.contains("MISMATCH"));
        assert!(report.contains("### 1."));
    }

    #[test]
    fn explain_rejects_unknown_apps() {
        let s = Session::with_apps(Scale::test(), vec![apps::cassandra()]);
        let err = explain(&s, "nope", 5).unwrap_err();
        assert!(err.contains("unknown app"));
        assert!(err.contains("cassandra"));
    }
}
