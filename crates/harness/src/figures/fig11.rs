//! Fig. 11: L1I MPKI reduction.

use crate::report::{pct, Table};
use crate::session::Session;

/// Regenerates Fig. 11: L1 I-cache MPKI reduction relative to no
/// prefetching, AsmDB vs I-SPY.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig11",
        "L1I MPKI reduction vs no prefetching",
        &["app", "baseline MPKI", "asmdb", "i-spy", "i-spy advantage"],
    );
    let mut adv = Vec::new();
    session.comparisons(); // prime the cache one app per pool thread
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let ra = c.asmdb.mpki_reduction_vs(&c.baseline);
        let ri = c.ispy.mpki_reduction_vs(&c.baseline);
        adv.push(ri - ra);
        t.row(vec![
            ctx.name().to_string(),
            format!("{:.1}", c.baseline.mpki()),
            pct(ra),
            pct(ri),
            pct(ri - ra),
        ]);
    }
    let mean = adv.iter().sum::<f64>() / adv.len().max(1) as f64;
    t.note(format!(
        "measured: I-SPY removes {} more of the misses than AsmDB on average",
        pct(mean)
    ));
    t.note("paper: I-SPY reduces MPKI by 95.8% on average, 15.7% more than AsmDB (max 28.4% on verilator)");
    t
}
