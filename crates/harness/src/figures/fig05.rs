//! Fig. 5: Contiguous-8 vs Non-contiguous-8.

use crate::report::{speedup, Table};
use crate::session::Session;
use ispy_baselines::spatial::{SpatialMode, SpatialPlanner};
use ispy_sim::SimConfig;

/// Regenerates Fig. 5: speedup over no-prefetching for the two 8-line-window
/// prefetchers of §II-D.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig05",
        "Speedup of Contiguous-8 vs Non-contiguous-8 over no prefetching",
        &["app", "contiguous-8", "non-contiguous-8"],
    );
    let scfg = SimConfig::default();
    let mut gains = Vec::new();
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let cont = SpatialPlanner::new(&ctx.program, &ctx.profile, SpatialMode::Contiguous).plan();
        let nonc =
            SpatialPlanner::new(&ctx.program, &ctx.profile, SpatialMode::NonContiguous).plan();
        let rc = ctx.simulate(&scfg, Some(&cont.injections));
        let rn = ctx.simulate(&scfg, Some(&nonc.injections));
        let sc = rc.speedup_over(&c.baseline);
        let sn = rn.speedup_over(&c.baseline);
        gains.push(sn / sc);
        t.row(vec![ctx.name().to_string(), speedup(sc), speedup(sn)]);
    }
    let mean_gain = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
    t.note(format!(
        "measured: non-contiguous-8 is {:.1}% faster than contiguous-8 on average",
        100.0 * (mean_gain - 1.0)
    ));
    t.note("paper: non-contiguous-8 provides an average 7.6% speedup over contiguous-8");
    t
}
