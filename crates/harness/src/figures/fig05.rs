//! Fig. 5: Contiguous-8 vs Non-contiguous-8.

use crate::report::{speedup, Table};
use crate::session::Session;
use ispy_baselines::spatial::{SpatialMode, SpatialPlanner};
use ispy_sim::SimConfig;

/// Regenerates Fig. 5: speedup over no-prefetching for the two 8-line-window
/// prefetchers of §II-D.
///
/// The (mode × app) grid fans out across the thread pool; rows are
/// assembled per app afterwards.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig05",
        "Speedup of Contiguous-8 vs Non-contiguous-8 over no prefetching",
        &["app", "contiguous-8", "non-contiguous-8"],
    );
    session.comparisons();
    let napps = session.apps().len();
    const MODES: [SpatialMode; 2] = [SpatialMode::Contiguous, SpatialMode::NonContiguous];
    let cells = ispy_parallel::par_collect(MODES.len() * napps, |j| {
        let (mi, i) = (j / napps, j % napps);
        let ctx = &session.apps()[i];
        let c = session.comparison(i);
        let plan = SpatialPlanner::new(&ctx.program, &ctx.profile, MODES[mi]).plan();
        let r = ctx.simulate(&SimConfig::default(), Some(&plan.injections));
        r.speedup_over(&c.baseline)
    });
    let mut gains = Vec::new();
    for (i, ctx) in session.apps().iter().enumerate() {
        let (sc, sn) = (cells[i], cells[napps + i]);
        gains.push(sn / sc);
        t.row(vec![ctx.name().to_string(), speedup(sc), speedup(sn)]);
    }
    let mean_gain = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
    t.note(format!(
        "measured: non-contiguous-8 is {:.1}% faster than contiguous-8 on average",
        100.0 * (mean_gain - 1.0)
    ));
    t.note("paper: non-contiguous-8 provides an average 7.6% speedup over contiguous-8");
    t
}
