//! Fig. 1: frontend-bound pipeline-slot share.

use crate::report::{pct, Table};
use crate::session::Session;

/// Regenerates Fig. 1: the fraction of cycles each application stalls
/// waiting for instruction fetch, with no prefetching.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig01",
        "Frontend-bound share of cycles (no prefetching)",
        &["app", "frontend-bound", "L1I MPKI"],
    );
    session.comparisons(); // prime the cache one app per pool thread
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        t.row(vec![
            ctx.name().to_string(),
            pct(c.baseline.frontend_bound()),
            format!("{:.1}", c.baseline.mpki()),
        ]);
    }
    t.note("paper: 23%-80% of pipeline slots are frontend-bound across the nine apps");
    t
}
