//! Fig. 15: dynamic instruction increase.

use crate::report::{pct, Table};
use crate::session::Session;

/// Regenerates Fig. 15: injected prefetch instructions executed, relative to
/// the original dynamic instruction count.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new("fig15", "Dynamic instruction increase", &["app", "asmdb", "i-spy"]);
    session.comparisons(); // prime the cache one app per pool thread
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        t.row(vec![
            ctx.name().to_string(),
            pct(c.asmdb.dynamic_increase()),
            pct(c.ispy.dynamic_increase()),
        ]);
    }
    t.note("paper: I-SPY executes 3.7%-7.2% extra instructions vs AsmDB's 5.5%-11.6%");
    t.note("paper: (verilator inverts: I-SPY covers 28.4% more misses there, executing more ops)");
    t.note("deviation: our I-SPY injects multiple covering sites per miss, so its dynamic");
    t.note("deviation: overhead can exceed AsmDB's on multi-path workloads");
    t
}
