//! Fig. 17: sensitivity to the number of predecessors in the context.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Context sizes swept (the paper sweeps 1..32 in powers of two).
pub const CTX_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Regenerates Fig. 17: mean fraction of ideal achieved by conditional
/// prefetching as the context grows.
///
/// The (context size × app) grid fans out across the thread pool; rows are
/// assembled in sweep order, so the table is identical at any thread count.
/// All six config points share each app's planner baseline, so the trace
/// scans behind context discovery run once per distinct predictor pool
/// instead of once per point.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig17",
        "Conditional prefetching vs predecessors per context",
        &["context size", "mean % of ideal", "contexts adopted"],
    );
    session.comparisons();
    let napps = session.apps().len();
    let cells = ispy_parallel::par_collect(CTX_SIZES.len() * napps, |j| {
        let (si, i) = (j / napps, j % napps);
        let c = session.comparison(i);
        let (plan, r) = session
            .run_ispy_variant(i, IspyConfig::conditional_only().with_ctx_size(CTX_SIZES[si]));
        (r.fraction_of_ideal(&c.baseline, &c.ideal), plan.stats.contexts_adopted)
    });
    for (si, n) in CTX_SIZES.iter().enumerate() {
        let row = &cells[si * napps..(si + 1) * napps];
        let mean = row.iter().map(|(f, _)| f).sum::<f64>() / row.len().max(1) as f64;
        let ctxs: usize = row.iter().map(|(_, c)| c).sum();
        t.row(vec![n.to_string(), pct(mean), ctxs.to_string()]);
    }
    t.note("paper: performance improves with more predecessors but search cost explodes;");
    t.note("paper: 4 predecessors already exceed 85% of ideal, so I-SPY uses 4");
    t.note("note: our candidate pool caps at 8 blocks, so sizes 16/32 saturate at 8");
    t
}
