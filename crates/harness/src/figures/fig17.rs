//! Fig. 17: sensitivity to the number of predecessors in the context.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Context sizes swept (the paper sweeps 1..32 in powers of two).
pub const CTX_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Regenerates Fig. 17: mean fraction of ideal achieved by conditional
/// prefetching as the context grows.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig17",
        "Conditional prefetching vs predecessors per context",
        &["context size", "mean % of ideal", "contexts adopted"],
    );
    for n in CTX_SIZES {
        let mut fracs = Vec::new();
        let mut ctxs = 0usize;
        for i in 0..session.apps().len() {
            let c = session.comparison(i);
            let (plan, r) =
                session.run_ispy_variant(i, IspyConfig::conditional_only().with_ctx_size(n));
            fracs.push(r.fraction_of_ideal(&c.baseline, &c.ideal));
            ctxs += plan.stats.contexts_adopted;
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
        t.row(vec![n.to_string(), pct(mean), ctxs.to_string()]);
    }
    t.note("paper: performance improves with more predecessors but search cost explodes;");
    t.note("paper: 4 predecessors already exceed 85% of ideal, so I-SPY uses 4");
    t.note("note: our candidate pool caps at 8 blocks, so sizes 16/32 saturate at 8");
    t
}
