//! Fig. 18: sensitivity to the prefetch-distance window.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Minimum distances swept with the maximum fixed at 200 cycles.
pub const MIN_SWEEP: [u32; 5] = [5, 15, 27, 60, 100];

/// Maximum distances swept with the minimum fixed at 27 cycles.
pub const MAX_SWEEP: [u32; 4] = [60, 120, 200, 300];

/// Regenerates Fig. 18: mean fraction of ideal as the minimum (left) and
/// maximum (right) prefetch distances vary.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig18",
        "Fraction of ideal vs prefetch distance window",
        &["sweep", "min..max cycles", "mean % of ideal"],
    );
    let eval = |label: &str, min: u32, max: u32, t: &mut Table| {
        let mut fracs = Vec::new();
        for i in 0..session.apps().len() {
            let c = session.comparison(i);
            let (_, r) =
                session.run_ispy_variant(i, IspyConfig::default().with_distances(min, max));
            fracs.push(r.fraction_of_ideal(&c.baseline, &c.ideal));
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
        t.row(vec![label.to_string(), format!("{min}..{max}"), pct(mean)]);
    };
    for min in MIN_SWEEP {
        eval("min", min, 200, &mut t);
    }
    for max in MAX_SWEEP {
        eval("max", 27, max, &mut t);
    }
    t.note("paper: best minimum is 20-30 cycles (above L2, below L3 latency);");
    t.note("paper: raising the maximum keeps helping but plateaus past 200 cycles");
    t
}
