//! Fig. 18: sensitivity to the prefetch-distance window.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Minimum distances swept with the maximum fixed at 200 cycles.
pub const MIN_SWEEP: [u32; 5] = [5, 15, 27, 60, 100];

/// Maximum distances swept with the minimum fixed at 27 cycles.
pub const MAX_SWEEP: [u32; 4] = [60, 120, 200, 300];

/// Regenerates Fig. 18: mean fraction of ideal as the minimum (left) and
/// maximum (right) prefetch distances vary.
///
/// The (window × app) grid fans out across the thread pool; rows stay in
/// sweep order. Each distinct window reruns the candidate search (its
/// parameters changed), but the joint-scan cache still carries over for
/// sites shared between windows.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig18",
        "Fraction of ideal vs prefetch distance window",
        &["sweep", "min..max cycles", "mean % of ideal"],
    );
    let sweeps: Vec<(&str, u32, u32)> = MIN_SWEEP
        .iter()
        .map(|&min| ("min", min, 200))
        .chain(MAX_SWEEP.iter().map(|&max| ("max", 27, max)))
        .collect();
    session.comparisons();
    let napps = session.apps().len();
    let cells = ispy_parallel::par_collect(sweeps.len() * napps, |j| {
        let (si, i) = (j / napps, j % napps);
        let (_, min, max) = sweeps[si];
        let c = session.comparison(i);
        let (_, r) = session.run_ispy_variant(i, IspyConfig::default().with_distances(min, max));
        r.fraction_of_ideal(&c.baseline, &c.ideal)
    });
    for (si, &(label, min, max)) in sweeps.iter().enumerate() {
        let row = &cells[si * napps..(si + 1) * napps];
        let mean = row.iter().sum::<f64>() / row.len().max(1) as f64;
        t.row(vec![label.to_string(), format!("{min}..{max}"), pct(mean)]);
    }
    t.note("paper: best minimum is 20-30 cycles (above L2, below L3 latency);");
    t.note("paper: raising the maximum keeps helping but plateaus past 200 cycles");
    t
}
