//! Figs. 2/6/7/8: the paper's worked example, executed end to end.

use crate::report::Table;
use crate::session::Session;
use ispy_core::context::discover;
use ispy_isa::{CoalesceMask, HashConfig, PrefetchOp};
use ispy_profile::JointCounts;
use ispy_sim::Lbr;
use ispy_trace::{Addr, BlockId, Line};

/// Reproduces the paper's running example: six execution paths through
/// injection site G, two of which (those passing through B and E) lead to
/// the miss at K. Context discovery must select `{B, E}`; the Cprefetch must
/// fire exactly when B and E are in the LBR; coalescing must merge the
/// Fig. 8 targets.
pub fn run(_session: &Session) -> Table {
    let mut t =
        Table::new("walkthrough", "Paper worked example (Figs. 2/6/7/8)", &["step", "result"]);

    // -- Fig. 6: context discovery over the six paths. ----------------------
    // Candidates: B (bit 0), E (bit 1). Two paths have both B and E and lead
    // to the miss; one has only B, one only E, two have neither.
    let counts = JointCounts { occurrences: vec![2, 1, 1, 2], hits: vec![0, 0, 0, 2] };
    let b = BlockId(1);
    let e = BlockId(4);
    let ctx = discover(&counts, &[b, e], 4, 1, 0.05).expect("the paper's context exists");
    t.row(vec![
        "Fig. 6 context discovery".into(),
        format!(
            "context {{B, E}} chosen: P(miss|ctx)={:.2} vs unconditional {:.2}",
            ctx.probability, ctx.baseline
        ),
    ]);

    // -- Fig. 7: the Cprefetch and its Bloom-filter check. -------------------
    let hash = HashConfig::default();
    let addr_b = Addr::new(0x400100);
    let addr_e = Addr::new(0x400400);
    let ctx_hash = hash.context_hash([addr_b, addr_e]);
    let op = PrefetchOp::Cond { target: Line::new(0x4b), ctx: ctx_hash };
    t.row(vec!["Cprefetch encoding".into(), format!("{op} ({} bytes)", op.encoded_bytes())]);

    let mut lbr = Lbr::new(32, hash);
    lbr.push(addr_b);
    lbr.push(Addr::new(0x400200)); // unrelated block
    lbr.push(addr_e);
    t.row(vec![
        "LBR holds {B, ., E}".into(),
        format!("prefetch fires: {}", op.fires(lbr.runtime_hash())),
    ]);
    let mut lbr2 = Lbr::new(32, hash);
    lbr2.push(addr_b);
    t.row(vec![
        "LBR holds only {B}".into(),
        format!("prefetch fires: {}", op.fires(lbr2.runtime_hash())),
    ]);

    // -- Fig. 8: coalescing 0x2/0x4/0x7 under one context. -------------------
    let mask = CoalesceMask::from_lines(Line::new(0x2), [Line::new(0x4), Line::new(0x7)], 8)
        .expect("the Fig. 8 lines are within the window");
    let cl = PrefetchOp::CondCoalesced { base: Line::new(0x2), mask, ctx: ctx_hash };
    t.row(vec![
        "Fig. 8 coalescing".into(),
        format!("{cl} prefetches {:?} ({} bytes)", cl.target_lines(), cl.encoded_bytes()),
    ]);
    t.note("all assertions in this walk-through are also enforced by unit tests");
    t
}
