//! Fig. 10: the headline speedup comparison.

use crate::report::{pct, speedup, Table};
use crate::session::Session;

/// Regenerates Fig. 10: speedup over no prefetching for AsmDB, I-SPY, and
/// the ideal cache, plus I-SPY's fraction of ideal.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig10",
        "Speedup over no prefetching",
        &["app", "asmdb", "i-spy", "ideal", "i-spy % of ideal"],
    );
    let mut fracs = Vec::new();
    let mut over_asmdb = Vec::new();
    session.comparisons(); // prime the cache one app per pool thread
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let frac = c.ispy.fraction_of_ideal(&c.baseline, &c.ideal);
        fracs.push(frac);
        over_asmdb.push(c.ispy.speedup_over(&c.asmdb));
        t.row(vec![
            ctx.name().to_string(),
            speedup(c.asmdb.speedup_over(&c.baseline)),
            speedup(c.ispy.speedup_over(&c.baseline)),
            speedup(c.ideal.speedup_over(&c.baseline)),
            pct(frac),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    t.note(format!(
        "measured: I-SPY reaches {} of ideal on average and is {:.1}% faster than AsmDB",
        pct(mean(&fracs)),
        100.0 * (mean(&over_asmdb) - 1.0)
    ));
    t.note("paper: I-SPY averages 90.4% of ideal (up to 96.4%) and beats AsmDB by 22.4%");
    t
}
