//! Fig. 3: AsmDB's coverage/accuracy trade-off vs its fan-out threshold.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
use ispy_sim::SimConfig;

/// Fan-out thresholds swept (fraction of paths allowed to not lead to the
/// miss).
pub const THRESHOLDS: [f64; 6] = [0.0, 0.20, 0.40, 0.60, 0.80, 0.99];

/// Regenerates Fig. 3 on wordpress: raising AsmDB's fan-out threshold buys
/// miss coverage but costs prefetch accuracy, capping its fraction of ideal.
///
/// The threshold sweep fans out across the thread pool; rows stay in sweep
/// order. If wordpress is absent (a `repro --apps` subset), the table is
/// returned empty with a note instead of panicking.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig03",
        "AsmDB coverage vs accuracy vs fan-out threshold (wordpress)",
        &["fan-out threshold", "miss coverage", "accuracy", "% of ideal speedup"],
    );
    let Some(i) = session.apps().iter().position(|a| a.name() == "wordpress") else {
        t.note("note: wordpress absent from this session's app set; figure skipped");
        return t;
    };
    let ctx = &session.apps()[i];
    let c = session.comparison(i);
    let cells = ispy_parallel::par_collect(THRESHOLDS.len(), |ti| {
        let plan = AsmDbPlanner::new(
            &ctx.program,
            &ctx.profile,
            AsmDbConfig::default().with_fanout_threshold(THRESHOLDS[ti]),
        )
        .plan();
        let r = ctx.simulate(&SimConfig::default(), Some(&plan.injections));
        (r.mpki_reduction_vs(&c.baseline), r.accuracy(), r.fraction_of_ideal(&c.baseline, &c.ideal))
    });
    for (ti, &th) in THRESHOLDS.iter().enumerate() {
        let (cov, acc, fi) = cells[ti];
        t.row(vec![pct(th), pct(cov), pct(acc), pct(fi)]);
    }
    t.note("paper: coverage rises with the threshold, accuracy drops sharply near 99%,");
    t.note("paper: and AsmDB tops out around 65% of ideal on wordpress");
    t
}
