//! Fig. 3: AsmDB's coverage/accuracy trade-off vs its fan-out threshold.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_baselines::asmdb::{AsmDbConfig, AsmDbPlanner};
use ispy_sim::SimConfig;

/// Fan-out thresholds swept (fraction of paths allowed to not lead to the
/// miss).
pub const THRESHOLDS: [f64; 6] = [0.0, 0.20, 0.40, 0.60, 0.80, 0.99];

/// Regenerates Fig. 3 on wordpress: raising AsmDB's fan-out threshold buys
/// miss coverage but costs prefetch accuracy, capping its fraction of ideal.
pub fn run(session: &Session) -> Table {
    let ctx = session.app("wordpress").expect("wordpress is part of the app set");
    let i = session.apps().iter().position(|a| a.name() == "wordpress").expect("present");
    let c = session.comparison(i);
    let mut t = Table::new(
        "fig03",
        "AsmDB coverage vs accuracy vs fan-out threshold (wordpress)",
        &["fan-out threshold", "miss coverage", "accuracy", "% of ideal speedup"],
    );
    for th in THRESHOLDS {
        let plan =
            AsmDbPlanner::new(&ctx.program, &ctx.profile, AsmDbConfig::default().with_fanout_threshold(th))
                .plan();
        let r = ctx.simulate(&SimConfig::default(), Some(&plan.injections));
        t.row(vec![
            pct(th),
            pct(r.mpki_reduction_vs(&c.baseline)),
            pct(r.accuracy()),
            pct(r.fraction_of_ideal(&c.baseline, &c.ideal)),
        ]);
    }
    t.note("paper: coverage rises with the threshold, accuracy drops sharply near 99%,");
    t.note("paper: and AsmDB tops out around 65% of ideal on wordpress");
    t
}
