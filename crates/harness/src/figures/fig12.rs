//! Fig. 12: how much each technique contributes.

use crate::report::{speedup, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Regenerates Fig. 12: speedup over AsmDB of conditional prefetching alone,
/// prefetch coalescing alone, and the combined I-SPY.
///
/// The (technique × app) grid fans out across the thread pool; rows are
/// assembled per app afterwards, so the table is identical at any thread
/// count. Both variants reuse the app's cached planner baseline.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig12",
        "Speedup over AsmDB by technique",
        &["app", "conditional only", "coalescing only", "combined"],
    );
    session.comparisons();
    let napps = session.apps().len();
    let variants = [IspyConfig::conditional_only(), IspyConfig::coalescing_only()];
    let cells = ispy_parallel::par_collect(variants.len() * napps, |j| {
        let (vi, i) = (j / napps, j % napps);
        let c = session.comparison(i);
        let (_, r) = session.run_ispy_variant(i, variants[vi].clone());
        r.speedup_over(&c.asmdb)
    });
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        t.row(vec![
            ctx.name().to_string(),
            speedup(cells[i]),
            speedup(cells[napps + i]),
            speedup(c.ispy.speedup_over(&c.asmdb)),
        ]);
    }
    t.note("paper: both techniques beat AsmDB everywhere; conditional wins on 8 of 9 apps,");
    t.note("paper: coalescing wins on verilator (75% of its misses sit within an 8-line window);");
    t.note("paper: gains are not additive, but combining is best");
    t
}
