//! Fig. 12: how much each technique contributes.

use crate::report::{speedup, Table};
use crate::session::Session;
use ispy_core::IspyConfig;

/// Regenerates Fig. 12: speedup over AsmDB of conditional prefetching alone,
/// prefetch coalescing alone, and the combined I-SPY.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig12",
        "Speedup over AsmDB by technique",
        &["app", "conditional only", "coalescing only", "combined"],
    );
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        let (_, cond) = session.run_ispy_variant(i, IspyConfig::conditional_only());
        let (_, coal) = session.run_ispy_variant(i, IspyConfig::coalescing_only());
        t.row(vec![
            ctx.name().to_string(),
            speedup(cond.speedup_over(&c.asmdb)),
            speedup(coal.speedup_over(&c.asmdb)),
            speedup(c.ispy.speedup_over(&c.asmdb)),
        ]);
    }
    t.note("paper: both techniques beat AsmDB everywhere; conditional wins on 8 of 9 apps,");
    t.note("paper: coalescing wins on verilator (75% of its misses sit within an 8-line window);");
    t.note("paper: gains are not additive, but combining is best");
    t
}
