//! One driver per paper table/figure.
//!
//! Every submodule exposes `run(&Session) -> Table` regenerating the
//! corresponding figure's rows/series. The [`all`] registry maps experiment
//! ids (as used by the `repro` binary) to drivers.

use crate::report::Table;
use crate::session::Session;

pub mod ablations;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod table1;
pub mod walkthrough;

/// A registered experiment.
pub struct FigureSpec {
    /// Experiment id (`fig10`, `table1`, …).
    pub id: &'static str,
    /// One-line description of what the paper figure shows.
    pub about: &'static str,
    /// The driver.
    pub run: fn(&Session) -> Table,
}

/// All experiments, in paper order.
pub fn all() -> Vec<FigureSpec> {
    vec![
        FigureSpec { id: "table1", about: "simulated system parameters", run: table1::run },
        FigureSpec {
            id: "fig01",
            about: "frontend-bound pipeline-slot share per application",
            run: fig01::run,
        },
        FigureSpec {
            id: "fig03",
            about: "AsmDB coverage/accuracy vs fan-out threshold (wordpress)",
            run: fig03::run,
        },
        FigureSpec {
            id: "fig04",
            about: "AsmDB static & dynamic code-footprint increase",
            run: fig04::run,
        },
        FigureSpec {
            id: "fig05",
            about: "Contiguous-8 vs Non-contiguous-8 speedup",
            run: fig05::run,
        },
        FigureSpec {
            id: "walkthrough",
            about: "Figs. 2/6/7/8 mechanism walk-through on a toy CFG",
            run: walkthrough::run,
        },
        FigureSpec { id: "fig10", about: "speedup vs ideal cache and AsmDB", run: fig10::run },
        FigureSpec { id: "fig11", about: "L1I MPKI reduction vs AsmDB", run: fig11::run },
        FigureSpec {
            id: "fig12",
            about: "conditional-only / coalescing-only / combined over AsmDB",
            run: fig12::run,
        },
        FigureSpec { id: "fig13", about: "prefetch accuracy vs AsmDB", run: fig13::run },
        FigureSpec { id: "fig14", about: "static code-footprint increase", run: fig14::run },
        FigureSpec { id: "fig15", about: "dynamic instruction increase", run: fig15::run },
        FigureSpec {
            id: "fig16",
            about: "generalization across application inputs",
            run: fig16::run,
        },
        FigureSpec { id: "fig17", about: "sensitivity: predecessors per context", run: fig17::run },
        FigureSpec {
            id: "fig18",
            about: "sensitivity: min/max prefetch distance",
            run: fig18::run,
        },
        FigureSpec { id: "fig19", about: "sensitivity: coalescing bitmask size", run: fig19::run },
        FigureSpec {
            id: "fig20",
            about: "coalesced line distances and lines per prefetch",
            run: fig20::run,
        },
        FigureSpec {
            id: "fig21",
            about: "context-hash size vs false positives and static footprint",
            run: fig21::run,
        },
        FigureSpec {
            id: "abl-replacement",
            about: "ablation: prefetched-line insertion priority (§III-B)",
            run: ablations::replacement,
        },
        FigureSpec {
            id: "abl-sampling",
            about: "ablation: PEBS sampling rate vs plan quality",
            run: ablations::sampling,
        },
        FigureSpec {
            id: "abl-bloomk",
            about: "ablation: Bloom hash functions per block (k=1 vs k=2)",
            run: ablations::bloom_k,
        },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<FigureSpec> {
    all().into_iter().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let specs = all();
        let mut ids: Vec<_> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
        assert!(by_id("fig10").is_some());
        assert!(by_id("fig99").is_none());
    }

    #[test]
    fn registry_covers_every_evaluation_figure() {
        let specs = all();
        for id in [
            "table1", "fig01", "fig03", "fig04", "fig05", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
        ] {
            assert!(specs.iter().any(|s| s.id == id), "{id} missing");
        }
    }
}
