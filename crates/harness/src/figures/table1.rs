//! Table I: the simulated system.

use crate::report::Table;
use crate::session::Session;
use ispy_sim::SimConfig;

/// Prints the simulated system parameters (paper Table I).
pub fn run(_session: &Session) -> Table {
    let cfg = SimConfig::default();
    let mut t = Table::new("table1", "Simulated system (paper Table I)", &["parameter", "value"]);
    let mut kv = |k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv("CPU model", "trace-driven 4-wide core (ZSim substitute)".into());
    kv("L1 instruction cache", format!("{} KiB, {}-way", cfg.l1i.size_bytes / 1024, cfg.l1i.ways));
    kv("L1 data cache", format!("{} KiB, {}-way", cfg.l1d.size_bytes / 1024, cfg.l1d.ways));
    kv("L2 unified cache", format!("{} KiB, {}-way", cfg.l2.size_bytes / 1024, cfg.l2.ways));
    kv("L3 unified cache", format!("{} MiB, {}-way", cfg.l3.size_bytes / 1024 / 1024, cfg.l3.ways));
    kv("L1 I-cache latency", format!("{} cycles", cfg.lat.l1i));
    kv("L1 D-cache latency", format!("{} cycles", cfg.lat.l1d));
    kv("L2 cache latency", format!("{} cycles", cfg.lat.l2));
    kv("L3 cache latency", format!("{} cycles", cfg.lat.l3));
    kv("Memory latency", format!("{} cycles", cfg.lat.mem));
    kv("LBR depth", format!("{} entries", cfg.lbr_depth));
    kv("Context hash", format!("{} bits, {} hash functions", cfg.hash.bits(), cfg.hash.k()));
    t.note("Latencies and geometries match the paper's Table I; the core model is simplified.");
    t
}
