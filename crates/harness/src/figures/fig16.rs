//! Fig. 16: generalization across application inputs.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_sim::SimConfig;

/// Apps the paper varies inputs for (they have the richest input families).
pub const APPS: [&str; 3] = ["drupal", "mediawiki", "wordpress"];

/// Number of inputs per app (variant 0 = the profiled input).
pub const INPUTS: usize = 5;

/// Regenerates Fig. 16: plans are built from input 0's profile and evaluated
/// on five inputs; reported as fraction of the ideal cache's speedup on each
/// input.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig16",
        "Fraction of ideal speedup across unseen inputs (profiled on input 0)",
        &["app", "input", "asmdb", "i-spy"],
    );
    let scfg = SimConfig::default();
    let events = session.scale().events;
    let mut worst_ispy: f64 = 1.0;
    for name in APPS {
        let Some(pos) = session.apps().iter().position(|a| a.name() == name) else { continue };
        let ctx = &session.apps()[pos];
        let c = session.comparison(pos);
        for k in 0..INPUTS {
            let base = ctx.simulate_variant(k, events, &scfg, None);
            let ideal = ctx.simulate_variant(k, events, &SimConfig::ideal(), None);
            let asmdb = ctx.simulate_variant(k, events, &scfg, Some(&c.asmdb_plan.injections));
            let ispy = ctx.simulate_variant(k, events, &scfg, Some(&c.ispy_plan.injections));
            let fi = ispy.fraction_of_ideal(&base, &ideal);
            if k > 0 {
                worst_ispy = worst_ispy.min(fi);
            }
            t.row(vec![
                name.to_string(),
                if k == 0 { "profiled".into() } else { format!("drift-{k}") },
                pct(asmdb.fraction_of_ideal(&base, &ideal)),
                pct(fi),
            ]);
        }
    }
    t.note(format!("measured: I-SPY keeps at least {} of ideal on unseen inputs", pct(worst_ispy)));
    t.note("paper: I-SPY stays closer to ideal than AsmDB on every test input,");
    t.note("paper: achieving at least 70% (up to 86.8%) of ideal on unprofiled inputs");
    t
}
