//! Fig. 16: generalization across application inputs.

use crate::report::{pct, Table};
use crate::session::Session;
use ispy_sim::SimConfig;

/// Apps the paper varies inputs for (they have the richest input families).
pub const APPS: [&str; 3] = ["drupal", "mediawiki", "wordpress"];

/// Number of inputs per app (variant 0 = the profiled input).
pub const INPUTS: usize = 5;

/// Regenerates Fig. 16: plans are built from input 0's profile and evaluated
/// on five inputs; reported as fraction of the ideal cache's speedup on each
/// input.
///
/// Each (app × input) cell — four simulations over a freshly recorded
/// variant trace — is an independent grid point fanned out across the
/// thread pool; rows are assembled in (app, input) order afterwards.
/// Apps missing from the session (a `repro --apps` subset) are skipped
/// with a note.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig16",
        "Fraction of ideal speedup across unseen inputs (profiled on input 0)",
        &["app", "input", "asmdb", "i-spy"],
    );
    let events = session.scale().events;
    let present: Vec<usize> = APPS
        .iter()
        .filter_map(|name| session.apps().iter().position(|a| a.name() == *name))
        .collect();
    if present.len() < APPS.len() {
        t.note("note: some drift apps absent from this session's app set; rows skipped");
    }
    let cells = ispy_parallel::par_collect(present.len() * INPUTS, |j| {
        let (pos, k) = (present[j / INPUTS], j % INPUTS);
        let ctx = &session.apps()[pos];
        let c = session.comparison(pos);
        let scfg = SimConfig::default();
        let base = ctx.simulate_variant(k, events, &scfg, None);
        let ideal = ctx.simulate_variant(k, events, &SimConfig::ideal(), None);
        // The plans were lowered once with the comparison; every drift cell
        // replays the compiled form instead of re-lowering the BTree map.
        let asmdb = ctx.simulate_variant_compiled(k, events, &scfg, &c.asmdb_compiled);
        let ispy = ctx.simulate_variant_compiled(k, events, &scfg, &c.ispy_compiled);
        (asmdb.fraction_of_ideal(&base, &ideal), ispy.fraction_of_ideal(&base, &ideal))
    });
    let mut worst_ispy: f64 = 1.0;
    for (pi, &pos) in present.iter().enumerate() {
        let name = session.apps()[pos].name();
        for k in 0..INPUTS {
            let (asmdb_fi, ispy_fi) = cells[pi * INPUTS + k];
            if k > 0 {
                worst_ispy = worst_ispy.min(ispy_fi);
            }
            t.row(vec![
                name.to_string(),
                if k == 0 { "profiled".into() } else { format!("drift-{k}") },
                pct(asmdb_fi),
                pct(ispy_fi),
            ]);
        }
    }
    t.note(format!("measured: I-SPY keeps at least {} of ideal on unseen inputs", pct(worst_ispy)));
    t.note("paper: I-SPY stays closer to ideal than AsmDB on every test input,");
    t.note("paper: achieving at least 70% (up to 86.8%) of ideal on unprofiled inputs");
    t
}
