//! Fig. 4: AsmDB's code-footprint costs.

use crate::report::{pct, Table};
use crate::session::Session;

/// Regenerates Fig. 4: static and dynamic code-footprint increase of the
/// AsmDB baseline.
pub fn run(session: &Session) -> Table {
    let mut t = Table::new(
        "fig04",
        "AsmDB static and dynamic code-footprint increase",
        &["app", "static increase", "dynamic increase"],
    );
    session.comparisons(); // prime the cache one app per pool thread
    for (i, ctx) in session.apps().iter().enumerate() {
        let c = session.comparison(i);
        t.row(vec![
            ctx.name().to_string(),
            pct(c.asmdb_plan.stats.static_increase),
            pct(c.asmdb.dynamic_increase()),
        ]);
    }
    t.note("paper: AsmDB averages ~13.7% static and ~7.3% dynamic increase");
    t
}
