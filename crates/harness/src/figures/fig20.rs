//! Fig. 20: what coalesced prefetches actually bring in.

use crate::report::{pct, Table};
use crate::session::Session;

/// Regenerates Fig. 20: the distribution of coalesced-line distances (left)
/// and of lines per coalesced prefetch (right), aggregated over all apps'
/// I-SPY plans.
pub fn run(session: &Session) -> Table {
    let mut dist = [0u64; 8];
    let mut lines = [0u64; 9];
    session.comparisons(); // prime the cache one app per pool thread
    for i in 0..session.apps().len() {
        let c = session.comparison(i);
        for (d, &n) in c.ispy_plan.stats.coalesced_distance_hist.iter().enumerate() {
            if d < dist.len() {
                dist[d] += n;
            }
        }
        for (l, &n) in c.ispy_plan.stats.lines_per_op_hist.iter().enumerate() {
            if l < lines.len() {
                lines[l] += n;
            }
        }
    }
    let dist_total: u64 = dist.iter().sum();
    let multi_total: u64 = lines.iter().skip(1).sum();
    let mut t = Table::new(
        "fig20",
        "Coalesced prefetch anatomy (aggregated I-SPY plans)",
        &["quantity", "value", "share"],
    );
    for (d, &n) in dist.iter().enumerate() {
        t.row(vec![
            format!("extra line at distance {}", d + 1),
            n.to_string(),
            pct(if dist_total == 0 { 0.0 } else { n as f64 / dist_total as f64 }),
        ]);
    }
    for (l, &n) in lines.iter().enumerate().skip(1) {
        t.row(vec![
            format!("coalesced ops bringing {} lines", l + 1),
            n.to_string(),
            pct(if multi_total == 0 { 0.0 } else { n as f64 / multi_total as f64 }),
        ]);
    }
    let below4: u64 = lines.iter().take(3).skip(1).sum();
    t.note(format!(
        "measured: {} of coalesced prefetches bring in fewer than 4 lines",
        pct(if multi_total == 0 { 0.0 } else { below4 as f64 / multi_total as f64 })
    ));
    t.note("paper: coalescing probability falls with line distance; 82.4% of coalesced");
    t.note("paper: prefetches bring in fewer than 4 lines");
    t
}
